// Synthetic stand-in for the UCSD CRAWDAD wireless traces used by the paper
// (272 clients, 40 APs, 24 h). Real residential packet traces are not
// publicly available, so — per the paper's own argument in §2.4 — we target
// the published aggregate statistics instead:
//
//   * diurnal downlink utilization peaking around 7 % of a 6 Mbps backhaul
//     at 16-17 h and well under 1.5 % at night (Fig. 3),
//   * at peak hour, more than 80 % of a gateway's idle time made up of
//     inter-packet gaps shorter than 60 s despite ~1 % utilization (Fig. 4),
//   * heavy-tailed flow sizes with continuous light "presence" traffic.
//
// The model: each client alternates offline/online periods driven by a
// non-homogeneous Poisson session process (thinned against the diurnal
// profile). While online it issues web-like transfers with bounded-Pareto
// sizes and, between them, small keep-alive exchanges that realise the
// "continuous light traffic" of §2.4.
#pragma once

#include <cstdint>

#include "sim/random.h"
#include "trace/diurnal.h"
#include "trace/records.h"

namespace insomnia::trace {

/// Tunable parameters of the synthetic client behaviour model. Defaults are
/// calibrated against the paper's published statistics (see trace tests).
struct SyntheticTraceConfig {
  int client_count = 272;                 ///< number of wireless clients
  double duration = 86400.0;              ///< trace length in seconds
  DiurnalProfile profile = DiurnalProfile::ucsd_office();

  /// Per-client session start rate (sessions/s) when the diurnal intensity
  /// is 1. With mean session length ~40 min this yields ~30 % of clients
  /// online at the peak hour.
  double session_rate_at_peak = 1.4e-4;

  /// Session lengths are log-normal; these are the parameters of the
  /// underlying normal (median exp(mu) ≈ 28 min, heavy right tail).
  double session_length_mu = 7.45;
  double session_length_sigma = 0.8;

  /// Mean spacing of web-like transfer starts within a session (s).
  double flow_gap_mean = 30.0;

  /// Bounded-Pareto flow sizes (bytes).
  double flow_size_alpha = 1.12;
  double flow_size_min = 1.5e5;
  double flow_size_max = 1.2e8;

  /// Mean spacing of keep-alive/presence packets within a session (s) and
  /// their size range (bytes). These defeat Sleep-on-Idle exactly as the
  /// paper describes.
  double keepalive_gap_mean = 15.0;
  double keepalive_bytes_min = 120.0;
  double keepalive_bytes_max = 600.0;

  /// A fraction of clients are "always-on presence" machines that stay
  /// online all day emitting keep-alives (§2.4: "leaving a machine on to
  /// maintain online presence") and only occasionally real transfers.
  /// ~1.5 % of 272 clients leaves a handful of gateways pinned awake at
  /// night, matching Fig. 7's SoI floor of a few online gateways.
  double always_on_fraction = 0.015;
  /// Flow-gap multiplier for the always-on machines (they mostly idle).
  double always_on_flow_gap_factor = 12.0;
};

/// Generates FlowTrace / PacketTrace pairs from the behaviour model.
class SyntheticCrawdadGenerator {
 public:
  explicit SyntheticCrawdadGenerator(SyntheticTraceConfig config);

  /// Generates the full-day flow trace (sorted by start time). Keep-alives
  /// appear as small flows — they are traffic and reset idle timers, which
  /// is precisely the phenomenon under study.
  FlowTrace generate(sim::Random& rng) const;

  /// Expands a flow trace into a packet trace: each flow is emitted as
  /// back-to-back 1500 B packets at `service_rate` bits/s (the backhaul
  /// speed), keep-alive flows as single packets. Used by the Fig. 3/4
  /// analyses only.
  static PacketTrace expand_to_packets(const FlowTrace& flows, double service_rate);

  const SyntheticTraceConfig& config() const { return config_; }

 private:
  /// Appends one client's day of flows to `out`.
  void generate_client(int client, bool always_on, sim::Random& rng, FlowTrace& out) const;

  /// Appends flows for a single online session spanning [start, end).
  /// `flow_gap` is the mean web-transfer spacing for this session.
  void generate_session(int client, double start, double end, double flow_gap,
                        sim::Random& rng, FlowTrace& out) const;

  SyntheticTraceConfig config_;
};

}  // namespace insomnia::trace
