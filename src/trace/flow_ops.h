// Trace surgery utilities: windowing, re-basing, folding clients together
// and scaling — the operations the replay methodology of §5.3 performs on
// the raw traces, exposed as a public API.
#pragma once

#include <vector>

#include "trace/records.h"

namespace insomnia::trace {

/// Cuts [start, end) out of `flows` and re-bases timestamps to 0.
FlowTrace window_trace(const FlowTrace& flows, double start, double end);

/// Maps every flow's client through `client_map` (entries < 0 drop the
/// flow). Used to fold whole populations onto replay terminals: "each BH2
/// terminal replays the flows of all clients originally associated with one
/// of the traced APs" (§5.3).
FlowTrace fold_clients(const FlowTrace& flows, const std::vector<int>& client_map);

/// Scales every flow's byte count by `factor` (> 0) — the §5.1 sensitivity
/// methodology scaled offered load "up to 3 times up and down".
FlowTrace scale_volume(const FlowTrace& flows, double factor);

/// Total bytes carried by the trace.
double total_bytes(const FlowTrace& flows);

/// Number of distinct clients appearing in the trace.
int distinct_clients(const FlowTrace& flows);

}  // namespace insomnia::trace
