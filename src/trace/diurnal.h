// Diurnal (time-of-day) intensity profiles. A profile maps a time of day to
// a relative activity level in [0, 1]; the trace generators modulate their
// arrival processes with it (non-homogeneous Poisson via thinning).
#pragma once

#include <array>
#include <vector>

namespace insomnia::trace {

/// Piecewise-linear periodic intensity over a 24 h day.
///
/// Defined by 24 hourly control points; values between control points are
/// linearly interpolated and the profile wraps at midnight.
class DiurnalProfile {
 public:
  /// Builds a profile from 24 hourly intensities (each in [0, 1]).
  explicit DiurnalProfile(std::array<double, 24> hourly);

  /// Intensity at time-of-day `t` seconds (t + phase is taken modulo 24 h).
  double at(double t) const;

  /// Returns a copy whose day runs `seconds` early: shifted(dt).at(t) ==
  /// at(t + dt) for every t. Negative values delay the day. The city layer
  /// uses this to jitter neighbourhood activity phases.
  DiurnalProfile shifted(double seconds) const;

  /// Accumulated phase offset in seconds (0 for unshifted profiles).
  double phase() const { return phase_; }

  /// Largest control-point intensity.
  double peak() const;

  /// Hour (0-23) whose control point is the largest, in the profile's own
  /// unshifted frame (phase does not move the control points).
  int peak_hour() const;

  /// The profile shaped like the UCSD CS-building wireless activity used by
  /// the paper (Fig. 3): low at night, ramping through the morning and
  /// peaking at 16-17 h.
  static DiurnalProfile ucsd_office();

  /// A residential broadband profile (Fig. 2): afternoon ramp with an
  /// evening peak around 21-22 h and a minimum in the early morning.
  static DiurnalProfile residential();

  /// A flat profile at the given level (testing and sensitivity runs).
  static DiurnalProfile flat(double level);

 private:
  std::array<double, 24> hourly_;
  double phase_ = 0.0;  ///< seconds added to query times before wrapping
};

}  // namespace insomnia::trace
