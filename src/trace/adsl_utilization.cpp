#include "trace/adsl_utilization.h"

#include <algorithm>
#include <cmath>

#include "stats/summary.h"
#include "util/error.h"
#include "util/units.h"

namespace insomnia::trace {

AdslUtilizationDay generate_adsl_utilization(const AdslUtilizationConfig& config,
                                             sim::Random& rng) {
  util::require(config.subscriber_count > 0, "need at least one subscriber");
  AdslUtilizationDay day;
  day.downlink.average.resize(24);
  day.downlink.median.resize(24);
  day.uplink.average.resize(24);
  day.uplink.median.resize(24);

  std::vector<double> down(config.subscriber_count);
  std::vector<double> up(config.subscriber_count);
  for (int hour = 0; hour < 24; ++hour) {
    const double t = (static_cast<double>(hour) + 0.5) * util::kSecondsPerHour;
    const double active_probability =
        config.active_probability_at_peak * config.profile.at(t);
    for (int s = 0; s < config.subscriber_count; ++s) {
      double d = rng.exponential(config.background_mean);
      if (rng.bernoulli(active_probability)) {
        d += rng.bounded_pareto(config.active_alpha, config.active_min, config.active_max);
      }
      d = std::min(d, 1.0);
      down[s] = d;
      up[s] = std::min(d * config.uplink_ratio, 1.0);
    }
    day.downlink.average[hour] = stats::mean_of(down);
    day.downlink.median[hour] = stats::median(down);
    day.uplink.average[hour] = stats::mean_of(up);
    day.uplink.median[hour] = stats::median(up);
  }
  return day;
}

}  // namespace insomnia::trace
