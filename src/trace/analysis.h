// Trace analyses used by Figs. 3 and 4: per-gateway utilization time series
// and the "share of idle time by inter-packet gap size" histogram.
#pragma once

#include <vector>

#include "stats/histogram.h"
#include "trace/records.h"

namespace insomnia::trace {

/// Computes the mean downlink utilization across gateways for each hour of
/// the day: sum of bytes offered to a gateway in the hour divided by what
/// `backhaul_rate` (bits/s) could carry. `home_gateway[client]` maps clients
/// to gateways; `gateway_count` sizes the aggregation.
std::vector<double> hourly_gateway_utilization(const FlowTrace& flows,
                                               const std::vector<int>& home_gateway,
                                               int gateway_count, double backhaul_rate);

/// Builds the Fig. 4 histogram: for every gateway, consecutive-packet gaps
/// within [window_start, window_end) contribute their *duration* to the bin
/// of their size, so bin_fraction() reads as "share of total idle time".
/// Window edges also delimit gaps (a lone packet leaves window-long gaps on
/// both sides).
stats::Histogram inter_packet_gap_idle_histogram(const PacketTrace& packets,
                                                 const std::vector<int>& home_gateway,
                                                 int gateway_count, double window_start,
                                                 double window_end);

/// Fraction of total idle time contributed by gaps strictly shorter than
/// `threshold` seconds — the paper's ">80 % of idle time in gaps < 60 s".
double idle_fraction_below(const stats::Histogram& gap_histogram, double threshold);

/// Upper bound on the fraction of [window_start, window_end) that gateways
/// could spend asleep under ideal Sleep-on-Idle with the given idle timeout:
/// only the part of each inter-packet gap beyond the timeout is sleepable
/// (and the wake-up must complete before the next packet, which this ideal
/// bound ignores). This quantifies §2.4's "continuous light traffic
/// effectively condemns the SoI technique to a maximum saving of only 20 %".
double soi_sleep_bound(const PacketTrace& packets, const std::vector<int>& home_gateway,
                       int gateway_count, double window_start, double window_end,
                       double idle_timeout);

}  // namespace insomnia::trace
