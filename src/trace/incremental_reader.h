// Incremental flow-trace decoding for the online layer (src/live/): bytes
// arrive in arbitrary chunks (file tail polls, socket reads) and only
// COMPLETE lines are ever decoded — a row split across two chunks is
// buffered until its newline arrives, so a reader racing a writer can never
// emit a torn record. The dialect is exactly util::parse_csv's ('#' comment
// lines, blank lines, trimmed fields) and every data row goes through
// trace::parse_flow_row, so a streamed byte sequence decodes to the same
// records read_flow_trace would produce from the same bytes.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "trace/records.h"

namespace insomnia::trace {

/// Stateful line-at-a-time decoder of the `start_time,client,bytes` format.
/// Feed it byte chunks in stream order; it validates the header, enforces
/// the sorted-times contract across chunks, and keys the trace-garble chaos
/// hook on the running data-row index (matching read_flow_trace). Malformed
/// input throws util::InvalidArgument — a corrupt live feed must fail as
/// loudly as a corrupt file.
class FlowLineDecoder {
 public:
  /// Decodes every complete line in `data`, appending finished records to
  /// `out`. Returns the number of records appended. An incomplete trailing
  /// line is buffered for the next feed.
  std::size_t feed(std::string_view data, FlowTrace& out);

  /// Flushes the buffered trailing line at true end-of-input (a file's last
  /// row may legitimately lack a newline — read_flow_trace accepts that, so
  /// the tail reader must too). Returns the number of records appended
  /// (0 or 1). Only call when no more bytes can arrive.
  std::size_t finalize(FlowTrace& out);

  /// True once the header row has been seen and validated.
  bool header_seen() const { return header_seen_; }

  /// Data rows decoded so far (comments/blank lines excluded).
  std::size_t rows_decoded() const { return rows_; }

  /// Bytes currently buffered as an incomplete trailing line.
  std::size_t buffered_bytes() const { return partial_.size(); }

 private:
  /// Decodes one complete line (no newline). Appends 0 or 1 records.
  std::size_t decode_line(std::string_view line, FlowTrace& out);

  std::string partial_;
  bool header_seen_ = false;
  std::size_t rows_ = 0;
  double last_time_ = -1.0;
};

}  // namespace insomnia::trace
