#include "trace/diurnal.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace insomnia::trace {

DiurnalProfile::DiurnalProfile(std::array<double, 24> hourly) : hourly_(hourly) {
  for (double v : hourly_) {
    util::require(v >= 0.0 && v <= 1.0, "diurnal intensities must be in [0,1]");
  }
}

double DiurnalProfile::at(double t) const {
  double day_seconds = std::fmod(t + phase_, util::kSecondsPerDay);
  if (day_seconds < 0.0) day_seconds += util::kSecondsPerDay;
  const double hour_position = day_seconds / util::kSecondsPerHour;
  const int hour = static_cast<int>(hour_position) % 24;
  const int next_hour = (hour + 1) % 24;
  const double fraction = hour_position - std::floor(hour_position);
  return hourly_[hour] + fraction * (hourly_[next_hour] - hourly_[hour]);
}

DiurnalProfile DiurnalProfile::shifted(double seconds) const {
  DiurnalProfile copy = *this;
  copy.phase_ += seconds;
  return copy;
}

double DiurnalProfile::peak() const {
  return *std::max_element(hourly_.begin(), hourly_.end());
}

int DiurnalProfile::peak_hour() const {
  return static_cast<int>(std::max_element(hourly_.begin(), hourly_.end()) - hourly_.begin());
}

DiurnalProfile DiurnalProfile::ucsd_office() {
  return DiurnalProfile({0.030, 0.020, 0.015, 0.015, 0.015, 0.020, 0.030, 0.10,
                         0.22, 0.40, 0.55, 0.65, 0.70, 0.80, 0.90, 0.97,
                         1.00, 0.95, 0.80, 0.60, 0.45, 0.30, 0.15, 0.06});
}

DiurnalProfile DiurnalProfile::residential() {
  return DiurnalProfile({0.45, 0.30, 0.20, 0.12, 0.10, 0.10, 0.12, 0.18,
                         0.25, 0.32, 0.40, 0.45, 0.50, 0.52, 0.50, 0.52,
                         0.58, 0.65, 0.72, 0.80, 0.90, 1.00, 0.95, 0.70});
}

DiurnalProfile DiurnalProfile::flat(double level) {
  std::array<double, 24> hourly;
  hourly.fill(level);
  return DiurnalProfile(hourly);
}

}  // namespace insomnia::trace
