// Plain-value trace records. The simulator replays *flows* (timestamp +
// byte count, exactly the replay unit of the paper's §5.3 methodology);
// packet records are derived from flows for the utilization / inter-packet
// gap analyses of Figs. 3 and 4.
#pragma once

#include <vector>

namespace insomnia::trace {

/// One downlink transfer requested by a client. The paper replays each
/// traced flow as an HTTP download of `bytes` starting at `start_time`.
struct FlowRecord {
  double start_time = 0.0;  ///< seconds from the start of the trace day
  int client = 0;           ///< client (terminal) index
  double bytes = 0.0;       ///< downlink volume of the flow in bytes
};

/// One downlink packet observed on the air, attributed to a client.
struct PacketRecord {
  double time = 0.0;   ///< seconds from the start of the trace day
  int client = 0;      ///< client (terminal) index
  double bytes = 0.0;  ///< packet size in bytes
};

/// A day's worth of flows, sorted by start_time.
using FlowTrace = std::vector<FlowRecord>;

/// A day's worth of packets, sorted by time.
using PacketTrace = std::vector<PacketRecord>;

}  // namespace insomnia::trace
