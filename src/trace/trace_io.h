// CSV import/export for flow traces, so generated workloads can be saved,
// inspected, and replayed byte-identically across machines.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/records.h"

namespace insomnia::trace {

/// Writes `flows` as CSV (`start_time,client,bytes`) with a header row.
void write_flow_trace(std::ostream& out, const FlowTrace& flows);

/// Parses a flow trace written by write_flow_trace. Rows must be sorted by
/// start time; throws util::InvalidArgument on malformed input.
FlowTrace read_flow_trace(std::istream& in);

/// Convenience: writes to / reads from a file path.
void save_flow_trace(const std::string& path, const FlowTrace& flows);
FlowTrace load_flow_trace(const std::string& path);

}  // namespace insomnia::trace
