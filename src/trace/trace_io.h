// CSV import/export for flow traces, so generated workloads can be saved,
// inspected, and replayed byte-identically across machines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/records.h"

namespace insomnia::trace {

/// Writes `flows` as CSV (`start_time,client,bytes`) with a header row.
void write_flow_trace(std::ostream& out, const FlowTrace& flows);

/// Validates and converts one already-split data row — the shared strict
/// path of read_flow_trace and the incremental tail decoder
/// (trace/incremental_reader.h), so a streamed byte sequence can never parse
/// differently from the same bytes read as a file. `row_index` keys the
/// trace-garble chaos hook; `last_time` enforces the sorted-times contract
/// (-1.0 for the first row). Throws util::InvalidArgument on any violation.
FlowRecord parse_flow_row(const std::vector<std::string>& fields,
                          std::size_t row_index, double last_time);

/// Parses a flow trace written by write_flow_trace. Rows must be sorted by
/// start time; throws util::InvalidArgument on malformed input.
FlowTrace read_flow_trace(std::istream& in);

/// Convenience: writes to / reads from a file path.
void save_flow_trace(const std::string& path, const FlowTrace& flows);
FlowTrace load_flow_trace(const std::string& path);

}  // namespace insomnia::trace
