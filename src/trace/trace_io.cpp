#include "trace/trace_io.h"

#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/error.h"

namespace insomnia::trace {

void write_flow_trace(std::ostream& out, const FlowTrace& flows) {
  util::CsvWriter writer(out);
  writer.header({"start_time", "client", "bytes"});
  for (const FlowRecord& flow : flows) {
    writer.row({static_cast<double>(flow.start_time), static_cast<double>(flow.client),
                flow.bytes});
  }
}

FlowTrace read_flow_trace(std::istream& in) {
  const util::CsvDocument doc = util::parse_csv(in, /*has_header=*/true);
  util::require(doc.header.size() == 3, "flow trace must have 3 columns");
  FlowTrace flows;
  flows.reserve(doc.rows.size());
  double last_time = -1.0;
  for (const auto& row : doc.rows) {
    util::require(row.size() == 3, "flow trace row must have 3 fields");
    FlowRecord record;
    try {
      record.start_time = std::stod(row[0]);
      record.client = std::stoi(row[1]);
      record.bytes = std::stod(row[2]);
    } catch (const std::exception&) {
      throw util::InvalidArgument("malformed flow trace row");
    }
    util::require(record.start_time >= last_time, "flow trace must be sorted by time");
    util::require(record.bytes >= 0.0, "flow bytes must be non-negative");
    last_time = record.start_time;
    flows.push_back(record);
  }
  return flows;
}

void save_flow_trace(const std::string& path, const FlowTrace& flows) {
  std::ofstream out(path);
  util::require(out.good(), "cannot open trace file for writing: " + path);
  write_flow_trace(out, flows);
}

FlowTrace load_flow_trace(const std::string& path) {
  std::ifstream in(path);
  util::require(in.good(), "cannot open trace file for reading: " + path);
  return read_flow_trace(in);
}

}  // namespace insomnia::trace
