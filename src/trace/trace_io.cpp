#include "trace/trace_io.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "resilience/fault_plan.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/strings.h"

namespace insomnia::trace {

void write_flow_trace(std::ostream& out, const FlowTrace& flows) {
  util::CsvWriter writer(out);
  writer.header({"start_time", "client", "bytes"});
  for (const FlowRecord& flow : flows) {
    writer.row({static_cast<double>(flow.start_time), static_cast<double>(flow.client),
                flow.bytes});
  }
}

namespace {

/// Parses a whole field as a double; trailing junk ("10x") is malformed, not
/// a 10 — silently truncating a corrupted trace would skew every replay.
double parse_field(const std::string& field) {
  const auto value = util::parse_double(field);
  util::require(value.has_value(), "malformed flow trace field \"" + field + "\"");
  return *value;
}

}  // namespace

FlowRecord parse_flow_row(const std::vector<std::string>& fields,
                          std::size_t row_index, double last_time) {
  // Chaos hook: a trace-garble plan makes random rows "unparseable" without
  // needing a corrupted fixture file — same loud rejection path as real
  // corruption, keyed on the row index so the failing rows are stable.
  const resilience::FaultPlan& faults = resilience::global_fault_plan();
  if (resilience::fault_fires(faults.trace_garble, faults.seed, row_index,
                              resilience::kTraceGarbleSalt)) {
    resilience::count_injected("trace_garble");
    throw util::InvalidArgument("injected trace fault at data row " +
                                std::to_string(row_index));
  }
  util::require(fields.size() == 3, "flow trace row must have 3 fields");
  FlowRecord record;
  record.start_time = parse_field(fields[0]);
  const double client = parse_field(fields[1]);
  // Range-check before the cast: converting an out-of-int-range double is
  // undefined behaviour, not a catchable error.
  util::require(client >= 0.0 && client <= std::numeric_limits<int>::max() &&
                    client == std::floor(client),
                "flow trace client must be a non-negative integer");
  record.client = static_cast<int>(client);
  record.bytes = parse_field(fields[2]);
  util::require(record.start_time >= last_time, "flow trace must be sorted by time");
  util::require(record.bytes >= 0.0, "flow bytes must be non-negative");
  return record;
}

FlowTrace read_flow_trace(std::istream& in) {
  const util::CsvDocument doc = util::parse_csv(in, /*has_header=*/true);
  // An empty stream or one that jumps straight into data rows is missing the
  // header — reject it rather than silently swallowing the first record.
  util::require(doc.header == std::vector<std::string>{"start_time", "client", "bytes"},
                "flow trace must start with a start_time,client,bytes header");
  FlowTrace flows;
  flows.reserve(doc.rows.size());
  double last_time = -1.0;
  for (std::size_t r = 0; r < doc.rows.size(); ++r) {
    flows.push_back(parse_flow_row(doc.rows[r], r, last_time));
    last_time = flows.back().start_time;
  }
  return flows;
}

void save_flow_trace(const std::string& path, const FlowTrace& flows) {
  std::ofstream out(path);
  util::require(out.good(), "cannot open trace file for writing: " + path);
  write_flow_trace(out, flows);
}

FlowTrace load_flow_trace(const std::string& path) {
  std::ifstream in(path);
  util::require(in.good(), "cannot open trace file for reading: " + path);
  return read_flow_trace(in);
}

}  // namespace insomnia::trace
