#include "trace/incremental_reader.h"

#include <vector>

#include "trace/trace_io.h"
#include "util/error.h"
#include "util/strings.h"

namespace insomnia::trace {

std::size_t FlowLineDecoder::feed(std::string_view data, FlowTrace& out) {
  std::size_t decoded = 0;
  while (!data.empty()) {
    const std::size_t nl = data.find('\n');
    if (nl == std::string_view::npos) {
      partial_.append(data);
      break;
    }
    if (partial_.empty()) {
      decoded += decode_line(data.substr(0, nl), out);
    } else {
      partial_.append(data.substr(0, nl));
      decoded += decode_line(partial_, out);
      partial_.clear();
    }
    data.remove_prefix(nl + 1);
  }
  return decoded;
}

std::size_t FlowLineDecoder::finalize(FlowTrace& out) {
  if (partial_.empty()) return 0;
  const std::string line = std::move(partial_);
  partial_.clear();
  return decode_line(line, out);
}

std::size_t FlowLineDecoder::decode_line(std::string_view line, FlowTrace& out) {
  const std::string_view trimmed = util::trim(line);
  if (trimmed.empty() || trimmed.front() == '#') return 0;
  std::vector<std::string> fields = util::split(trimmed, ',');
  for (auto& f : fields) f = std::string(util::trim(f));
  if (!header_seen_) {
    util::require(fields == std::vector<std::string>{"start_time", "client", "bytes"},
                  "flow trace must start with a start_time,client,bytes header");
    header_seen_ = true;
    return 0;
  }
  out.push_back(parse_flow_row(fields, rows_, last_time_));
  last_time_ = out.back().start_time;
  ++rows_;
  return 1;
}

}  // namespace insomnia::trace
