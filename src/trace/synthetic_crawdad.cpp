#include "trace/synthetic_crawdad.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace insomnia::trace {

namespace {
constexpr double kPacketBytes = 1500.0;
}  // namespace

SyntheticCrawdadGenerator::SyntheticCrawdadGenerator(SyntheticTraceConfig config)
    : config_(std::move(config)) {
  util::require(config_.client_count > 0, "trace needs at least one client");
  util::require(config_.duration > 0.0, "trace duration must be positive");
  util::require(config_.flow_size_max > config_.flow_size_min &&
                    config_.flow_size_min > 0.0,
                "flow size bounds must satisfy 0 < min < max");
}

FlowTrace SyntheticCrawdadGenerator::generate(sim::Random& rng) const {
  FlowTrace flows;
  for (int client = 0; client < config_.client_count; ++client) {
    const bool always_on = rng.bernoulli(config_.always_on_fraction);
    generate_client(client, always_on, rng, flows);
  }
  std::sort(flows.begin(), flows.end(),
            [](const FlowRecord& a, const FlowRecord& b) { return a.start_time < b.start_time; });
  return flows;
}

void SyntheticCrawdadGenerator::generate_client(int client, bool always_on, sim::Random& rng,
                                                FlowTrace& out) const {
  if (always_on) {
    generate_session(client, 0.0, config_.duration,
                     config_.flow_gap_mean * config_.always_on_flow_gap_factor, rng, out);
    return;
  }
  // Non-homogeneous Poisson session starts via thinning against the peak
  // rate; sessions do not overlap (a start during a session is discarded,
  // which slightly thins the process uniformly and is absorbed by the
  // calibration of session_rate_at_peak).
  double t = 0.0;
  double busy_until = 0.0;
  while (true) {
    t += rng.exponential(1.0 / config_.session_rate_at_peak);
    if (t >= config_.duration) break;
    if (t < busy_until) continue;
    if (!rng.bernoulli(config_.profile.at(t))) continue;
    const double length = rng.lognormal(config_.session_length_mu, config_.session_length_sigma);
    const double end = std::min(t + length, config_.duration);
    generate_session(client, t, end, config_.flow_gap_mean, rng, out);
    busy_until = end;
  }
}

void SyntheticCrawdadGenerator::generate_session(int client, double start, double end,
                                                 double flow_gap, sim::Random& rng,
                                                 FlowTrace& out) const {
  // Web-like transfers.
  double t = start + rng.exponential(flow_gap);
  while (t < end) {
    out.push_back({t, client,
                   rng.bounded_pareto(config_.flow_size_alpha, config_.flow_size_min,
                                      config_.flow_size_max)});
    t += rng.exponential(flow_gap);
  }
  // Keep-alive / presence traffic: small but continuous.
  t = start + rng.exponential(config_.keepalive_gap_mean);
  while (t < end) {
    out.push_back(
        {t, client, rng.uniform(config_.keepalive_bytes_min, config_.keepalive_bytes_max)});
    t += rng.exponential(config_.keepalive_gap_mean);
  }
}

PacketTrace SyntheticCrawdadGenerator::expand_to_packets(const FlowTrace& flows,
                                                         double service_rate) {
  util::require(service_rate > 0.0, "service rate must be positive");
  PacketTrace packets;
  const double packet_spacing = kPacketBytes * 8.0 / service_rate;
  for (const FlowRecord& flow : flows) {
    if (flow.bytes <= kPacketBytes) {
      packets.push_back({flow.start_time, flow.client, flow.bytes});
      continue;
    }
    const auto full_packets = static_cast<std::size_t>(flow.bytes / kPacketBytes);
    const double remainder = flow.bytes - static_cast<double>(full_packets) * kPacketBytes;
    for (std::size_t i = 0; i < full_packets; ++i) {
      packets.push_back(
          {flow.start_time + packet_spacing * static_cast<double>(i), flow.client, kPacketBytes});
    }
    if (remainder > 0.0) {
      packets.push_back(
          {flow.start_time + packet_spacing * static_cast<double>(full_packets), flow.client,
           remainder});
    }
  }
  std::sort(packets.begin(), packets.end(),
            [](const PacketRecord& a, const PacketRecord& b) { return a.time < b.time; });
  return packets;
}

}  // namespace insomnia::trace
