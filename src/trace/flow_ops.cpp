#include "trace/flow_ops.h"

#include <set>

#include "util/error.h"

namespace insomnia::trace {

FlowTrace window_trace(const FlowTrace& flows, double start, double end) {
  util::require(end > start, "window_trace needs end > start");
  FlowTrace out;
  for (const FlowRecord& flow : flows) {
    if (flow.start_time < start || flow.start_time >= end) continue;
    out.push_back({flow.start_time - start, flow.client, flow.bytes});
  }
  return out;
}

FlowTrace fold_clients(const FlowTrace& flows, const std::vector<int>& client_map) {
  FlowTrace out;
  for (const FlowRecord& flow : flows) {
    util::require(flow.client >= 0 &&
                      static_cast<std::size_t>(flow.client) < client_map.size(),
                  "fold_clients: flow references a client outside the map");
    const int mapped = client_map[static_cast<std::size_t>(flow.client)];
    if (mapped < 0) continue;
    out.push_back({flow.start_time, mapped, flow.bytes});
  }
  return out;
}

FlowTrace scale_volume(const FlowTrace& flows, double factor) {
  util::require(factor > 0.0, "scale_volume needs a positive factor");
  FlowTrace out = flows;
  for (FlowRecord& flow : out) flow.bytes *= factor;
  return out;
}

double total_bytes(const FlowTrace& flows) {
  double total = 0.0;
  for (const FlowRecord& flow : flows) total += flow.bytes;
  return total;
}

int distinct_clients(const FlowTrace& flows) {
  std::set<int> clients;
  for (const FlowRecord& flow : flows) clients.insert(flow.client);
  return static_cast<int>(clients.size());
}

}  // namespace insomnia::trace
