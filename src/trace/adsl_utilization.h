// Synthetic stand-in for the commercial ISP dataset behind Fig. 2: hourly
// downlink/uplink utilization of 10 000 residential ADSL subscribers. The
// published facts we target: average downlink utilization below 9 % even at
// the evening peak, uplink a factor lower, and a median utilization that is
// two orders of magnitude below the average (most lines are near-idle at any
// instant; a heavy-tailed minority drives the mean).
#pragma once

#include <vector>

#include "sim/random.h"
#include "trace/diurnal.h"

namespace insomnia::trace {

/// Parameters of the subscriber-population utilization model.
struct AdslUtilizationConfig {
  int subscriber_count = 10000;
  DiurnalProfile profile = DiurnalProfile::residential();

  /// Probability that a subscriber is actively using the line at the peak
  /// hour (scaled by the diurnal profile off-peak).
  double active_probability_at_peak = 0.35;

  /// Active subscribers draw a utilization from a bounded Pareto with this
  /// tail index and range (fraction of link capacity). With alpha 0.5 over
  /// [0.05, 1] the mean active utilization is sqrt(0.05) ~ 22 %, putting the
  /// population average at the paper's ~8 % peak while the median stays
  /// near zero.
  double active_alpha = 0.5;
  double active_min = 0.05;
  double active_max = 1.0;

  /// Idle subscribers still show faint keep-alive chatter: exponential with
  /// this mean utilization.
  double background_mean = 2e-4;

  /// Uplink utilization of an active subscriber relative to downlink
  /// (ACK streams plus light uploads), before re-normalising by the smaller
  /// uplink capacity.
  double uplink_ratio = 0.35;
};

/// Hourly utilization summary for one link direction.
struct UtilizationProfile {
  std::vector<double> average;  ///< mean utilization per hour, fraction of capacity
  std::vector<double> median;   ///< median utilization per hour
};

/// The generated population: per-hour average and median for both
/// directions, as plotted in Fig. 2.
struct AdslUtilizationDay {
  UtilizationProfile downlink;
  UtilizationProfile uplink;
};

/// Draws a full day of per-subscriber hourly utilizations and reduces them
/// to the Fig. 2 summary curves.
AdslUtilizationDay generate_adsl_utilization(const AdslUtilizationConfig& config,
                                             sim::Random& rng);

}  // namespace insomnia::trace
