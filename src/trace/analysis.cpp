#include "trace/analysis.h"

#include <algorithm>

#include "util/error.h"
#include "util/units.h"

namespace insomnia::trace {

std::vector<double> hourly_gateway_utilization(const FlowTrace& flows,
                                               const std::vector<int>& home_gateway,
                                               int gateway_count, double backhaul_rate) {
  util::require(gateway_count > 0 && backhaul_rate > 0.0,
                "utilization needs gateways and a positive rate");
  // bytes[gateway][hour]
  std::vector<std::vector<double>> bytes(static_cast<std::size_t>(gateway_count),
                                         std::vector<double>(24, 0.0));
  for (const FlowRecord& flow : flows) {
    util::require(flow.client >= 0 &&
                      static_cast<std::size_t>(flow.client) < home_gateway.size(),
                  "flow references unknown client");
    const int gateway = home_gateway[static_cast<std::size_t>(flow.client)];
    const int hour =
        std::clamp(static_cast<int>(flow.start_time / util::kSecondsPerHour), 0, 23);
    bytes[static_cast<std::size_t>(gateway)][static_cast<std::size_t>(hour)] += flow.bytes;
  }
  const double hour_capacity_bytes = backhaul_rate * util::kSecondsPerHour / 8.0;
  std::vector<double> mean_utilization(24, 0.0);
  for (int hour = 0; hour < 24; ++hour) {
    double total = 0.0;
    for (int gw = 0; gw < gateway_count; ++gw) {
      total += bytes[static_cast<std::size_t>(gw)][static_cast<std::size_t>(hour)] /
               hour_capacity_bytes;
    }
    mean_utilization[static_cast<std::size_t>(hour)] = total / gateway_count;
  }
  return mean_utilization;
}

stats::Histogram inter_packet_gap_idle_histogram(const PacketTrace& packets,
                                                 const std::vector<int>& home_gateway,
                                                 int gateway_count, double window_start,
                                                 double window_end) {
  util::require(window_end > window_start, "gap histogram needs a non-empty window");
  stats::Histogram histogram(stats::fig4_gap_bin_edges());
  // Last packet time per gateway within the window.
  std::vector<double> last_time(static_cast<std::size_t>(gateway_count), window_start);
  for (const PacketRecord& packet : packets) {
    if (packet.time < window_start || packet.time >= window_end) continue;
    const auto gw = static_cast<std::size_t>(home_gateway[static_cast<std::size_t>(packet.client)]);
    const double gap = packet.time - last_time[gw];
    if (gap > 0.0) histogram.add(gap, gap);
    last_time[gw] = packet.time;
  }
  for (int gw = 0; gw < gateway_count; ++gw) {
    const double tail = window_end - last_time[static_cast<std::size_t>(gw)];
    if (tail > 0.0) histogram.add(tail, tail);
  }
  return histogram;
}

double idle_fraction_below(const stats::Histogram& gap_histogram, double threshold) {
  double covered = 0.0;
  for (std::size_t i = 0; i < gap_histogram.bin_count(); ++i) {
    if (gap_histogram.upper_edge(i) <= threshold) covered += gap_histogram.bin_fraction(i);
  }
  return covered;
}

double soi_sleep_bound(const PacketTrace& packets, const std::vector<int>& home_gateway,
                       int gateway_count, double window_start, double window_end,
                       double idle_timeout) {
  util::require(window_end > window_start, "sleep bound needs a non-empty window");
  util::require(idle_timeout >= 0.0, "idle timeout must be non-negative");
  std::vector<double> last_time(static_cast<std::size_t>(gateway_count), window_start);
  double sleepable = 0.0;
  for (const PacketRecord& packet : packets) {
    if (packet.time < window_start || packet.time >= window_end) continue;
    const auto gw =
        static_cast<std::size_t>(home_gateway[static_cast<std::size_t>(packet.client)]);
    sleepable += std::max(0.0, packet.time - last_time[gw] - idle_timeout);
    last_time[gw] = packet.time;
  }
  for (int gw = 0; gw < gateway_count; ++gw) {
    sleepable +=
        std::max(0.0, window_end - last_time[static_cast<std::size_t>(gw)] - idle_timeout);
  }
  return sleepable / ((window_end - window_start) * gateway_count);
}

}  // namespace insomnia::trace
