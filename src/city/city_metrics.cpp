#include "city/city_metrics.h"

#include <utility>

#include "util/error.h"

namespace insomnia::city {

namespace {

double fraction_or_zero(double part, double whole) {
  return whole > 0.0 ? part / whole : 0.0;
}

}  // namespace

double NeighbourhoodOutcome::savings_fraction() const {
  const double base = baseline_user_energy + baseline_isp_energy;
  const double mine = scheme_user_energy + scheme_isp_energy;
  return base > 0.0 ? 1.0 - mine / base : 0.0;
}

double PresetAggregate::savings_fraction() const {
  return baseline_watts > 0.0 ? 1.0 - scheme_watts / baseline_watts : 0.0;
}

CityMetrics::CityMetrics(std::vector<std::string> preset_names) {
  per_preset_.reserve(preset_names.size());
  for (std::string& name : preset_names) {
    PresetAggregate aggregate;
    aggregate.preset = std::move(name);
    per_preset_.push_back(std::move(aggregate));
  }
}

void CityMetrics::add(const NeighbourhoodOutcome& outcome) {
  util::require(outcome.mix_index < per_preset_.size(),
                "outcome mix_index out of range for this city");
  util::require(outcome.duration > 0.0, "neighbourhood day must have positive length");

  // Convert day energies to mean draws once, here, so every aggregate below
  // is a plain sum of watts.
  const double baseline_user = outcome.baseline_user_energy / outcome.duration;
  const double baseline_isp = outcome.baseline_isp_energy / outcome.duration;
  const double scheme_user = outcome.scheme_user_energy / outcome.duration;
  const double scheme_isp = outcome.scheme_isp_energy / outcome.duration;
  const double baseline = baseline_user + baseline_isp;
  const double scheme = scheme_user + scheme_isp;

  ++neighbourhoods_;
  total_gateways_ += outcome.gateways;
  total_clients_ += outcome.clients;
  baseline_watts_ += baseline;
  scheme_watts_ += scheme;
  baseline_user_watts_ += baseline_user;
  baseline_isp_watts_ += baseline_isp;
  saved_user_watts_ += baseline_user - scheme_user;
  saved_isp_watts_ += baseline_isp - scheme_isp;
  peak_online_gateways_ += outcome.peak_online_gateways;
  wake_events_ += outcome.wake_events;
  savings_.add(outcome.savings_fraction());

  PresetAggregate& slice = per_preset_[outcome.mix_index];
  ++slice.neighbourhoods;
  slice.gateways += outcome.gateways;
  slice.clients += outcome.clients;
  slice.baseline_watts += baseline;
  slice.scheme_watts += scheme;
  slice.savings.add(outcome.savings_fraction());
}

double CityMetrics::savings_fraction() const {
  return baseline_watts_ > 0.0 ? 1.0 - scheme_watts_ / baseline_watts_ : 0.0;
}

double CityMetrics::isp_share_of_savings() const {
  const double saved = saved_user_watts_ + saved_isp_watts_;
  // Guard against a ~zero denominator (e.g. comparing no-sleep to itself):
  // the share is undefined there, report 0 rather than noise.
  if (saved <= baseline_watts_ * 1e-9) return 0.0;
  return saved_isp_watts_ / saved;
}

double CityMetrics::baseline_household_watts_per_gateway() const {
  return fraction_or_zero(baseline_user_watts_, static_cast<double>(total_gateways_));
}

double CityMetrics::baseline_isp_watts_per_gateway() const {
  return fraction_or_zero(baseline_isp_watts_, static_cast<double>(total_gateways_));
}

double CityMetrics::savings_ci95_halfwidth() const { return stats::ci95_halfwidth(savings_); }

}  // namespace insomnia::city
