// Streaming aggregates over a fleet of simulated neighbourhoods. Each
// neighbourhood contributes a handful of scalars (no day series), so the
// city run stays in bounded memory no matter how many tens of thousands of
// gateways the fleet holds. Folding is plain left-to-right addition: add()
// called in neighbourhood-index order is exactly the serial accumulation,
// which is what keeps CityRunner bit-identical across thread counts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "stats/summary.h"

namespace insomnia::city {

/// Everything one simulated neighbourhood contributes to the aggregates.
struct NeighbourhoodOutcome {
  std::size_t mix_index = 0;  ///< which mix component it was drawn from
  int gateways = 0;
  int clients = 0;
  double duration = 0.0;  ///< simulated day length, seconds

  // Whole-day energy integrals (J), paired baseline vs scheme.
  double baseline_user_energy = 0.0;
  double baseline_isp_energy = 0.0;
  double scheme_user_energy = 0.0;
  double scheme_isp_energy = 0.0;

  double peak_online_gateways = 0.0;  ///< mean over the city peak window
  long wake_events = 0;

  /// Fractional energy savings of the scheme vs the paired baseline.
  double savings_fraction() const;
};

/// Per-mix-component slice of the fleet aggregates.
struct PresetAggregate {
  std::string preset;           ///< mix component's preset name
  std::size_t neighbourhoods = 0;
  long gateways = 0;
  long clients = 0;
  double baseline_watts = 0.0;  ///< summed mean draw of the slice
  double scheme_watts = 0.0;
  stats::RunningStats savings;  ///< per-neighbourhood savings fractions

  /// Energy-weighted savings of the slice.
  double savings_fraction() const;
};

/// The city-wide fold. Construct with the mix's preset names, then add()
/// every NeighbourhoodOutcome in index order.
class CityMetrics {
 public:
  explicit CityMetrics(std::vector<std::string> preset_names);

  /// Folds one neighbourhood into the aggregates. `outcome.mix_index` must
  /// address one of the constructor's preset names.
  void add(const NeighbourhoodOutcome& outcome);

  std::size_t neighbourhoods() const { return neighbourhoods_; }
  long total_gateways() const { return total_gateways_; }
  long total_clients() const { return total_clients_; }

  /// Fleet-wide mean power draw (W): every neighbourhood's day energy over
  /// its day length, summed. This is what the ISP's city meter would read.
  double baseline_watts() const { return baseline_watts_; }
  double scheme_watts() const { return scheme_watts_; }

  /// Energy-weighted fractional savings of the whole fleet (0 when empty).
  double savings_fraction() const;

  /// Share of the saved energy on the ISP side, in [0,1]; 0 when the fleet
  /// saved (essentially) nothing.
  double isp_share_of_savings() const;

  /// Baseline per-subscriber draws (W per gateway household), for grounding
  /// the §5.4 world extrapolation in the simulated fleet.
  double baseline_household_watts_per_gateway() const;
  double baseline_isp_watts_per_gateway() const;

  /// User/ISP components of the fleet draw and of the saved power — the
  /// exact accumulators, so a country-level roll-up can fold cities without
  /// re-deriving (and re-rounding) the splits.
  double baseline_user_watts() const { return baseline_user_watts_; }
  double baseline_isp_watts() const { return baseline_isp_watts_; }
  double saved_user_watts() const { return saved_user_watts_; }
  double saved_isp_watts() const { return saved_isp_watts_; }

  /// Unweighted across-neighbourhood savings distribution and its 95 %
  /// Student-t confidence half-width (0 with < 2 neighbourhoods). The t
  /// critical value matters here: per-region slices of a country run can
  /// hold only a handful of neighbourhoods, where z = 1.96 understates.
  const stats::RunningStats& neighbourhood_savings() const { return savings_; }
  double savings_ci95_halfwidth() const;

  /// Fleet totals of the behaviour aggregates.
  double peak_online_gateways() const { return peak_online_gateways_; }
  long wake_events() const { return wake_events_; }

  /// One slice per mix component, in mix order.
  const std::vector<PresetAggregate>& per_preset() const { return per_preset_; }

 private:
  std::size_t neighbourhoods_ = 0;
  long total_gateways_ = 0;
  long total_clients_ = 0;
  double baseline_watts_ = 0.0;
  double scheme_watts_ = 0.0;
  double baseline_user_watts_ = 0.0;
  double baseline_isp_watts_ = 0.0;
  double saved_user_watts_ = 0.0;
  double saved_isp_watts_ = 0.0;
  double peak_online_gateways_ = 0.0;
  long wake_events_ = 0;
  stats::RunningStats savings_;
  std::vector<PresetAggregate> per_preset_;
};

}  // namespace insomnia::city
