// Grounds the paper's §5.4 world extrapolation in a simulated fleet: the
// savings fraction, the ISP share, and the per-subscriber draws all come
// from a CityResult instead of the four constants the paper multiplies.
//
// SUPERSEDED for the §5.4 headline: this bridge scales ONE simulated city by
// a constant subscriber count — a better envelope than the paper's four
// constants, but still an envelope. The world TWh/yr figure is now produced
// by the country layer (src/country/world_extrapolation.h, driver
// bench/country01_fleet.cpp), which simulates a heterogeneous ≥1M-gateway
// portfolio and derives the per-subscriber draws, savings, and 95 % CI from
// it. Kept for single-city studies and the city01_fleet comparison rows.
#pragma once

#include "city/city_runner.h"
#include "core/extrapolation.h"

namespace insomnia::city {

/// Builds a WorldExtrapolationConfig from a simulated city: per-subscriber
/// household and ISP draws are the fleet's baseline watts per gateway
/// (gateway = household = DSL subscriber), and the savings fraction is the
/// fleet's energy-weighted savings. Throws util::InvalidArgument on an empty
/// or degenerate fleet (no gateways / zero baseline draw).
core::WorldExtrapolationConfig world_config_from_city(const CityResult& city,
                                                      double dsl_subscribers = 320e6);

/// The simulation-grounded §5.4 numbers in one call: annual TWh savings
/// split into user and ISP sides using the fleet's simulated ISP share.
core::SavingsSplitTwh annual_savings_from_city(const CityResult& city,
                                               double dsl_subscribers = 320e6);

}  // namespace insomnia::city
