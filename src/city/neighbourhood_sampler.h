// Deterministic sampling of one neighbourhood from a city description.
// Neighbourhood i draws its preset and jitter from a sim::Random substream
// keyed by (city seed, i) alone, so the sample is a pure function of the
// config and the index — the property that lets CityRunner shard the fleet
// across any number of threads and still fold bit-identical results.
#pragma once

#include <cstddef>
#include <vector>

#include "city/city_config.h"
#include "core/scenario_presets.h"

namespace insomnia::city {

/// One fully-instantiated neighbourhood of the fleet.
struct NeighbourhoodSample {
  std::size_t mix_index = 0;     ///< which CityMixComponent it was drawn from
  double diurnal_phase = 0.0;    ///< applied profile offset, seconds
  core::ScenarioConfig scenario; ///< preset + jitter, internally consistent
};

/// Resolves the mix components against the preset registry, in mix order.
/// Throws util::InvalidArgument on a structurally invalid config (validate)
/// or an unknown preset name (listing the valid ones).
std::vector<core::ScenarioPreset> resolve_mix(const CityConfig& config);

/// Samples neighbourhood `index` of the city. `presets[k]` must be the
/// scenario for `config.mix[k]` (resolve_mix, or a caller-supplied
/// population, e.g. shrunken scenarios in tests). The jittered scenario is
/// re-squared so it is always runnable: the DSLAM grows whole switch groups
/// until every gateway has a port, and the overlap-graph degree target is
/// clamped to the jittered gateway count.
NeighbourhoodSample sample_neighbourhood(const CityConfig& config,
                                         const std::vector<core::ScenarioPreset>& presets,
                                         std::size_t index);

}  // namespace insomnia::city
