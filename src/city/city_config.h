// City-scale fleet description: one ISP serving N heterogeneous
// neighbourhoods. The paper's §5.4 extrapolation multiplies a single fixed
// neighbourhood's savings by the world subscriber count; real access plants
// are heterogeneous (dense urban VDSL2 blocks next to sparse rural loops),
// so the city layer describes a *population* instead — a weighted mix of
// scenario presets plus per-neighbourhood jitter distributions, sampled
// deterministically so neighbourhood i is a pure function of (seed, i).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace insomnia::city {

/// Per-neighbourhood variation applied around a preset. Each knob is a
/// distribution parameter, drawn independently per neighbourhood from its
/// keyed substream:
///   * gateway_count_spread   — uniform fractional spread u ~ U(-s, s);
///                              gateways = round(preset * (1 + u)), min 2,
///   * client_density_spread  — same form on clients *per gateway*, so a
///                              bigger block also carries more subscribers,
///   * backhaul_sigma         — multiplicative log-normal factor with
///                              median 1 (sigma of the underlying normal)
///                              on the broadband downlink rate,
///   * diurnal_phase_spread   — uniform offset (seconds, ± spread) applied
///                              to the diurnal activity profile, modelling
///                              neighbourhoods whose days run early or late.
struct NeighbourhoodJitter {
  double gateway_count_spread = 0.0;   ///< in [0, 1)
  double client_density_spread = 0.0;  ///< in [0, 1)
  double backhaul_sigma = 0.0;         ///< >= 0
  double diurnal_phase_spread = 0.0;   ///< seconds, >= 0
};

/// One component of the city's population mix: a scenario preset name (from
/// core::scenario_presets()), its relative sampling weight, and the jitter
/// around it.
struct CityMixComponent {
  std::string preset;
  double weight = 1.0;  ///< relative sampling probability, > 0
  NeighbourhoodJitter jitter;
};

/// A whole city behind one ISP.
struct CityConfig {
  std::vector<CityMixComponent> mix;  ///< must be non-empty
  int neighbourhoods = 64;
  std::uint64_t seed = 42;
  /// Registered scheme name (core/scheme_registry.h) compared against the
  /// no-sleep baseline in every neighbourhood. Unknown names are rejected
  /// by run_city with the list of valid schemes.
  std::string scheme = "bh2-kswitch";
  /// Worker threads for sharding neighbourhoods; 0 = auto (INSOMNIA_THREADS
  /// or the hardware concurrency). Results are bit-identical for any value.
  int threads = 0;
  /// Peak window for the online-gateway aggregate (§5.2.5 default).
  double peak_start = 11.0 * 3600.0;
  double peak_end = 19.0 * 3600.0;
};

/// Structural validation: throws util::InvalidArgument on an empty mix,
/// non-positive weights, out-of-range jitter, a non-positive neighbourhood
/// count, or an empty/backwards peak window. Preset *names* are resolved —
/// and unknown ones rejected — by resolve_mix / run_city against the
/// registry; caller-supplied populations may use any labels.
void validate(const CityConfig& config);

/// The default residential city: mostly paper-default ADSL neighbourhoods,
/// a dense-urban VDSL2 core and a sparse-rural fringe, each with moderate
/// jitter on plant size, subscriber density, loop rate, and diurnal phase.
CityConfig default_city(int neighbourhoods = 64);

}  // namespace insomnia::city
