#include "city/world_extrapolation.h"

#include "util/error.h"

namespace insomnia::city {

core::WorldExtrapolationConfig world_config_from_city(const CityResult& city,
                                                      double dsl_subscribers) {
  const CityMetrics& metrics = city.metrics;
  util::require(metrics.neighbourhoods() > 0 && metrics.total_gateways() > 0,
                "world extrapolation needs a non-empty simulated fleet");
  core::WorldExtrapolationConfig config;
  config.dsl_subscribers = dsl_subscribers;
  config.household_watts = metrics.baseline_household_watts_per_gateway();
  config.isp_watts_per_subscriber = metrics.baseline_isp_watts_per_gateway();
  config.savings_fraction = metrics.savings_fraction();
  core::validate(config);  // a degenerate fleet must not extrapolate quietly
  return config;
}

core::SavingsSplitTwh annual_savings_from_city(const CityResult& city,
                                               double dsl_subscribers) {
  return core::annual_savings_split_twh(world_config_from_city(city, dsl_subscribers),
                                        city.metrics.isp_share_of_savings());
}

}  // namespace insomnia::city
