#include "city/city_runner.h"

#include <stdexcept>

#include "city/neighbourhood_sampler.h"
#include "core/metrics.h"
#include "core/scheme_registry.h"
#include "exec/sweep_runner.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "sim/random.h"
#include "topology/access_topology.h"
#include "trace/synthetic_crawdad.h"

namespace insomnia::city {

namespace {

// Substream salts claimed by the runner; the sampler owns salt 11.
constexpr std::uint64_t kTopologySalt = 12;
constexpr std::uint64_t kTraceSalt = 13;
constexpr std::uint64_t kBaselineSalt = 14;
constexpr std::uint64_t kSchemeSalt = 15;

// Feeds the fleet heartbeat and the telemetry block: neighbourhoods done,
// live baseline/scheme watt aggregates, and per-shard wall time. All values
// except shard wall time are deterministic functions of the simulation.
void record_neighbourhood(const NeighbourhoodOutcome& outcome, double shard_ms) {
#ifndef INSOMNIA_OBS_DISABLED
  static obs::Counter& done = obs::counter("city.neighbourhoods_done");
  static obs::Gauge& baseline_watts = obs::gauge("fleet.baseline_watts");
  static obs::Gauge& scheme_watts = obs::gauge("fleet.scheme_watts");
  static obs::Histogram& shard_hist = obs::histogram("fleet.shard_ms", 0.01, 1e7, 60);
  done.add(1);
  if (outcome.duration > 0.0) {
    baseline_watts.add((outcome.baseline_user_energy + outcome.baseline_isp_energy) /
                       outcome.duration);
    scheme_watts.add((outcome.scheme_user_energy + outcome.scheme_isp_energy) /
                     outcome.duration);
  }
  shard_hist.record(shard_ms);
#else
  (void)outcome;
  (void)shard_ms;
#endif
}

}  // namespace

NeighbourhoodOutcome simulate_neighbourhood(const CityConfig& config,
                                            const std::vector<core::ScenarioPreset>& presets,
                                            std::size_t index) {
  obs::ScopeTimer shard_timer("city.neighbourhood");
  const NeighbourhoodSample sample = sample_neighbourhood(config, presets, index);
  const core::ScenarioConfig& scenario = sample.scenario;

  sim::Random topo_rng(sim::Random::substream_seed(config.seed, index, kTopologySalt));
  const topo::AccessTopology topology =
      topo::make_overlap_topology(scenario.client_count, scenario.degrees, topo_rng);

  sim::Random trace_rng(sim::Random::substream_seed(config.seed, index, kTraceSalt));
  const trace::FlowTrace flows =
      trace::SyntheticCrawdadGenerator(scenario.traffic).generate(trace_rng);

  // Paired days: same topology and trace under no-sleep and the scheme.
  const core::RunMetrics baseline =
      core::run_scheme(scenario, topology, flows, core::find_scheme("no-sleep"),
                       sim::Random::substream_seed(config.seed, index, kBaselineSalt));
  const core::RunMetrics scheme =
      core::run_scheme(scenario, topology, flows, core::find_scheme(config.scheme),
                       sim::Random::substream_seed(config.seed, index, kSchemeSalt));

  NeighbourhoodOutcome outcome;
  outcome.mix_index = sample.mix_index;
  outcome.gateways = scenario.gateway_count;
  outcome.clients = scenario.client_count;
  outcome.duration = baseline.duration;
  outcome.baseline_user_energy = baseline.user_energy();
  outcome.baseline_isp_energy = baseline.isp_energy();
  outcome.scheme_user_energy = scheme.user_energy();
  outcome.scheme_isp_energy = scheme.isp_energy();
  outcome.peak_online_gateways =
      scheme.online_gateways.mean(config.peak_start, config.peak_end);
  outcome.wake_events = scheme.gateway_wake_events;
  record_neighbourhood(outcome, shard_timer.stop_ms());
  return outcome;
}

CityResult run_city(const CityConfig& config) {
  return run_city(config, resolve_mix(config));
}

CityResult run_city(const CityConfig& config,
                    const std::vector<core::ScenarioPreset>& presets) {
  validate(config);
  core::find_scheme(config.scheme);  // unknown names fail before any sharding

  std::vector<std::string> names;
  names.reserve(config.mix.size());
  for (const CityMixComponent& component : config.mix) names.push_back(component.preset);
  CityResult result{config, CityMetrics(std::move(names))};

  // Shard the fleet: each neighbourhood is an independent task keyed by its
  // index, returning only the small outcome struct — no day series — so N
  // can reach tens of thousands of gateways in bounded memory.
  exec::SweepRunner runner(config.threads);
  const std::vector<NeighbourhoodOutcome> outcomes =
      runner.run(static_cast<std::size_t>(config.neighbourhoods),
                 [&](std::size_t index) {
                   try {
                     return simulate_neighbourhood(config, presets, index);
                   } catch (const util::InvalidArgument&) {
                     throw;  // precondition contracts stay typed
                   } catch (const std::exception& error) {
                     throw std::runtime_error("neighbourhood " +
                                              std::to_string(index) + " of city " +
                                              std::to_string(config.seed) +
                                              " failed: " + error.what());
                   }
                 });

  // Fold in index order — the exact serial accumulation sequence.
  OBS_SCOPE("city.fold");
  for (const NeighbourhoodOutcome& outcome : outcomes) result.metrics.add(outcome);
  return result;
}

}  // namespace insomnia::city
