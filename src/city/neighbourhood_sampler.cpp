#include "city/neighbourhood_sampler.h"

#include <algorithm>
#include <cmath>

#include "sim/random.h"
#include "util/error.h"

namespace insomnia::city {

namespace {

/// Substream salt for the sampling draws; the runner claims its own salts
/// for topology, trace, and scheme randomness.
constexpr std::uint64_t kSamplerSalt = 11;

}  // namespace

std::vector<core::ScenarioPreset> resolve_mix(const CityConfig& config) {
  validate(config);
  std::vector<core::ScenarioPreset> presets;
  presets.reserve(config.mix.size());
  for (const CityMixComponent& component : config.mix) {
    presets.push_back(core::find_scenario_preset(component.preset));
  }
  return presets;
}

NeighbourhoodSample sample_neighbourhood(const CityConfig& config,
                                         const std::vector<core::ScenarioPreset>& presets,
                                         std::size_t index) {
  util::require(presets.size() == config.mix.size(),
                "one resolved preset per mix component required");

  sim::Random rng(sim::Random::substream_seed(config.seed, index, kSamplerSalt));

  std::vector<double> weights;
  weights.reserve(config.mix.size());
  for (const CityMixComponent& component : config.mix) weights.push_back(component.weight);

  NeighbourhoodSample sample;
  sample.mix_index = rng.weighted_index(weights);
  const NeighbourhoodJitter& jitter = config.mix[sample.mix_index].jitter;
  core::ScenarioConfig scenario = presets[sample.mix_index].scenario;

  // Plant size: jitter the gateway count, then the subscriber density
  // (clients per gateway), so both the plant and its load vary together.
  const double gateway_factor =
      1.0 + rng.uniform(-jitter.gateway_count_spread, jitter.gateway_count_spread);
  const int gateways = std::max(
      2, static_cast<int>(std::lround(scenario.gateway_count * gateway_factor)));
  const double density =
      static_cast<double>(scenario.client_count) / scenario.gateway_count;
  const double density_factor =
      1.0 + rng.uniform(-jitter.client_density_spread, jitter.client_density_spread);
  const int clients =
      std::max(1, static_cast<int>(std::lround(gateways * density * density_factor)));

  // Loop quality: multiplicative log-normal with median 1, so the preset's
  // rate is the typical neighbourhood and the tails are asymmetric the way
  // measured sync rates are.
  scenario.backhaul_bps *= rng.lognormal(0.0, jitter.backhaul_sigma);

  // Activity phase: this neighbourhood's day runs early or late.
  sample.diurnal_phase =
      rng.uniform(-jitter.diurnal_phase_spread, jitter.diurnal_phase_spread);

  scenario.gateway_count = gateways;
  scenario.client_count = clients;
  scenario.degrees.node_count = gateways;
  scenario.degrees.mean_degree =
      std::min(scenario.degrees.mean_degree, static_cast<double>(gateways - 1));
  scenario.traffic.client_count = clients;
  scenario.traffic.profile = scenario.traffic.profile.shifted(sample.diurnal_phase);

  // Grow the DSLAM in whole switch groups until every gateway has a port
  // (gateway_count <= ports is a runtime precondition; k-switching needs the
  // card count to stay a multiple of the switch size).
  const int group = std::max(1, scenario.dslam.switch_size);
  int cards = std::max(scenario.dslam.line_cards, group);
  cards -= cards % group;  // >= group: max() above guarantees a whole group
  while (cards * scenario.dslam.ports_per_card < gateways) cards += group;
  scenario.dslam.line_cards = cards;

  sample.scenario = scenario;
  return sample;
}

}  // namespace insomnia::city
