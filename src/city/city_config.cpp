#include "city/city_config.h"

#include "util/error.h"

namespace insomnia::city {

void validate(const CityConfig& config) {
  util::require(!config.mix.empty(), "city mix must name at least one preset");
  util::require(config.neighbourhoods >= 1, "city needs at least one neighbourhood");
  util::require(config.peak_start < config.peak_end,
                "city peak window must be non-empty (start < end)");
  for (const CityMixComponent& component : config.mix) {
    util::require(component.weight > 0.0,
                  "mix weight for \"" + component.preset + "\" must be positive");
    const NeighbourhoodJitter& j = component.jitter;
    util::require(j.gateway_count_spread >= 0.0 && j.gateway_count_spread < 1.0,
                  "gateway_count_spread must be in [0, 1)");
    util::require(j.client_density_spread >= 0.0 && j.client_density_spread < 1.0,
                  "client_density_spread must be in [0, 1)");
    util::require(j.backhaul_sigma >= 0.0, "backhaul_sigma must be non-negative");
    util::require(j.diurnal_phase_spread >= 0.0,
                  "diurnal_phase_spread must be non-negative");
  }
}

CityConfig default_city(int neighbourhoods) {
  NeighbourhoodJitter jitter;
  jitter.gateway_count_spread = 0.25;
  jitter.client_density_spread = 0.25;
  jitter.backhaul_sigma = 0.20;
  jitter.diurnal_phase_spread = 2.0 * 3600.0;

  CityConfig config;
  config.neighbourhoods = neighbourhoods;
  config.mix = {
      {"paper-default", 0.55, jitter},
      {"dense-urban", 0.30, jitter},
      {"sparse-rural", 0.15, jitter},
  };
  return config;
}

}  // namespace insomnia::city
