// The fleet engine: simulates every neighbourhood of a CityConfig — sample,
// topology, trace, paired baseline + scheme days — sharded across the
// exec::SweepRunner, and folds the per-neighbourhood outcomes in index order
// into CityMetrics. Each shard derives all randomness from substreams keyed
// by (city seed, neighbourhood index), so the result is bit-identical for
// any thread count (asserted by tests/test_city_determinism.cpp).
#pragma once

#include <vector>

#include "city/city_config.h"
#include "city/city_metrics.h"
#include "core/scenario_presets.h"

namespace insomnia::city {

/// Outcome of a whole-city simulation.
struct CityResult {
  CityConfig config;
  CityMetrics metrics;
};

/// Simulates one neighbourhood of the city end to end (sample -> topology ->
/// trace -> paired no-sleep + scheme days). Pure function of (config,
/// presets, index); the runner calls this once per shard, and tests call it
/// directly to pin per-neighbourhood behaviour.
NeighbourhoodOutcome simulate_neighbourhood(const CityConfig& config,
                                            const std::vector<core::ScenarioPreset>& presets,
                                            std::size_t index);

/// Runs the whole fleet against the preset registry (config.mix names).
CityResult run_city(const CityConfig& config);

/// Runs the fleet against a caller-supplied population: `presets[k]` stands
/// in for `config.mix[k]`'s registry entry. This is the hook tests (shrunken
/// scenarios) and future workload-diversity presets plug into.
CityResult run_city(const CityConfig& config,
                    const std::vector<core::ScenarioPreset>& presets);

}  // namespace insomnia::city
