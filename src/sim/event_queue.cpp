#include "sim/event_queue.h"

#include "util/error.h"

namespace insomnia::sim {

EventId EventQueue::schedule(double t, std::function<void()> action) {
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_sequence_++, id, std::move(action)});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Erase from the pending set only; the heap entry is skipped lazily when
  // it surfaces (we cannot remove from the middle of a binary heap).
  return pending_.erase(id) > 0;
}

void EventQueue::skip_dead() {
  while (!heap_.empty() && pending_.count(heap_.top().id) == 0) {
    heap_.pop();
  }
}

double EventQueue::next_time() {
  util::require_state(!pending_.empty(), "next_time on empty EventQueue");
  skip_dead();
  return heap_.top().time;
}

double EventQueue::run_next() {
  util::require_state(!pending_.empty(), "run_next on empty EventQueue");
  skip_dead();
  // Move the action out before popping so the callback may schedule/cancel.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  pending_.erase(entry.id);
  entry.action();
  return entry.time;
}

}  // namespace insomnia::sim
