#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace insomnia::sim {

const EventQueue::Slot* EventQueue::lookup(EventId id) const {
  const auto slot = static_cast<std::uint32_t>(id >> 32);
  const auto generation = static_cast<std::uint32_t>(id & 0xffffffffu);
  if (slot >= slots_.size()) return nullptr;
  const Slot& entry = slots_[slot];
  if (!entry.live || entry.generation != generation) return nullptr;
  return &entry;
}

EventQueue::Slot* EventQueue::lookup(EventId id) {
  return const_cast<Slot*>(static_cast<const EventQueue*>(this)->lookup(id));
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& entry = slots_[slot];
  entry.live = false;
  entry.action = nullptr;  // drop captured state promptly
  // Advance the generation so stale ids for this slot stop matching; skip 0
  // on wraparound, keeping encoded ids distinct from kInvalidEventId.
  if (++entry.generation == 0) entry.generation = 1;
  entry.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::sift_up(std::size_t index) {
  const Node node = heap_[index];
  while (index > 0) {
    const std::size_t parent = (index - 1) / kHeapArity;
    if (!earlier(node, heap_[parent])) break;
    place(index, heap_[parent]);
    index = parent;
  }
  place(index, node);
}

void EventQueue::sift_down(std::size_t index) {
  const Node node = heap_[index];
  const std::size_t size = heap_.size();
  for (;;) {
    const std::size_t first_child = index * kHeapArity + 1;
    if (first_child >= size) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + kHeapArity, size);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], node)) break;
    place(index, heap_[best]);
    index = best;
  }
  place(index, node);
}

void EventQueue::heap_remove(std::size_t index) {
  const Node moved = heap_.back();
  heap_.pop_back();
  if (index == heap_.size()) return;  // removed the physically last node
  place(index, moved);
  sift_up(index);
  sift_down(slots_[moved.slot].heap_index);
}

EventId EventQueue::schedule(double t, std::function<void()> action) {
  const std::uint32_t slot = acquire_slot();
  Slot& entry = slots_[slot];
  entry.live = true;
  entry.action = std::move(action);
  heap_.push_back(Node{t, next_sequence_++, slot});
  sift_up(heap_.size() - 1);
  return encode(slot, entry.generation);
}

bool EventQueue::cancel(EventId id) {
  Slot* entry = lookup(id);
  if (entry == nullptr) return false;
  const std::size_t index = entry->heap_index;
  release_slot(static_cast<std::uint32_t>(entry - slots_.data()));
  heap_remove(index);
  return true;
}

bool EventQueue::reschedule(EventId id, double t) {
  Slot* entry = lookup(id);
  if (entry == nullptr) return false;
  // A fresh sequence keeps cancel+schedule's FIFO position among equal
  // times; the node moves in place — no allocation, no orphaned entries.
  const std::size_t index = entry->heap_index;
  heap_[index].time = t;
  heap_[index].sequence = next_sequence_++;
  sift_up(index);
  sift_down(entry->heap_index);  // position kept current by sift_up
  return true;
}

double EventQueue::next_time() const {
  util::require_state(!heap_.empty(), "next_time on empty EventQueue");
  return heap_.front().time;
}

std::uint64_t EventQueue::next_sequence() const {
  util::require_state(!heap_.empty(), "next_sequence on empty EventQueue");
  return heap_.front().sequence;
}

double EventQueue::run_next() {
  util::require_state(!heap_.empty(), "run_next on empty EventQueue");
  const Node top = heap_.front();
  heap_remove(0);
  // Move the action out before releasing so the callback may schedule into
  // (and reuse) this very slot — and because new schedules may relocate the
  // slot pool while the callback runs.
  std::function<void()> action = std::move(slots_[top.slot].action);
  release_slot(top.slot);
  action();
  return top.time;
}

}  // namespace insomnia::sim
