#include "sim/random.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace insomnia::sim {

double Random::uniform(double lo, double hi) {
  util::require(hi >= lo, "uniform needs hi >= lo");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int Random::uniform_int(int lo, int hi) {
  util::require(hi >= lo, "uniform_int needs hi >= lo");
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

bool Random::bernoulli(double p) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution dist(clamped);
  return dist(engine_);
}

double Random::exponential(double mean) {
  util::require(mean > 0.0, "exponential needs mean > 0");
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

double Random::normal(double mean, double stddev) {
  util::require(stddev >= 0.0, "normal needs stddev >= 0");
  if (stddev == 0.0) return mean;
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Random::lognormal(double mu, double sigma) {
  util::require(sigma >= 0.0, "lognormal needs sigma >= 0");
  std::lognormal_distribution<double> dist(mu, sigma);
  return dist(engine_);
}

double Random::bounded_pareto(double alpha, double lo, double hi) {
  util::require(alpha > 0.0 && lo > 0.0 && hi > lo, "bounded_pareto needs alpha>0, hi>lo>0");
  // Inverse-transform sampling of the truncated Pareto CDF.
  const double u = uniform(0.0, 1.0);
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(x, -1.0 / alpha);
}

int Random::binomial(int n, double p) {
  util::require(n >= 0, "binomial needs n >= 0");
  std::binomial_distribution<int> dist(n, std::clamp(p, 0.0, 1.0));
  return dist(engine_);
}

int Random::poisson(double mean) {
  util::require(mean >= 0.0, "poisson needs mean >= 0");
  if (mean == 0.0) return 0;
  std::poisson_distribution<int> dist(mean);
  return dist(engine_);
}

std::size_t Random::weighted_index(const std::vector<double>& weights) {
  util::require(!weights.empty(), "weighted_index over empty weights");
  double total = 0.0;
  for (double w : weights) {
    util::require(w >= 0.0, "weighted_index needs non-negative weights");
    total += w;
  }
  if (total <= 0.0) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<int>(weights.size()) - 1));
  }
  double point = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    point -= weights[i];
    if (point < 0.0) return i;
  }
  return weights.size() - 1;
}

std::uint64_t Random::substream_seed(std::uint64_t seed, std::uint64_t stream,
                                     std::uint64_t salt) {
  // The +1 offsets keep (stream, salt) = (0, 0) from collapsing to the bare
  // seed; the finalizer is splitmix64's, so adjacent indices land far apart.
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (stream + 1) +
                    0xbf58476d1ce4e5b9ULL * (salt + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  return x;
}

Random Random::fork() {
  // Draw two words to decorrelate the child stream from subsequent parent use.
  const std::uint64_t a = engine_();
  const std::uint64_t b = engine_();
  return Random(a ^ (b << 1) ^ 0x9e3779b97f4a7c15ULL);
}

Random Random::fork(std::uint64_t stream, std::uint64_t salt) const {
  return Random(substream_seed(seed_, stream, salt));
}

}  // namespace insomnia::sim
