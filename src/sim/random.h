// Deterministic, seedable randomness for simulations. All stochastic code in
// the library draws through this wrapper so that every experiment is exactly
// reproducible from its seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace insomnia::sim {

/// A seeded random source with the distributions the simulators need.
///
/// Thin wrapper over std::mt19937_64: the point is a single choke-point for
/// randomness (reproducibility, easy substitution in tests) plus the
/// heavy-tailed distributions (bounded Pareto, log-normal) that the trace
/// generator relies on.
class Random {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Random(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// The seed this generator was constructed from. Keyed forks derive from
  /// it, so substreams are a function of (seed, key) alone — never of how
  /// many values the parent has drawn.
  std::uint64_t seed() const { return seed_; }

  /// Mixes (seed, stream, salt) into an independent substream seed with a
  /// splitmix64-style finalizer. Pure function of its inputs: two call sites
  /// computing the same key get the same seed regardless of execution order,
  /// which is what makes sharded parallel experiments bit-reproducible.
  static std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t stream,
                                      std::uint64_t salt = 0);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// True with probability p (p clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean);

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal parameterised by the *underlying* normal's mu and sigma.
  double lognormal(double mu, double sigma);

  /// Bounded Pareto on [lo, hi] with tail exponent alpha (> 0). Heavy-tailed
  /// flow sizes use this; the bound keeps single flows from exceeding what a
  /// 6 Mbps day could carry.
  double bounded_pareto(double alpha, double lo, double hi);

  /// Binomially distributed count of successes out of n trials.
  int binomial(int n, double p);

  /// Poisson with the given mean.
  int poisson(double mean);

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]; all-zero weights degenerate to uniform choice.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<int>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator (for per-run streams). Consumes
  /// parent state: the child depends on how much the parent has drawn. Use
  /// the keyed overload when substreams must be order-independent.
  Random fork();

  /// Derives an independent child keyed by (stream, salt), from the
  /// *construction* seed only. Const and order-independent: fork(3) returns
  /// the same generator whether called before or after any other draws or
  /// forks, so each (scheme, run, point) of a sharded sweep can claim a
  /// stable substream by index.
  Random fork(std::uint64_t stream, std::uint64_t salt = 0) const;

  /// Access to the raw engine, for std distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace insomnia::sim
