// A cancellable discrete-event queue built for allocation-free steady
// state. Scheduled events live in a vector-backed slot pool recycled
// through a free list; the ordering structure is an index-tracked 4-ary
// min-heap of (time, sequence, slot) triples, so cancel and reschedule
// move the node in place — the heap never carries dead entries and
// next_time() is a single array read. EventIds encode (slot, generation):
// a stale handle — one whose slot has been fired, cancelled and reused —
// is recognised and rejected in O(1) without any per-event hash-set
// bookkeeping.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace insomnia::sim {

/// Identifies a scheduled event; can be used to cancel it before it fires.
/// Encodes a pool slot plus a generation stamp (never 0 for a live event).
using EventId = std::uint64_t;

/// Sentinel meaning "no event".
inline constexpr EventId kInvalidEventId = 0;

/// Min-heap of timed callbacks with stable FIFO ordering among equal times.
class EventQueue {
 public:
  /// Schedules `action` at absolute time `t`; returns a cancellation handle.
  EventId schedule(double t, std::function<void()> action);

  /// Cancels a pending event. Returns true if the event existed and had not
  /// yet fired; cancelling an already-fired or invalid id returns false.
  /// The entry leaves the heap immediately: next_time() never reports a
  /// cancelled event's time, even when the minimum is cancelled.
  bool cancel(EventId id);

  /// Moves a pending event to absolute time `t`, keeping its stored closure
  /// (no allocation, no handle change). Ordering is as if the event were
  /// cancelled and rescheduled: among equal times it fires after everything
  /// already queued. Returns false if `id` is not pending.
  bool reschedule(EventId id, double t);

  /// True if `id` is scheduled and not yet fired or cancelled.
  bool is_pending(EventId id) const { return lookup(id) != nullptr; }

  /// True if no live events remain.
  bool empty() const { return heap_.empty(); }

  /// Number of live (non-cancelled, unfired) events.
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest live event; requires !empty().
  double next_time() const;

  /// FIFO rank of the earliest live event; requires !empty(). Comparable
  /// with ranks from allocate_sequence(): among equal times, lower rank
  /// fires first.
  std::uint64_t next_sequence() const;

  /// Consumes and returns the next FIFO rank without scheduling anything.
  /// Lets a caller interleave an external pre-ordered event stream (see
  /// Simulator::EventStream) with exactly the ordering its events would
  /// have had as real schedule() calls made at this moment.
  std::uint64_t allocate_sequence() { return next_sequence_++; }

  /// Pops and runs the earliest live event; requires !empty().
  /// Returns the time at which the event fired.
  double run_next();

 private:
  /// One pool slot. `generation` advances every time the slot is freed so
  /// stale EventIds stop matching once the slot is reused; `heap_index` is
  /// the position of the slot's node in heap_ while the event is pending.
  struct Slot {
    std::function<void()> action;
    std::uint32_t generation = 1;
    bool live = false;
    std::uint32_t heap_index = 0;
    std::uint32_t next_free = kNoSlot;
  };

  /// Heap node; 24 bytes, moved freely without touching the closures.
  /// `sequence` makes the (time, sequence) key unique and FIFO among equal
  /// times.
  struct Node {
    double time;
    std::uint64_t sequence;
    std::uint32_t slot;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  /// 4-ary heap: shallower than binary for the same size, and the 4-child
  /// min scan stays within one cache line of nodes.
  static constexpr std::size_t kHeapArity = 4;

  static EventId encode(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(slot) << 32) | generation;
  }

  static bool earlier(const Node& a, const Node& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.sequence < b.sequence;
  }

  /// Slot behind a live id, or nullptr for stale/invalid ids.
  const Slot* lookup(EventId id) const;
  Slot* lookup(EventId id);

  /// Claims a pool slot (free list first) and returns its index.
  std::uint32_t acquire_slot();

  /// Marks a slot dead and recycles it onto the free list.
  void release_slot(std::uint32_t slot);

  /// Writes `node` at heap position `index` and records the position.
  void place(std::size_t index, const Node& node) {
    heap_[index] = node;
    slots_[node.slot].heap_index = static_cast<std::uint32_t>(index);
  }

  /// Moves the node at `index` toward the root / the leaves until the heap
  /// property holds again.
  void sift_up(std::size_t index);
  void sift_down(std::size_t index);

  /// Removes the node at heap position `index` (swap-with-last + sift).
  void heap_remove(std::size_t index);

  std::vector<Slot> slots_;
  std::vector<Node> heap_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace insomnia::sim
