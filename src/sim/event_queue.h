// A cancellable discrete-event queue. Events are closures ordered by
// (time, insertion sequence); cancellation is O(1) via lazy deletion.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace insomnia::sim {

/// Identifies a scheduled event; can be used to cancel it before it fires.
using EventId = std::uint64_t;

/// Sentinel meaning "no event".
inline constexpr EventId kInvalidEventId = 0;

/// Min-heap of timed callbacks with stable FIFO ordering among equal times.
class EventQueue {
 public:
  /// Schedules `action` at absolute time `t`; returns a cancellation handle.
  EventId schedule(double t, std::function<void()> action);

  /// Cancels a pending event. Returns true if the event existed and had not
  /// yet fired; cancelling an already-fired or invalid id returns false.
  bool cancel(EventId id);

  /// True if `id` is scheduled and not yet fired or cancelled.
  bool is_pending(EventId id) const { return pending_.count(id) != 0; }

  /// True if no live events remain.
  bool empty() const { return pending_.empty(); }

  /// Number of live (non-cancelled, unfired) events.
  std::size_t size() const { return pending_.size(); }

  /// Time of the earliest live event; requires !empty().
  double next_time();

  /// Pops and runs the earliest live event; requires !empty().
  /// Returns the time at which the event fired.
  double run_next();

 private:
  struct Entry {
    double time;
    std::uint64_t sequence;
    EventId id;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  /// Discards cancelled entries at the top of the heap.
  void skip_dead();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;
  std::uint64_t next_sequence_ = 0;
  EventId next_id_ = 1;  // 0 is kInvalidEventId
};

}  // namespace insomnia::sim
