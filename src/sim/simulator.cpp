#include "sim/simulator.h"

#include "util/error.h"

namespace insomnia::sim {

EventId Simulator::at(double t, std::function<void()> action) {
  util::require(t >= now_, "Simulator::at cannot schedule in the past");
  return queue_.schedule(t, std::move(action));
}

EventId Simulator::after(double delay, std::function<void()> action) {
  util::require(delay >= 0.0, "Simulator::after needs delay >= 0");
  return queue_.schedule(now_ + delay, std::move(action));
}

void Simulator::run_until(double end_time) {
  util::require(end_time >= now_, "Simulator::run_until cannot rewind the clock");
  while (!queue_.empty() && queue_.next_time() <= end_time) {
    // Advance the clock before dispatching so the callback observes now()
    // equal to its own firing time.
    now_ = queue_.next_time();
    queue_.run_next();
    ++executed_;
  }
  now_ = end_time;
}

void Simulator::run_to_completion() {
  while (!queue_.empty()) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++executed_;
  }
}

}  // namespace insomnia::sim
