#include "sim/simulator.h"

#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/error.h"

namespace insomnia::sim {

namespace {

// Collection-point discipline: the event loop itself carries zero
// instrumentation — we add the executed-events delta to the registry once
// per run_until/run_to_completion call. The counter reference is resolved
// once per process.
void record_executed_delta(std::uint64_t delta) {
#ifndef INSOMNIA_OBS_DISABLED
  static obs::Counter& events = obs::counter("sim.events");
  events.add(delta);
#else
  (void)delta;
#endif
}

}  // namespace

EventId Simulator::at(double t, std::function<void()> action) {
  util::require(t >= now_, "Simulator::at cannot schedule in the past");
  return queue_.schedule(t, std::move(action));
}

bool Simulator::reschedule(EventId id, double t) {
  util::require(t >= now_, "Simulator::reschedule cannot schedule in the past");
  return queue_.reschedule(id, t);
}

EventId Simulator::after(double delay, std::function<void()> action) {
  util::require(delay >= 0.0, "Simulator::after needs delay >= 0");
  return queue_.schedule(now_ + delay, std::move(action));
}

bool Simulator::flush_if_pending() {
  if (!flush_pending_ || hook_ == nullptr) return false;
  flush_pending_ = false;
  hook_->flush();
  return true;
}

void Simulator::run_until(double end_time, EventStream* stream) {
  run_loop(end_time, stream, /*gated=*/false);
}

bool Simulator::run_until_gated(double end_time, EventStream* stream) {
  util::require(stream != nullptr, "Simulator::run_until_gated needs a stream");
  return run_loop(end_time, stream, /*gated=*/true);
}

bool Simulator::run_loop(double end_time, EventStream* stream, bool gated) {
  util::require(end_time >= now_, "Simulator::run_until cannot rewind the clock");
  OBS_SCOPE("sim.run_until");
  const std::uint64_t executed_before = executed_;
  while (true) {
    const bool queued = !queue_.empty();
    const double tq = queued ? queue_.next_time() : 0.0;
    const double ts =
        stream != nullptr ? stream->next_time() : std::numeric_limits<double>::infinity();
    const bool stream_first =
        std::isfinite(ts) &&
        (!queued || ts < tq || (ts == tq && stream->next_rank() < queue_.next_sequence()));
    if (!stream_first && !queued) {
      if (flush_if_pending()) continue;  // flushed work may queue new events
      break;
    }
    const double t = stream_first ? ts : tq;
    if (t > end_time) {
      if (flush_if_pending()) continue;
      break;
    }
    // The flush barrier: deferred same-instant work must come current before
    // the clock moves. Flushing may schedule events earlier than t (but
    // always after now()), so re-evaluate what fires next.
    if (t > now_ && flush_if_pending()) continue;
    // The gate sits at the point of no return: everything that would run
    // before the head (including the flush barrier above) has run, the head
    // was about to fire. Pausing here leaves the clock at the last
    // dispatched instant, so a resumed loop continues exactly where an
    // ungated one would have been.
    if (gated && stream_first && !stream->ready()) {
      record_executed_delta(executed_ - executed_before);
      return false;
    }
    // Advance the clock before dispatching so the callback observes now()
    // equal to its own firing time.
    now_ = t;
    if (stream_first) {
      stream->fire();
    } else {
      queue_.run_next();
    }
    ++executed_;
  }
  now_ = end_time;
  record_executed_delta(executed_ - executed_before);
  return true;
}

void Simulator::run_to_completion() {
  OBS_SCOPE("sim.run_to_completion");
  const std::uint64_t executed_before = executed_;
  while (true) {
    if (queue_.empty()) {
      if (flush_if_pending()) continue;
      break;
    }
    const double t = queue_.next_time();
    if (t > now_ && flush_if_pending()) continue;
    now_ = t;
    queue_.run_next();
    ++executed_;
  }
  record_executed_delta(executed_ - executed_before);
}

}  // namespace insomnia::sim
