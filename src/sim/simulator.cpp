#include "sim/simulator.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace insomnia::sim {

EventId Simulator::at(double t, std::function<void()> action) {
  util::require(t >= now_, "Simulator::at cannot schedule in the past");
  return queue_.schedule(t, std::move(action));
}

bool Simulator::reschedule(EventId id, double t) {
  util::require(t >= now_, "Simulator::reschedule cannot schedule in the past");
  return queue_.reschedule(id, t);
}

EventId Simulator::after(double delay, std::function<void()> action) {
  util::require(delay >= 0.0, "Simulator::after needs delay >= 0");
  return queue_.schedule(now_ + delay, std::move(action));
}

void Simulator::run_until(double end_time, EventStream* stream) {
  util::require(end_time >= now_, "Simulator::run_until cannot rewind the clock");
  while (true) {
    const bool queued = !queue_.empty();
    const double tq = queued ? queue_.next_time() : 0.0;
    const double ts =
        stream != nullptr ? stream->next_time() : std::numeric_limits<double>::infinity();
    if (std::isfinite(ts) &&
        (!queued || ts < tq || (ts == tq && stream->next_rank() < queue_.next_sequence()))) {
      if (ts > end_time) break;
      // Advance the clock before dispatching so the callback observes
      // now() equal to its own firing time.
      now_ = ts;
      stream->fire();
      ++executed_;
      continue;
    }
    if (!queued || tq > end_time) break;
    now_ = tq;
    queue_.run_next();
    ++executed_;
  }
  now_ = end_time;
}

void Simulator::run_to_completion() {
  while (!queue_.empty()) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++executed_;
  }
}

}  // namespace insomnia::sim
