// The discrete-event simulation driver: a clock plus the event queue, with
// absolute and relative scheduling and a bounded run loop.
#pragma once

#include <functional>

#include "sim/event_queue.h"

namespace insomnia::sim {

/// Discrete-event simulator clock and scheduler.
///
/// Time is in seconds and only moves forward. Callbacks receive no
/// arguments; they capture what they need and may schedule further events.
class Simulator {
 public:
  /// Constructs a simulator whose clock starts at `start_time`.
  explicit Simulator(double start_time = 0.0) : now_(start_time) {}

  /// Current simulation time.
  double now() const { return now_; }

  /// Schedules `action` at absolute time `t` (>= now).
  EventId at(double t, std::function<void()> action);

  /// Schedules `action` `delay` seconds from now (delay >= 0).
  EventId after(double delay, std::function<void()> action);

  /// Cancels a pending event; returns true if it was still pending.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// True if `id` is scheduled and has not yet fired or been cancelled.
  bool is_pending(EventId id) const { return queue_.is_pending(id); }

  /// Runs events in order until the queue empties or the next event lies
  /// beyond `end_time`; the clock finishes exactly at `end_time`.
  void run_until(double end_time);

  /// Runs all remaining events (use only when the event set is finite).
  void run_to_completion();

  /// Number of events executed so far.
  std::uint64_t executed_events() const { return executed_; }

  /// Number of pending events.
  std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  double now_;
  std::uint64_t executed_ = 0;
};

}  // namespace insomnia::sim
