// The discrete-event simulation driver: a clock plus the event queue, with
// absolute and relative scheduling and a bounded run loop.
#pragma once

#include <functional>

#include "sim/event_queue.h"

namespace insomnia::sim {

/// An external, already-ordered source of timed events that run_until can
/// interleave with the queue — e.g. a trace replay whose arrivals are
/// sorted by time and therefore never need to pass through the heap.
///
/// Ordering contract: the head's rank must come from
/// Simulator::allocate_sequence(), taken at the moment the event would
/// otherwise have been schedule()d. Among equal times, the lower rank
/// fires first — the exact FIFO order real schedule() calls would give.
class EventStream {
 public:
  virtual ~EventStream() = default;

  /// Time of the stream's head event; +infinity when exhausted.
  virtual double next_time() const = 0;

  /// FIFO rank of the head event (see class comment).
  virtual std::uint64_t next_rank() const = 0;

  /// Fires the head event and advances the stream.
  virtual void fire() = 0;

  /// Gate consulted by run_until_gated at the instant the head would fire:
  /// false pauses the run loop so the producer can extend the stream first.
  /// Live replay uses this to hold the last buffered arrival back until its
  /// successor is known — the successor's FIFO rank is claimed while the
  /// head is processed, so firing early would claim it at a later point in
  /// the event order than an offline replay would (run_until ignores the
  /// gate). Default: always ready.
  virtual bool ready() const { return true; }
};

/// A deferred-work barrier. A component that batches same-instant work (the
/// incremental flow engine coalesces a burst of arrivals into one
/// reallocation pass) registers a hook and calls request_flush() after
/// deferring; the run loop invokes flush() before the clock moves past the
/// current instant, so deferred work can still schedule events at future
/// times without ever being observed late. flush() runs at the instant the
/// work was deferred — deferral is invisible to any event or query.
class FlushHook {
 public:
  virtual ~FlushHook() = default;

  /// Brings all deferred work current. Called with now() unchanged since the
  /// last request_flush(); must leave nothing deferred (it is not re-entered
  /// for work it performs itself, unless request_flush is called again).
  virtual void flush() = 0;
};

/// Discrete-event simulator clock and scheduler.
///
/// Time is in seconds and only moves forward. Callbacks receive no
/// arguments; they capture what they need and may schedule further events.
class Simulator {
 public:
  /// Constructs a simulator whose clock starts at `start_time`.
  explicit Simulator(double start_time = 0.0) : now_(start_time) {}

  /// Current simulation time.
  double now() const { return now_; }

  /// Schedules `action` at absolute time `t` (>= now).
  EventId at(double t, std::function<void()> action);

  /// Schedules `action` `delay` seconds from now (delay >= 0).
  EventId after(double delay, std::function<void()> action);

  /// Cancels a pending event; returns true if it was still pending.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Moves a pending event to absolute time `t` (>= now), reusing its
  /// stored closure; returns false if `id` is not pending. Equivalent to
  /// cancel + at with the same callback, minus the allocation.
  bool reschedule(EventId id, double t);

  /// True if `id` is scheduled and has not yet fired or been cancelled.
  bool is_pending(EventId id) const { return queue_.is_pending(id); }

  /// Runs events in order until the queue empties or the next event lies
  /// beyond `end_time`; the clock finishes exactly at `end_time`.
  void run_until(double end_time) { run_until(end_time, nullptr); }

  /// As run_until, additionally interleaving `stream`'s events (may be
  /// nullptr) in exact (time, rank) order with the queued ones.
  void run_until(double end_time, EventStream* stream);

  /// As run_until(end_time, stream), but pauses when the next event to fire
  /// is the stream head and stream->ready() is false: returns false with the
  /// clock still at the last dispatched instant (it does NOT jump to
  /// end_time) so the caller can extend the stream and resume. Returns true
  /// once end_time is reached. A sequence of gated calls that always resumes
  /// executes exactly the events a single run_until would, in the same
  /// order.
  bool run_until_gated(double end_time, EventStream* stream);

  /// Consumes the next FIFO rank for an EventStream head (see EventStream).
  std::uint64_t allocate_sequence() { return queue_.allocate_sequence(); }

  /// Runs all remaining events (use only when the event set is finite).
  void run_to_completion();

  /// Registers (or clears, with nullptr) the deferred-work barrier. At most
  /// one hook at a time; the owner must clear it before being destroyed.
  void set_flush_hook(FlushHook* hook) { hook_ = hook; }

  const FlushHook* flush_hook() const { return hook_; }

  /// Asks the run loop to call the hook's flush() before the clock next
  /// moves past the current instant (and before run_until/run_to_completion
  /// return). Cheap and idempotent.
  void request_flush() { flush_pending_ = true; }

  /// Number of events executed so far.
  std::uint64_t executed_events() const { return executed_; }

  /// Number of pending events.
  std::size_t pending_events() const { return queue_.size(); }

 private:
  /// Runs the hook's flush() if one is pending; returns true if it ran (the
  /// run loop must then re-evaluate what fires next).
  bool flush_if_pending();

  /// Shared body of run_until / run_until_gated (see the latter's contract).
  bool run_loop(double end_time, EventStream* stream, bool gated);

  EventQueue queue_;
  double now_;
  std::uint64_t executed_ = 0;
  FlushHook* hook_ = nullptr;
  bool flush_pending_ = false;
};

}  // namespace insomnia::sim
