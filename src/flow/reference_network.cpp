#include "flow/reference_network.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "util/error.h"

namespace insomnia::flow {

ReferenceFluidNetwork::ReferenceFluidNetwork(sim::Simulator& simulator,
                                             std::vector<double> backhaul_rates)
    : simulator_(&simulator) {
  util::require(!backhaul_rates.empty(), "FluidNetwork needs at least one gateway");
  gateways_.reserve(backhaul_rates.size());
  for (double rate : backhaul_rates) {
    util::require(rate > 0.0, "backhaul rates must be positive");
    gateways_.emplace_back(rate, simulator.now());
  }
}

ReferenceFluidNetwork::~ReferenceFluidNetwork() {
  obs::counter("flow.waterfills").add(waterfills_);
}

void ReferenceFluidNetwork::set_completion_handler(
    std::function<void(const CompletedFlow&)> handler) {
  on_complete_ = std::move(handler);
}

void ReferenceFluidNetwork::reserve_flows(std::size_t flow_count) {
  flows_.reserve(flow_count);
  id_to_index_.reserve(flow_count);
}

ReferenceFluidNetwork::GatewayState& ReferenceFluidNetwork::gateway(int g) {
  return gateways_.at(static_cast<std::size_t>(g));
}

const ReferenceFluidNetwork::GatewayState& ReferenceFluidNetwork::gateway(int g) const {
  return gateways_.at(static_cast<std::size_t>(g));
}

bool ReferenceFluidNetwork::dense_id(FlowId id) const {
  // Growing the flat vector is fine while it stays proportionate to the
  // flows actually added; a far outlier (sparse trace id) must not make it
  // balloon.
  if (id < id_to_index_.size()) return true;
  const std::size_t ceiling = std::max<std::size_t>(1024, 4 * (flows_.size() + 1));
  return id < ceiling;
}

std::size_t ReferenceFluidNetwork::find_index(FlowId id) const {
  // The dense vector may later grow past an id that went to the overflow
  // map while it was still an outlier, so an empty dense entry must fall
  // through to the map (cheap: the map is almost always empty).
  if (id < id_to_index_.size() && id_to_index_[id] != kNoIndex) return id_to_index_[id];
  if (id_overflow_.empty()) return kNoIndex;
  const auto it = id_overflow_.find(id);
  return it == id_overflow_.end() ? kNoIndex : it->second;
}

void ReferenceFluidNetwork::store_index(FlowId id, std::size_t index) {
  if (dense_id(id)) {
    if (id_to_index_.size() <= id) id_to_index_.resize(id + 1, kNoIndex);
    id_to_index_[id] = index;
  } else {
    id_overflow_[id] = index;
  }
}

void ReferenceFluidNetwork::erase_index(FlowId id) {
  // Mirror find_index: the mapping lives in the dense vector or, for an id
  // that was an outlier when stored, in the overflow map — even if the
  // vector has since grown past it.
  if (id < id_to_index_.size() && id_to_index_[id] != kNoIndex) {
    id_to_index_[id] = kNoIndex;
  } else {
    id_overflow_.erase(id);
  }
}

ReferenceFluidNetwork::FlowState& ReferenceFluidNetwork::flow_by_id(FlowId id) {
  const std::size_t index = find_index(id);
  util::require(index != kNoIndex, "unknown flow id");
  return flows_[index];
}

void ReferenceFluidNetwork::insert_sorted(GatewayState& gw, std::size_t flow, double cap,
                                          std::uint64_t seq) {
  const SortedCap entry{cap, seq, flow};
  const auto pos = std::upper_bound(gw.sorted.begin(), gw.sorted.end(), entry,
                                    [](const SortedCap& a, const SortedCap& b) {
                                      if (a.cap != b.cap) return a.cap < b.cap;
                                      return a.seq < b.seq;
                                    });
  gw.sorted.insert(pos, entry);
}

std::uint64_t ReferenceFluidNetwork::remove_sorted(GatewayState& gw, std::size_t flow) {
  for (auto it = gw.sorted.begin(); it != gw.sorted.end(); ++it) {
    if (it->flow == flow) {
      const std::uint64_t seq = it->seq;
      gw.sorted.erase(it);
      return seq;
    }
  }
  util::require_state(false, "flow missing from the gateway's cap order");
  return 0;
}

void ReferenceFluidNetwork::add_flow(FlowId id, int client, int gateway_id, double bytes,
                                     double wireless_cap) {
  util::require(bytes >= 0.0 && wireless_cap > 0.0,
                "flows need non-negative bytes and a positive wireless cap");
  advance(gateway_id);

  FlowState state;
  state.id = id;
  state.client = client;
  state.gateway = gateway_id;
  state.arrival_time = simulator_->now();
  state.bytes = bytes;
  state.remaining_bits = bytes * 8.0;
  state.wireless_cap = wireless_cap;

  GatewayState& gw = gateway(gateway_id);
  gw.last_activity = simulator_->now();

  if (state.remaining_bits <= kEpsilonBits) {
    state.done = true;
    if (on_complete_) {
      on_complete_({id, client, gateway_id, state.arrival_time, simulator_->now(), bytes});
    }
    return;
  }

  util::require(find_index(id) == kNoIndex, "duplicate flow id");
  store_index(id, flows_.size());
  flows_.push_back(state);
  gw.flows.push_back(flows_.size() - 1);
  insert_sorted(gw, flows_.size() - 1, wireless_cap, gw.next_cap_seq++);
  ++live_flows_;
  reallocate(gateway_id);
}

void ReferenceFluidNetwork::migrate_flow(FlowId id, int new_gateway, double new_wireless_cap) {
  util::require(new_wireless_cap > 0.0, "migrated flow needs a positive wireless cap");
  const std::size_t index = find_index(id);
  if (index == kNoIndex) return;
  if (flows_[index].done) return;
  const int old_gateway = flows_[index].gateway;
  if (old_gateway == new_gateway) {
    advance(old_gateway);
    if (!flows_[index].done) {
      // Re-seat the flow in the cap order under its original stamp: a cap
      // change must not alter its FIFO rank among equal caps.
      GatewayState& gw = gateway(old_gateway);
      const std::uint64_t seq = remove_sorted(gw, index);
      insert_sorted(gw, index, new_wireless_cap, seq);
      flows_[index].wireless_cap = new_wireless_cap;
    }
    reallocate(old_gateway);
    return;
  }
  advance(old_gateway);
  advance(new_gateway);
  // The flow may have completed during advance(old_gateway).
  if (flows_[index].done) return;

  GatewayState& old_gw = gateway(old_gateway);
  auto& old_list = old_gw.flows;
  old_list.erase(std::remove(old_list.begin(), old_list.end(), index), old_list.end());
  remove_sorted(old_gw, index);
  flows_[index].gateway = new_gateway;
  flows_[index].wireless_cap = new_wireless_cap;
  GatewayState& new_gw = gateway(new_gateway);
  new_gw.flows.push_back(index);
  insert_sorted(new_gw, index, new_wireless_cap, new_gw.next_cap_seq++);
  reallocate(old_gateway);
  reallocate(new_gateway);
}

void ReferenceFluidNetwork::set_gateway_serving(int gateway_id, bool serving) {
  GatewayState& gw = gateway(gateway_id);
  if (gw.serving == serving) return;
  advance(gateway_id);
  gw.serving = serving;
  reallocate(gateway_id);
}

bool ReferenceFluidNetwork::gateway_serving(int gateway_id) const {
  return gateway(gateway_id).serving;
}

int ReferenceFluidNetwork::active_flow_count(int gateway_id) const {
  return static_cast<int>(gateway(gateway_id).flows.size());
}

int ReferenceFluidNetwork::client_flow_count_at(int client, int gateway_id) const {
  int count = 0;
  for (std::size_t index : gateway(gateway_id).flows) {
    if (flows_[index].client == client) ++count;
  }
  return count;
}

double ReferenceFluidNetwork::client_throughput_at(int client, int gateway_id) const {
  double total = 0.0;
  for (std::size_t index : gateway(gateway_id).flows) {
    if (flows_[index].client == client) total += flows_[index].rate;
  }
  return total;
}

double ReferenceFluidNetwork::gateway_throughput(int gateway_id) const {
  return gateway(gateway_id).throughput;
}

double ReferenceFluidNetwork::served_bits(int gateway_id, double t0, double t1) const {
  return gateway(gateway_id).served.integral(t0, t1);
}

double ReferenceFluidNetwork::load(int gateway_id, double window) const {
  util::require(window > 0.0, "load needs a positive window");
  const GatewayState& gw = gateway(gateway_id);
  const double t1 = simulator_->now();
  const double t0 = std::max(t1 - window, 0.0);
  if (t1 <= t0) return 0.0;
  // Same instant, same window, untouched series: the integral would come
  // out bit-identical, so the memo is exact. (A same-instant set() only
  // rewrites the zero-width tail at t1, which contributes nothing to
  // [t0, t1]; any other mutation changes the change count.)
  if (gw.load_cache_time == t1 && gw.load_cache_window == window &&
      gw.load_cache_changes == gw.served.change_count()) {
    return gw.load_cache_value;
  }
  const double value = gw.served.integral(t0, t1) / (window * gw.backhaul);
  gw.load_cache_time = t1;
  gw.load_cache_window = window;
  gw.load_cache_changes = gw.served.change_count();
  gw.load_cache_value = value;
  return value;
}

double ReferenceFluidNetwork::last_activity(int gateway_id) const {
  return gateway(gateway_id).last_activity;
}

void ReferenceFluidNetwork::advance(int gateway_id) {
  GatewayState& gw = gateway(gateway_id);
  const double now = simulator_->now();
  const double dt = now - gw.last_progress;
  if (dt > 0.0) {
    if (gw.throughput > 0.0) gw.last_activity = now;
    gw.last_progress = now;
  }
  if (gw.flows.empty()) return;

  // Completion detection runs even for dt == 0: floating-point residue can
  // leave a flow with a sliver of remaining bits whose service time rounds
  // to zero, and it must still terminate.
  gw.finished.clear();
  for (std::size_t index : gw.flows) {
    FlowState& f = flows_[index];
    if (dt > 0.0) f.remaining_bits -= f.rate * dt;
    if (f.remaining_bits <= kEpsilonBits) {
      f.remaining_bits = 0.0;
      f.done = true;
      gw.finished.push_back(index);
    }
  }
  if (gw.finished.empty()) return;
  gw.flows.erase(std::remove_if(gw.flows.begin(), gw.flows.end(),
                                [this](std::size_t index) { return flows_[index].done; }),
                 gw.flows.end());
  gw.sorted.erase(
      std::remove_if(gw.sorted.begin(), gw.sorted.end(),
                     [this](const SortedCap& entry) { return flows_[entry.flow].done; }),
      gw.sorted.end());
  live_flows_ -= static_cast<int>(gw.finished.size());
  // Detach the scratch while running completion callbacks: a callback that
  // re-enters advance() for this gateway must not clobber the list mid
  // iteration.
  std::vector<std::size_t> finished;
  finished.swap(gw.finished);
  for (std::size_t index : finished) {
    const FlowState& f = flows_[index];
    erase_index(f.id);
    if (on_complete_) {
      on_complete_({f.id, f.client, f.gateway, f.arrival_time, now, f.bytes});
    }
  }
  // Hand the warm buffer back for the next advance() on this gateway.
  finished.clear();
  if (gw.finished.capacity() < finished.capacity()) finished.swap(gw.finished);
}

void ReferenceFluidNetwork::reallocate(int gateway_id) {
  ++waterfills_;
  GatewayState& gw = gateway(gateway_id);
  const double now = simulator_->now();

  if (!gw.serving || gw.flows.empty()) {
    if (gw.completion_event != sim::kInvalidEventId) {
      simulator_->cancel(gw.completion_event);
      gw.completion_event = sim::kInvalidEventId;
    }
    for (std::size_t index : gw.flows) flows_[index].rate = 0.0;
    gw.throughput = 0.0;
    gw.served.set(now, 0.0);
    return;
  }

  // Water-fill over the caps kept in ascending order: a flow whose cap is
  // below the running equal share freezes at its cap and releases the
  // surplus. One pass, no sort, no allocation.
  double remaining = gw.backhaul;
  std::size_t left = gw.sorted.size();
  for (const SortedCap& entry : gw.sorted) {
    const double share = remaining / static_cast<double>(left);
    const double rate = std::min(entry.cap, share);
    flows_[entry.flow].rate = rate;
    remaining -= rate;
    --left;
  }

  // Totals accumulate in arrival order (gw.flows), matching the historical
  // loop bit for bit.
  double total = 0.0;
  double next_completion = std::numeric_limits<double>::infinity();
  for (std::size_t index : gw.flows) {
    const FlowState& f = flows_[index];
    total += f.rate;
    if (f.rate > 0.0) {
      next_completion = std::min(next_completion, now + f.remaining_bits / f.rate);
    }
  }
  gw.throughput = total;
  gw.served.set(now, total);

  if (std::isfinite(next_completion)) {
    // Never schedule at (or below) the current instant: with a large clock
    // value a tiny remaining/rate quotient can round to zero, and a
    // same-instant event would re-enter this path forever.
    next_completion = std::max(next_completion, now + kMinEventDelay);
    if (gw.completion_event != sim::kInvalidEventId) {
      // Reuse the stored closure; if the completion instant did not move,
      // the already scheduled event is still right and we skip entirely.
      if (next_completion != gw.next_completion) {
        simulator_->reschedule(gw.completion_event, next_completion);
        gw.next_completion = next_completion;
      }
    } else {
      gw.completion_event = simulator_->at(next_completion, [this, gateway_id] {
        gateway(gateway_id).completion_event = sim::kInvalidEventId;
        advance(gateway_id);
        reallocate(gateway_id);
      });
      gw.next_completion = next_completion;
    }
  } else if (gw.completion_event != sim::kInvalidEventId) {
    simulator_->cancel(gw.completion_event);
    gw.completion_event = sim::kInvalidEventId;
  }
}

}  // namespace insomnia::flow
