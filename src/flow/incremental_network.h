// The optimized fluid-network engine: observably bit-identical to
// ReferenceFluidNetwork (enforced by tests/test_flow_differential.cpp) but
// built to do less work per simulated event.
//
// Three structural changes over the reference engine:
//
//  1. Lazy, coalesced water-filling. A mutation (arrival, completion,
//     migration, serving flip) only marks its gateway dirty; the actual
//     water-fill runs once per gateway per instant — either when a query
//     needs current rates (pull-flush) or at the simulator's flush barrier
//     before the clock moves (sim::FlushHook). A burst of same-instant
//     arrivals therefore costs one water-fill instead of one per arrival.
//     This is exact, not approximate: the reference engine re-waterfills
//     eagerly after every mutation, so flushing at query time reproduces
//     the rates the reference currently holds, and the barrier guarantees
//     progress integration never spans a stale-rate interval.
//
//  2. One simulator event for all completions. The reference engine keeps a
//     completion event per gateway and reschedules it on nearly every
//     reallocation — the dominant source of event-heap traffic. Here each
//     gateway's next completion lives in a small engine-internal min-heap
//     keyed (time, stamp); a single simulator event tracks the heap
//     minimum. Stamps refresh exactly when the reference would have
//     (re)scheduled, so tie order among simultaneous completions matches.
//
//  3. Structure-of-arrays flow state (flow/flow_state.h): the integration
//     and total/next-completion scans run over contiguous arrays.
//
// All floating-point evaluation orders — water-fill over the (cap, seq)
// order, totals and completion minima in arrival order, progress
// integration — are kept identical to the reference engine, which is what
// makes bit-identity achievable rather than merely approximate equality.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "flow/flow_state.h"
#include "flow/fluid_network.h"
#include "sim/simulator.h"
#include "stats/timeseries.h"

namespace insomnia::flow {

class IncrementalFluidNetwork final : public FluidNetwork, private sim::FlushHook {
 public:
  /// `backhaul_rates[g]` is gateway g's broadband speed in bits/s. The
  /// engine registers itself as the simulator's flush hook; one simulator
  /// carries at most one incremental network at a time.
  IncrementalFluidNetwork(sim::Simulator& simulator, std::vector<double> backhaul_rates);
  ~IncrementalFluidNetwork() override;

  const char* engine_name() const override { return "incremental"; }

  void set_completion_handler(std::function<void(const CompletedFlow&)> handler) override;
  void reserve_flows(std::size_t flow_count) override;
  void add_flow(FlowId id, int client, int gateway, double bytes, double wireless_cap) override;
  void migrate_flow(FlowId id, int new_gateway, double new_wireless_cap) override;
  void set_gateway_serving(int gateway, bool serving) override;
  bool gateway_serving(int gateway) const override;
  int active_flow_count(int gateway) const override;
  int client_flow_count_at(int client, int gateway) const override;
  double client_throughput_at(int client, int gateway) const override;
  int total_active_flows() const override { return live_flows_; }
  double gateway_throughput(int gateway) const override;
  double served_bits(int gateway, double t0, double t1) const override;
  double load(int gateway, double window) const override;
  double last_activity(int gateway) const override;
  int gateway_count() const override { return static_cast<int>(gateways_.size()); }

 private:
  /// One live flow's wireless cap in the gateway's ascending (cap, seq)
  /// order; `seq` is the flow's per-gateway arrival stamp (FIFO tie-break),
  /// `pos` its position in the gateway's FlowBlock.
  struct SortedCap {
    double cap = 0.0;
    std::uint64_t seq = 0;
    FlowBlock::Pos pos = 0;
  };

  static constexpr std::size_t kNotInHeap = SIZE_MAX;

  struct GatewayState {
    double backhaul = 0.0;
    bool serving = false;
    bool dirty = false;       ///< water-fill deferred since the last mutation
    bool rates_zero = true;   ///< every rate[] entry is exactly 0.0
    FlowBlock flows;          ///< live flows, arrival order
    std::vector<SortedCap> sorted;       ///< live caps ascending by (cap, seq)
    std::vector<FlowBlock::Pos> finished;  ///< scratch reused by advance()
    std::vector<FlowBlock::Pos> remap;     ///< scratch reused by compaction
    std::uint64_t next_cap_seq = 0;
    double next_completion = 0.0;  ///< heap key; valid while heap_pos != kNotInHeap
    std::uint64_t heap_stamp = 0;  ///< heap tie-break; refreshed as reference reschedules
    std::size_t heap_pos = kNotInHeap;
    double last_progress = 0.0;  ///< time progress was last integrated
    double throughput = 0.0;     ///< current aggregate rate (as of last water-fill)
    stats::StepSeries served;    ///< aggregate service rate over time
    double last_activity = 0.0;

    // Exact memo for load(), as in the reference engine.
    mutable double load_cache_time = -1.0;
    mutable double load_cache_window = 0.0;
    mutable std::size_t load_cache_changes = 0;
    mutable double load_cache_value = 0.0;

    GatewayState(double rate, double start)
        : backhaul(rate), last_progress(start), served(start, 0.0), last_activity(start) {}
  };

  GatewayState& gateway(int g);
  const GatewayState& gateway(int g) const;

  /// sim::FlushHook: water-fills every dirty gateway (in first-marked
  /// order, matching the order the reference's eager reallocations would
  /// have settled in) and re-arms the master completion event.
  void flush() override;

  /// Brings one gateway's rates current ahead of a rate-observing query.
  /// Leaves the master event to the barrier flush, which is guaranteed to
  /// run before the clock moves.
  void flush_gateway(int g);

  void mark_dirty(int g);

  /// Integrates progress at `gateway` up to now and completes finished
  /// flows. Never water-fills and never marks dirty: the reference engine
  /// has paths (zero-byte add_flow, migration of a completed flow) that
  /// advance without reallocating, and their stale-rate aftermath must
  /// reproduce here exactly.
  void advance(int gateway);

  /// The deferred equivalent of the reference's reallocate(): recomputes
  /// rates and the gateway's entry in the completion heap.
  void waterfill(int gateway);

  void insert_sorted(GatewayState& gw, FlowBlock::Pos pos, double cap, std::uint64_t seq);
  std::uint64_t remove_sorted(GatewayState& gw, FlowBlock::Pos pos);

  /// Fires at the completion-heap minimum; advances the due gateway(s) and
  /// defers their re-waterfill to the flush barrier.
  void on_master_event();

  /// Points the single simulator event at the completion-heap minimum.
  void arm_master();

  // --- completion min-heap over gateways, keyed (next_completion, stamp) --
  bool heap_less(int a, int b) const;
  void heap_insert(int g);
  void heap_update(int g);
  void heap_remove(int g);
  void heap_sift_up(std::size_t pos);
  void heap_sift_down(std::size_t pos);

  sim::Simulator* simulator_;
  std::vector<GatewayState> gateways_;
  FlowIndex index_;
  std::function<void(const CompletedFlow&)> on_complete_;
  int live_flows_ = 0;

  std::vector<int> dirty_list_;  ///< gateways awaiting water-fill, first-marked order
  std::vector<int> heap_;        ///< gateway ids, binary min-heap
  std::uint64_t stamp_counter_ = 0;
  sim::EventId master_event_ = sim::kInvalidEventId;
  double master_time_ = 0.0;
  std::vector<CompletedFlow> completed_scratch_;  ///< warm buffer for advance()
  /// Water-fills performed, accumulated locally (waterfill is hot) and
  /// folded into the "flow.waterfills" counter once, at destruction.
  std::uint64_t waterfills_ = 0;
};

}  // namespace insomnia::flow
