// Structure-of-arrays per-flow state for the incremental fluid engine.
//
// The engine's two hot loops — progress integration (remaining -= rate*dt)
// and the post-water-fill total/next-completion scan — touch one or two
// fields of every live flow at a gateway. Keeping each field in its own
// contiguous array makes those loops cache-dense and trivially
// vectorizable, where the reference engine chases FlowState records spread
// across a global arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace insomnia::flow {

/// One gateway's live flows as parallel arrays, kept in arrival order (the
/// order the reference engine walks its per-gateway index list in, so every
/// floating-point accumulation visits flows identically).
class FlowBlock {
 public:
  /// Position of a flow within the block; positions shift left on
  /// compaction (see compact_removed) and are therefore only stable between
  /// completions.
  using Pos = std::uint32_t;
  static constexpr Pos kRemoved = UINT32_MAX;

  std::size_t size() const { return id.size(); }
  bool empty() const { return id.empty(); }

  /// Appends a flow; returns its position.
  Pos push_back(std::uint64_t flow_id, int flow_client, double arrival, double flow_bytes,
                double remaining, double cap, std::uint64_t seq);

  /// Removes the (ascending) positions in `removed`, shifting survivors
  /// left while preserving arrival order. Fills `remap` (resized to the old
  /// size) with each old position's new position, or kRemoved.
  void compact_removed(const std::vector<Pos>& removed, std::vector<Pos>& remap);

  /// Removes the single position `pos` (migration), preserving order.
  /// Survivors past `pos` shift left by one.
  void erase_at(Pos pos);

  void reserve(std::size_t n);

  // Parallel arrays, index = position in arrival order.
  std::vector<std::uint64_t> id;
  std::vector<int> client;
  std::vector<double> arrival_time;
  std::vector<double> bytes;
  std::vector<double> remaining_bits;
  std::vector<double> wireless_cap;
  std::vector<double> rate;
  std::vector<std::uint64_t> cap_seq;  ///< per-gateway FIFO tie-break stamp
};

/// FlowId -> (gateway, position) map with the same dense/overflow split as
/// the reference engine: trace replays use dense ids, which live in a flat
/// vector; a far-outlier id (sparse 10^12) must not balloon it, so outliers
/// go to a hash map.
class FlowIndex {
 public:
  struct Loc {
    int gateway = -1;
    FlowBlock::Pos pos = 0;
    bool valid() const { return gateway >= 0; }
  };

  /// Location of `id`, or an invalid Loc if absent.
  Loc find(std::uint64_t id) const;

  /// Inserts a mapping for a new flow (id must be absent).
  void store(std::uint64_t id, int gateway, FlowBlock::Pos pos);

  /// Updates the location of an id that is already present.
  void relocate(std::uint64_t id, int gateway, FlowBlock::Pos pos);

  void erase(std::uint64_t id);

  void reserve(std::size_t flow_count);

 private:
  static constexpr std::uint64_t kEmpty = UINT64_MAX;
  static std::uint64_t pack(int gateway, FlowBlock::Pos pos) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(gateway)) << 32) | pos;
  }

  /// True when growing the dense vector to hold `id` stays proportionate to
  /// the number of flows actually seen.
  bool dense_id(std::uint64_t id) const;

  std::vector<std::uint64_t> dense_;                       // packed Loc or kEmpty
  std::unordered_map<std::uint64_t, std::uint64_t> overflow_;  // sparse outlier ids
  std::uint64_t stored_total_ = 0;  ///< flows ever stored; drives the dense ceiling
};

}  // namespace insomnia::flow
