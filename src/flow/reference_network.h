// The exact, eager fluid-network engine — the golden twin that the
// incremental engine is differentially tested against (see
// tests/test_flow_differential.cpp). Every mutating call re-waterfills its
// gateway immediately and each gateway owns its own completion event in the
// simulator heap. Correct and simple; superseded as the default by
// IncrementalFluidNetwork, selectable via INSOMNIA_FLOW_ENGINE=reference.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "flow/fluid_network.h"
#include "sim/simulator.h"
#include "stats/timeseries.h"

namespace insomnia::flow {

class ReferenceFluidNetwork final : public FluidNetwork {
 public:
  /// `backhaul_rates[g]` is gateway g's broadband speed in bits/s.
  ReferenceFluidNetwork(sim::Simulator& simulator, std::vector<double> backhaul_rates);
  ~ReferenceFluidNetwork() override;  ///< folds the local waterfill tally into obs

  const char* engine_name() const override { return "reference"; }

  void set_completion_handler(std::function<void(const CompletedFlow&)> handler) override;
  void reserve_flows(std::size_t flow_count) override;
  void add_flow(FlowId id, int client, int gateway, double bytes, double wireless_cap) override;
  void migrate_flow(FlowId id, int new_gateway, double new_wireless_cap) override;
  void set_gateway_serving(int gateway, bool serving) override;
  bool gateway_serving(int gateway) const override;
  int active_flow_count(int gateway) const override;
  int client_flow_count_at(int client, int gateway) const override;
  double client_throughput_at(int client, int gateway) const override;
  int total_active_flows() const override { return live_flows_; }
  double gateway_throughput(int gateway) const override;
  double served_bits(int gateway, double t0, double t1) const override;
  double load(int gateway, double window) const override;
  double last_activity(int gateway) const override;
  int gateway_count() const override { return static_cast<int>(gateways_.size()); }

 private:
  struct FlowState {
    FlowId id = 0;
    int client = 0;
    int gateway = 0;
    double arrival_time = 0.0;
    double bytes = 0.0;
    double remaining_bits = 0.0;
    double wireless_cap = 0.0;
    double rate = 0.0;  ///< current service rate, bits/s
    bool done = false;
  };

  /// One live flow's wireless cap, kept in the gateway's ascending cap
  /// order. `seq` is the flow's per-gateway arrival stamp: it breaks cap
  /// ties FIFO, mirroring the order in which a full sort of the flow list
  /// would see them.
  struct SortedCap {
    double cap = 0.0;
    std::uint64_t seq = 0;
    std::size_t flow = 0;  ///< index into flows_
  };

  struct GatewayState {
    double backhaul = 0.0;
    bool serving = false;
    std::vector<std::size_t> flows;  ///< indices into flows_, arrival order
    std::vector<SortedCap> sorted;   ///< live caps ascending by (cap, seq)
    std::vector<std::size_t> finished;  ///< scratch reused by advance()
    std::uint64_t next_cap_seq = 0;
    sim::EventId completion_event = sim::kInvalidEventId;
    double next_completion = 0.0;  ///< scheduled completion-event time
    double last_progress = 0.0;    ///< time progress was last integrated
    double throughput = 0.0;       ///< current aggregate rate
    stats::StepSeries served;      ///< aggregate service rate over time
    double last_activity = 0.0;

    // Exact memo for load(): a repeat query at the same instant with the
    // same window and an unchanged series is a pure recomputation (BH2
    // probes several candidate gateways, many repeatedly, per decision).
    mutable double load_cache_time = -1.0;
    mutable double load_cache_window = 0.0;
    mutable std::size_t load_cache_changes = 0;
    mutable double load_cache_value = 0.0;

    GatewayState(double rate, double start)
        : backhaul(rate), last_progress(start), served(start, 0.0), last_activity(start) {}
  };

  GatewayState& gateway(int g);
  const GatewayState& gateway(int g) const;
  FlowState& flow_by_id(FlowId id);

  // --- FlowId -> flows_ index map ----------------------------------------
  // Dense ids (the trace replay uses the trace index) live in a flat
  // vector; an id far beyond the number of flows ever added would blow the
  // vector up (a sparse 10^12 id must not allocate gigabytes), so outliers
  // go to a hash map instead.
  static constexpr std::size_t kNoIndex = SIZE_MAX;
  std::size_t find_index(FlowId id) const;
  void store_index(FlowId id, std::size_t index);
  void erase_index(FlowId id);
  /// True when growing the dense vector to hold `id` stays proportionate to
  /// the number of flows actually seen.
  bool dense_id(FlowId id) const;

  /// Inserts `flow` into gw's cap order; `seq` is its tie-break stamp.
  void insert_sorted(GatewayState& gw, std::size_t flow, double cap, std::uint64_t seq);

  /// Removes `flow` from gw's cap order and returns its tie-break stamp.
  std::uint64_t remove_sorted(GatewayState& gw, std::size_t flow);

  /// Integrates progress at `gateway` up to now and completes finished flows.
  void advance(int gateway);

  /// Recomputes rates at `gateway` and (re)schedules its completion event.
  void reallocate(int gateway);

  sim::Simulator* simulator_;
  std::vector<GatewayState> gateways_;
  std::vector<FlowState> flows_;                       // all flows ever added
  std::vector<std::size_t> id_to_index_;               // dense FlowId -> flows_ index
  std::unordered_map<FlowId, std::size_t> id_overflow_;  // sparse outlier ids
  std::function<void(const CompletedFlow&)> on_complete_;
  int live_flows_ = 0;
  /// Reallocations performed, accumulated locally (reallocate is hot) and
  /// folded into the "flow.waterfills" counter once, at destruction.
  std::uint64_t waterfills_ = 0;
};

}  // namespace insomnia::flow
