// Max-min fair rate allocation of a shared link among flows with individual
// rate caps (the wireless hop of each client). This is the single-link
// water-filling special case; it is exact and O(n log n).
#pragma once

#include <vector>

namespace insomnia::flow {

/// Computes the max-min fair allocation of `capacity` among flows whose
/// individual ceilings are `caps` (each >= 0). Returns one rate per flow,
/// in input order.
///
/// Properties (tested): rates[i] <= caps[i]; sum(rates) <= capacity; if
/// sum(caps) >= capacity the link is fully used; uncapped flows share
/// equally; no flow can gain rate without another losing.
std::vector<double> max_min_allocate(double capacity, const std::vector<double>& caps);

}  // namespace insomnia::flow
