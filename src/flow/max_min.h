// Max-min fair rate allocation of a shared link among flows with individual
// rate caps (the wireless hop of each client). This is the single-link
// water-filling special case; it is exact and O(n log n).
#pragma once

#include <cstddef>
#include <vector>

namespace insomnia::flow {

/// Reusable working storage for max_min_allocate_into. Keeping one instance
/// alive across calls makes repeated allocations hit warm capacity — the
/// simulator's steady-state path performs no heap allocation at all.
struct MaxMinScratch {
  std::vector<std::size_t> order;
};

/// Computes the max-min fair allocation of `capacity` among flows whose
/// individual ceilings are `caps` (each >= 0). Returns one rate per flow,
/// in input order.
///
/// Properties (tested): rates[i] <= caps[i]; sum(rates) <= capacity; if
/// sum(caps) >= capacity the link is fully used; uncapped flows share
/// equally; no flow can gain rate without another losing.
std::vector<double> max_min_allocate(double capacity, const std::vector<double>& caps);

/// As max_min_allocate, but writes the result into `rates` (resized to
/// caps.size()) using caller-owned scratch. Bit-identical to
/// max_min_allocate for every input; allocation-free once the buffers have
/// grown to the working size.
void max_min_allocate_into(double capacity, const std::vector<double>& caps,
                           MaxMinScratch& scratch, std::vector<double>& rates);

}  // namespace insomnia::flow
