#include "flow/incremental_network.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "util/error.h"

namespace insomnia::flow {

IncrementalFluidNetwork::IncrementalFluidNetwork(sim::Simulator& simulator,
                                                 std::vector<double> backhaul_rates)
    : simulator_(&simulator) {
  util::require(!backhaul_rates.empty(), "FluidNetwork needs at least one gateway");
  util::require(simulator.flush_hook() == nullptr,
                "one incremental network per simulator (flush hook already taken)");
  gateways_.reserve(backhaul_rates.size());
  for (double rate : backhaul_rates) {
    util::require(rate > 0.0, "backhaul rates must be positive");
    gateways_.emplace_back(rate, simulator.now());
  }
  simulator.set_flush_hook(this);
}

IncrementalFluidNetwork::~IncrementalFluidNetwork() {
  if (master_event_ != sim::kInvalidEventId) simulator_->cancel(master_event_);
  if (simulator_->flush_hook() == this) simulator_->set_flush_hook(nullptr);
  obs::counter("flow.waterfills").add(waterfills_);
}

void IncrementalFluidNetwork::set_completion_handler(
    std::function<void(const CompletedFlow&)> handler) {
  on_complete_ = std::move(handler);
}

void IncrementalFluidNetwork::reserve_flows(std::size_t flow_count) {
  index_.reserve(flow_count);
}

IncrementalFluidNetwork::GatewayState& IncrementalFluidNetwork::gateway(int g) {
  return gateways_.at(static_cast<std::size_t>(g));
}

const IncrementalFluidNetwork::GatewayState& IncrementalFluidNetwork::gateway(int g) const {
  return gateways_.at(static_cast<std::size_t>(g));
}

void IncrementalFluidNetwork::mark_dirty(int g) {
  GatewayState& gw = gateway(g);
  if (!gw.dirty) {
    gw.dirty = true;
    dirty_list_.push_back(g);
  }
  simulator_->request_flush();
}

void IncrementalFluidNetwork::flush() {
  for (std::size_t i = 0; i < dirty_list_.size(); ++i) {
    const int g = dirty_list_[i];
    if (gateways_[static_cast<std::size_t>(g)].dirty) {
      gateways_[static_cast<std::size_t>(g)].dirty = false;
      waterfill(g);
    }
  }
  dirty_list_.clear();
  arm_master();
}

void IncrementalFluidNetwork::flush_gateway(int g) {
  GatewayState& gw = gateway(g);
  if (!gw.dirty) return;
  gw.dirty = false;
  waterfill(g);
  // The master event is re-armed by the barrier flush, which the
  // request_flush() that accompanied mark_dirty() guarantees runs before
  // the clock next moves.
}

void IncrementalFluidNetwork::insert_sorted(GatewayState& gw, FlowBlock::Pos pos, double cap,
                                            std::uint64_t seq) {
  const SortedCap entry{cap, seq, pos};
  const auto it = std::upper_bound(gw.sorted.begin(), gw.sorted.end(), entry,
                                   [](const SortedCap& a, const SortedCap& b) {
                                     if (a.cap != b.cap) return a.cap < b.cap;
                                     return a.seq < b.seq;
                                   });
  gw.sorted.insert(it, entry);
}

std::uint64_t IncrementalFluidNetwork::remove_sorted(GatewayState& gw, FlowBlock::Pos pos) {
  for (auto it = gw.sorted.begin(); it != gw.sorted.end(); ++it) {
    if (it->pos == pos) {
      const std::uint64_t seq = it->seq;
      gw.sorted.erase(it);
      return seq;
    }
  }
  util::require_state(false, "flow missing from the gateway's cap order");
  return 0;
}

void IncrementalFluidNetwork::add_flow(FlowId id, int client, int gateway_id, double bytes,
                                       double wireless_cap) {
  util::require(bytes >= 0.0 && wireless_cap > 0.0,
                "flows need non-negative bytes and a positive wireless cap");
  advance(gateway_id);

  const double now = simulator_->now();
  GatewayState& gw = gateway(gateway_id);
  gw.last_activity = now;

  const double remaining_bits = bytes * 8.0;
  if (remaining_bits <= kEpsilonBits) {
    // Mirrors the reference exactly: a zero-byte flow completes on the spot
    // and does NOT trigger a re-waterfill, even though the advance() above
    // may have completed flows and left survivor rates stale.
    if (on_complete_) {
      on_complete_({id, client, gateway_id, now, now, bytes});
    }
    return;
  }

  util::require(!index_.find(id).valid(), "duplicate flow id");
  const FlowBlock::Pos pos =
      gw.flows.push_back(id, client, now, bytes, remaining_bits, wireless_cap, gw.next_cap_seq);
  index_.store(id, gateway_id, pos);
  insert_sorted(gw, pos, wireless_cap, gw.next_cap_seq);
  ++gw.next_cap_seq;
  ++live_flows_;
  mark_dirty(gateway_id);
}

void IncrementalFluidNetwork::migrate_flow(FlowId id, int new_gateway, double new_wireless_cap) {
  util::require(new_wireless_cap > 0.0, "migrated flow needs a positive wireless cap");
  FlowIndex::Loc loc = index_.find(id);
  if (!loc.valid()) return;
  const int old_gateway = loc.gateway;
  if (old_gateway == new_gateway) {
    advance(old_gateway);
    // The flow may have completed (and left the index) during advance().
    loc = index_.find(id);
    if (loc.valid()) {
      // Re-seat the flow in the cap order under its original stamp: a cap
      // change must not alter its FIFO rank among equal caps.
      GatewayState& gw = gateway(old_gateway);
      const std::uint64_t seq = remove_sorted(gw, loc.pos);
      insert_sorted(gw, loc.pos, new_wireless_cap, seq);
      gw.flows.wireless_cap[loc.pos] = new_wireless_cap;
    }
    mark_dirty(old_gateway);
    return;
  }
  advance(old_gateway);
  advance(new_gateway);
  // The flow may have completed during advance(old_gateway); the reference
  // returns without reallocating either gateway, so no dirty marks here.
  loc = index_.find(id);
  if (!loc.valid()) return;

  GatewayState& old_gw = gateway(loc.gateway);
  const int client = old_gw.flows.client[loc.pos];
  const double arrival = old_gw.flows.arrival_time[loc.pos];
  const double bytes = old_gw.flows.bytes[loc.pos];
  const double remaining = old_gw.flows.remaining_bits[loc.pos];
  const double carried_rate = old_gw.flows.rate[loc.pos];
  remove_sorted(old_gw, loc.pos);
  old_gw.flows.erase_at(loc.pos);
  for (SortedCap& entry : old_gw.sorted) {
    if (entry.pos > loc.pos) --entry.pos;
  }
  for (FlowBlock::Pos pos = loc.pos; pos < old_gw.flows.size(); ++pos) {
    index_.relocate(old_gw.flows.id[pos], loc.gateway, pos);
  }

  GatewayState& new_gw = gateway(new_gateway);
  const FlowBlock::Pos new_pos = new_gw.flows.push_back(id, client, arrival, bytes, remaining,
                                                        new_wireless_cap, new_gw.next_cap_seq);
  // The rate travels with the flow until the next water-fill, as in the
  // reference (unobservable there — both gateways re-waterfill — and kept
  // identical here for the same reason).
  new_gw.flows.rate[new_pos] = carried_rate;
  insert_sorted(new_gw, new_pos, new_wireless_cap, new_gw.next_cap_seq);
  ++new_gw.next_cap_seq;
  index_.relocate(id, new_gateway, new_pos);
  mark_dirty(loc.gateway);
  mark_dirty(new_gateway);
}

void IncrementalFluidNetwork::set_gateway_serving(int gateway_id, bool serving) {
  GatewayState& gw = gateway(gateway_id);
  if (gw.serving == serving) return;
  advance(gateway_id);
  gw.serving = serving;
  mark_dirty(gateway_id);
}

bool IncrementalFluidNetwork::gateway_serving(int gateway_id) const {
  return gateway(gateway_id).serving;
}

int IncrementalFluidNetwork::active_flow_count(int gateway_id) const {
  return static_cast<int>(gateway(gateway_id).flows.size());
}

int IncrementalFluidNetwork::client_flow_count_at(int client, int gateway_id) const {
  const GatewayState& gw = gateway(gateway_id);
  int count = 0;
  const std::size_t n = gw.flows.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (gw.flows.client[i] == client) ++count;
  }
  return count;
}

double IncrementalFluidNetwork::client_throughput_at(int client, int gateway_id) const {
  const_cast<IncrementalFluidNetwork*>(this)->flush_gateway(gateway_id);
  const GatewayState& gw = gateway(gateway_id);
  double total = 0.0;
  const std::size_t n = gw.flows.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (gw.flows.client[i] == client) total += gw.flows.rate[i];
  }
  return total;
}

double IncrementalFluidNetwork::gateway_throughput(int gateway_id) const {
  const_cast<IncrementalFluidNetwork*>(this)->flush_gateway(gateway_id);
  return gateway(gateway_id).throughput;
}

double IncrementalFluidNetwork::served_bits(int gateway_id, double t0, double t1) const {
  const_cast<IncrementalFluidNetwork*>(this)->flush_gateway(gateway_id);
  return gateway(gateway_id).served.integral(t0, t1);
}

double IncrementalFluidNetwork::load(int gateway_id, double window) const {
  util::require(window > 0.0, "load needs a positive window");
  const_cast<IncrementalFluidNetwork*>(this)->flush_gateway(gateway_id);
  const GatewayState& gw = gateway(gateway_id);
  const double t1 = simulator_->now();
  const double t0 = std::max(t1 - window, 0.0);
  if (t1 <= t0) return 0.0;
  // Same instant, same window, untouched series: the integral would come
  // out bit-identical, so the memo is exact. (A same-instant set() only
  // rewrites the zero-width tail at t1, which contributes nothing to
  // [t0, t1]; any other mutation changes the change count.)
  if (gw.load_cache_time == t1 && gw.load_cache_window == window &&
      gw.load_cache_changes == gw.served.change_count()) {
    return gw.load_cache_value;
  }
  const double value = gw.served.integral(t0, t1) / (window * gw.backhaul);
  gw.load_cache_time = t1;
  gw.load_cache_window = window;
  gw.load_cache_changes = gw.served.change_count();
  gw.load_cache_value = value;
  return value;
}

double IncrementalFluidNetwork::last_activity(int gateway_id) const {
  return gateway(gateway_id).last_activity;
}

void IncrementalFluidNetwork::advance(int gateway_id) {
  GatewayState& gw = gateway(gateway_id);
  const double now = simulator_->now();
  const double dt = now - gw.last_progress;
  if (dt > 0.0) {
    if (gw.throughput > 0.0) gw.last_activity = now;
    gw.last_progress = now;
  }
  if (gw.flows.empty()) return;
  // The reference engine also scans for completions when dt == 0 or every
  // rate is zero, but those scans are provably empty: between integrations
  // every live flow keeps remaining_bits > kEpsilonBits (advance() retires
  // anything at or below it, add_flow() completes such flows on the spot,
  // and no other path lowers remaining_bits). Skipping them is the single
  // biggest saving of the lazy engine — a same-instant burst of arrivals
  // pays for one scan, not one per arrival.
  if (dt <= 0.0 || gw.rates_zero) return;

  gw.finished.clear();
  const std::size_t n = gw.flows.size();
  double* remaining = gw.flows.remaining_bits.data();
  const double* rate = gw.flows.rate.data();
  for (std::size_t i = 0; i < n; ++i) {
    remaining[i] -= rate[i] * dt;
    if (remaining[i] <= kEpsilonBits) {
      remaining[i] = 0.0;
      gw.finished.push_back(static_cast<FlowBlock::Pos>(i));
    }
  }
  if (gw.finished.empty()) return;

  // Snapshot the finished flows before compaction shifts positions, into a
  // detached buffer: a completion callback may re-enter advance().
  std::vector<CompletedFlow> completed;
  completed.swap(completed_scratch_);
  completed.clear();
  for (FlowBlock::Pos pos : gw.finished) {
    completed.push_back({gw.flows.id[pos], gw.flows.client[pos], gateway_id,
                         gw.flows.arrival_time[pos], now, gw.flows.bytes[pos]});
  }

  gw.flows.compact_removed(gw.finished, gw.remap);
  // Re-point the cap order and the id index at the shifted positions.
  std::size_t write = 0;
  for (std::size_t read = 0; read < gw.sorted.size(); ++read) {
    const FlowBlock::Pos np = gw.remap[gw.sorted[read].pos];
    if (np == FlowBlock::kRemoved) continue;
    gw.sorted[write] = gw.sorted[read];
    gw.sorted[write].pos = np;
    ++write;
  }
  gw.sorted.resize(write);
  for (FlowBlock::Pos pos = gw.finished.front();
       pos < static_cast<FlowBlock::Pos>(gw.flows.size()); ++pos) {
    index_.relocate(gw.flows.id[pos], gateway_id, pos);
  }
  live_flows_ -= static_cast<int>(completed.size());
  for (const CompletedFlow& f : completed) index_.erase(f.id);
  if (on_complete_) {
    for (const CompletedFlow& f : completed) on_complete_(f);
  }
  // Hand the warm buffer back for the next advance().
  completed.clear();
  if (completed_scratch_.capacity() < completed.capacity()) completed.swap(completed_scratch_);
}

void IncrementalFluidNetwork::waterfill(int gateway_id) {
  ++waterfills_;
  GatewayState& gw = gateway(gateway_id);
  const double now = simulator_->now();

  if (!gw.serving || gw.flows.empty()) {
    if (gw.heap_pos != kNotInHeap) heap_remove(gateway_id);
    std::fill(gw.flows.rate.begin(), gw.flows.rate.end(), 0.0);
    gw.rates_zero = true;
    gw.throughput = 0.0;
    gw.served.set(now, 0.0);
    return;
  }

  // Water-fill over the caps kept in ascending order: a flow whose cap is
  // below the running equal share freezes at its cap and releases the
  // surplus. One pass, no sort, no allocation — the arithmetic and its
  // order are the reference engine's, bit for bit.
  double remaining = gw.backhaul;
  std::size_t left = gw.sorted.size();
  double* rate = gw.flows.rate.data();
  for (const SortedCap& entry : gw.sorted) {
    const double share = remaining / static_cast<double>(left);
    const double r = std::min(entry.cap, share);
    rate[entry.pos] = r;
    remaining -= r;
    --left;
  }
  gw.rates_zero = false;

  // Totals accumulate in arrival order (block order), matching the
  // reference loop bit for bit.
  double total = 0.0;
  double next_completion = std::numeric_limits<double>::infinity();
  const std::size_t n = gw.flows.size();
  const double* rem = gw.flows.remaining_bits.data();
  for (std::size_t i = 0; i < n; ++i) {
    total += rate[i];
    if (rate[i] > 0.0) {
      next_completion = std::min(next_completion, now + rem[i] / rate[i]);
    }
  }
  gw.throughput = total;
  gw.served.set(now, total);

  if (std::isfinite(next_completion)) {
    // Never schedule at (or below) the current instant: with a large clock
    // value a tiny remaining/rate quotient can round to zero, and a
    // same-instant event would re-enter this path forever.
    next_completion = std::max(next_completion, now + kMinEventDelay);
    if (gw.heap_pos != kNotInHeap) {
      // An unchanged completion instant keeps its stamp and costs nothing —
      // the analogue of the reference's skip-reschedule.
      if (next_completion != gw.next_completion) {
        gw.next_completion = next_completion;
        gw.heap_stamp = ++stamp_counter_;
        heap_update(gateway_id);
      }
    } else {
      gw.next_completion = next_completion;
      gw.heap_stamp = ++stamp_counter_;
      heap_insert(gateway_id);
    }
  } else if (gw.heap_pos != kNotInHeap) {
    heap_remove(gateway_id);
  }
}

void IncrementalFluidNetwork::on_master_event() {
  master_event_ = sim::kInvalidEventId;
  const double now = simulator_->now();
  while (!heap_.empty()) {
    const int g = heap_[0];
    if (gateways_[static_cast<std::size_t>(g)].next_completion > now) break;
    heap_remove(g);
    advance(g);
    // Dirty without request_flush: the inline flush below settles this
    // instant (re-entrant mutations from completion callbacks still raise
    // the barrier themselves, which then finds nothing left to do).
    GatewayState& gw = gateways_[static_cast<std::size_t>(g)];
    if (!gw.dirty) {
      gw.dirty = true;
      dirty_list_.push_back(g);
    }
  }
  // Settle immediately — the reference reallocates at exactly this point,
  // and the clock cannot move before this instant's flush anyway. Inline,
  // it saves the scheduler an extra barrier pass per completion batch and
  // re-arms the master event at the new heap minimum.
  flush();
}

void IncrementalFluidNetwork::arm_master() {
  const double t = heap_.empty()
                       ? std::numeric_limits<double>::infinity()
                       : gateways_[static_cast<std::size_t>(heap_[0])].next_completion;
  if (!std::isfinite(t)) {
    if (master_event_ != sim::kInvalidEventId) {
      simulator_->cancel(master_event_);
      master_event_ = sim::kInvalidEventId;
    }
    return;
  }
  if (master_event_ == sim::kInvalidEventId) {
    master_event_ = simulator_->at(t, [this] { on_master_event(); });
    master_time_ = t;
  } else if (t != master_time_) {
    simulator_->reschedule(master_event_, t);
    master_time_ = t;
  }
}

bool IncrementalFluidNetwork::heap_less(int a, int b) const {
  const GatewayState& ga = gateways_[static_cast<std::size_t>(a)];
  const GatewayState& gb = gateways_[static_cast<std::size_t>(b)];
  if (ga.next_completion != gb.next_completion) return ga.next_completion < gb.next_completion;
  return ga.heap_stamp < gb.heap_stamp;
}

void IncrementalFluidNetwork::heap_insert(int g) {
  gateways_[static_cast<std::size_t>(g)].heap_pos = heap_.size();
  heap_.push_back(g);
  heap_sift_up(heap_.size() - 1);
}

void IncrementalFluidNetwork::heap_update(int g) {
  heap_sift_up(gateways_[static_cast<std::size_t>(g)].heap_pos);
  heap_sift_down(gateways_[static_cast<std::size_t>(g)].heap_pos);
}

void IncrementalFluidNetwork::heap_remove(int g) {
  GatewayState& gw = gateways_[static_cast<std::size_t>(g)];
  const std::size_t pos = gw.heap_pos;
  gw.heap_pos = kNotInHeap;
  const int last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail slot
  heap_[pos] = last;
  gateways_[static_cast<std::size_t>(last)].heap_pos = pos;
  heap_sift_up(pos);
  heap_sift_down(gateways_[static_cast<std::size_t>(last)].heap_pos);
}

void IncrementalFluidNetwork::heap_sift_up(std::size_t pos) {
  const int g = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (!heap_less(g, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    gateways_[static_cast<std::size_t>(heap_[pos])].heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = g;
  gateways_[static_cast<std::size_t>(g)].heap_pos = pos;
}

void IncrementalFluidNetwork::heap_sift_down(std::size_t pos) {
  const int g = heap_[pos];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_less(heap_[child + 1], heap_[child])) ++child;
    if (!heap_less(heap_[child], g)) break;
    heap_[pos] = heap_[child];
    gateways_[static_cast<std::size_t>(heap_[pos])].heap_pos = pos;
    pos = child;
  }
  heap_[pos] = g;
  gateways_[static_cast<std::size_t>(g)].heap_pos = pos;
}

}  // namespace insomnia::flow
