#include "flow/max_min.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace insomnia::flow {

void max_min_allocate_into(double capacity, const std::vector<double>& caps,
                           MaxMinScratch& scratch, std::vector<double>& rates) {
  util::require(capacity >= 0.0, "max_min_allocate needs non-negative capacity");
  rates.assign(caps.size(), 0.0);
  if (caps.empty() || capacity == 0.0) return;

  // Process flows in ascending cap order: a flow whose cap is below the
  // current equal share freezes at its cap and releases the surplus.
  std::vector<std::size_t>& order = scratch.order;
  order.resize(caps.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&caps](std::size_t a, std::size_t b) { return caps[a] < caps[b]; });

  double remaining = capacity;
  std::size_t left = caps.size();
  for (std::size_t index : order) {
    util::require(caps[index] >= 0.0, "flow caps must be non-negative");
    const double share = remaining / static_cast<double>(left);
    const double rate = std::min(caps[index], share);
    rates[index] = rate;
    remaining -= rate;
    --left;
  }
}

std::vector<double> max_min_allocate(double capacity, const std::vector<double>& caps) {
  std::vector<double> rates;
  MaxMinScratch scratch;
  max_min_allocate_into(capacity, caps, scratch, rates);
  return rates;
}

}  // namespace insomnia::flow
