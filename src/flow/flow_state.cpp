#include "flow/flow_state.h"

#include <algorithm>

#include "util/error.h"

namespace insomnia::flow {

FlowBlock::Pos FlowBlock::push_back(std::uint64_t flow_id, int flow_client, double arrival,
                                    double flow_bytes, double remaining, double cap,
                                    std::uint64_t seq) {
  const Pos pos = static_cast<Pos>(id.size());
  id.push_back(flow_id);
  client.push_back(flow_client);
  arrival_time.push_back(arrival);
  bytes.push_back(flow_bytes);
  remaining_bits.push_back(remaining);
  wireless_cap.push_back(cap);
  rate.push_back(0.0);
  cap_seq.push_back(seq);
  return pos;
}

void FlowBlock::compact_removed(const std::vector<Pos>& removed, std::vector<Pos>& remap) {
  const std::size_t n = size();
  remap.resize(n);
  std::size_t write = 0;
  std::size_t next_removed = 0;
  for (std::size_t read = 0; read < n; ++read) {
    if (next_removed < removed.size() && removed[next_removed] == read) {
      remap[read] = kRemoved;
      ++next_removed;
      continue;
    }
    remap[read] = static_cast<Pos>(write);
    if (write != read) {
      id[write] = id[read];
      client[write] = client[read];
      arrival_time[write] = arrival_time[read];
      bytes[write] = bytes[read];
      remaining_bits[write] = remaining_bits[read];
      wireless_cap[write] = wireless_cap[read];
      rate[write] = rate[read];
      cap_seq[write] = cap_seq[read];
    }
    ++write;
  }
  id.resize(write);
  client.resize(write);
  arrival_time.resize(write);
  bytes.resize(write);
  remaining_bits.resize(write);
  wireless_cap.resize(write);
  rate.resize(write);
  cap_seq.resize(write);
}

void FlowBlock::erase_at(Pos pos) {
  util::require_state(pos < size(), "FlowBlock::erase_at out of range");
  id.erase(id.begin() + pos);
  client.erase(client.begin() + pos);
  arrival_time.erase(arrival_time.begin() + pos);
  bytes.erase(bytes.begin() + pos);
  remaining_bits.erase(remaining_bits.begin() + pos);
  wireless_cap.erase(wireless_cap.begin() + pos);
  rate.erase(rate.begin() + pos);
  cap_seq.erase(cap_seq.begin() + pos);
}

void FlowBlock::reserve(std::size_t n) {
  id.reserve(n);
  client.reserve(n);
  arrival_time.reserve(n);
  bytes.reserve(n);
  remaining_bits.reserve(n);
  wireless_cap.reserve(n);
  rate.reserve(n);
  cap_seq.reserve(n);
}

bool FlowIndex::dense_id(std::uint64_t id) const {
  // Growing the flat vector is fine while it stays proportionate to the
  // flows actually stored; a far outlier (sparse trace id) must not make it
  // balloon. Mirrors the reference engine's heuristic exactly.
  if (id < dense_.size()) return true;
  const std::uint64_t ceiling = std::max<std::uint64_t>(1024, 4 * (stored_total_ + 1));
  return id < ceiling;
}

FlowIndex::Loc FlowIndex::find(std::uint64_t id) const {
  std::uint64_t packed = kEmpty;
  // The dense vector may later grow past an id that went to the overflow
  // map while it was still an outlier, so an empty dense entry must fall
  // through to the map (cheap: the map is almost always empty).
  if (id < dense_.size() && dense_[id] != kEmpty) {
    packed = dense_[id];
  } else if (!overflow_.empty()) {
    const auto it = overflow_.find(id);
    if (it != overflow_.end()) packed = it->second;
  }
  if (packed == kEmpty) return {};
  return {static_cast<int>(packed >> 32), static_cast<FlowBlock::Pos>(packed & 0xffffffffu)};
}

void FlowIndex::store(std::uint64_t id, int gateway, FlowBlock::Pos pos) {
  ++stored_total_;
  if (dense_id(id)) {
    if (dense_.size() <= id) dense_.resize(id + 1, kEmpty);
    dense_[id] = pack(gateway, pos);
  } else {
    overflow_[id] = pack(gateway, pos);
  }
}

void FlowIndex::relocate(std::uint64_t id, int gateway, FlowBlock::Pos pos) {
  if (id < dense_.size() && dense_[id] != kEmpty) {
    dense_[id] = pack(gateway, pos);
  } else {
    const auto it = overflow_.find(id);
    util::require_state(it != overflow_.end(), "FlowIndex::relocate of unknown id");
    it->second = pack(gateway, pos);
  }
}

void FlowIndex::erase(std::uint64_t id) {
  // Mirror find(): the mapping lives in the dense vector or, for an id that
  // was an outlier when stored, in the overflow map — even if the vector
  // has since grown past it.
  if (id < dense_.size() && dense_[id] != kEmpty) {
    dense_[id] = kEmpty;
  } else {
    overflow_.erase(id);
  }
}

void FlowIndex::reserve(std::size_t flow_count) { dense_.reserve(flow_count); }

}  // namespace insomnia::flow
