#include "flow/fluid_network.h"

#include <cstdlib>
#include <cstring>

#include "flow/incremental_network.h"
#include "flow/reference_network.h"
#include "util/error.h"

namespace insomnia::flow {

const char* engine_kind_name(EngineKind kind) {
  return kind == EngineKind::kReference ? "reference" : "incremental";
}

EngineKind engine_from_env() {
  const char* value = std::getenv("INSOMNIA_FLOW_ENGINE");
  if (value == nullptr || *value == '\0') return EngineKind::kIncremental;
  if (std::strcmp(value, "incremental") == 0) return EngineKind::kIncremental;
  if (std::strcmp(value, "reference") == 0) return EngineKind::kReference;
  util::require(false, "INSOMNIA_FLOW_ENGINE must be 'reference' or 'incremental'");
  return EngineKind::kIncremental;
}

std::unique_ptr<FluidNetwork> make_fluid_network(sim::Simulator& simulator,
                                                 std::vector<double> backhaul_rates,
                                                 EngineKind kind) {
  if (kind == EngineKind::kReference) {
    return std::make_unique<ReferenceFluidNetwork>(simulator, std::move(backhaul_rates));
  }
  return std::make_unique<IncrementalFluidNetwork>(simulator, std::move(backhaul_rates));
}

std::unique_ptr<FluidNetwork> make_fluid_network(sim::Simulator& simulator,
                                                 std::vector<double> backhaul_rates) {
  return make_fluid_network(simulator, std::move(backhaul_rates), engine_from_env());
}

}  // namespace insomnia::flow
