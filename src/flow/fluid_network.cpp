#include "flow/fluid_network.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "flow/max_min.h"
#include "util/error.h"

namespace insomnia::flow {

FluidNetwork::FluidNetwork(sim::Simulator& simulator, std::vector<double> backhaul_rates)
    : simulator_(&simulator) {
  util::require(!backhaul_rates.empty(), "FluidNetwork needs at least one gateway");
  gateways_.reserve(backhaul_rates.size());
  for (double rate : backhaul_rates) {
    util::require(rate > 0.0, "backhaul rates must be positive");
    gateways_.emplace_back(rate, simulator.now());
  }
}

void FluidNetwork::set_completion_handler(std::function<void(const CompletedFlow&)> handler) {
  on_complete_ = std::move(handler);
}

FluidNetwork::GatewayState& FluidNetwork::gateway(int g) {
  return gateways_.at(static_cast<std::size_t>(g));
}

const FluidNetwork::GatewayState& FluidNetwork::gateway(int g) const {
  return gateways_.at(static_cast<std::size_t>(g));
}

FluidNetwork::FlowState& FluidNetwork::flow_by_id(FlowId id) {
  util::require(id < id_to_index_.size() && id_to_index_[id] != SIZE_MAX,
                "unknown flow id");
  return flows_[id_to_index_[id]];
}

void FluidNetwork::add_flow(FlowId id, int client, int gateway_id, double bytes,
                            double wireless_cap) {
  util::require(bytes >= 0.0 && wireless_cap > 0.0,
                "flows need non-negative bytes and a positive wireless cap");
  advance(gateway_id);

  FlowState state;
  state.id = id;
  state.client = client;
  state.gateway = gateway_id;
  state.arrival_time = simulator_->now();
  state.bytes = bytes;
  state.remaining_bits = bytes * 8.0;
  state.wireless_cap = wireless_cap;

  GatewayState& gw = gateway(gateway_id);
  gw.last_activity = simulator_->now();

  if (state.remaining_bits <= kEpsilonBits) {
    state.done = true;
    if (on_complete_) {
      on_complete_({id, client, gateway_id, state.arrival_time, simulator_->now(), bytes});
    }
    return;
  }

  if (id_to_index_.size() <= id) id_to_index_.resize(id + 1, SIZE_MAX);
  util::require(id_to_index_[id] == SIZE_MAX, "duplicate flow id");
  id_to_index_[id] = flows_.size();
  flows_.push_back(state);
  gw.flows.push_back(flows_.size() - 1);
  ++live_flows_;
  reallocate(gateway_id);
}

void FluidNetwork::migrate_flow(FlowId id, int new_gateway, double new_wireless_cap) {
  util::require(new_wireless_cap > 0.0, "migrated flow needs a positive wireless cap");
  if (id >= id_to_index_.size() || id_to_index_[id] == SIZE_MAX) return;
  const std::size_t index = id_to_index_[id];
  if (flows_[index].done) return;
  const int old_gateway = flows_[index].gateway;
  if (old_gateway == new_gateway) {
    flows_[index].wireless_cap = new_wireless_cap;
    advance(old_gateway);
    reallocate(old_gateway);
    return;
  }
  advance(old_gateway);
  advance(new_gateway);
  // The flow may have completed during advance(old_gateway).
  if (flows_[index].done) return;

  auto& old_list = gateway(old_gateway).flows;
  old_list.erase(std::remove(old_list.begin(), old_list.end(), index), old_list.end());
  flows_[index].gateway = new_gateway;
  flows_[index].wireless_cap = new_wireless_cap;
  gateway(new_gateway).flows.push_back(index);
  reallocate(old_gateway);
  reallocate(new_gateway);
}

void FluidNetwork::set_gateway_serving(int gateway_id, bool serving) {
  GatewayState& gw = gateway(gateway_id);
  if (gw.serving == serving) return;
  advance(gateway_id);
  gw.serving = serving;
  reallocate(gateway_id);
}

bool FluidNetwork::gateway_serving(int gateway_id) const { return gateway(gateway_id).serving; }

int FluidNetwork::active_flow_count(int gateway_id) const {
  return static_cast<int>(gateway(gateway_id).flows.size());
}

int FluidNetwork::client_flow_count_at(int client, int gateway_id) const {
  int count = 0;
  for (std::size_t index : gateway(gateway_id).flows) {
    if (flows_[index].client == client) ++count;
  }
  return count;
}

double FluidNetwork::client_throughput_at(int client, int gateway_id) const {
  double total = 0.0;
  for (std::size_t index : gateway(gateway_id).flows) {
    if (flows_[index].client == client) total += flows_[index].rate;
  }
  return total;
}

double FluidNetwork::gateway_throughput(int gateway_id) const {
  return gateway(gateway_id).throughput;
}

double FluidNetwork::served_bits(int gateway_id, double t0, double t1) const {
  return gateway(gateway_id).served.integral(t0, t1);
}

double FluidNetwork::load(int gateway_id, double window) const {
  util::require(window > 0.0, "load needs a positive window");
  const GatewayState& gw = gateway(gateway_id);
  const double t1 = simulator_->now();
  const double t0 = std::max(t1 - window, 0.0);
  if (t1 <= t0) return 0.0;
  return gw.served.integral(t0, t1) / (window * gw.backhaul);
}

double FluidNetwork::last_activity(int gateway_id) const {
  return gateway(gateway_id).last_activity;
}

void FluidNetwork::advance(int gateway_id) {
  GatewayState& gw = gateway(gateway_id);
  const double now = simulator_->now();
  const double dt = now - gw.last_progress;
  if (dt > 0.0) {
    if (gw.throughput > 0.0) gw.last_activity = now;
    gw.last_progress = now;
  }
  if (gw.flows.empty()) return;

  // Completion detection runs even for dt == 0: floating-point residue can
  // leave a flow with a sliver of remaining bits whose service time rounds
  // to zero, and it must still terminate.
  std::vector<std::size_t> finished;
  for (std::size_t index : gw.flows) {
    FlowState& f = flows_[index];
    if (dt > 0.0) f.remaining_bits -= f.rate * dt;
    if (f.remaining_bits <= kEpsilonBits) {
      f.remaining_bits = 0.0;
      f.done = true;
      finished.push_back(index);
    }
  }
  if (finished.empty()) return;
  gw.flows.erase(std::remove_if(gw.flows.begin(), gw.flows.end(),
                                [this](std::size_t index) { return flows_[index].done; }),
                 gw.flows.end());
  live_flows_ -= static_cast<int>(finished.size());
  for (std::size_t index : finished) {
    const FlowState& f = flows_[index];
    id_to_index_[f.id] = SIZE_MAX;
    if (on_complete_) {
      on_complete_({f.id, f.client, f.gateway, f.arrival_time, now, f.bytes});
    }
  }
}

void FluidNetwork::reallocate(int gateway_id) {
  GatewayState& gw = gateway(gateway_id);
  const double now = simulator_->now();

  if (gw.completion_event != sim::kInvalidEventId) {
    simulator_->cancel(gw.completion_event);
    gw.completion_event = sim::kInvalidEventId;
  }

  if (!gw.serving || gw.flows.empty()) {
    for (std::size_t index : gw.flows) flows_[index].rate = 0.0;
    gw.throughput = 0.0;
    gw.served.set(now, 0.0);
    return;
  }

  std::vector<double> caps;
  caps.reserve(gw.flows.size());
  for (std::size_t index : gw.flows) caps.push_back(flows_[index].wireless_cap);
  const std::vector<double> rates = max_min_allocate(gw.backhaul, caps);

  double total = 0.0;
  double next_completion = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < gw.flows.size(); ++i) {
    FlowState& f = flows_[gw.flows[i]];
    f.rate = rates[i];
    total += f.rate;
    if (f.rate > 0.0) {
      next_completion = std::min(next_completion, now + f.remaining_bits / f.rate);
    }
  }
  gw.throughput = total;
  gw.served.set(now, total);

  if (std::isfinite(next_completion)) {
    // Never schedule at (or below) the current instant: with a large clock
    // value a tiny remaining/rate quotient can round to zero, and a
    // same-instant event would re-enter this path forever.
    next_completion = std::max(next_completion, now + kMinEventDelay);
    gw.completion_event = simulator_->at(next_completion, [this, gateway_id] {
      gateway(gateway_id).completion_event = sim::kInvalidEventId;
      advance(gateway_id);
      reallocate(gateway_id);
    });
  }
}

}  // namespace insomnia::flow
