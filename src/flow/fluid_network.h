// Flow-level ("fluid") model of the access network's data plane. Flows are
// elastic downloads; each is pinned to one gateway and served at its max-min
// fair share of that gateway's broadband backhaul, capped by the wireless
// rate between its client and the gateway. Gateways that are asleep or
// waking serve nothing — their flows stall and resume later, which is how
// the wake-up penalty enters flow completion times (Fig. 9a).
//
// Gateways are independent bottlenecks (a deliberate simplification: at the
// paper's <10 % utilization the client radio, shared across gateways by the
// FatVAP/THEMIS TDMA layer, is never the binding constraint).
//
// Two engines implement this interface:
//  - ReferenceFluidNetwork (flow/reference_network.h): the exact, eager
//    implementation. Every mutation re-waterfills its gateway and each
//    gateway keeps its own completion event in the simulator heap.
//  - IncrementalFluidNetwork (flow/incremental_network.h): the optimized
//    default. Same observable behavior bit for bit (enforced by
//    tests/test_flow_differential.cpp), but water-fills lazily once per
//    gateway per instant, keeps per-flow state as structure-of-arrays, and
//    multiplexes all completion events through one simulator event.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.h"

namespace insomnia::flow {

/// Identifies a flow across its lifetime. Callers supply ids (the scheme
/// runner uses the trace index) so completions can be matched across
/// schemes.
using FlowId = std::uint64_t;

/// A finished flow, reported through the completion callback.
struct CompletedFlow {
  FlowId id = 0;
  int client = 0;
  int gateway = 0;        ///< gateway that served the final byte
  double arrival_time = 0.0;
  double completion_time = 0.0;
  double bytes = 0.0;

  /// Flow completion time (seconds).
  double duration() const { return completion_time - arrival_time; }
};

/// The fluid data plane. All mutating calls advance internal progress to
/// the simulator's current time first, so rates may change arbitrarily often
/// without integration error.
class FluidNetwork {
 public:
  virtual ~FluidNetwork() = default;

  FluidNetwork(const FluidNetwork&) = delete;
  FluidNetwork& operator=(const FluidNetwork&) = delete;

  /// Which engine this is: "reference" or "incremental".
  virtual const char* engine_name() const = 0;

  /// Invoked whenever a flow finishes.
  virtual void set_completion_handler(std::function<void(const CompletedFlow&)> handler) = 0;

  /// Capacity hint: the caller expects about `flow_count` add_flow calls
  /// with dense ids. Pre-sizes the flow store so the replay loop does not
  /// pay for incremental growth.
  virtual void reserve_flows(std::size_t flow_count) = 0;

  /// Starts a flow of `bytes` for `client` via `gateway`, throttled to at
  /// most `wireless_cap` bits/s over the air. Zero-byte flows complete
  /// immediately.
  virtual void add_flow(FlowId id, int client, int gateway, double bytes,
                        double wireless_cap) = 0;

  /// Moves a live flow to another gateway with a new wireless cap (used only
  /// by the idealised Optimal scheme; BH2 never migrates existing flows).
  /// No-op if the flow already completed.
  virtual void migrate_flow(FlowId id, int new_gateway, double new_wireless_cap) = 0;

  /// Marks gateway g as able (true) or unable (false) to move traffic.
  /// Sleeping and waking gateways are not serving.
  virtual void set_gateway_serving(int gateway, bool serving) = 0;

  virtual bool gateway_serving(int gateway) const = 0;

  /// Number of unfinished flows pinned to `gateway`.
  virtual int active_flow_count(int gateway) const = 0;

  /// Number of unfinished flows belonging to `client` at `gateway`.
  virtual int client_flow_count_at(int client, int gateway) const = 0;

  /// Instantaneous aggregate service rate (bits/s) of `client`'s flows at
  /// `gateway` — what a terminal knows as "my own share" of that gateway.
  virtual double client_throughput_at(int client, int gateway) const = 0;

  /// Total number of unfinished flows.
  virtual int total_active_flows() const = 0;

  /// Instantaneous aggregate service rate of `gateway`, bits/s.
  virtual double gateway_throughput(int gateway) const = 0;

  /// Bits served by `gateway` during [t0, t1] (exact integral).
  virtual double served_bits(int gateway, double t0, double t1) const = 0;

  /// Utilization of `gateway` over the trailing window [now-window, now]:
  /// served bits / (window * backhaul). This is what BH2 terminals estimate
  /// by counting 802.11 sequence numbers.
  virtual double load(int gateway, double window) const = 0;

  /// Time of last traffic activity at `gateway`: the later of the last flow
  /// arrival routed to it and the last instant it served bits. Drives SoI
  /// idle detection.
  virtual double last_activity(int gateway) const = 0;

  virtual int gateway_count() const = 0;

 protected:
  FluidNetwork() = default;

  /// A flow with less than a millibit left is complete (physically
  /// meaningless, numerically decisive). Shared by both engines so the
  /// completion condition can never drift between them.
  static constexpr double kEpsilonBits = 1e-3;

  /// Completion events fire at least this far in the future (well above the
  /// double ulp at t ~ 1e5 s), so zero-progress event loops cannot form.
  static constexpr double kMinEventDelay = 1e-6;
};

/// Which FluidNetwork implementation to build.
enum class EngineKind {
  kReference,    ///< exact eager engine (the golden twin)
  kIncremental,  ///< optimized lazy engine (the default)
};

/// Printable name of an engine kind ("reference" / "incremental").
const char* engine_kind_name(EngineKind kind);

/// Engine selected by the INSOMNIA_FLOW_ENGINE environment variable
/// ("reference" or "incremental"); unset or empty picks the incremental
/// engine. Any other value aborts — a typo must not silently change which
/// engine produced a result.
EngineKind engine_from_env();

/// Builds a fluid network of the given kind. `backhaul_rates[g]` is gateway
/// g's broadband speed in bits/s.
std::unique_ptr<FluidNetwork> make_fluid_network(sim::Simulator& simulator,
                                                 std::vector<double> backhaul_rates,
                                                 EngineKind kind);

/// As above with the kind taken from INSOMNIA_FLOW_ENGINE (see
/// engine_from_env). This is what every production entry point uses.
std::unique_ptr<FluidNetwork> make_fluid_network(sim::Simulator& simulator,
                                                 std::vector<double> backhaul_rates);

}  // namespace insomnia::flow
