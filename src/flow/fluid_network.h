// Flow-level ("fluid") model of the access network's data plane. Flows are
// elastic downloads; each is pinned to one gateway and served at its max-min
// fair share of that gateway's broadband backhaul, capped by the wireless
// rate between its client and the gateway. Gateways that are asleep or
// waking serve nothing — their flows stall and resume later, which is how
// the wake-up penalty enters flow completion times (Fig. 9a).
//
// Gateways are independent bottlenecks (a deliberate simplification: at the
// paper's <10 % utilization the client radio, shared across gateways by the
// FatVAP/THEMIS TDMA layer, is never the binding constraint).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "stats/timeseries.h"

namespace insomnia::flow {

/// Identifies a flow across its lifetime. Callers supply ids (the scheme
/// runner uses the trace index) so completions can be matched across
/// schemes.
using FlowId = std::uint64_t;

/// A finished flow, reported through the completion callback.
struct CompletedFlow {
  FlowId id = 0;
  int client = 0;
  int gateway = 0;        ///< gateway that served the final byte
  double arrival_time = 0.0;
  double completion_time = 0.0;
  double bytes = 0.0;

  /// Flow completion time (seconds).
  double duration() const { return completion_time - arrival_time; }
};

/// The fluid data plane. All mutating calls advance internal progress to
/// the simulator's current time first, so rates may change arbitrarily often
/// without integration error.
class FluidNetwork {
 public:
  /// `backhaul_rates[g]` is gateway g's broadband speed in bits/s.
  FluidNetwork(sim::Simulator& simulator, std::vector<double> backhaul_rates);

  FluidNetwork(const FluidNetwork&) = delete;
  FluidNetwork& operator=(const FluidNetwork&) = delete;

  /// Invoked whenever a flow finishes.
  void set_completion_handler(std::function<void(const CompletedFlow&)> handler);

  /// Capacity hint: the caller expects about `flow_count` add_flow calls
  /// with dense ids. Pre-sizes the flow store so the replay loop does not
  /// pay for incremental growth.
  void reserve_flows(std::size_t flow_count);

  /// Starts a flow of `bytes` for `client` via `gateway`, throttled to at
  /// most `wireless_cap` bits/s over the air. Zero-byte flows complete
  /// immediately.
  void add_flow(FlowId id, int client, int gateway, double bytes, double wireless_cap);

  /// Moves a live flow to another gateway with a new wireless cap (used only
  /// by the idealised Optimal scheme; BH2 never migrates existing flows).
  /// No-op if the flow already completed.
  void migrate_flow(FlowId id, int new_gateway, double new_wireless_cap);

  /// Marks gateway g as able (true) or unable (false) to move traffic.
  /// Sleeping and waking gateways are not serving.
  void set_gateway_serving(int gateway, bool serving);

  bool gateway_serving(int gateway) const;

  /// Number of unfinished flows pinned to `gateway`.
  int active_flow_count(int gateway) const;

  /// Number of unfinished flows belonging to `client` at `gateway`.
  int client_flow_count_at(int client, int gateway) const;

  /// Instantaneous aggregate service rate (bits/s) of `client`'s flows at
  /// `gateway` — what a terminal knows as "my own share" of that gateway.
  double client_throughput_at(int client, int gateway) const;

  /// Total number of unfinished flows.
  int total_active_flows() const { return live_flows_; }

  /// Instantaneous aggregate service rate of `gateway`, bits/s.
  double gateway_throughput(int gateway) const;

  /// Bits served by `gateway` during [t0, t1] (exact integral).
  double served_bits(int gateway, double t0, double t1) const;

  /// Utilization of `gateway` over the trailing window [now-window, now]:
  /// served bits / (window * backhaul). This is what BH2 terminals estimate
  /// by counting 802.11 sequence numbers.
  double load(int gateway, double window) const;

  /// Time of last traffic activity at `gateway`: the later of the last flow
  /// arrival routed to it and the last instant it served bits. Drives SoI
  /// idle detection.
  double last_activity(int gateway) const;

  int gateway_count() const { return static_cast<int>(gateways_.size()); }

 private:
  struct FlowState {
    FlowId id = 0;
    int client = 0;
    int gateway = 0;
    double arrival_time = 0.0;
    double bytes = 0.0;
    double remaining_bits = 0.0;
    double wireless_cap = 0.0;
    double rate = 0.0;  ///< current service rate, bits/s
    bool done = false;
  };

  /// One live flow's wireless cap, kept in the gateway's ascending cap
  /// order. `seq` is the flow's per-gateway arrival stamp: it breaks cap
  /// ties FIFO, mirroring the order in which a full sort of the flow list
  /// would see them.
  struct SortedCap {
    double cap = 0.0;
    std::uint64_t seq = 0;
    std::size_t flow = 0;  ///< index into flows_
  };

  struct GatewayState {
    double backhaul = 0.0;
    bool serving = false;
    std::vector<std::size_t> flows;  ///< indices into flows_, arrival order
    std::vector<SortedCap> sorted;   ///< live caps ascending by (cap, seq)
    std::vector<std::size_t> finished;  ///< scratch reused by advance()
    std::uint64_t next_cap_seq = 0;
    sim::EventId completion_event = sim::kInvalidEventId;
    double next_completion = 0.0;  ///< scheduled completion-event time
    double last_progress = 0.0;    ///< time progress was last integrated
    double throughput = 0.0;       ///< current aggregate rate
    stats::StepSeries served;      ///< aggregate service rate over time
    double last_activity = 0.0;

    // Exact memo for load(): a repeat query at the same instant with the
    // same window and an unchanged series is a pure recomputation (BH2
    // probes several candidate gateways, many repeatedly, per decision).
    mutable double load_cache_time = -1.0;
    mutable double load_cache_window = 0.0;
    mutable std::size_t load_cache_changes = 0;
    mutable double load_cache_value = 0.0;

    GatewayState(double rate, double start)
        : backhaul(rate), last_progress(start), served(start, 0.0), last_activity(start) {}
  };

  GatewayState& gateway(int g);
  const GatewayState& gateway(int g) const;
  FlowState& flow_by_id(FlowId id);

  // --- FlowId -> flows_ index map ----------------------------------------
  // Dense ids (the trace replay uses the trace index) live in a flat
  // vector; an id far beyond the number of flows ever added would blow the
  // vector up (a sparse 10^12 id must not allocate gigabytes), so outliers
  // go to a hash map instead.
  static constexpr std::size_t kNoIndex = SIZE_MAX;
  std::size_t find_index(FlowId id) const;
  void store_index(FlowId id, std::size_t index);
  void erase_index(FlowId id);
  /// True when growing the dense vector to hold `id` stays proportionate to
  /// the number of flows actually seen.
  bool dense_id(FlowId id) const;

  /// Inserts `flow` into gw's cap order; `seq` is its tie-break stamp.
  void insert_sorted(GatewayState& gw, std::size_t flow, double cap, std::uint64_t seq);

  /// Removes `flow` from gw's cap order and returns its tie-break stamp.
  std::uint64_t remove_sorted(GatewayState& gw, std::size_t flow);

  /// Integrates progress at `gateway` up to now and completes finished flows.
  void advance(int gateway);

  /// Recomputes rates at `gateway` and (re)schedules its completion event.
  void reallocate(int gateway);

  sim::Simulator* simulator_;
  std::vector<GatewayState> gateways_;
  std::vector<FlowState> flows_;                       // all flows ever added
  std::vector<std::size_t> id_to_index_;               // dense FlowId -> flows_ index
  std::unordered_map<FlowId, std::size_t> id_overflow_;  // sparse outlier ids
  std::function<void(const CompletedFlow&)> on_complete_;
  int live_flows_ = 0;
  /// A flow with less than a millibit left is complete (physically
  /// meaningless, numerically decisive).
  static constexpr double kEpsilonBits = 1e-3;
  /// Completion events fire at least this far in the future (well above the
  /// double ulp at t ~ 1e5 s), so zero-progress event loops cannot form.
  static constexpr double kMinEventDelay = 1e-6;
};

}  // namespace insomnia::flow
