// Country-scale fleet description: a weighted portfolio of heterogeneous
// cities grouped into regions, layered over the city fleet simulator. The
// paper's §5.4 world figure (TWh/yr over 320M DSL subscribers) multiplied
// one measured neighbourhood by constants; the city layer replaced that
// with one simulated heterogeneous city; this layer simulates the whole
// portfolio — dense metro cores, suburban carpets, sparse rural stretches,
// and developing-world deployments — so the world numbers are a roll-up of
// ≥1M simulated gateways, not an extrapolation.
//
// Determinism contract: every (seed, region, city, neighbourhood) tuple is
// a pure function of the CountryConfig — city c of region r derives its
// whole identity (archetype draw, neighbourhood count, city seed) from
// sim::Random substreams keyed on (country seed, r, c), and the city layer
// keys each neighbourhood on (city seed, n). The final roll-up is therefore
// bit-identical at any thread count, process count, or checkpoint/resume
// split (asserted by tests/test_country_runner.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "city/city_config.h"

namespace insomnia::country {

/// One city archetype a region can instantiate: a preset mix with jitter
/// (exactly a CityConfig's mix) plus a uniform range for how many
/// neighbourhoods a city of this kind holds. Each city drawn from the
/// template gets its own neighbourhood count and its own keyed seed.
struct CityTemplate {
  std::string name;     ///< archetype label for tables/logs
  double weight = 1.0;  ///< relative draw probability within the region, > 0
  std::vector<city::CityMixComponent> mix;  ///< non-empty; preset names + jitter
  int neighbourhoods_min = 32;  ///< >= 1
  int neighbourhoods_max = 64;  ///< >= neighbourhoods_min
};

/// A named region: how many cities it holds and the weighted portfolio of
/// archetypes they are drawn from.
struct RegionConfig {
  std::string name;
  int cities = 1;  ///< >= 1
  std::vector<CityTemplate> portfolio;  ///< non-empty
};

/// The whole country behind one (or several federated) ISPs.
struct CountryConfig {
  std::string name = "country";
  std::vector<RegionConfig> regions;  ///< non-empty
  std::uint64_t seed = 42;
  /// Registered scheme name compared against the no-sleep baseline in every
  /// neighbourhood of every city.
  std::string scheme = "bh2-kswitch";
  /// Worker threads per process for sharding city shards; 0 = auto
  /// (INSOMNIA_THREADS or hardware concurrency). Bit-identical for any value.
  int threads = 0;
  /// Peak window for the online-gateway aggregate (§5.2.5 default).
  double peak_start = 11.0 * 3600.0;
  double peak_end = 19.0 * 3600.0;
};

/// Structural validation: throws util::InvalidArgument on an empty region
/// list, a region without cities or portfolio, non-positive template
/// weights, an empty or backwards neighbourhood range, an invalid embedded
/// mix (city::validate rules), or an empty/backwards peak window. Preset
/// names are resolved (and unknown ones rejected) by the runner.
void validate(const CountryConfig& config);

/// Total number of city shards (sum of region city counts) — the unit of
/// checkpointing and process fan-out.
std::size_t total_city_shards(const CountryConfig& config);

/// The default country: four regions (metro, suburban, rural, developing)
/// whose portfolios mix the built-in scenario presets — dense-urban VDSL2
/// cores, the §5.1 paper-default carpet, sparse-rural stretches, and the
/// developing-world preset (PAPERS.md "Designing Low Cost and Energy
/// Efficient Access Network for the Developing World") — sized so the
/// full-scale portfolio holds ≥1M gateways in expectation.
///
/// `city_scale` scales the number of cities per region and `neighbourhood_scale`
/// the per-template neighbourhood ranges (both floored at 1), so smokes and
/// tests can run the identical portfolio shape at a tiny fraction of the
/// cost: default_country(0.01, 0.1) is a minutes-long run, default_country()
/// is the multi-hour ≥1M-gateway world run.
CountryConfig default_country(double city_scale = 1.0, double neighbourhood_scale = 1.0);

}  // namespace insomnia::country
