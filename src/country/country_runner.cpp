#include "country/country_runner.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <utility>

#include "city/city_runner.h"
#include "core/scheme_registry.h"
#include "country/checkpoint.h"
#include "exec/sweep_runner.h"
#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "sim/random.h"
#include "util/error.h"

namespace insomnia::country {

namespace {

// Substream salts of the country layer. The city layer owns salts 11-15
// (keyed on the city seed); these are keyed on the COUNTRY seed with
// stream = region << 32 | city, so every city's identity is a pure function
// of (country seed, region, city) and nothing else.
constexpr std::uint64_t kCitySamplerSalt = 21;  ///< archetype draw + nbhd count
constexpr std::uint64_t kCitySeedSalt = 22;     ///< the city's own seed

using Shard = std::pair<std::uint32_t, std::uint32_t>;  // (region, city)

std::uint64_t shard_stream(std::uint32_t region, std::uint32_t city) {
  return (static_cast<std::uint64_t>(region) << 32) | city;
}

// Positional mix resolution, population-first with registry fallback —
// the same contract city::run_city's population overload exposes.
std::vector<core::ScenarioPreset> resolve_presets(
    const std::vector<city::CityMixComponent>& mix,
    const std::vector<core::ScenarioPreset>& population) {
  std::vector<core::ScenarioPreset> resolved;
  resolved.reserve(mix.size());
  for (const city::CityMixComponent& component : mix) {
    const core::ScenarioPreset* found = nullptr;
    for (const core::ScenarioPreset& preset : population) {
      if (preset.name == component.preset) {
        found = &preset;
        break;
      }
    }
    resolved.push_back(found ? *found : core::find_scenario_preset(component.preset));
  }
  return resolved;
}

/// Owns one process's checkpoint file; lazily picks a name no other writer
/// (live or left over from an earlier attempt) owns, then rewrites it
/// atomically with every fresh digest of this invocation on each flush.
class CheckpointWriter {
 public:
  CheckpointWriter(std::string dir, std::uint64_t fingerprint)
      : dir_(std::move(dir)), fingerprint_(fingerprint) {}

  void flush(const std::vector<CityDigest>& fresh) {
    if (dir_.empty() || fresh.empty()) return;
    if (path_.empty()) path_ = claim_path();
    write_checkpoint_file(path_, fingerprint_, fresh);
  }

 private:
  std::string claim_path() const {
    // Distinct pids keep concurrent workers apart; the existence probe keeps
    // a recycled pid from clobbering a previous invocation's file (older
    // files hold digests this invocation never re-simulates).
    const std::string stem = dir_ + "/worker-" + std::to_string(::getpid());
    std::string candidate = stem + ".ckpt";
    for (int attempt = 1; std::filesystem::exists(candidate); ++attempt) {
      candidate = stem + "-" + std::to_string(attempt) + ".ckpt";
    }
    return candidate;
  }

  std::string dir_;
  std::uint64_t fingerprint_;
  std::string path_;
};

/// Simulates `shards` in flush-sized parallel batches, checkpointing after
/// each batch. Returns every digest produced (in shard-list order).
std::vector<CityDigest> run_shard_list(const CountryConfig& config,
                                       const std::vector<core::ScenarioPreset>& population,
                                       const std::vector<Shard>& shards,
                                       int flush_every, CheckpointWriter& writer) {
  exec::SweepRunner runner(config.threads);
  const std::size_t flush =
      flush_every > 0 ? static_cast<std::size_t>(flush_every)
                      : static_cast<std::size_t>(std::max(8, 2 * runner.threads()));
  std::vector<CityDigest> fresh;
  fresh.reserve(shards.size());
  for (std::size_t start = 0; start < shards.size(); start += flush) {
    const std::size_t count = std::min(flush, shards.size() - start);
    std::vector<CityDigest> chunk = runner.run(count, [&](std::size_t i) {
      const Shard& shard = shards[start + i];
      return simulate_city(config, population, shard.first, shard.second);
    });
    for (CityDigest& digest : chunk) fresh.push_back(std::move(digest));
    writer.flush(fresh);
  }
  return fresh;
}

}  // namespace

CitySample sample_city(const CountryConfig& config, std::uint32_t region,
                       std::uint32_t city_index) {
  util::require(region < config.regions.size(), "region index out of range");
  const RegionConfig& region_config = config.regions[region];
  util::require(city_index < static_cast<std::uint32_t>(region_config.cities),
                "city index out of range for region " + region_config.name);

  const std::uint64_t stream = shard_stream(region, city_index);
  sim::Random sampler(
      sim::Random::substream_seed(config.seed, stream, kCitySamplerSalt));

  std::vector<double> weights;
  weights.reserve(region_config.portfolio.size());
  for (const CityTemplate& tmpl : region_config.portfolio) weights.push_back(tmpl.weight);

  CitySample sample;
  sample.template_index = sampler.weighted_index(weights);
  const CityTemplate& tmpl = region_config.portfolio[sample.template_index];

  sample.city.mix = tmpl.mix;
  sample.city.neighbourhoods =
      sampler.uniform_int(tmpl.neighbourhoods_min, tmpl.neighbourhoods_max);
  sample.city.seed = sim::Random::substream_seed(config.seed, stream, kCitySeedSalt);
  sample.city.scheme = config.scheme;
  // City shards are the parallel unit; each city runs its neighbourhoods
  // serially so nested pools never oversubscribe (and the serial city path
  // is the bit-identity reference anyway).
  sample.city.threads = 1;
  sample.city.peak_start = config.peak_start;
  sample.city.peak_end = config.peak_end;
  return sample;
}

CityDigest simulate_city(const CountryConfig& config,
                         const std::vector<core::ScenarioPreset>& population,
                         std::uint32_t region, std::uint32_t city_index) {
  OBS_SCOPE("country.city");
  const CitySample sample = sample_city(config, region, city_index);
  const city::CityResult result =
      city::run_city(sample.city, resolve_presets(sample.city.mix, population));
#ifndef INSOMNIA_OBS_DISABLED
  static obs::Counter& done = obs::counter("country.cities_done");
  done.add(1);
#endif
  return digest_from_city(result.metrics, region, city_index, sample.template_index);
}

CountryResult run_country(const CountryConfig& config, const CountryRunOptions& options,
                          const std::vector<core::ScenarioPreset>& population) {
  validate(config);
  core::find_scheme(config.scheme);  // reject unknown schemes before any work
  util::require(options.procs >= 1, "procs must be >= 1");
  util::require(options.procs == 1 || !options.checkpoint_dir.empty(),
                "process fan-out needs a checkpoint directory: the shared "
                "checkpoint is how worker results reach the parent");

  const std::uint64_t fingerprint = config_fingerprint(config);
  const std::size_t total = total_city_shards(config);

  // Resume: load whatever an earlier (interrupted) invocation completed.
  std::vector<CityDigest> digests;
  if (!options.checkpoint_dir.empty()) {
    std::filesystem::create_directories(options.checkpoint_dir);
    digests = load_checkpoint_dir(options.checkpoint_dir, fingerprint);
  }
  std::set<Shard> have;
  for (const CityDigest& digest : digests) have.insert({digest.region, digest.city});

  std::vector<Shard> pending;
  pending.reserve(total - std::min(total, have.size()));
  for (std::uint32_t r = 0; r < config.regions.size(); ++r) {
    const auto cities = static_cast<std::uint32_t>(config.regions[r].cities);
    for (std::uint32_t c = 0; c < cities; ++c) {
      if (have.find({r, c}) == have.end()) pending.push_back({r, c});
    }
  }
  if (options.max_city_shards > 0 && pending.size() > options.max_city_shards) {
    pending.resize(options.max_city_shards);
  }

  if (options.procs > 1 && !pending.empty()) {
    // Process fan-out: round-robin the pending shards over `procs` children,
    // forked BEFORE any thread pool exists in this process. Each child
    // writes its own checkpoint file and exits via _exit (no shared stdio
    // flush); results come back through the checkpoint directory.
    std::vector<std::vector<Shard>> slices(
        static_cast<std::size_t>(options.procs));
    for (std::size_t i = 0; i < pending.size(); ++i) {
      slices[i % slices.size()].push_back(pending[i]);
    }
    std::vector<pid_t> children;
    for (std::size_t k = 0; k < slices.size(); ++k) {
      if (slices[k].empty()) continue;
      const pid_t pid = ::fork();
      util::require_state(pid >= 0,
                          std::string("fork failed: ") + std::strerror(errno));
      if (pid == 0) {
        int status = 0;
        try {
          CheckpointWriter writer(options.checkpoint_dir, fingerprint);
          run_shard_list(config, population, slices[k], options.flush_every, writer);
        } catch (const std::exception& error) {
          std::fprintf(stderr, "country worker %zu failed: %s\n", k, error.what());
          std::fflush(stderr);
          status = 1;
        }
        ::_exit(status);
      }
      children.push_back(pid);
    }
    bool failed = false;
    for (const pid_t pid : children) {
      int status = 0;
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) failed = true;
    }
    util::require_state(!failed,
                        "a country worker process failed; completed shards stay "
                        "in the checkpoint — fix the cause and rerun to resume");
    // Everything the children produced (plus what was already there).
    digests = load_checkpoint_dir(options.checkpoint_dir, fingerprint);
  } else if (!pending.empty()) {
    obs::Heartbeat::Options beat;
    beat.label = "country";
    beat.interval_sec = options.heartbeat_sec;
    beat.total_shards = pending.size();
    beat.done_counter = "country.cities_done";
    const obs::Heartbeat heartbeat(beat);
    CheckpointWriter writer(options.checkpoint_dir, fingerprint);
    std::vector<CityDigest> fresh =
        run_shard_list(config, population, pending, options.flush_every, writer);
    for (CityDigest& digest : fresh) digests.push_back(std::move(digest));
  }

  CountryResult result;
  result.config = config;
  result.completed_shards = digests.size();
  result.complete = digests.size() == total;
  if (result.complete) {
    OBS_SCOPE("country.fold");
    std::sort(digests.begin(), digests.end(), digest_order);
    std::vector<std::string> names;
    names.reserve(config.regions.size());
    for (const RegionConfig& region : config.regions) names.push_back(region.name);
    CountryMetrics metrics(std::move(names));
    for (const CityDigest& digest : digests) metrics.add(digest);
    result.metrics = std::move(metrics);
  }
  return result;
}

}  // namespace insomnia::country
