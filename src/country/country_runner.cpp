#include "country/country_runner.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <utility>

#include "city/city_runner.h"
#include "core/scheme_registry.h"
#include "country/checkpoint.h"
#include "exec/sweep_runner.h"
#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "sim/random.h"
#include "util/error.h"

namespace insomnia::country {

namespace {

// Substream salts of the country layer. The city layer owns salts 11-15
// (keyed on the city seed); these are keyed on the COUNTRY seed with
// stream = region << 32 | city, so every city's identity is a pure function
// of (country seed, region, city) and nothing else. Fault-injection salts
// (41-47) live in resilience/fault_plan.h.
constexpr std::uint64_t kCitySamplerSalt = 21;  ///< archetype draw + nbhd count
constexpr std::uint64_t kCitySeedSalt = 22;     ///< the city's own seed

// Worker-process exit protocol. Children settle their whole slice before
// exiting, so an "exhausted" exit still checkpointed every shard that could
// succeed — only the deterministically-failing ones are missing.
constexpr int kChildCleanExit = 0;      ///< every assigned shard checkpointed
constexpr int kChildFatalExit = 1;      ///< escaped exception (systemic)
constexpr int kChildExhaustedExit = 3;  ///< some shards exhausted retries

using Shard = std::pair<std::uint32_t, std::uint32_t>;  // (region, city)

std::uint64_t shard_stream(std::uint32_t region, std::uint32_t city) {
  return (static_cast<std::uint64_t>(region) << 32) | city;
}

std::string shard_name(const Shard& shard) {
  return "(" + std::to_string(shard.first) + "," + std::to_string(shard.second) + ")";
}

void count_event(const char* name) {
#ifndef INSOMNIA_OBS_DISABLED
  obs::counter(name).add(1);
#else
  (void)name;
#endif
}

// Positional mix resolution, population-first with registry fallback —
// the same contract city::run_city's population overload exposes.
std::vector<core::ScenarioPreset> resolve_presets(
    const std::vector<city::CityMixComponent>& mix,
    const std::vector<core::ScenarioPreset>& population) {
  std::vector<core::ScenarioPreset> resolved;
  resolved.reserve(mix.size());
  for (const city::CityMixComponent& component : mix) {
    const core::ScenarioPreset* found = nullptr;
    for (const core::ScenarioPreset& preset : population) {
      if (preset.name == component.preset) {
        found = &preset;
        break;
      }
    }
    resolved.push_back(found ? *found : core::find_scenario_preset(component.preset));
  }
  return resolved;
}

/// Owns one process's checkpoint file; lazily picks a name no other writer
/// (live or left over from an earlier attempt) owns, then rewrites it
/// atomically with every fresh digest of this invocation on each flush.
/// Under a FaultPlan it can also sabotage its own storage: leave a torn
/// .tmp instead of committing (exactly what a mid-write kill leaves), or
/// corrupt the committed file after the rename (short write / bit flip) —
/// the loud-refusal cases the loader must keep refusing.
class CheckpointWriter {
 public:
  CheckpointWriter(std::string dir, std::uint64_t fingerprint,
                   const resilience::FaultPlan& plan = {},
                   std::uint64_t fault_seed = 0)
      : dir_(std::move(dir)),
        fingerprint_(fingerprint),
        plan_(plan),
        fault_seed_(fault_seed) {}

  void flush(const std::vector<CityDigest>& fresh) {
    if (dir_.empty() || fresh.empty()) return;
    if (path_.empty()) path_ = claim_path();
    const std::uint64_t ordinal = flushes_++;

    if (resilience::fault_fires(plan_.ckpt_torn, fault_seed_, ordinal,
                                resilience::kCkptTornSalt)) {
      resilience::count_injected("ckpt_torn");
      // Tear the write: leave a truncated .tmp and skip the commit. The
      // previous committed file (if any) survives untouched; the next flush
      // rewrites everything fresh, so nothing is lost unless the process
      // dies first — in which case resume re-simulates, which is correct.
      std::ofstream torn(path_ + ".tmp", std::ios::trunc);
      torn << "insomnia-country-checkpoint v" << kCheckpointVersion << "\nshard 0 0";
      return;
    }

    write_checkpoint_file(path_, fingerprint_, fresh);

    if (resilience::fault_fires(plan_.ckpt_short, fault_seed_, ordinal,
                                resilience::kCkptShortSalt)) {
      resilience::count_injected("ckpt_short");
      // A short write that slipped past the atomic rename (e.g. media
      // failure after commit). The loader must refuse this file loudly.
      std::error_code ec;
      const auto size = std::filesystem::file_size(path_, ec);
      if (!ec && size > 1) std::filesystem::resize_file(path_, size / 2, ec);
    }
    if (resilience::fault_fires(plan_.ckpt_flip, fault_seed_, ordinal,
                                resilience::kCkptFlipSalt)) {
      resilience::count_injected("ckpt_flip");
      flip_middle_bit(path_);
    }
  }

 private:
  static void flip_middle_bit(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    if (bytes.empty()) return;
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string claim_path() const {
    // Distinct pids keep concurrent workers apart; the existence probe keeps
    // a recycled pid from clobbering a previous invocation's file (older
    // files hold digests this invocation never re-simulates).
    const std::string stem = dir_ + "/worker-" + std::to_string(::getpid());
    std::string candidate = stem + ".ckpt";
    for (int attempt = 1; std::filesystem::exists(candidate); ++attempt) {
      candidate = stem + "-" + std::to_string(attempt) + ".ckpt";
    }
    return candidate;
  }

  std::string dir_;
  std::uint64_t fingerprint_;
  resilience::FaultPlan plan_;
  std::uint64_t fault_seed_;
  std::uint64_t flushes_ = 0;
  std::string path_;
};

/// How run_shard_list treats a shard that is still failing after its whole
/// retry budget.
enum class FailureMode {
  kThrow,   ///< rethrow / aggregate (fail-fast semantics)
  kSettle,  ///< record it as quarantined and keep going
};

struct ShardListOutcome {
  std::vector<CityDigest> digests;  ///< shard-list order
  std::vector<QuarantinedCity> quarantined;
};

/// Simulates `shards` in flush-sized parallel batches through the retry
/// policy, checkpointing after each batch. Precondition violations
/// (util::InvalidArgument) always propagate, whatever the mode — a config
/// bug must never be quarantined into a silently-smaller country.
/// `kill_after_flush` is the child-kill injection point: SIGKILL this
/// process right after its first non-empty checkpoint flush, guaranteeing
/// the supervisor sees both a dead child AND forward progress.
ShardListOutcome run_shard_list(const CountryConfig& config,
                                const std::vector<core::ScenarioPreset>& population,
                                const std::vector<Shard>& shards,
                                const CountryRunOptions& options,
                                CheckpointWriter& writer, FailureMode mode,
                                bool kill_after_flush = false) {
  const resilience::FaultPlan& plan = options.faults;
  const std::uint64_t fault_seed = plan.seed != 0 ? plan.seed : config.seed;

  exec::SweepRunner runner(config.threads);
  exec::RetryPolicy policy;
  policy.max_attempts = options.max_attempts;
  policy.backoff_base_ms = options.backoff_base_ms;
  policy.backoff_cap_ms = options.backoff_cap_ms;
  policy.seed = config.seed;

  const std::size_t flush =
      options.flush_every > 0
          ? static_cast<std::size_t>(options.flush_every)
          : static_cast<std::size_t>(std::max(8, 2 * runner.threads()));

  ShardListOutcome out;
  out.digests.reserve(shards.size());
  for (std::size_t start = 0; start < shards.size(); start += flush) {
    const std::size_t count = std::min(flush, shards.size() - start);
    const auto shard_fn = [&](std::size_t i, int attempt) {
      const Shard& shard = shards[start + i];
      const std::uint64_t stream = shard_stream(shard.first, shard.second);
      if (resilience::fault_fires(plan.slow_shard, fault_seed, stream,
                                  resilience::kSlowShardSalt, attempt)) {
        resilience::count_injected("slow_shard");
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(plan.slow_shard_ms));
      }
      if (resilience::fault_fires(plan.shard_throw, fault_seed, stream,
                                  resilience::kShardThrowSalt, attempt)) {
        resilience::count_injected("shard_throw");
        throw resilience::InjectedFault("injected shard fault at city " +
                                        shard_name(shard));
      }
      return simulate_city(config, population, shard.first, shard.second);
    };

    if (mode == FailureMode::kThrow) {
      std::vector<CityDigest> chunk = runner.run(count, shard_fn, policy);
      for (CityDigest& digest : chunk) out.digests.push_back(std::move(digest));
    } else {
      auto outcomes = runner.run_settled(count, shard_fn, policy);
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].ok()) {
          out.digests.push_back(std::move(*outcomes[i].value));
          continue;
        }
        if (outcomes[i].fatal) std::rethrow_exception(outcomes[i].error);
        const Shard& shard = shards[start + i];
        out.quarantined.push_back({shard.first, shard.second, outcomes[i].message,
                                   outcomes[i].attempts});
      }
    }

    writer.flush(out.digests);
    if (kill_after_flush && !out.digests.empty()) {
      resilience::count_injected("child_kill");
      ::kill(::getpid(), SIGKILL);
    }
  }
  return out;
}

std::string slice_range(const std::vector<Shard>& slice) {
  if (slice.empty()) return "(none)";
  return shard_name(slice.front()) + " .. " + shard_name(slice.back());
}

}  // namespace

std::string ChildFailure::describe() const {
  std::string text = "child pid " + std::to_string(pid) + " (generation " +
                     std::to_string(generation) + ", slice " + std::to_string(slice) +
                     ", " + std::to_string(shard_count) + " shards " + shard_range +
                     ")";
  if (term_signal != 0) {
    text += " killed by signal " + std::to_string(term_signal);
    const char* name = ::strsignal(term_signal);
    if (name != nullptr) text += std::string(" (") + name + ")";
  } else if (exit_status == kChildExhaustedExit) {
    text += " exited with status " + std::to_string(exit_status) +
            " (some shards exhausted their retry budget)";
  } else {
    text += " exited with status " + std::to_string(exit_status);
  }
  return text;
}

CitySample sample_city(const CountryConfig& config, std::uint32_t region,
                       std::uint32_t city_index) {
  util::require(region < config.regions.size(), "region index out of range");
  const RegionConfig& region_config = config.regions[region];
  util::require(city_index < static_cast<std::uint32_t>(region_config.cities),
                "city index out of range for region " + region_config.name);

  const std::uint64_t stream = shard_stream(region, city_index);
  sim::Random sampler(
      sim::Random::substream_seed(config.seed, stream, kCitySamplerSalt));

  std::vector<double> weights;
  weights.reserve(region_config.portfolio.size());
  for (const CityTemplate& tmpl : region_config.portfolio) weights.push_back(tmpl.weight);

  CitySample sample;
  sample.template_index = sampler.weighted_index(weights);
  const CityTemplate& tmpl = region_config.portfolio[sample.template_index];

  sample.city.mix = tmpl.mix;
  sample.city.neighbourhoods =
      sampler.uniform_int(tmpl.neighbourhoods_min, tmpl.neighbourhoods_max);
  sample.city.seed = sim::Random::substream_seed(config.seed, stream, kCitySeedSalt);
  sample.city.scheme = config.scheme;
  // City shards are the parallel unit; each city runs its neighbourhoods
  // serially so nested pools never oversubscribe (and the serial city path
  // is the bit-identity reference anyway).
  sample.city.threads = 1;
  sample.city.peak_start = config.peak_start;
  sample.city.peak_end = config.peak_end;
  return sample;
}

CityDigest simulate_city(const CountryConfig& config,
                         const std::vector<core::ScenarioPreset>& population,
                         std::uint32_t region, std::uint32_t city_index) {
  OBS_SCOPE("country.city");
  const CitySample sample = sample_city(config, region, city_index);
  const city::CityResult result =
      city::run_city(sample.city, resolve_presets(sample.city.mix, population));
#ifndef INSOMNIA_OBS_DISABLED
  static obs::Counter& done = obs::counter("country.cities_done");
  done.add(1);
#endif
  return digest_from_city(result.metrics, region, city_index, sample.template_index);
}

CountryResult run_country(const CountryConfig& config, const CountryRunOptions& options,
                          const std::vector<core::ScenarioPreset>& population) {
  validate(config);
  core::find_scheme(config.scheme);  // reject unknown schemes before any work
  util::require(options.procs >= 1, "procs must be >= 1");
  util::require(options.max_attempts >= 1, "max_attempts must be >= 1");
  util::require(options.procs == 1 || !options.checkpoint_dir.empty(),
                "process fan-out needs a checkpoint directory: the shared "
                "checkpoint is how worker results reach the parent");

  const std::uint64_t fingerprint = config_fingerprint(config);
  const std::size_t total = total_city_shards(config);
  const std::uint64_t fault_seed =
      options.faults.seed != 0 ? options.faults.seed : config.seed;

  // Resume: load whatever an earlier (interrupted) invocation completed.
  std::vector<CityDigest> digests;
  if (!options.checkpoint_dir.empty()) {
    std::filesystem::create_directories(options.checkpoint_dir);
    digests = load_checkpoint_dir(options.checkpoint_dir, fingerprint);
  }
  const std::size_t resumed = digests.size();

  // Shards not yet in `digests`, canonical order, capped so this invocation
  // completes at most max_city_shards NEW shards (counting across
  // supervision generations, not per generation).
  const auto pending_shards = [&]() {
    std::set<Shard> have;
    for (const CityDigest& digest : digests) have.insert({digest.region, digest.city});
    std::vector<Shard> pending;
    pending.reserve(total - std::min(total, have.size()));
    for (std::uint32_t r = 0; r < config.regions.size(); ++r) {
      const auto cities = static_cast<std::uint32_t>(config.regions[r].cities);
      for (std::uint32_t c = 0; c < cities; ++c) {
        if (have.find({r, c}) == have.end()) pending.push_back({r, c});
      }
    }
    if (options.max_city_shards > 0) {
      const std::size_t fresh = digests.size() - std::min(digests.size(), resumed);
      const std::size_t allowed =
          options.max_city_shards > fresh ? options.max_city_shards - fresh : 0;
      if (pending.size() > allowed) pending.resize(allowed);
    }
    return pending;
  };

  std::vector<QuarantinedCity> quarantined;
  std::vector<ChildFailure> child_failures;
  std::vector<Shard> pending = pending_shards();

  if (options.procs > 1 && !pending.empty()) {
    // Process fan-out under supervision: round-robin the pending shards over
    // `procs` children, forked BEFORE any thread pool exists in this
    // process. Each child settles its slice (retrying failing shards,
    // checkpointing survivors) and exits through the kChild* protocol;
    // results come back through the checkpoint directory. The parent loops
    // GENERATIONS: whatever shards are still missing after a generation —
    // because a child died, or deterministically exhausted its retries —
    // are re-forked until a generation makes no progress. Shards still
    // missing then fall through to the in-process path below, which is the
    // single quarantine authority (so quarantine decisions never depend on
    // which process evaluated a shard).
    for (int generation = 0; !pending.empty(); ++generation) {
      std::vector<std::vector<Shard>> slices(static_cast<std::size_t>(options.procs));
      for (std::size_t i = 0; i < pending.size(); ++i) {
        slices[i % slices.size()].push_back(pending[i]);
      }
      struct Forked {
        pid_t pid;
        std::size_t slice;
      };
      std::vector<Forked> children;
      for (std::size_t k = 0; k < slices.size(); ++k) {
        if (slices[k].empty()) continue;
        const bool kill_child =
            resilience::fault_fires(options.faults.child_kill, fault_seed, k,
                                    resilience::kChildKillSalt,
                                    static_cast<std::uint64_t>(generation));
        const pid_t pid = ::fork();
        util::require_state(pid >= 0,
                            std::string("fork failed: ") + std::strerror(errno));
        if (pid == 0) {
          int status = kChildCleanExit;
          try {
            CheckpointWriter writer(options.checkpoint_dir, fingerprint,
                                    options.faults, fault_seed);
            const ShardListOutcome outcome =
                run_shard_list(config, population, slices[k], options, writer,
                               FailureMode::kSettle, kill_child);
            if (!outcome.quarantined.empty()) status = kChildExhaustedExit;
          } catch (const std::exception& error) {
            std::fprintf(stderr, "country worker %zu failed: %s\n", k, error.what());
            std::fflush(stderr);
            status = kChildFatalExit;
          }
          ::_exit(status);
        }
        children.push_back({pid, k});
      }

      std::vector<ChildFailure> failed_now;
      bool all_exhausted = true;
      for (const Forked& child : children) {
        int status = 0;
        while (::waitpid(child.pid, &status, 0) < 0 && errno == EINTR) {
        }
        if (WIFEXITED(status) && WEXITSTATUS(status) == kChildCleanExit) continue;
        ChildFailure failure;
        failure.pid = static_cast<long>(child.pid);
        failure.generation = generation;
        failure.slice = child.slice;
        failure.shard_count = slices[child.slice].size();
        failure.shard_range = slice_range(slices[child.slice]);
        if (WIFEXITED(status)) {
          failure.exit_status = WEXITSTATUS(status);
          if (failure.exit_status != kChildExhaustedExit) all_exhausted = false;
        } else if (WIFSIGNALED(status)) {
          failure.term_signal = WTERMSIG(status);
          all_exhausted = false;
        }
        count_event("country.child_failures");
        failed_now.push_back(std::move(failure));
      }

      const std::size_t before = digests.size();
      digests = load_checkpoint_dir(options.checkpoint_dir, fingerprint);
      pending = pending_shards();

      if (failed_now.empty()) continue;  // pending is empty (or capped) now
      for (ChildFailure& failure : failed_now) {
        child_failures.push_back(std::move(failure));
      }
      if (options.fail_fast) {
        std::string detail;
        for (const ChildFailure& failure : child_failures) {
          detail += "\n  " + failure.describe();
        }
        throw util::InvalidState(
            "country worker process(es) failed under --fail-fast; completed "
            "shards stay in the checkpoint — fix the cause and rerun to "
            "resume:" + detail);
      }
      if (digests.size() == before || all_exhausted) {
        // No forward progress, or every failure was a deterministic retry
        // exhaustion that a re-fork would replay bit-for-bit. Hand the
        // leftovers to the in-process quarantine authority below.
        break;
      }
      count_event("country.child_reforks");
    }
  }

  pending = pending_shards();
  if (!pending.empty()) {
    obs::Heartbeat::Options beat;
    beat.label = "country";
    beat.interval_sec = options.heartbeat_sec;
    beat.total_shards = pending.size();
    beat.done_counter = "country.cities_done";
    const obs::Heartbeat heartbeat(beat);
    CheckpointWriter writer(options.checkpoint_dir, fingerprint, options.faults,
                            fault_seed);
    ShardListOutcome outcome = run_shard_list(
        config, population, pending, options, writer,
        options.fail_fast ? FailureMode::kThrow : FailureMode::kSettle);
    for (CityDigest& digest : outcome.digests) digests.push_back(std::move(digest));
    quarantined = std::move(outcome.quarantined);
    for (std::size_t i = 0; i < quarantined.size(); ++i) {
      count_event("country.quarantined_cities");
    }
  }

  // A degraded run with NOTHING surviving is not degradation, it is a
  // systemic failure wearing a trench coat — refuse to report it.
  util::require_state(
      quarantined.empty() || !digests.empty(),
      "every city shard failed (" + std::to_string(quarantined.size()) +
          " quarantined, 0 completed): refusing to emit a zero-coverage "
          "degraded report; this failure is systemic, not transient");

  std::sort(quarantined.begin(), quarantined.end(),
            [](const QuarantinedCity& a, const QuarantinedCity& b) {
              return a.region != b.region ? a.region < b.region : a.city < b.city;
            });

  CountryResult result;
  result.config = config;
  result.completed_shards = digests.size();
  result.total_shards = total;
  result.quarantined = std::move(quarantined);
  result.child_failures = std::move(child_failures);
  result.complete = digests.size() + result.quarantined.size() == total;
  if (result.complete) {
    OBS_SCOPE("country.fold");
    std::sort(digests.begin(), digests.end(), digest_order);
    std::vector<std::string> names;
    names.reserve(config.regions.size());
    for (const RegionConfig& region : config.regions) names.push_back(region.name);
    CountryMetrics metrics(std::move(names));
    for (const CityDigest& digest : digests) metrics.add(digest);
    result.metrics = std::move(metrics);
  }
  return result;
}

}  // namespace insomnia::country
