// Streaming bounded-memory roll-ups for a country-scale federated fleet.
// Each simulated city collapses into a CityDigest — a couple dozen scalars
// plus a RunningStats of its per-neighbourhood savings — so a 620-city,
// ≥1M-gateway run carries kilobytes of state, not day series. Digests fold
// into RegionMetrics and CountryMetrics in canonical (region, city) order;
// because each digest is a pure function of (config, region, city) and the
// fold order is fixed, the final aggregates are bit-identical at any thread
// or process count and across checkpoint/resume splits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/summary.h"

namespace insomnia::city {
class CityMetrics;
}

namespace insomnia::country {

/// Everything one simulated city contributes to the country aggregates.
/// The watt fields are the city layer's exact accumulators (sums of
/// per-neighbourhood mean draws), carried verbatim so the roll-up never
/// re-derives — and re-rounds — a split the city already computed.
struct CityDigest {
  std::uint32_t region = 0;  ///< region index in CountryConfig::regions
  std::uint32_t city = 0;    ///< city index within the region
  std::size_t template_index = 0;  ///< which portfolio archetype was drawn

  std::size_t neighbourhoods = 0;
  long gateways = 0;
  long clients = 0;

  double baseline_watts = 0.0;
  double scheme_watts = 0.0;
  double baseline_user_watts = 0.0;
  double baseline_isp_watts = 0.0;
  double saved_user_watts = 0.0;
  double saved_isp_watts = 0.0;

  double peak_online_gateways = 0.0;
  long wake_events = 0;

  /// Across-neighbourhood savings distribution of this city; merged upward
  /// via stats::RunningStats::merge.
  stats::RunningStats savings;

  /// Energy-weighted savings of this city.
  double savings_fraction() const;
};

/// Builds the digest of one simulated city from its folded CityMetrics.
CityDigest digest_from_city(const city::CityMetrics& metrics, std::uint32_t region,
                            std::uint32_t city, std::size_t template_index);

/// Canonical fold order: region-major, then city index.
bool digest_order(const CityDigest& a, const CityDigest& b);

/// One region's slice of the country aggregates.
struct RegionMetrics {
  std::string name;
  std::size_t cities = 0;
  std::size_t neighbourhoods = 0;
  long gateways = 0;
  long clients = 0;
  double baseline_watts = 0.0;
  double scheme_watts = 0.0;
  double peak_online_gateways = 0.0;
  long wake_events = 0;
  stats::RunningStats savings;  ///< per-neighbourhood, merged across cities

  double savings_fraction() const;
  /// Student-t 95 % half-width — region slices can hold few neighbourhoods,
  /// where the normal approximation understates (stats::ci95_halfwidth).
  double savings_ci95_halfwidth() const;
};

/// The country-wide fold. Construct with the region names, then add() every
/// CityDigest in canonical order (digest_order; the runner sorts).
class CountryMetrics {
 public:
  explicit CountryMetrics(std::vector<std::string> region_names);
  CountryMetrics() = default;

  /// Folds one city. Digests must arrive in strictly increasing canonical
  /// order — the guard that keeps every caller on the deterministic fold.
  void add(const CityDigest& digest);

  std::size_t cities() const { return cities_; }
  std::size_t neighbourhoods() const { return neighbourhoods_; }
  long total_gateways() const { return total_gateways_; }
  long total_clients() const { return total_clients_; }

  /// Country-wide mean power draws (W), summed over every neighbourhood.
  double baseline_watts() const { return baseline_watts_; }
  double scheme_watts() const { return scheme_watts_; }

  /// Energy-weighted fractional savings of the whole country (0 when empty).
  double savings_fraction() const;

  /// Share of the saved energy on the ISP side, in [0,1].
  double isp_share_of_savings() const;

  /// Baseline per-subscriber draws (gateway = household = DSL subscriber).
  double baseline_household_watts_per_gateway() const;
  double baseline_isp_watts_per_gateway() const;

  /// Across-neighbourhood savings distribution of the whole country and its
  /// Student-t 95 % confidence half-width.
  const stats::RunningStats& neighbourhood_savings() const { return savings_; }
  double savings_ci95_halfwidth() const;

  double peak_online_gateways() const { return peak_online_gateways_; }
  long wake_events() const { return wake_events_; }

  /// One slice per region, in CountryConfig::regions order.
  const std::vector<RegionMetrics>& per_region() const { return per_region_; }

 private:
  std::size_t cities_ = 0;
  std::size_t neighbourhoods_ = 0;
  long total_gateways_ = 0;
  long total_clients_ = 0;
  double baseline_watts_ = 0.0;
  double scheme_watts_ = 0.0;
  double baseline_user_watts_ = 0.0;
  double baseline_isp_watts_ = 0.0;
  double saved_user_watts_ = 0.0;
  double saved_isp_watts_ = 0.0;
  double peak_online_gateways_ = 0.0;
  long wake_events_ = 0;
  stats::RunningStats savings_;
  std::vector<RegionMetrics> per_region_;
  bool any_added_ = false;
  std::uint64_t last_key_ = 0;
};

}  // namespace insomnia::country
