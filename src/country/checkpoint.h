// Versioned checkpoint files for country-scale runs. A multi-hour fleet run
// must survive interruption: every completed city shard collapses to a
// CityDigest, and digests are persisted as they complete so a resumed run
// re-simulates only the missing cities and still folds a bit-identical
// final CountryMetrics (the digest encoding round-trips every double by bit
// pattern, never through decimal).
//
// Layout: a checkpoint is a DIRECTORY holding one or more `*.ckpt` files.
// Each writer (one per process under --procs fan-out) owns a single file
// and rewrites it atomically — write to `<file>.tmp`, then rename(2) — so a
// kill at any instant leaves either the previous complete file or the new
// complete file, never a torn one. Readers union every `*.ckpt` in the
// directory; a shard recorded twice (possible across resume attempts) is
// bit-identical by construction, so the first occurrence wins.
//
// File format (line-oriented text, strict):
//   insomnia-country-checkpoint v1
//   fingerprint <16 hex digits>
//   shard <region> <city> <template> <nbhds> <gateways> <clients> <wakes>
//         <savings-count> <11 x 16-hex-digit double bit patterns>
//   ...
//   end <shard-count>
// A missing/short trailer, a malformed line, or a count mismatch is a
// corrupt checkpoint and is rejected with a clear error; a different
// version line or fingerprint is refused explicitly (a resume must never
// silently mix configurations).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "country/country_config.h"
#include "country/country_metrics.h"

namespace insomnia::country {

/// The checkpoint format version this build reads and writes.
inline constexpr int kCheckpointVersion = 1;

/// Stable fingerprint of everything that determines shard results: seed,
/// scheme, peak window, and the full region/portfolio structure. Two
/// configs with equal fingerprints produce bit-identical digests per
/// (region, city), which is what makes resuming under one safe.
std::uint64_t config_fingerprint(const CountryConfig& config);

/// Atomically (re)writes one checkpoint file holding `digests`.
/// Throws util::InvalidState when the file cannot be written.
void write_checkpoint_file(const std::string& path, std::uint64_t fingerprint,
                           const std::vector<CityDigest>& digests);

/// Parses one checkpoint file, verifying version, fingerprint, and
/// structure. Throws util::InvalidArgument naming the file and the problem
/// on any mismatch or corruption.
std::vector<CityDigest> read_checkpoint_file(const std::string& path,
                                             std::uint64_t fingerprint);

/// Loads every `*.ckpt` file under `dir` (non-recursive) and unions the
/// digests by (region, city), keeping the first occurrence. A missing
/// directory yields an empty vector (a fresh run); any unreadable or
/// mismatched file throws. Stray `*.tmp` files — torn writes left by a
/// writer killed before its atomic rename — are deleted (salvage: the
/// committed file beside them holds the last complete flush, so the debris
/// carries no data); corruption in a committed `.ckpt` still refuses.
std::vector<CityDigest> load_checkpoint_dir(const std::string& dir,
                                            std::uint64_t fingerprint);

}  // namespace insomnia::country
