// The §5.4 world figure, produced the honest way: every input — the
// per-subscriber household and ISP draws, the savings fraction, the ISP
// share — comes from the country-scale simulated fleet (≥1M gateways at full
// scale), and the headline TWh/yr carries a 95 % confidence interval
// propagated from the across-neighbourhood savings distribution. This
// retires the constants path (core::WorldExtrapolationConfig defaults) and
// the single-city bridge (city/world_extrapolation.h) for the headline.
#pragma once

#include "core/extrapolation.h"
#include "country/country_metrics.h"

namespace insomnia::country {

/// Builds the §5.4 inputs from a simulated country. Throws
/// util::InvalidArgument on an empty or degenerate fleet.
core::WorldExtrapolationConfig world_config_from_country(const CountryMetrics& metrics,
                                                         double dsl_subscribers = 320e6);

/// The full simulation-grounded world estimate.
struct CountryWorldEstimate {
  core::WorldExtrapolationConfig config;  ///< derived inputs, for reporting
  core::SavingsSplitTwh split;            ///< central estimate, user/ISP split
  /// Student-t 95 % half-width of the mean per-neighbourhood savings
  /// fraction (dimensionless).
  double savings_ci95 = 0.0;
  /// The same half-width propagated to the annual figure: the world access
  /// draw is treated as known (it is a sum over the simulated fleet, scaled),
  /// so the TWh uncertainty is linear in the savings-fraction uncertainty.
  double total_twh_ci95 = 0.0;
};

/// Computes the estimate: TWh/yr split by the simulated ISP share, with the
/// 95 % CI from CountryMetrics::savings_ci95_halfwidth.
CountryWorldEstimate annual_savings_from_country(const CountryMetrics& metrics,
                                                 double dsl_subscribers = 320e6);

}  // namespace insomnia::country
