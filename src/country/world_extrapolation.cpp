#include "country/world_extrapolation.h"

#include "util/error.h"

namespace insomnia::country {

core::WorldExtrapolationConfig world_config_from_country(const CountryMetrics& metrics,
                                                         double dsl_subscribers) {
  util::require(metrics.neighbourhoods() > 0 && metrics.total_gateways() > 0,
                "world extrapolation needs a non-empty simulated country");
  core::WorldExtrapolationConfig config;
  config.dsl_subscribers = dsl_subscribers;
  config.household_watts = metrics.baseline_household_watts_per_gateway();
  config.isp_watts_per_subscriber = metrics.baseline_isp_watts_per_gateway();
  config.savings_fraction = metrics.savings_fraction();
  core::validate(config);  // a degenerate fleet must not extrapolate quietly
  return config;
}

CountryWorldEstimate annual_savings_from_country(const CountryMetrics& metrics,
                                                 double dsl_subscribers) {
  CountryWorldEstimate estimate;
  estimate.config = world_config_from_country(metrics, dsl_subscribers);
  estimate.split = core::annual_savings_split_twh(estimate.config,
                                                  metrics.isp_share_of_savings());
  estimate.savings_ci95 = metrics.savings_ci95_halfwidth();
  const double access_twh_per_year =
      core::world_access_watts(estimate.config) * 8760.0 / 1e12;
  estimate.total_twh_ci95 = access_twh_per_year * estimate.savings_ci95;
  return estimate;
}

}  // namespace insomnia::country
