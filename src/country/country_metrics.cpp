#include "country/country_metrics.h"

#include <utility>

#include "city/city_metrics.h"
#include "util/error.h"

namespace insomnia::country {

namespace {

double fraction_or_zero(double part, double whole) {
  return whole > 0.0 ? part / whole : 0.0;
}

std::uint64_t shard_key(std::uint32_t region, std::uint32_t city) {
  return (static_cast<std::uint64_t>(region) << 32) | city;
}

}  // namespace

double CityDigest::savings_fraction() const {
  return baseline_watts > 0.0 ? 1.0 - scheme_watts / baseline_watts : 0.0;
}

CityDigest digest_from_city(const city::CityMetrics& metrics, std::uint32_t region,
                            std::uint32_t city, std::size_t template_index) {
  CityDigest digest;
  digest.region = region;
  digest.city = city;
  digest.template_index = template_index;
  digest.neighbourhoods = metrics.neighbourhoods();
  digest.gateways = metrics.total_gateways();
  digest.clients = metrics.total_clients();
  digest.baseline_watts = metrics.baseline_watts();
  digest.scheme_watts = metrics.scheme_watts();
  digest.baseline_user_watts = metrics.baseline_user_watts();
  digest.baseline_isp_watts = metrics.baseline_isp_watts();
  digest.saved_user_watts = metrics.saved_user_watts();
  digest.saved_isp_watts = metrics.saved_isp_watts();
  digest.peak_online_gateways = metrics.peak_online_gateways();
  digest.wake_events = metrics.wake_events();
  digest.savings = metrics.neighbourhood_savings();
  return digest;
}

bool digest_order(const CityDigest& a, const CityDigest& b) {
  return shard_key(a.region, a.city) < shard_key(b.region, b.city);
}

double RegionMetrics::savings_fraction() const {
  return baseline_watts > 0.0 ? 1.0 - scheme_watts / baseline_watts : 0.0;
}

double RegionMetrics::savings_ci95_halfwidth() const {
  return stats::ci95_halfwidth(savings);
}

CountryMetrics::CountryMetrics(std::vector<std::string> region_names) {
  per_region_.reserve(region_names.size());
  for (std::string& name : region_names) {
    RegionMetrics region;
    region.name = std::move(name);
    per_region_.push_back(std::move(region));
  }
}

void CountryMetrics::add(const CityDigest& digest) {
  util::require(digest.region < per_region_.size(),
                "city digest region index out of range for this country");
  util::require(digest.neighbourhoods > 0, "city digest must hold neighbourhoods");
  const std::uint64_t key = shard_key(digest.region, digest.city);
  util::require(!any_added_ || key > last_key_,
                "city digests must fold in canonical (region, city) order");
  any_added_ = true;
  last_key_ = key;

  ++cities_;
  neighbourhoods_ += digest.neighbourhoods;
  total_gateways_ += digest.gateways;
  total_clients_ += digest.clients;
  baseline_watts_ += digest.baseline_watts;
  scheme_watts_ += digest.scheme_watts;
  baseline_user_watts_ += digest.baseline_user_watts;
  baseline_isp_watts_ += digest.baseline_isp_watts;
  saved_user_watts_ += digest.saved_user_watts;
  saved_isp_watts_ += digest.saved_isp_watts;
  peak_online_gateways_ += digest.peak_online_gateways;
  wake_events_ += digest.wake_events;
  savings_.merge(digest.savings);

  RegionMetrics& region = per_region_[digest.region];
  ++region.cities;
  region.neighbourhoods += digest.neighbourhoods;
  region.gateways += digest.gateways;
  region.clients += digest.clients;
  region.baseline_watts += digest.baseline_watts;
  region.scheme_watts += digest.scheme_watts;
  region.peak_online_gateways += digest.peak_online_gateways;
  region.wake_events += digest.wake_events;
  region.savings.merge(digest.savings);
}

double CountryMetrics::savings_fraction() const {
  return baseline_watts_ > 0.0 ? 1.0 - scheme_watts_ / baseline_watts_ : 0.0;
}

double CountryMetrics::isp_share_of_savings() const {
  const double saved = saved_user_watts_ + saved_isp_watts_;
  // Same guard as the city layer: comparing no-sleep to itself must report
  // 0, not numerical noise.
  if (saved <= baseline_watts_ * 1e-9) return 0.0;
  return saved_isp_watts_ / saved;
}

double CountryMetrics::baseline_household_watts_per_gateway() const {
  return fraction_or_zero(baseline_user_watts_, static_cast<double>(total_gateways_));
}

double CountryMetrics::baseline_isp_watts_per_gateway() const {
  return fraction_or_zero(baseline_isp_watts_, static_cast<double>(total_gateways_));
}

double CountryMetrics::savings_ci95_halfwidth() const {
  return stats::ci95_halfwidth(savings_);
}

}  // namespace insomnia::country
