#include "country/country_config.h"

#include <cmath>

#include "util/error.h"

namespace insomnia::country {

void validate(const CountryConfig& config) {
  util::require(!config.regions.empty(), "country needs at least one region");
  util::require(config.peak_start < config.peak_end,
                "country peak window must be non-empty (start < end)");
  for (const RegionConfig& region : config.regions) {
    util::require(!region.name.empty(), "every region needs a name");
    util::require(region.cities >= 1,
                  "region \"" + region.name + "\" needs at least one city");
    util::require(!region.portfolio.empty(),
                  "region \"" + region.name + "\" needs a non-empty portfolio");
    for (const CityTemplate& tmpl : region.portfolio) {
      util::require(tmpl.weight > 0.0, "template \"" + tmpl.name +
                                           "\" weight must be positive");
      util::require(tmpl.neighbourhoods_min >= 1,
                    "template \"" + tmpl.name + "\" needs at least one neighbourhood");
      util::require(tmpl.neighbourhoods_max >= tmpl.neighbourhoods_min,
                    "template \"" + tmpl.name + "\" neighbourhood range is backwards");
      // Reuse the city layer's mix/jitter rules via a throwaway CityConfig.
      city::CityConfig probe;
      probe.mix = tmpl.mix;
      city::validate(probe);
    }
  }
}

std::size_t total_city_shards(const CountryConfig& config) {
  std::size_t total = 0;
  for (const RegionConfig& region : config.regions) {
    total += static_cast<std::size_t>(region.cities);
  }
  return total;
}

namespace {

int scaled(int value, double scale) {
  return std::max(1, static_cast<int>(std::lround(value * scale)));
}

CityTemplate make_template(const std::string& name, double weight,
                           std::vector<city::CityMixComponent> mix, int nbhd_min,
                           int nbhd_max, double neighbourhood_scale) {
  CityTemplate tmpl;
  tmpl.name = name;
  tmpl.weight = weight;
  tmpl.mix = std::move(mix);
  tmpl.neighbourhoods_min = scaled(nbhd_min, neighbourhood_scale);
  tmpl.neighbourhoods_max =
      std::max(tmpl.neighbourhoods_min, scaled(nbhd_max, neighbourhood_scale));
  return tmpl;
}

}  // namespace

CountryConfig default_country(double city_scale, double neighbourhood_scale) {
  util::require(city_scale > 0.0 && neighbourhood_scale > 0.0,
                "country scale factors must be positive");

  // Moderate per-neighbourhood variation, as in city::default_city.
  city::NeighbourhoodJitter jitter;
  jitter.gateway_count_spread = 0.25;
  jitter.client_density_spread = 0.25;
  jitter.backhaul_sigma = 0.20;
  jitter.diurnal_phase_spread = 2.0 * 3600.0;

  // Sparser plants vary more: rural build-outs and developing-world
  // deployments differ block to block far more than a planned metro core.
  city::NeighbourhoodJitter wide = jitter;
  wide.gateway_count_spread = 0.35;
  wide.client_density_spread = 0.35;
  wide.backhaul_sigma = 0.35;
  wide.diurnal_phase_spread = 3.0 * 3600.0;

  const double ns = neighbourhood_scale;

  RegionConfig metro;
  metro.name = "metro";
  metro.cities = scaled(90, city_scale);
  metro.portfolio = {
      make_template("metro-core", 0.6,
                    {{"dense-urban", 0.80, jitter}, {"paper-default", 0.20, jitter}},
                    56, 96, ns),
      make_template("metro-ring", 0.4,
                    {{"dense-urban", 0.45, jitter}, {"paper-default", 0.55, jitter}},
                    40, 72, ns),
  };

  RegionConfig suburban;
  suburban.name = "suburban";
  suburban.cities = scaled(200, city_scale);
  suburban.portfolio = {
      make_template("suburb-carpet", 0.7,
                    {{"paper-default", 0.80, jitter},
                     {"dense-urban", 0.10, jitter},
                     {"sparse-rural", 0.10, jitter}},
                    40, 72, ns),
      make_template("suburb-edge", 0.3,
                    {{"paper-default", 0.60, jitter}, {"sparse-rural", 0.40, wide}},
                    32, 56, ns),
  };

  RegionConfig rural;
  rural.name = "rural";
  rural.cities = scaled(150, city_scale);
  rural.portfolio = {
      make_template("rural-town", 0.5,
                    {{"sparse-rural", 0.70, wide}, {"paper-default", 0.30, jitter}},
                    24, 48, ns),
      make_template("rural-stretch", 0.5, {{"sparse-rural", 1.0, wide}}, 20, 40, ns),
  };

  RegionConfig developing;
  developing.name = "developing";
  developing.cities = scaled(180, city_scale);
  developing.portfolio = {
      make_template("developing-town", 0.6,
                    {{"developing-world", 0.85, wide}, {"sparse-rural", 0.15, wide}},
                    32, 64, ns),
      make_template("developing-metro", 0.4,
                    {{"developing-world", 0.55, wide}, {"paper-default", 0.45, jitter}},
                    40, 72, ns),
  };

  CountryConfig config;
  config.name = "default-country";
  config.regions = {metro, suburban, rural, developing};
  return config;
}

}  // namespace insomnia::country
