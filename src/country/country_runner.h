// The country engine: instantiates every city of the portfolio (archetype
// draw -> neighbourhood count -> keyed city seed), simulates it through the
// city layer, collapses it to a CityDigest, and folds the digests into
// CountryMetrics in canonical order. City shards run across threads
// (exec::SweepRunner), across processes (CountryRunOptions::procs, fork +
// shared checkpoint directory), or across separate invocations
// (checkpoint/resume) — all three produce bit-identical final aggregates
// because every shard derives all randomness from substreams keyed on
// (country seed, region, city) alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "city/city_config.h"
#include "core/scenario_presets.h"
#include "country/country_config.h"
#include "country/country_metrics.h"

namespace insomnia::country {

/// One fully-derived city of the portfolio.
struct CitySample {
  std::size_t template_index = 0;  ///< which archetype the region drew
  city::CityConfig city;           ///< mix, neighbourhood count, keyed seed
};

/// Derives city `city_index` of region `region` — a pure function of
/// (config, region, city_index); sampling never consumes shared RNG state.
CitySample sample_city(const CountryConfig& config, std::uint32_t region,
                       std::uint32_t city_index);

/// Simulates one city shard end to end and collapses it to a digest. Mix
/// preset names resolve against `population` first (the test hook for
/// shrunken scenarios, mirroring city::run_city's), then the registry.
CityDigest simulate_city(const CountryConfig& config,
                         const std::vector<core::ScenarioPreset>& population,
                         std::uint32_t region, std::uint32_t city_index);

/// Execution knobs orthogonal to what is simulated (none of these can
/// change a digest, only how and when shards run).
struct CountryRunOptions {
  /// Directory for checkpoint files; "" disables checkpointing. Created if
  /// missing; an existing checkpoint for the same config fingerprint is
  /// resumed (completed shards are not re-simulated), a mismatched one is
  /// refused.
  std::string checkpoint_dir;
  /// City shards between checkpoint rewrites (also the parallel batch
  /// width); <= 0 selects max(8, 2 * worker threads).
  int flush_every = 0;
  /// Process fan-out: fork this many children, each simulating a
  /// round-robin slice of the pending shards and writing its own checkpoint
  /// file. Requires checkpoint_dir (the shared medium the results travel
  /// through). 1 = in-process only.
  int procs = 1;
  /// Test/ops hook simulating an interruption: stop (after checkpointing)
  /// once this many NEW shards completed this invocation. 0 = run to the
  /// end.
  std::size_t max_city_shards = 0;
  /// Seconds between fleet heartbeat lines on stderr; <= 0 disables. Only
  /// the in-process path (procs == 1) beats: metrics are per-process, so a
  /// forked parent has nothing live to report.
  double heartbeat_sec = 0.0;
};

/// Outcome of one run_country invocation.
struct CountryResult {
  CountryConfig config;
  /// False when max_city_shards stopped the run early; the checkpoint (if
  /// any) holds completed_shards digests and the same call resumes.
  bool complete = false;
  std::size_t completed_shards = 0;
  /// Folded aggregates; populated only when complete.
  CountryMetrics metrics;
};

/// Runs the whole country. `population` as in simulate_city (empty: resolve
/// every preset name against the registry).
CountryResult run_country(const CountryConfig& config,
                          const CountryRunOptions& options = {},
                          const std::vector<core::ScenarioPreset>& population = {});

}  // namespace insomnia::country
