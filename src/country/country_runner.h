// The country engine: instantiates every city of the portfolio (archetype
// draw -> neighbourhood count -> keyed city seed), simulates it through the
// city layer, collapses it to a CityDigest, and folds the digests into
// CountryMetrics in canonical order. City shards run across threads
// (exec::SweepRunner), across processes (CountryRunOptions::procs, fork +
// shared checkpoint directory), or across separate invocations
// (checkpoint/resume) — all three produce bit-identical final aggregates
// because every shard derives all randomness from substreams keyed on
// (country seed, region, city) alone.
//
// Resilience: the runner self-heals. Failing shards are retried with
// capped-exponential-backoff full jitter; a child process that dies is
// re-forked from the last checkpoint; a shard still failing after its whole
// retry budget is QUARANTINED — dropped from the fold — instead of aborting
// the fleet, and the result reports the degradation (coverage fraction plus
// the quarantined city list). Because injected and simulated failures are
// pure functions of (seed, shard, attempt), the quarantine set is identical
// at any thread or process count. fail_fast restores abort-on-first-failure
// semantics; precondition violations (util::InvalidArgument) always abort.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "city/city_config.h"
#include "core/scenario_presets.h"
#include "country/country_config.h"
#include "country/country_metrics.h"
#include "resilience/fault_plan.h"

namespace insomnia::country {

/// One fully-derived city of the portfolio.
struct CitySample {
  std::size_t template_index = 0;  ///< which archetype the region drew
  city::CityConfig city;           ///< mix, neighbourhood count, keyed seed
};

/// Derives city `city_index` of region `region` — a pure function of
/// (config, region, city_index); sampling never consumes shared RNG state.
CitySample sample_city(const CountryConfig& config, std::uint32_t region,
                       std::uint32_t city_index);

/// Simulates one city shard end to end and collapses it to a digest. Mix
/// preset names resolve against `population` first (the test hook for
/// shrunken scenarios, mirroring city::run_city's), then the registry.
CityDigest simulate_city(const CountryConfig& config,
                         const std::vector<core::ScenarioPreset>& population,
                         std::uint32_t region, std::uint32_t city_index);

/// Execution knobs orthogonal to what is simulated (none of these can
/// change a digest, only how and when shards run — and, under faults,
/// which shards survive into the fold).
struct CountryRunOptions {
  /// Directory for checkpoint files; "" disables checkpointing. Created if
  /// missing; an existing checkpoint for the same config fingerprint is
  /// resumed (completed shards are not re-simulated), a mismatched one is
  /// refused.
  std::string checkpoint_dir;
  /// City shards between checkpoint rewrites (also the parallel batch
  /// width); <= 0 selects max(8, 2 * worker threads).
  int flush_every = 0;
  /// Process fan-out: fork this many children, each simulating a
  /// round-robin slice of the pending shards and writing its own checkpoint
  /// file. Requires checkpoint_dir (the shared medium the results travel
  /// through). 1 = in-process only.
  int procs = 1;
  /// Test/ops hook simulating an interruption: stop (after checkpointing)
  /// once this many NEW shards completed this invocation. 0 = run to the
  /// end.
  std::size_t max_city_shards = 0;
  /// Seconds between fleet heartbeat lines on stderr; <= 0 disables. Only
  /// the in-process path (procs == 1) beats: metrics are per-process, so a
  /// forked parent has nothing live to report.
  double heartbeat_sec = 0.0;

  /// Deterministic fault injection plan (chaos testing); default none.
  /// Faults key off faults.seed when set, else the country seed.
  resilience::FaultPlan faults;
  /// Per-shard retry budget (>= 1); 1 disables retries. Retries cannot
  /// change results — a shard that eventually succeeds is bit-identical to
  /// one that succeeded first try.
  int max_attempts = 3;
  /// Capped-exponential full-jitter backoff between attempts of one shard;
  /// base <= 0 disables sleeping (retries run back to back).
  double backoff_base_ms = 0.0;
  double backoff_cap_ms = 0.0;
  /// Abort on the first shard or child failure (after retries) instead of
  /// quarantining and degrading. Precondition violations abort regardless.
  bool fail_fast = false;
};

/// One city dropped from the fold after exhausting its retry budget.
struct QuarantinedCity {
  std::uint32_t region = 0;
  std::uint32_t city = 0;
  std::string reason;  ///< what() of the shard's first failing attempt
  int attempts = 0;    ///< attempts made before giving up
};

/// One worker process that did not exit cleanly (the supervisor re-forks
/// survivors' work; this is the forensic record of what died and why).
struct ChildFailure {
  long pid = 0;
  int generation = 0;       ///< which re-fork round the child belonged to
  std::size_t slice = 0;    ///< its round-robin slice index
  std::size_t shard_count = 0;  ///< shards it was assigned
  std::string shard_range;  ///< "(r,c) .. (r,c)" first/last assigned shard
  int exit_status = -1;     ///< WEXITSTATUS when it exited; -1 if signalled
  int term_signal = 0;      ///< WTERMSIG when signalled; 0 if it exited

  /// "child pid 1234 (generation 0, slice 1, 5 shards (0,0) .. (1,4))
  ///  killed by signal 9" — the one-line triage string.
  std::string describe() const;
};

/// Outcome of one run_country invocation.
struct CountryResult {
  CountryConfig config;
  /// True when every city shard is accounted for — folded or quarantined.
  /// False when max_city_shards stopped the run early; the checkpoint (if
  /// any) holds completed_shards digests and the same call resumes.
  bool complete = false;
  std::size_t completed_shards = 0;
  std::size_t total_shards = 0;
  /// Folded aggregates over the surviving cities; populated only when
  /// complete.
  CountryMetrics metrics;

  /// Cities dropped from the fold (canonical order); empty on clean runs.
  std::vector<QuarantinedCity> quarantined;
  /// Worker processes that died across all supervision generations.
  std::vector<ChildFailure> child_failures;

  /// A degraded run completed, but the fold is missing quarantined cities.
  bool degraded() const { return !quarantined.empty(); }
  /// Fraction of city shards that made it into the fold, in [0, 1].
  double coverage() const {
    return total_shards == 0
               ? 1.0
               : static_cast<double>(completed_shards) /
                     static_cast<double>(total_shards);
  }
};

/// Runs the whole country. `population` as in simulate_city (empty: resolve
/// every preset name against the registry).
CountryResult run_country(const CountryConfig& config,
                          const CountryRunOptions& options = {},
                          const std::vector<core::ScenarioPreset>& population = {});

}  // namespace insomnia::country
