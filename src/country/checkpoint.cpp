#include "country/checkpoint.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/strings.h"

namespace insomnia::country {

namespace {

constexpr const char* kMagic = "insomnia-country-checkpoint";

std::string version_line() {
  return std::string(kMagic) + " v" + std::to_string(kCheckpointVersion);
}

std::string hex_u64(std::uint64_t bits) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(bits));
  return buffer;
}

// Doubles cross the checkpoint as their IEEE-754 bit pattern in hex: the
// resume-equals-uninterrupted contract is BIT identity, and a decimal
// round-trip would be one rounding away from breaking it.
std::string hex_bits(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return hex_u64(bits);
}

bool parse_hex_u64(const std::string& token, std::uint64_t& out) {
  if (token.size() != 16) return false;
  std::uint64_t bits = 0;
  for (char c : token) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
    else return false;
    bits = (bits << 4) | static_cast<std::uint64_t>(digit);
  }
  out = bits;
  return true;
}

bool parse_hex_double(const std::string& token, double& out) {
  std::uint64_t bits;
  if (!parse_hex_u64(token, bits)) return false;
  std::memcpy(&out, &bits, sizeof(out));
  return true;
}

// FNV-1a 64 over the canonical config serialization.
class Fingerprint {
 public:
  void feed(std::string_view text) {
    for (char c : text) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 1099511628211ull;
    }
    feed_byte('\x1f');  // field separator: "ab"+"c" must differ from "a"+"bc"
  }
  void feed(double value) { feed(hex_bits(value)); }
  void feed(std::uint64_t value) { feed(hex_u64(value)); }
  void feed(int value) { feed(static_cast<std::uint64_t>(value)); }
  std::uint64_t hash() const { return hash_; }

 private:
  void feed_byte(char c) {
    hash_ ^= static_cast<unsigned char>(c);
    hash_ *= 1099511628211ull;
  }
  std::uint64_t hash_ = 14695981039346656037ull;
};

[[noreturn]] void corrupt(const std::string& path, const std::string& why) {
  throw util::InvalidArgument("corrupt checkpoint " + path + ": " + why);
}

}  // namespace

std::uint64_t config_fingerprint(const CountryConfig& config) {
  Fingerprint fp;
  fp.feed(config.seed);
  fp.feed(config.scheme);
  fp.feed(config.peak_start);
  fp.feed(config.peak_end);
  fp.feed(static_cast<std::uint64_t>(config.regions.size()));
  for (const RegionConfig& region : config.regions) {
    fp.feed(region.name);
    fp.feed(region.cities);
    fp.feed(static_cast<std::uint64_t>(region.portfolio.size()));
    for (const CityTemplate& tmpl : region.portfolio) {
      fp.feed(tmpl.name);
      fp.feed(tmpl.weight);
      fp.feed(tmpl.neighbourhoods_min);
      fp.feed(tmpl.neighbourhoods_max);
      fp.feed(static_cast<std::uint64_t>(tmpl.mix.size()));
      for (const city::CityMixComponent& component : tmpl.mix) {
        fp.feed(component.preset);
        fp.feed(component.weight);
        fp.feed(component.jitter.gateway_count_spread);
        fp.feed(component.jitter.client_density_spread);
        fp.feed(component.jitter.backhaul_sigma);
        fp.feed(component.jitter.diurnal_phase_spread);
      }
    }
  }
  return fp.hash();
}

void write_checkpoint_file(const std::string& path, std::uint64_t fingerprint,
                           const std::vector<CityDigest>& digests) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    util::require_state(static_cast<bool>(out), "cannot write checkpoint " + tmp);
    out << version_line() << "\n";
    out << "fingerprint " << hex_u64(fingerprint) << "\n";
    for (const CityDigest& d : digests) {
      out << "shard " << d.region << " " << d.city << " " << d.template_index << " "
          << d.neighbourhoods << " " << d.gateways << " " << d.clients << " "
          << d.wake_events << " " << d.savings.count();
      for (double value :
           {d.baseline_watts, d.scheme_watts, d.baseline_user_watts,
            d.baseline_isp_watts, d.saved_user_watts, d.saved_isp_watts,
            d.peak_online_gateways, d.savings.mean(), d.savings.m2(),
            d.savings.min(), d.savings.max()}) {
        out << " " << hex_bits(value);
      }
      out << "\n";
    }
    out << "end " << digests.size() << "\n";
    out.flush();
    util::require_state(static_cast<bool>(out), "failed writing checkpoint " + tmp);
  }
  // rename(2) within one directory is atomic: a kill leaves either the old
  // complete file or the new complete file.
  util::require_state(std::rename(tmp.c_str(), path.c_str()) == 0,
                      "cannot rename checkpoint " + tmp + " -> " + path + ": " +
                          std::strerror(errno));
}

std::vector<CityDigest> read_checkpoint_file(const std::string& path,
                                             std::uint64_t fingerprint) {
  std::ifstream in(path);
  util::require(static_cast<bool>(in), "cannot read checkpoint " + path);

  std::string line;
  if (!std::getline(in, line)) corrupt(path, "empty file");
  if (line != version_line()) {
    if (util::starts_with(line, kMagic)) {
      throw util::InvalidArgument(
          "checkpoint version mismatch in " + path + ": file says \"" + line +
          "\", this build reads \"" + version_line() +
          "\"; finish the run with the build that wrote it or start fresh");
    }
    corrupt(path, "bad header \"" + line + "\"");
  }

  if (!std::getline(in, line)) corrupt(path, "missing fingerprint line");
  {
    const std::vector<std::string> fields = util::split(line, ' ');
    std::uint64_t bits = 0;
    if (fields.size() != 2 || fields[0] != "fingerprint" ||
        !parse_hex_u64(fields[1], bits)) {
      corrupt(path, "bad fingerprint line \"" + line + "\"");
    }
    if (bits != fingerprint) {
      throw util::InvalidArgument(
          "checkpoint " + path +
          " was written for a different country configuration (seed, scheme, or "
          "portfolio changed); refusing to resume — delete the checkpoint "
          "directory to start fresh");
    }
  }

  std::vector<CityDigest> digests;
  bool saw_end = false;
  while (std::getline(in, line)) {
    const std::vector<std::string> fields = util::split(line, ' ');
    if (fields.empty()) corrupt(path, "blank line");
    if (fields[0] == "end") {
      if (fields.size() != 2 || fields[1] != std::to_string(digests.size())) {
        corrupt(path, "shard count mismatch at trailer \"" + line + "\"");
      }
      saw_end = true;
      break;
    }
    if (fields[0] != "shard" || fields.size() != 20) {
      corrupt(path, "bad shard line \"" + line + "\"");
    }
    CityDigest d;
    const auto integer = [&](const std::string& token, const char* what) -> long long {
      const auto parsed = util::parse_uint64(token);
      if (!parsed.has_value()) corrupt(path, std::string("bad ") + what);
      return static_cast<long long>(*parsed);
    };
    d.region = static_cast<std::uint32_t>(integer(fields[1], "region index"));
    d.city = static_cast<std::uint32_t>(integer(fields[2], "city index"));
    d.template_index = static_cast<std::size_t>(integer(fields[3], "template index"));
    d.neighbourhoods = static_cast<std::size_t>(integer(fields[4], "neighbourhood count"));
    d.gateways = static_cast<long>(integer(fields[5], "gateway count"));
    d.clients = static_cast<long>(integer(fields[6], "client count"));
    d.wake_events = static_cast<long>(integer(fields[7], "wake count"));
    const auto stats_count = static_cast<std::size_t>(integer(fields[8], "stats count"));
    double values[11];
    for (int k = 0; k < 11; ++k) {
      if (!parse_hex_double(fields[9 + k], values[k])) {
        corrupt(path, "bad double field " + std::to_string(k));
      }
    }
    d.baseline_watts = values[0];
    d.scheme_watts = values[1];
    d.baseline_user_watts = values[2];
    d.baseline_isp_watts = values[3];
    d.saved_user_watts = values[4];
    d.saved_isp_watts = values[5];
    d.peak_online_gateways = values[6];
    d.savings = stats::RunningStats::from_moments(stats_count, values[7], values[8],
                                                  values[9], values[10]);
    digests.push_back(std::move(d));
  }
  if (!saw_end) {
    corrupt(path, "truncated (no end trailer) — the writer was killed mid-write "
                  "without the atomic rename; delete this file to discard it");
  }
  return digests;
}

std::vector<CityDigest> load_checkpoint_dir(const std::string& dir,
                                            std::uint64_t fingerprint) {
  namespace fs = std::filesystem;
  std::vector<CityDigest> merged;
  if (!fs::exists(dir)) return merged;
  util::require(fs::is_directory(dir),
                "checkpoint path " + dir + " exists but is not a directory");

  // Deterministic load order (directory iteration order is not specified).
  std::vector<std::string> paths;
  std::vector<std::string> torn;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".ckpt") {
      paths.push_back(entry.path().string());
    } else if (entry.path().extension() == ".tmp") {
      torn.push_back(entry.path().string());
    }
  }
  // Salvage: `*.tmp` files are torn writes from a writer killed before its
  // atomic rename — never valid data (the committed `.ckpt` beside them
  // holds the last complete flush). Discard them explicitly so the debris
  // can't accumulate, and count the discards; corruption in a COMMITTED
  // file is a different story and still refuses loudly below.
  for (const std::string& path : torn) {
    std::error_code ec;
    fs::remove(path, ec);
#ifndef INSOMNIA_OBS_DISABLED
    if (!ec) obs::counter("country.ckpt_tmp_discarded").add(1);
#endif
  }
  std::sort(paths.begin(), paths.end());

  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const std::string& path : paths) {
    for (CityDigest& digest : read_checkpoint_file(path, fingerprint)) {
      // Duplicates across resume attempts are bit-identical by construction
      // (same config fingerprint => same shard result); first wins.
      if (seen.insert({digest.region, digest.city}).second) {
        merged.push_back(std::move(digest));
      }
    }
  }
  return merged;
}

}  // namespace insomnia::country
