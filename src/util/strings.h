// Small string utilities shared by the CSV reader and report printers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace insomnia::util {

/// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Formats `value` with `decimals` digits after the point (fixed notation).
std::string format_fixed(double value, int decimals);

/// Formats `fraction` (0..1) as a percentage with `decimals` digits.
std::string format_percent(double fraction, int decimals);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Joins `parts` with `separator`.
std::string join(const std::vector<std::string>& parts, std::string_view separator);

/// Parses `text` (after trimming) as a strictly positive base-10 int.
/// Returns nullopt on empty input, trailing junk, overflow, zero, or
/// negative values — the environment-knob parsers reject all of those.
std::optional<int> parse_positive_int(std::string_view text);

/// Parses `text` (after trimming) as a non-negative base-10 uint64 (e.g. an
/// RNG seed). Returns nullopt on empty input, trailing junk, a sign, or
/// overflow.
std::optional<std::uint64_t> parse_uint64(std::string_view text);

/// Parses the whole of `text` (after trimming) as a double. Returns nullopt
/// on empty input, trailing junk ("1.5x"), or out-of-range values — a
/// half-parsed number must never silently run a different experiment.
std::optional<double> parse_double(std::string_view text);

}  // namespace insomnia::util
