#include "util/csv.h"

#include <istream>
#include <ostream>

#include "util/strings.h"

namespace insomnia::util {

void CsvWriter::comment(const std::string& text) { *out_ << "# " << text << '\n'; }

void CsvWriter::header(const std::vector<std::string>& names) { row(names); }

void CsvWriter::row(const std::vector<std::string>& fields) {
  *out_ << join(fields, ",") << '\n';
}

void CsvWriter::row(const std::vector<double>& values, int decimals) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(format_fixed(v, decimals));
  row(fields);
}

CsvDocument parse_csv(std::istream& in, bool has_header) {
  CsvDocument doc;
  std::string line;
  bool header_pending = has_header;
  while (std::getline(in, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto fields = split(trimmed, ',');
    for (auto& f : fields) f = std::string(trim(f));
    if (header_pending) {
      doc.header = std::move(fields);
      header_pending = false;
    } else {
      doc.rows.push_back(std::move(fields));
    }
  }
  return doc;
}

}  // namespace insomnia::util
