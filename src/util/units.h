// Unit conversions and strongly-hinted numeric helpers used across the
// library. Conventions (documented once, used everywhere):
//   - time is measured in seconds (double),
//   - data rates in bits per second (double),
//   - data volumes in bits (double; traces record bytes and convert),
//   - power in watts, energy in joules,
//   - signal levels in dB / dBm where noted.
#pragma once

#include <cmath>

namespace insomnia::util {

// --- time ----------------------------------------------------------------

inline constexpr double kSecondsPerMinute = 60.0;
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kSecondsPerDay = 86400.0;
inline constexpr double kHoursPerYear = 8760.0;

/// Converts hours (possibly fractional) to seconds.
constexpr double hours(double h) { return h * kSecondsPerHour; }

/// Converts minutes to seconds.
constexpr double minutes(double m) { return m * kSecondsPerMinute; }

// --- data ----------------------------------------------------------------

/// Converts megabits per second to bits per second.
constexpr double mbps(double rate) { return rate * 1e6; }

/// Converts kilobits per second to bits per second.
constexpr double kbps(double rate) { return rate * 1e3; }

/// Converts bytes to bits.
constexpr double bytes_to_bits(double bytes) { return bytes * 8.0; }

/// Converts bits to megabits.
constexpr double bits_to_megabits(double bits) { return bits / 1e6; }

// --- energy --------------------------------------------------------------

/// Converts joules to kilowatt-hours.
constexpr double joules_to_kwh(double joules) { return joules / 3.6e6; }

/// Converts watts sustained for a year to terawatt-hours.
constexpr double watt_years_to_twh(double watts) {
  return watts * kHoursPerYear / 1e12;  // W * h / (1e12 W per TW)
}

// --- signals -------------------------------------------------------------

/// Converts a power ratio in dB to a linear ratio.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

/// Converts a linear power ratio to dB.
inline double linear_to_db(double linear) { return 10.0 * std::log10(linear); }

/// Converts a PSD level in dBm/Hz to milliwatts per hertz.
inline double dbm_per_hz_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

// --- distance ------------------------------------------------------------

inline constexpr double kMetersPerMile = 1609.344;
inline constexpr double kMetersPerFoot = 0.3048;

/// ADSL2+ rule of thumb used in the paper's appendix: 1 dB of measured
/// attenuation corresponds to roughly 70 m (230 ft) of loop.
inline constexpr double kMetersPerDbAdsl2Plus = 70.0;

}  // namespace insomnia::util
