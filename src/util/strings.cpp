#include "util/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace insomnia::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string format_fixed(double value, int decimals) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(decimals);
  out << value;
  return out.str();
}

std::string format_percent(double fraction, int decimals) {
  return format_fixed(fraction * 100.0, decimals) + "%";
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::optional<int> parse_positive_int(std::string_view text) {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) return std::nullopt;
  // std::from_chars would be the natural fit but misses some toolchains;
  // strtol on a bounded copy with full-consumption + range checks is enough.
  const std::string copy(trimmed);
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(copy.c_str(), &end, 10);
  if (end != copy.c_str() + copy.size()) return std::nullopt;
  if (errno == ERANGE || value < 1 || value > std::numeric_limits<int>::max()) {
    return std::nullopt;
  }
  return static_cast<int>(value);
}

std::optional<std::uint64_t> parse_uint64(std::string_view text) {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) return std::nullopt;
  // Reject signs ourselves: strtoull happily wraps "-1" to 2^64-1.
  if (trimmed.front() == '-' || trimmed.front() == '+') return std::nullopt;
  const std::string copy(trimmed);
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(copy.c_str(), &end, 10);
  if (end != copy.c_str() + copy.size()) return std::nullopt;
  if (errno == ERANGE) return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

std::optional<double> parse_double(std::string_view text) {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) return std::nullopt;
  const std::string copy(trimmed);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return std::nullopt;
  if (errno == ERANGE) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

}  // namespace insomnia::util
