// Error-handling helpers: a library-wide exception type and a lightweight
// precondition checker. Following the C++ Core Guidelines (I.5, E.x) we
// validate preconditions at API boundaries and throw rather than abort.
#pragma once

#include <stdexcept>
#include <string>

namespace insomnia::util {

/// Exception thrown on violated preconditions or invalid configuration.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Exception thrown when an operation is attempted in an illegal state.
class InvalidState : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Throws InvalidArgument with `message` unless `condition` holds.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw InvalidArgument(message);
}

/// Literal-message overload: hot paths check preconditions millions of
/// times per simulated day, and the std::string conversion above would
/// heap-allocate on every *successful* check. With a plain pointer the
/// message only becomes a string inside the throw.
inline void require(bool condition, const char* message) {
  if (!condition) throw InvalidArgument(message);
}

/// Throws InvalidState with `message` unless `condition` holds.
inline void require_state(bool condition, const std::string& message) {
  if (!condition) throw InvalidState(message);
}

/// Literal-message overload; see require(bool, const char*).
inline void require_state(bool condition, const char* message) {
  if (!condition) throw InvalidState(message);
}

}  // namespace insomnia::util
