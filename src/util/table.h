// Fixed-width console table printer used by the benchmark harnesses to emit
// paper-style rows ("Fig. 6: time, savings per scheme, ...").
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace insomnia::util {

/// Accumulates rows and prints them column-aligned.
class TextTable {
 public:
  /// Sets the column headers; defines the column count.
  void set_header(std::vector<std::string> names);

  /// Appends a row of preformatted cells; must match the column count if a
  /// header was set.
  void add_row(std::vector<std::string> cells);

  /// Appends a row of doubles formatted with `decimals` digits.
  void add_row(const std::vector<double>& values, int decimals = 3);

  /// Prints the table with 2-space column gaps and a rule under the header.
  void print(std::ostream& out) const;

  /// Number of data rows currently held.
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace insomnia::util
