// Minimal streaming JSON writer for the structured run reports. Keys are
// emitted in insertion order (stable goldens), numbers are formatted with
// std::to_chars (locale-independent, shortest round-trip form), and
// non-finite doubles — which JSON cannot represent — serialize as null.
// The writer validates nesting as it goes: a malformed emission sequence
// (value without a key inside an object, unbalanced end_*) throws
// util::InvalidState instead of producing unparseable output.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace insomnia::util {

/// Escapes `text` for use inside a JSON string literal (quotes excluded).
std::string json_escape(const std::string& text);

/// Locale-independent number formatting: shortest form that round-trips
/// (std::to_chars). NaN and infinities return "null".
std::string json_number(double value);
std::string json_number(std::int64_t value);
std::string json_number(std::uint64_t value);

class JsonWriter {
 public:
  JsonWriter();

  // Containers. The root value must be exactly one object or array.
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next member; only valid directly inside an object.
  JsonWriter& key(const std::string& name);

  // Values (the next member's value inside an object, or an array element).
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  /// Any integer type (int, long, std::size_t, std::uint64_t, ...).
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
  JsonWriter& value(T v) {
    if (std::is_signed_v<T>) {
      raw(json_number(static_cast<std::int64_t>(v)));
    } else {
      raw(json_number(static_cast<std::uint64_t>(v)));
    }
    return *this;
  }
  JsonWriter& null_value();
  /// Emits `encoded` verbatim as the next value. The caller guarantees it
  /// is one valid JSON value (e.g. produced by json_number/json_escape).
  JsonWriter& raw_value(const std::string& encoded);

  // Conveniences: key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }
  JsonWriter& number_array(const std::string& name, const std::vector<double>& values);

  /// The finished document. Throws util::InvalidState while containers are
  /// still open or nothing was written.
  const std::string& str() const;

 private:
  enum class Scope { kObject, kArray };

  void begin_value();  ///< comma/key bookkeeping shared by every emission
  void raw(const std::string& text);

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_members_;  ///< parallel to stack_
  bool key_pending_ = false;       ///< key() emitted, value outstanding
  bool done_ = false;              ///< root value completed
};

}  // namespace insomnia::util
