// One shared parser for human-written durations ("500ms", "2s", "1.5m",
// "1h"), replacing the ad-hoc per-site parsing that used to live in the
// fault-plan grammar and the heartbeat environment knob. Call sites differ
// in what a bare number means (the fault plan's `slow-shard=p:500` always
// meant milliseconds, INSOMNIA_HEARTBEAT seconds), so the bare-number unit
// is a parameter rather than a guess.
#pragma once

#include <optional>
#include <string_view>

namespace insomnia::util {

/// Unit applied to a bare number with no suffix.
enum class DurationUnit { kMilliseconds, kSeconds };

/// Parses `text` (after trimming) as a non-negative duration and returns it
/// in SECONDS. Accepted forms: a number with an optional "ms", "s", "m"
/// (minutes) or "h" suffix; a bare number takes `bare_unit`. Returns
/// nullopt on empty input, a negative value, trailing junk ("2sx"), or an
/// unparseable number — callers turn that into their own clear error.
std::optional<double> parse_duration_seconds(
    std::string_view text, DurationUnit bare_unit = DurationUnit::kSeconds);

/// The grammar in one line, for error messages ("... e.g. \"500ms\", ...").
const char* duration_grammar_help();

}  // namespace insomnia::util
