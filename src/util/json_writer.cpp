#include "util/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.h"

namespace insomnia::util {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no NaN/Inf
  char buffer[64];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

std::string json_number(std::int64_t value) {
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

std::string json_number(std::uint64_t value) {
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

JsonWriter::JsonWriter() { out_.reserve(256); }

void JsonWriter::raw(const std::string& text) {
  begin_value();
  out_ += text;
  if (stack_.empty()) done_ = true;
}

void JsonWriter::begin_value() {
  require_state(!done_, "JSON document already complete");
  if (stack_.empty()) return;  // root value
  if (stack_.back() == Scope::kObject) {
    require_state(key_pending_, "object member needs key() before its value");
    key_pending_ = false;  // key() already wrote the comma
  } else {
    if (has_members_.back()) out_ += ',';
    has_members_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  begin_value();
  stack_.push_back(Scope::kObject);
  has_members_.push_back(false);
  out_ += '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  require_state(!stack_.empty() && stack_.back() == Scope::kObject,
                "end_object outside an object");
  require_state(!key_pending_, "dangling key at end_object");
  stack_.pop_back();
  has_members_.pop_back();
  out_ += '}';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value();
  stack_.push_back(Scope::kArray);
  has_members_.push_back(false);
  out_ += '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  require_state(!stack_.empty() && stack_.back() == Scope::kArray,
                "end_array outside an array");
  stack_.pop_back();
  has_members_.pop_back();
  out_ += ']';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  require_state(!stack_.empty() && stack_.back() == Scope::kObject,
                "key() is only valid inside an object");
  require_state(!key_pending_, "key() called twice without a value");
  if (has_members_.back()) out_ += ',';
  has_members_.back() = true;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  raw(json_number(v));
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  raw(v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  raw('"' + json_escape(v) + '"');
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::null_value() {
  raw("null");
  return *this;
}

JsonWriter& JsonWriter::raw_value(const std::string& encoded) {
  raw(encoded);
  return *this;
}

JsonWriter& JsonWriter::number_array(const std::string& name,
                                     const std::vector<double>& values) {
  key(name);
  begin_array();
  for (const double v : values) value(v);
  return end_array();
}

const std::string& JsonWriter::str() const {
  require_state(done_, "JSON document incomplete (open containers or no root value)");
  return out_;
}

}  // namespace insomnia::util
