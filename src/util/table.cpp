#include "util/table.h"

#include <algorithm>
#include <ostream>

#include "util/error.h"
#include "util/strings.h"

namespace insomnia::util {

void TextTable::set_header(std::vector<std::string> names) { header_ = std::move(names); }

void TextTable::add_row(std::vector<std::string> cells) {
  require(header_.empty() || cells.size() == header_.size(),
          "TextTable row width must match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::vector<double>& values, int decimals) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_fixed(v, decimals));
  add_row(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  absorb(header_);
  for (const auto& row : rows_) absorb(row);

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out << cells[i];
      if (i + 1 < cells.size()) {
        out << std::string(widths[i] - cells[i].size() + 2, ' ');
      }
    }
    out << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
}

}  // namespace insomnia::util
