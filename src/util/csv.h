// Minimal CSV reading/writing used for trace import/export and benchmark
// output. The dialect is deliberately simple: comma separator, no quoting
// (our fields are numeric or identifier-like), '#' comment lines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace insomnia::util {

/// Writes rows of string fields as CSV to an output stream.
class CsvWriter {
 public:
  /// Constructs a writer over `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes a '#'-prefixed comment line.
  void comment(const std::string& text);

  /// Writes a header row.
  void header(const std::vector<std::string>& names);

  /// Writes one data row of preformatted fields.
  void row(const std::vector<std::string>& fields);

  /// Writes one data row of doubles formatted with `decimals` digits.
  void row(const std::vector<double>& values, int decimals = 6);

 private:
  std::ostream* out_;
};

/// A fully-parsed CSV document: optional header plus data rows.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text. If `has_header` the first non-comment line becomes the
/// header. Comment ('#') and blank lines are skipped.
CsvDocument parse_csv(std::istream& in, bool has_header);

}  // namespace insomnia::util
