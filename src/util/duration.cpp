#include "util/duration.h"

#include <cmath>

#include "util/strings.h"

namespace insomnia::util {

std::optional<double> parse_duration_seconds(std::string_view text,
                                             DurationUnit bare_unit) {
  std::string_view digits = trim(text);
  if (digits.empty()) return std::nullopt;
  double scale = bare_unit == DurationUnit::kMilliseconds ? 1e-3 : 1.0;
  // Longest suffix first: "ms" must win over a bare "s".
  if (digits.size() >= 2 && digits.substr(digits.size() - 2) == "ms") {
    digits.remove_suffix(2);
    scale = 1e-3;
  } else if (digits.back() == 's') {
    digits.remove_suffix(1);
    scale = 1.0;
  } else if (digits.back() == 'm') {
    digits.remove_suffix(1);
    scale = 60.0;
  } else if (digits.back() == 'h') {
    digits.remove_suffix(1);
    scale = 3600.0;
  }
  // parse_double trims, which would quietly accept "2 s"; the number must
  // abut its suffix. Non-finite "numbers" are not durations either.
  if (digits != trim(digits)) return std::nullopt;
  const auto value = parse_double(digits);
  if (!value.has_value() || !std::isfinite(*value) || *value < 0.0) return std::nullopt;
  return *value * scale;
}

const char* duration_grammar_help() {
  return "a non-negative number with an optional \"ms\", \"s\", \"m\" or \"h\" "
         "suffix (e.g. \"500ms\", \"2s\", \"1m\")";
}

}  // namespace insomnia::util
