#include "resilience/fault_plan.h"

#include <cstdlib>
#include <vector>

#include "obs/metrics.h"
#include "sim/random.h"
#include "util/duration.h"
#include "util/error.h"
#include "util/strings.h"

namespace insomnia::resilience {

namespace {

std::string trim_ms(double ms) {
  // "500ms" rather than "500.00ms" for whole values.
  std::string text = util::format_fixed(ms, ms == static_cast<long long>(ms) ? 0 : 2);
  return text + "ms";
}

double parse_probability(const std::string& entry, std::string_view token) {
  const auto value = util::parse_double(token);
  util::require(value.has_value() && *value >= 0.0 && *value <= 1.0,
                "fault-spec entry \"" + entry +
                    "\": probability must be a number in [0, 1]");
  return *value;
}

double parse_duration_ms(const std::string& entry, std::string_view token) {
  const auto seconds =
      util::parse_duration_seconds(token, util::DurationUnit::kMilliseconds);
  util::require(seconds.has_value(), "fault-spec entry \"" + entry +
                                         "\": duration must be " +
                                         util::duration_grammar_help());
  return *seconds * 1000.0;
}

FaultPlan plan_from_env() {
  const char* spec = std::getenv("INSOMNIA_FAULTS");
  return spec == nullptr ? FaultPlan{} : parse_fault_plan(spec);
}

FaultPlan& global_slot() {
  static FaultPlan plan = plan_from_env();
  return plan;
}

}  // namespace

bool FaultPlan::any() const {
  return shard_throw > 0.0 || slow_shard > 0.0 || child_kill > 0.0 ||
         ckpt_torn > 0.0 || ckpt_short > 0.0 || ckpt_flip > 0.0 ||
         trace_garble > 0.0;
}

std::string FaultPlan::summary() const {
  std::vector<std::string> parts;
  const auto entry = [&](const char* key, double p) {
    if (p > 0.0) parts.push_back(std::string(key) + "=" + util::format_fixed(p, 2));
  };
  entry("shard-throw", shard_throw);
  if (slow_shard > 0.0) {
    parts.push_back("slow-shard=" + util::format_fixed(slow_shard, 2) + ":" +
                    trim_ms(slow_shard_ms));
  }
  entry("child-kill", child_kill);
  entry("ckpt-torn", ckpt_torn);
  entry("ckpt-short", ckpt_short);
  entry("ckpt-flip", ckpt_flip);
  entry("trace-garble", trace_garble);
  return parts.empty() ? "none" : util::join(parts, ", ");
}

FaultPlan parse_fault_plan(std::string_view spec) {
  FaultPlan plan;
  if (util::trim(spec).empty()) return plan;
  for (const std::string& raw : util::split(spec, ',')) {
    const std::string entry{util::trim(raw)};
    const std::size_t eq = entry.find('=');
    util::require(eq != std::string::npos && eq > 0,
                  "fault-spec entry \"" + entry + "\" is not key=value");
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "seed") {
      const auto seed = util::parse_uint64(value);
      util::require(seed.has_value(),
                    "fault-spec entry \"" + entry + "\": seed must be a uint64");
      plan.seed = *seed;
    } else if (key == "shard-throw") {
      plan.shard_throw = parse_probability(entry, value);
    } else if (key == "slow-shard") {
      const std::size_t colon = value.find(':');
      plan.slow_shard = parse_probability(
          entry, colon == std::string::npos ? value : value.substr(0, colon));
      if (colon != std::string::npos) {
        plan.slow_shard_ms = parse_duration_ms(entry, value.substr(colon + 1));
      }
    } else if (key == "child-kill") {
      plan.child_kill = parse_probability(entry, value);
    } else if (key == "ckpt-torn") {
      plan.ckpt_torn = parse_probability(entry, value);
    } else if (key == "ckpt-short") {
      plan.ckpt_short = parse_probability(entry, value);
    } else if (key == "ckpt-flip") {
      plan.ckpt_flip = parse_probability(entry, value);
    } else if (key == "trace-garble") {
      plan.trace_garble = parse_probability(entry, value);
    } else {
      throw util::InvalidArgument(
          "fault-spec entry \"" + entry + "\": unknown fault \"" + key +
          "\"; valid keys: shard-throw, slow-shard, child-kill, ckpt-torn, "
          "ckpt-short, ckpt-flip, trace-garble, seed");
    }
  }
  return plan;
}

std::string fault_spec_help() {
  return std::string(
             "fault-spec grammar: entry (\",\" entry)* with entry := key=value\n"
             "  value is a probability in [0, 1]; slow-shard also takes\n"
             "  probability:duration where duration is ") +
         util::duration_grammar_help() +
         ".\n"
         "\n"
         "keys:\n"
         "  shard-throw    p       a city shard attempt throws (retries re-draw)\n"
         "  slow-shard     p[:dur] a shard attempt sleeps for dur first "
         "(default 100ms)\n"
         "  child-kill     p       a --procs worker SIGKILLs itself after its "
         "first checkpoint flush\n"
         "  ckpt-torn      p       a checkpoint flush leaves a torn .tmp beside "
         "the last good file\n"
         "  ckpt-short     p       the committed checkpoint file is truncated\n"
         "  ckpt-flip      p       one bit of the committed checkpoint file is "
         "flipped\n"
         "  trace-garble   p       a flow-trace data row fails to parse\n"
         "  seed           uint64  keys sites with no run seed of their own\n"
         "\n"
         "e.g. --fault-spec \"shard-throw=0.01,slow-shard=0.02:500ms,"
         "child-kill=0.05\"\n";
}

const FaultPlan& global_fault_plan() { return global_slot(); }

void set_global_fault_plan(const FaultPlan& plan) { global_slot() = plan; }

bool fault_fires(double probability, std::uint64_t seed, std::uint64_t stream,
                 std::uint64_t salt, std::uint64_t attempt) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  // Two-level keying: first collapse (seed, stream, salt) into a site seed,
  // then fold the attempt in. Keeps the full 64-bit stream space available
  // to call sites while attempts still draw independent decisions.
  const std::uint64_t site = sim::Random::substream_seed(seed, stream, salt);
  sim::Random rng(sim::Random::substream_seed(site, attempt, salt));
  return rng.bernoulli(probability);
}

void count_injected(const char* what) {
#ifndef INSOMNIA_OBS_DISABLED
  // Injection is rare by construction, so the registry-mutex lookup per fire
  // is fine — no cached statics needed across the per-site names.
  obs::counter(std::string("resilience.injected.") + what).add(1);
#else
  (void)what;
#endif
}

}  // namespace insomnia::resilience
