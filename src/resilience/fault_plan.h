// Deterministic fault injection for chaos-testing the fleet layers. A
// FaultPlan names which faults are armed and how hot they run; every
// fire/no-fire decision is a pure function of (seed, site stream, site salt,
// attempt) drawn through sim::Random keyed substreams — never of wall
// clock, thread schedule, or process count — so any chaos run is
// bit-reproducible at any --threads/--procs and a failing fault sequence
// can be replayed from its spec alone.
//
// Spec grammar (--fault-spec on the fleet drivers, INSOMNIA_FAULTS in the
// environment):
//
//   spec    := "" | entry ("," entry)*
//   entry   := key "=" value
//   key     := shard-throw | slow-shard | child-kill | ckpt-torn
//            | ckpt-short | ckpt-flip | trace-garble | seed
//   value   := probability                  (in [0, 1])
//            | probability ":" duration     (slow-shard only; "500ms", "2s")
//            | uint64                       (seed only)
//
// e.g. "shard-throw=0.01,child-kill=0.05,ckpt-torn=1,slow-shard=0.02:500ms".
// Sites and what firing means:
//
//   shard-throw   a city shard attempt throws InjectedFault (per attempt —
//                 a retry draws a fresh decision, so p < 1 heals eventually
//                 and p = 1 is an unrecoverable shard)
//   slow-shard    a shard attempt sleeps for the given duration first
//   child-kill    a --procs worker SIGKILLs itself after its first
//                 checkpoint flush (per (slice, re-fork generation))
//   ckpt-torn     a checkpoint flush "crashes" mid-write: a torn .tmp is
//                 left beside the last good committed file (the salvage
//                 path discards it on the next load)
//   ckpt-short    the committed checkpoint file is truncated after the
//                 rename (data loss — the next load must refuse loudly)
//   ckpt-flip     one bit of the committed checkpoint file is flipped
//                 (corruption — the next load must refuse loudly)
//   trace-garble  a flow-trace data row fails to parse
//
// `seed` keys sites that have no run seed of their own (trace parsing);
// fleet sites key on the country seed so chaos follows the experiment.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace insomnia::resilience {

/// Thrown by armed injection sites. Derives from std::runtime_error, so the
/// retry/quarantine machinery treats it exactly like a real transient
/// failure (util::InvalidArgument preconditions, by contrast, never retry).
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Substream salts owned by the resilience layer (city owns 11-15, country
/// 21-22). Every injection site keys its decisions with its own salt so two
/// sites sharing a stream never correlate.
inline constexpr std::uint64_t kShardThrowSalt = 41;
inline constexpr std::uint64_t kSlowShardSalt = 42;
inline constexpr std::uint64_t kChildKillSalt = 43;
inline constexpr std::uint64_t kCkptTornSalt = 44;
inline constexpr std::uint64_t kCkptShortSalt = 45;
inline constexpr std::uint64_t kCkptFlipSalt = 46;
inline constexpr std::uint64_t kTraceGarbleSalt = 47;

/// Which faults are armed and how hot. All probabilities default to 0
/// (nothing armed); parse_fault_plan builds one from the spec grammar.
struct FaultPlan {
  double shard_throw = 0.0;
  double slow_shard = 0.0;
  double slow_shard_ms = 100.0;  ///< sleep when slow_shard fires
  double child_kill = 0.0;
  double ckpt_torn = 0.0;
  double ckpt_short = 0.0;
  double ckpt_flip = 0.0;
  double trace_garble = 0.0;
  /// Keys sites with no run seed of their own (trace parsing). Fleet sites
  /// key on the country seed instead, so the same plan follows any run.
  std::uint64_t seed = 0;

  /// True when any fault is armed.
  bool any() const;

  /// Human-readable one-liner of the armed faults ("none" when !any()).
  std::string summary() const;
};

/// Parses the spec grammar above. Throws util::InvalidArgument naming the
/// offending entry on an unknown key, a probability outside [0, 1], or a
/// malformed duration; an empty spec is the empty plan.
FaultPlan parse_fault_plan(std::string_view spec);

/// The spec grammar and every valid key with a one-line description —
/// what the fleet drivers print for --list-faults.
std::string fault_spec_help();

/// The process-wide plan: parsed once from INSOMNIA_FAULTS (empty plan when
/// unset). Deep layers with no plumbing of their own (trace parsing)
/// consult this; the fleet drivers overwrite it from --fault-spec so every
/// site agrees. Set before spawning workers — the slot is not locked.
const FaultPlan& global_fault_plan();
void set_global_fault_plan(const FaultPlan& plan);

/// One deterministic fire decision: a pure function of every argument.
/// Same (probability, seed, stream, salt, attempt) -> same answer on any
/// thread, in any process, in any order. p <= 0 never fires, p >= 1 always.
bool fault_fires(double probability, std::uint64_t seed, std::uint64_t stream,
                 std::uint64_t salt, std::uint64_t attempt = 0);

/// Bumps the "resilience.injected.<what>" obs counter — every site records
/// the faults it actually fired, so chaos runs are auditable in telemetry.
void count_injected(const char* what);

}  // namespace insomnia::resilience
