#include "exec/thread_pool.h"

#include <cstdlib>
#include <string>

#include "obs/profiler.h"
#include "util/error.h"
#include "util/strings.h"

namespace insomnia::exec {

ThreadPool::ThreadPool(int thread_count) {
  util::require(thread_count >= 1, "thread pool needs at least one thread");
  workers_.reserve(static_cast<std::size_t>(thread_count));
  for (int i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    util::require_state(!stopping_, "submit on a stopping thread pool");
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop(int index) {
  obs::set_thread_name("worker-" + std::to_string(index));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int threads_from_env(int fallback) {
  const char* env = std::getenv("INSOMNIA_THREADS");
  if (env == nullptr) return fallback;
  const auto parsed = util::parse_positive_int(env);
  util::require(parsed.has_value(),
                "INSOMNIA_THREADS must be a positive integer, got \"" + std::string(env) + "\"");
  return *parsed;
}

int default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return threads_from_env(hw > 0 ? static_cast<int>(hw) : 1);
}

}  // namespace insomnia::exec
