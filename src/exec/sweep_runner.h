// Deterministic sharding of embarrassingly parallel experiment work. A sweep
// is `count` independent shards indexed 0..count-1; SweepRunner evaluates a
// function over every index on a fixed-size thread pool and returns the
// results ordered by index. Because shards must derive any randomness from
// their index (sim::Random::fork(index) / substream_seed), the result vector
// is bit-identical no matter how many threads ran it — callers then fold the
// per-shard results serially, in index order, so even floating-point
// accumulation matches the single-threaded path exactly.
//
// Failure contract: every shard runs to completion (or exhausts its retry
// budget) before anything is thrown — a sweep never loses sibling results
// to the first failure. Exactly one failing shard rethrows the ORIGINAL
// exception (type preserved); several failing shards throw AggregateError
// carrying every failing index and its first message. Precondition
// violations (util::InvalidArgument) are systemic, never transient: they
// are not retried, and the lowest-indexed one is rethrown alone even when
// other shards failed too. run_settled() is the no-throw form for callers
// that degrade instead of aborting (the fleet quarantine path).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/aggregate_error.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/error.h"

namespace insomnia::exec {

/// Bounded retries with capped exponential backoff and full jitter. The
/// default (one attempt, no backoff) is exactly the historical
/// run-once-and-fail behavior. Backoff delays are drawn from sim::Random
/// substreams keyed on (seed, shard index, attempt) — deterministic wall
/// pacing that can never influence shard results.
struct RetryPolicy {
  int max_attempts = 1;        ///< >= 1; 1 = no retries
  double backoff_base_ms = 0;  ///< cap of the first retry's jittered delay; 0 = none
  double backoff_cap_ms = 0;   ///< ceiling of the exponential growth; 0 = uncapped
  std::uint64_t seed = 0;      ///< keys the full-jitter delay draws
};

/// One shard's settled outcome: either a value, or the first failing
/// attempt's exception (every later attempt also failed). `attempts` counts
/// attempts actually made, so telemetry and quarantine reports can say "gave
/// up after N tries".
template <typename T>
struct ShardOutcome {
  std::optional<T> value;
  std::exception_ptr error;  ///< engaged iff !value: the first failing attempt
  std::string message;       ///< its what() ("" on success)
  int attempts = 0;
  /// Precondition violation (util::InvalidArgument): systemic, never
  /// retried, and rethrown by run() even when other shards merely failed.
  bool fatal = false;

  bool ok() const { return value.has_value(); }
};

namespace detail {

/// Shards may take (index) or (index, attempt); retry-aware callers use the
/// second form to key per-attempt behavior (fault injection) without
/// smuggling attempt state through captures.
template <typename Fn>
decltype(auto) invoke_shard(Fn& shard, std::size_t i, int attempt) {
  if constexpr (std::is_invocable_v<Fn&, std::size_t, int>) {
    return shard(i, attempt);
  } else {
    return shard(i);
  }
}

/// Wraps one shard attempt in its observability envelope: an "exec.shard"
/// phase scope (one trace slice per attempt on whichever worker ran it) and
/// a tick of the "exec.shards" counter. Inlined away entirely when the obs
/// layer is compiled out.
template <typename Fn>
auto observed_shard(Fn& shard, std::size_t i, int attempt)
    -> std::decay_t<decltype(invoke_shard(shard, i, attempt))> {
#ifndef INSOMNIA_OBS_DISABLED
  static obs::Counter& shards = obs::counter("exec.shards");
  OBS_SCOPE("exec.shard");
  shards.add(1);
#endif
  return invoke_shard(shard, i, attempt);
}

// Non-template plumbing (defined in sweep_runner.cpp): retry metrics and
// the keyed full-jitter backoff sleep.
void note_shard_retry();
void note_shard_giveup();
void backoff_sleep(const RetryPolicy& policy, std::size_t shard, int failures);

/// Runs one shard through its whole retry budget. Never throws: every
/// exception settles into the outcome.
template <typename Fn>
auto run_with_retries(Fn& shard, std::size_t i, const RetryPolicy& policy)
    -> ShardOutcome<std::decay_t<decltype(invoke_shard(shard, i, 0))>> {
  using Result = std::decay_t<decltype(invoke_shard(shard, i, 0))>;
  ShardOutcome<Result> out;
  const int budget = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 0; attempt < budget; ++attempt) {
    out.attempts = attempt + 1;
    try {
      out.value.emplace(observed_shard(shard, i, attempt));
      out.error = nullptr;
      out.message.clear();
      return out;
    } catch (const util::InvalidArgument& error) {
      // A violated precondition is the same bug on every retry.
      out.error = std::current_exception();
      out.message = error.what();
      out.fatal = true;
      return out;
    } catch (const std::exception& error) {
      if (!out.error) {
        out.error = std::current_exception();
        out.message = error.what();
      }
    } catch (...) {
      if (!out.error) {
        out.error = std::current_exception();
        out.message = "unknown exception";
      }
    }
    if (attempt + 1 < budget) {
      note_shard_retry();
      backoff_sleep(policy, i, attempt);
    }
  }
  note_shard_giveup();
  return out;
}

}  // namespace detail

/// Runs families of independent shards over a reusable thread pool.
class SweepRunner {
 public:
  /// `threads` <= 0 selects default_thread_count() (INSOMNIA_THREADS or the
  /// hardware concurrency). With one thread no pool is spun up at all:
  /// shards execute inline, which doubles as the serial reference path.
  explicit SweepRunner(int threads = 0);

  int threads() const { return threads_; }

  /// Evaluates every shard i in [0, count) through its retry budget and
  /// returns the settled outcomes indexed by i — never throws for shard
  /// failures (a quarantining caller inspects the outcomes). Shards run
  /// concurrently in unspecified order; outcome order is always by index,
  /// and outcomes are bit-identical at any thread count.
  template <typename Fn>
  auto run_settled(std::size_t count, Fn&& shard, const RetryPolicy& policy = {})
      -> std::vector<ShardOutcome<std::decay_t<decltype(detail::invoke_shard(
          shard, std::size_t{0}, 0))>>> {
    using Result = std::decay_t<decltype(detail::invoke_shard(shard, std::size_t{0}, 0))>;
    std::vector<ShardOutcome<Result>> outcomes(count);
    if (threads_ <= 1 || count <= 1) {
      for (std::size_t i = 0; i < count; ++i) {
        outcomes[i] = detail::run_with_retries(shard, i, policy);
      }
      return outcomes;
    }

    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t remaining = count;
    for (std::size_t i = 0; i < count; ++i) {
      pool_->submit([&, i] {
        outcomes[i] = detail::run_with_retries(shard, i, policy);
        std::lock_guard<std::mutex> lock(done_mutex);
        if (--remaining == 0) done_cv.notify_all();
      });
    }
    {
      std::unique_lock<std::mutex> lock(done_mutex);
      done_cv.wait(lock, [&] { return remaining == 0; });
    }
    return outcomes;
  }

  /// The throwing form: evaluates shard(i) for every i in [0, count) and
  /// returns the results indexed by i. All shards run (and retry) to
  /// settlement first; then the failure contract at the top of this file
  /// applies — lowest-indexed fatal rethrown alone, a single failure
  /// rethrown as its original exception, several failures thrown as one
  /// AggregateError.
  template <typename Fn>
  auto run(std::size_t count, Fn&& shard, const RetryPolicy& policy = {})
      -> std::vector<std::decay_t<decltype(detail::invoke_shard(shard, std::size_t{0},
                                                                0))>> {
    using Result = std::decay_t<decltype(detail::invoke_shard(shard, std::size_t{0}, 0))>;
    auto outcomes = run_settled(count, shard, policy);

    std::vector<AggregateError::Failure> failures;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].ok()) continue;
      if (outcomes[i].fatal) std::rethrow_exception(outcomes[i].error);
      failures.push_back({i, outcomes[i].message});
    }
    if (failures.size() == 1) {
      std::rethrow_exception(outcomes[failures.front().index].error);
    }
    if (!failures.empty()) throw AggregateError(std::move(failures));

    std::vector<Result> results;
    results.reserve(count);
    for (auto& outcome : outcomes) results.push_back(std::move(*outcome.value));
    return results;
  }

 private:
  int threads_;
  std::optional<ThreadPool> pool_;  // engaged only when threads_ > 1
};

}  // namespace insomnia::exec
