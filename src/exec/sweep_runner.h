// Deterministic sharding of embarrassingly parallel experiment work. A sweep
// is `count` independent shards indexed 0..count-1; SweepRunner evaluates a
// function over every index on a fixed-size thread pool and returns the
// results ordered by index. Because shards must derive any randomness from
// their index (sim::Random::fork(index) / substream_seed), the result vector
// is bit-identical no matter how many threads ran it — callers then fold the
// per-shard results serially, in index order, so even floating-point
// accumulation matches the single-threaded path exactly.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace insomnia::exec {

namespace detail {

/// Wraps one shard evaluation in its observability envelope: an "exec.shard"
/// phase scope (one trace slice per shard on whichever worker ran it) and a
/// tick of the "exec.shards" counter. Inlined away entirely when the obs
/// layer is compiled out.
template <typename Fn>
auto observed_shard(Fn& shard, std::size_t i) -> decltype(shard(i)) {
#ifndef INSOMNIA_OBS_DISABLED
  static obs::Counter& shards = obs::counter("exec.shards");
  OBS_SCOPE("exec.shard");
  shards.add(1);
#endif
  return shard(i);
}

}  // namespace detail

/// Runs families of independent shards over a reusable thread pool.
class SweepRunner {
 public:
  /// `threads` <= 0 selects default_thread_count() (INSOMNIA_THREADS or the
  /// hardware concurrency). With one thread no pool is spun up at all: run()
  /// executes inline, which doubles as the serial reference path.
  explicit SweepRunner(int threads = 0);

  int threads() const { return threads_; }

  /// Evaluates shard(i) for every i in [0, count) and returns the results
  /// indexed by i. Shards run concurrently in unspecified order; the output
  /// order is always by index. If any shard throws, the exception from the
  /// lowest-indexed failing shard is rethrown after all shards finish (the
  /// serial path would have surfaced that one first).
  template <typename Fn>
  auto run(std::size_t count, Fn&& shard)
      -> std::vector<decltype(shard(std::size_t{0}))> {
    using Result = decltype(shard(std::size_t{0}));
    if (threads_ <= 1 || count <= 1) {
      std::vector<Result> results;
      results.reserve(count);
      for (std::size_t i = 0; i < count; ++i) results.push_back(detail::observed_shard(shard, i));
      return results;
    }

    std::vector<std::optional<Result>> slots(count);
    std::vector<std::exception_ptr> errors(count);
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t remaining = count;

    for (std::size_t i = 0; i < count; ++i) {
      pool_->submit([&, i] {
        try {
          slots[i].emplace(detail::observed_shard(shard, i));
        } catch (...) {
          errors[i] = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(done_mutex);
        if (--remaining == 0) done_cv.notify_all();
      });
    }
    {
      std::unique_lock<std::mutex> lock(done_mutex);
      done_cv.wait(lock, [&] { return remaining == 0; });
    }

    for (std::size_t i = 0; i < count; ++i) {
      if (errors[i]) std::rethrow_exception(errors[i]);
    }
    std::vector<Result> results;
    results.reserve(count);
    for (std::size_t i = 0; i < count; ++i) results.push_back(std::move(*slots[i]));
    return results;
  }

 private:
  int threads_;
  std::optional<ThreadPool> pool_;  // engaged only when threads_ > 1
};

}  // namespace insomnia::exec
