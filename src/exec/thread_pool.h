// A fixed-size worker pool with a plain FIFO task queue. The execution layer
// for sharded experiments: SweepRunner submits one task per shard and the
// pool drains them on however many threads the host grants.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace insomnia::exec {

/// Fixed-size thread pool. Threads are spawned in the constructor and joined
/// in the destructor; tasks submitted after that drain before destruction
/// completes. Tasks must not throw (SweepRunner wraps user work and captures
/// exceptions per shard); a task that does throw terminates the process.
class ThreadPool {
 public:
  /// Spawns `thread_count` workers (at least 1).
  explicit ThreadPool(int thread_count);

  /// Joins all workers after the queue drains. Blocks until running tasks
  /// finish; queued-but-unstarted tasks still execute first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task for execution on some worker, FIFO order.
  void submit(std::function<void()> task);

  /// Number of worker threads.
  int thread_count() const { return static_cast<int>(workers_.size()); }

 private:
  /// `index` is the worker's spawn position, used only to name its trace
  /// track ("worker-N") in the observability layer.
  void worker_loop(int index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

/// Reads the worker count from the INSOMNIA_THREADS environment variable.
/// Unset returns `fallback`; non-numeric, zero, or negative values throw
/// util::InvalidArgument (misconfigured parallelism should fail loudly, not
/// silently serialize a week-long sweep).
int threads_from_env(int fallback);

/// The default worker count for experiment sharding: INSOMNIA_THREADS when
/// set, otherwise the hardware concurrency (at least 1).
int default_thread_count();

}  // namespace insomnia::exec
