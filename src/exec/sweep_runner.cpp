#include "exec/sweep_runner.h"

namespace insomnia::exec {

SweepRunner::SweepRunner(int threads)
    : threads_(threads <= 0 ? default_thread_count() : threads) {
  if (threads_ > 1) pool_.emplace(threads_);
}

}  // namespace insomnia::exec
