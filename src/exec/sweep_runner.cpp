#include "exec/sweep_runner.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "sim/random.h"

namespace insomnia::exec {

namespace detail {

namespace {
/// Backoff-draw salt; lives beside the resilience layer's 41-47 range.
constexpr std::uint64_t kBackoffJitterSalt = 48;
}  // namespace

void note_shard_retry() {
#ifndef INSOMNIA_OBS_DISABLED
  static obs::Counter& retries = obs::counter("exec.shard_retries");
  retries.add(1);
#endif
}

void note_shard_giveup() {
#ifndef INSOMNIA_OBS_DISABLED
  static obs::Counter& giveups = obs::counter("exec.shard_giveups");
  giveups.add(1);
#endif
}

void backoff_sleep(const RetryPolicy& policy, std::size_t shard, int failures) {
  if (policy.backoff_base_ms <= 0.0) return;
  // Capped exponential growth with FULL jitter: the delay is uniform in
  // [0, min(cap, base * 2^failures)], which decorrelates retry stampedes
  // (see the AWS architecture blog's "Exponential Backoff And Jitter").
  // The draw is keyed on (seed, shard, attempt) — reproducible pacing that
  // cannot leak into shard results, which never see this RNG.
  double ceiling = policy.backoff_base_ms;
  for (int k = 0; k < failures && ceiling < 1e9; ++k) ceiling *= 2.0;
  if (policy.backoff_cap_ms > 0.0) ceiling = std::min(ceiling, policy.backoff_cap_ms);
  const std::uint64_t site =
      sim::Random::substream_seed(policy.seed, shard, kBackoffJitterSalt);
  sim::Random rng(sim::Random::substream_seed(site, static_cast<std::uint64_t>(failures),
                                              kBackoffJitterSalt));
  const double delay_ms = rng.uniform(0.0, ceiling);
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
}

}  // namespace detail

SweepRunner::SweepRunner(int threads)
    : threads_(threads <= 0 ? default_thread_count() : threads) {
  if (threads_ > 1) pool_.emplace(threads_);
}

}  // namespace insomnia::exec
