// Aggregated shard failure: when several shards of one sweep fail, every
// failing index and its first error message survive into a single thrown
// object — the old lowest-index-only rethrow silently discarded all but one
// failure, which made fleet-scale triage (which cities? how many?) blind.
// Derives from std::runtime_error so existing catch sites keep working; a
// sweep with exactly ONE failing shard still rethrows the original
// exception object (type preserved), so single-failure contracts are
// byte-for-byte what they were.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace insomnia::exec {

class AggregateError : public std::runtime_error {
 public:
  /// One failing shard: its sweep index and the what() of the first
  /// attempt that failed (later retries of the same shard may fail
  /// differently; the first message names the original cause).
  struct Failure {
    std::size_t index = 0;
    std::string message;
  };

  /// `failures` must be non-empty and ordered by index (SweepRunner
  /// collects them in index order).
  explicit AggregateError(std::vector<Failure> failures);

  const std::vector<Failure>& failures() const { return failures_; }

 private:
  static std::string format(const std::vector<Failure>& failures);

  std::vector<Failure> failures_;
};

}  // namespace insomnia::exec
