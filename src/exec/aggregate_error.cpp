#include "exec/aggregate_error.h"

#include <utility>

namespace insomnia::exec {

namespace {

/// what() lists every index but caps the per-shard messages: a 600-shard
/// systemic failure must not build a megabyte error string.
constexpr std::size_t kMaxDetailedMessages = 8;

}  // namespace

AggregateError::AggregateError(std::vector<Failure> failures)
    : std::runtime_error(format(failures)), failures_(std::move(failures)) {}

std::string AggregateError::format(const std::vector<Failure>& failures) {
  std::string text = std::to_string(failures.size()) + " shards failed (indices";
  for (const Failure& failure : failures) text += " " + std::to_string(failure.index);
  text += ")";
  const std::size_t detailed = std::min(failures.size(), kMaxDetailedMessages);
  for (std::size_t i = 0; i < detailed; ++i) {
    text += "; shard " + std::to_string(failures[i].index) + ": " + failures[i].message;
  }
  if (failures.size() > detailed) {
    text += "; ... " + std::to_string(failures.size() - detailed) + " more";
  }
  return text;
}

}  // namespace insomnia::exec
