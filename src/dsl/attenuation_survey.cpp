#include "dsl/attenuation_survey.h"

#include <algorithm>

#include "stats/summary.h"
#include "util/error.h"

namespace insomnia::dsl {

AttenuationSurvey run_attenuation_survey(const AttenuationSurveyConfig& config,
                                         sim::Random& rng) {
  util::require(config.line_cards > 0 && config.ports_per_card > 0,
                "survey needs at least one card and port");
  util::require(config.meters_per_db > 0.0, "meters_per_db must be positive");

  const int total = config.line_cards * config.ports_per_card;
  std::vector<double> attenuation(static_cast<std::size_t>(total));
  for (double& a : attenuation) {
    const double length = std::clamp(rng.normal(config.mean_length_m, config.sigma_length_m),
                                     config.min_length_m, config.max_length_m);
    a = length / config.meters_per_db;
  }
  // Random assignment of lines to ports == random partition into cards.
  rng.shuffle(attenuation);

  AttenuationSurvey survey;
  stats::RunningStats overall;
  std::vector<double> card_means;
  for (int card = 0; card < config.line_cards; ++card) {
    const auto begin = attenuation.begin() + static_cast<std::ptrdiff_t>(card) *
                                                 config.ports_per_card;
    std::vector<double> ports(begin, begin + config.ports_per_card);
    stats::RunningStats s;
    for (double v : ports) {
      s.add(v);
      overall.add(v);
    }
    CardAttenuationStats stats_out;
    stats_out.card = card + 1;
    stats_out.mean = s.mean();
    stats_out.stddev = s.stddev();
    stats_out.p25 = stats::quantile(ports, 0.25);
    stats_out.median = stats::quantile(ports, 0.50);
    stats_out.p75 = stats::quantile(ports, 0.75);
    stats_out.min = s.min();
    stats_out.max = s.max();
    survey.cards.push_back(stats_out);
    card_means.push_back(s.mean());
  }
  survey.overall_mean = overall.mean();
  survey.overall_stddev = overall.stddev();
  survey.between_card_stddev = stats::stddev_of(card_means);
  return survey;
}

}  // namespace insomnia::dsl
