// FEXT (far-end crosstalk) model. For downstream DSL all transmitters are
// co-located at the DSLAM, so a disturber couples into a victim along their
// shared binder length and the coupled signal is attenuated along the
// victim's loop (the standard unequal-length FEXT model):
//
//   PSD_fext(f) = PSD_tx(f) * k_fext * c(d,v) * (f/1MHz)^2
//                 * (L_shared/1km) * |H(f, L_disturber)|^2
//
// where c(d,v) is the binder-geometry coupling factor and L_shared =
// min(L_d, L_v). The coupled power is attenuated along the *disturber's*
// loop (unequal-level FEXT): a short disturber injects near-full-strength
// noise into every pair it touches. This variant — rather than the
// victim-path equal-level model — reproduces the ordering the paper
// measured, where mixed 50-600 m binders sync *lower* on average than
// all-600 m binders (Fig. 14 baselines 41.3 vs 43.7 Mbps) because short
// loops hammer the long ones near the DSLAM.
#pragma once

#include <vector>

#include "dsl/binder.h"
#include "dsl/cable.h"
#include "dsl/vdsl2.h"

namespace insomnia::dsl {

/// One physical line in the crosstalk scenario.
struct LineConfig {
  double length_m = 0.0;  ///< loop length from DSLAM to modem
  int binder_pair = 0;    ///< position in the Binder25 cross-section
};

/// FEXT strength constant: power coupling (linear) between closest pairs of
/// 1 km shared length at 1 MHz. -48 dB is in the range measured for
/// distribution binders and calibrated against the paper's Fig. 14
/// baselines and speedup slopes.
inline constexpr double kDefaultFextCouplingDb = -48.0;

/// Precomputes per-tone channel gains and pairwise FEXT transfer so that
/// sync-rate queries against arbitrary active sets are cheap.
class CrosstalkModel {
 public:
  /// Builds the model for `lines` sharing one binder.
  CrosstalkModel(std::vector<LineConfig> lines, const Vdsl2Parameters& params,
                 CableModel cable = CableModel::pe04(),
                 double fext_coupling_db = kDefaultFextCouplingDb);

  int line_count() const { return static_cast<int>(lines_.size()); }

  /// Received signal PSD of `line` on tone index `t` (mW/Hz).
  double signal_psd(int line, std::size_t tone_index) const;

  /// FEXT PSD injected into `victim` by `disturber` on tone `t` (mW/Hz).
  double fext_psd(int victim, int disturber, std::size_t tone_index) const;

  /// Total noise PSD at `victim` on tone `t` given `active[d]` flags for all
  /// lines: AWGN floor plus FEXT from every other active line (mW/Hz).
  double noise_psd(int victim, const std::vector<bool>& active, std::size_t tone_index) const;

  /// Tone frequencies in use (downstream band plan).
  const std::vector<double>& tones() const { return tones_; }

  const Vdsl2Parameters& parameters() const { return params_; }
  const LineConfig& line(int index) const;

 private:
  std::vector<LineConfig> lines_;
  Vdsl2Parameters params_;
  CableModel cable_;
  Binder25 binder_;
  double fext_coupling_linear_;
  std::vector<double> tones_;
  // signal_[line][tone] = received PSD (mW/Hz)
  std::vector<std::vector<double>> signal_;
  // fext_[victim][disturber][tone] = injected PSD (mW/Hz)
  std::vector<std::vector<std::vector<double>>> fext_;
  double floor_mw_;
};

}  // namespace insomnia::dsl
