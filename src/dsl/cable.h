// Twisted-pair cable attenuation model. We use the customary engineering
// fit for 0.4/0.5 mm PE-insulated pairs: insertion loss grows with the
// square root of frequency (skin effect) plus a linear dielectric term,
// proportional to length.
#pragma once

namespace insomnia::dsl {

/// Frequency-dependent attenuation model of one cable type.
struct CableModel {
  /// dB per km at 1 MHz contributed by the sqrt(f) (skin-effect) term.
  double sqrt_term_db_per_km = 20.0;
  /// dB per km per MHz contributed by the linear (dielectric) term.
  double linear_term_db_per_km = 3.4;
  /// Frequency-independent dB per km (splices, imperfect terminations).
  double constant_db_per_km = 1.0;

  /// Insertion loss in dB of `length_m` metres at frequency `f_hz`.
  double attenuation_db(double f_hz, double length_m) const;

  /// Linear power transfer |H(f)|^2 of `length_m` metres at `f_hz`.
  double power_gain(double f_hz, double length_m) const;

  /// Default European 0.4 mm (26 AWG-like) distribution cable.
  static CableModel pe04();
};

}  // namespace insomnia::dsl
