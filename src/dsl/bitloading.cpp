#include "dsl/bitloading.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace insomnia::dsl {

double bits_per_tone(double signal_psd, double noise_psd, double gap_db, double max_bits) {
  util::require(noise_psd > 0.0, "noise PSD must be positive");
  if (signal_psd <= 0.0) return 0.0;
  const double gap = util::db_to_linear(gap_db);
  const double bits = std::log2(1.0 + signal_psd / (noise_psd * gap));
  return std::clamp(bits, 0.0, max_bits);
}

double attainable_rate_bps(const CrosstalkModel& model, int victim,
                           const std::vector<bool>& active, double margin_noise_db) {
  const Vdsl2Parameters& params = model.parameters();
  const double gap_db = params.effective_gap_db() + margin_noise_db;
  double bits_per_symbol = 0.0;
  for (std::size_t t = 0; t < model.tones().size(); ++t) {
    bits_per_symbol += bits_per_tone(model.signal_psd(victim, t),
                                     model.noise_psd(victim, active, t), gap_db,
                                     params.max_bits_per_tone);
  }
  return bits_per_symbol * kSymbolRateHz * params.framing_efficiency;
}

SyncResult sync_line(const CrosstalkModel& model, int victim, const std::vector<bool>& active,
                     const ServiceProfile& profile, double margin_noise_db) {
  SyncResult result;
  result.attainable_rate_bps = attainable_rate_bps(model, victim, active, margin_noise_db);
  result.capped = result.attainable_rate_bps > profile.plan_rate_bps;
  result.sync_rate_bps = std::min(result.attainable_rate_bps, profile.plan_rate_bps);
  return result;
}

double margin_at_rate(const CrosstalkModel& model, int victim, const std::vector<bool>& active,
                      double rate_bps, double tolerance_db) {
  util::require(rate_bps > 0.0, "margin_at_rate needs a positive rate");
  util::require(tolerance_db > 0.0, "margin_at_rate needs a positive tolerance");
  // attainable_rate_bps is strictly decreasing in the extra margin: more
  // guard band means fewer bits per tone. Bisect for the crossing point.
  double lo = -20.0;  // giving margin back raises the rate
  double hi = 60.0;   // absurdly conservative: rate ~ 0
  if (attainable_rate_bps(model, victim, active, lo) < rate_bps) return lo;
  if (attainable_rate_bps(model, victim, active, hi) > rate_bps) return hi;
  while (hi - lo > tolerance_db) {
    const double mid = 0.5 * (lo + hi);
    if (attainable_rate_bps(model, victim, active, mid) >= rate_bps) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace insomnia::dsl
