// The appendix experiment (Fig. 15): distribution of measured port
// attenuations across the line cards of a production DSLAM. The paper uses
// it to argue that gateway-to-port assignment is effectively random (no
// geographic clustering per card); we synthesise the same picture from a
// Gaussian loop-length population (sigma ~ one mile) and the ADSL2+
// 1 dB ~ 70 m rule.
#pragma once

#include <vector>

#include "sim/random.h"

namespace insomnia::dsl {

/// Population and DSLAM shape parameters.
struct AttenuationSurveyConfig {
  int line_cards = 14;
  int ports_per_card = 72;
  double mean_length_m = 2200.0;  ///< mean loop length of the population
  double sigma_length_m = 1609.344;  ///< one mile, per the paper
  double min_length_m = 150.0;
  double max_length_m = 6500.0;
  double meters_per_db = 70.0;  ///< ADSL2+ attenuation rule of thumb
};

/// Distribution summary of one line card's port attenuations (dB).
struct CardAttenuationStats {
  int card = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Survey outcome: per-card statistics plus the cross-card dispersion used
/// to test the paper's randomness claim.
struct AttenuationSurvey {
  std::vector<CardAttenuationStats> cards;
  double overall_mean = 0.0;
  double overall_stddev = 0.0;
  /// Standard deviation of the per-card means: small relative to
  /// overall_stddev means no card-level geography ("minimal variations in
  /// mean" across cards).
  double between_card_stddev = 0.0;
};

/// Draws the population, assigns lines to ports uniformly at random, and
/// summarises per card.
AttenuationSurvey run_attenuation_survey(const AttenuationSurveyConfig& config,
                                         sim::Random& rng);

}  // namespace insomnia::dsl
