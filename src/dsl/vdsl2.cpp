#include "dsl/vdsl2.h"

#include <cmath>

#include "util/error.h"

namespace insomnia::dsl {

std::vector<double> Vdsl2Parameters::downstream_tones() const {
  std::vector<double> tones;
  for (const Band& band : downstream_bands) {
    util::require(band.high_hz > band.low_hz, "band must have positive width");
    // First tone centre at or above the band edge.
    const auto first = static_cast<long>(std::ceil(band.low_hz / kToneSpacingHz));
    for (long n = first; n * kToneSpacingHz < band.high_hz; ++n) {
      tones.push_back(static_cast<double>(n) * kToneSpacingHz);
    }
  }
  return tones;
}

Vdsl2Parameters Vdsl2Parameters::profile_17a() {
  Vdsl2Parameters p;
  p.name = "VDSL2-17a (998ADE17)";
  p.downstream_bands = {{138e3, 3.75e6}, {5.2e6, 8.5e6}, {12.0e6, 17.664e6}};
  return p;
}

Vdsl2Parameters Vdsl2Parameters::profile_8b() {
  Vdsl2Parameters p;
  p.name = "VDSL2-8b (998)";
  p.downstream_bands = {{138e3, 3.75e6}, {5.2e6, 8.5e6}};
  return p;
}

Vdsl2Parameters Vdsl2Parameters::profile_ds1_only() {
  Vdsl2Parameters p;
  p.name = "VDSL2-DS1 (998 DS1 only)";
  p.downstream_bands = {{138e3, 3.75e6}};
  return p;
}

ServiceProfile ServiceProfile::mbps30() { return {"30 Mbps plan", 30e6}; }

ServiceProfile ServiceProfile::mbps62() { return {"62 Mbps plan", 62e6}; }

}  // namespace insomnia::dsl
