// Geometry of the 25-pair cable binder of Fig. 13a. Crosstalk coupling
// between two pairs depends on their physical distance inside the binder:
// adjacent pairs couple worst. We model the standard cross-section as two
// concentric rings (8 inner + 16 outer) around a centre pair.
#pragma once

#include <vector>

namespace insomnia::dsl {

/// 2D position of a pair in the binder cross-section (unit: pair pitch).
struct PairPosition {
  double x = 0.0;
  double y = 0.0;
};

/// The 25-pair binder layout and the pairwise coupling geometry.
class Binder25 {
 public:
  /// Builds the canonical layout: pair 0 at the centre, pairs 1-8 on an
  /// inner ring of radius 1, pairs 9-24 on an outer ring of radius 2.
  Binder25();

  /// Number of pairs (25).
  int pair_count() const { return static_cast<int>(positions_.size()); }

  /// Euclidean distance between two pairs in pitch units (>= ~0.77 for
  /// adjacent outer-ring neighbours).
  double distance(int a, int b) const;

  /// Relative coupling factor between two distinct pairs: 1/d^2, normalised
  /// so the closest possible pairs have factor 1. Crosstalk models multiply
  /// their base coupling constant by this.
  double coupling_factor(int a, int b) const;

  const PairPosition& position(int pair) const;

 private:
  std::vector<PairPosition> positions_;
  double min_distance_;
};

}  // namespace insomnia::dsl
