#include "dsl/crosstalk.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace insomnia::dsl {

CrosstalkModel::CrosstalkModel(std::vector<LineConfig> lines, const Vdsl2Parameters& params,
                               CableModel cable, double fext_coupling_db)
    : lines_(std::move(lines)),
      params_(params),
      cable_(cable),
      fext_coupling_linear_(util::db_to_linear(fext_coupling_db)),
      tones_(params.downstream_tones()),
      floor_mw_(util::dbm_per_hz_to_mw(params.background_noise_dbm_hz)) {
  util::require(!lines_.empty(), "CrosstalkModel needs at least one line");
  for (const LineConfig& line : lines_) {
    util::require(line.length_m > 0.0, "line length must be positive");
    util::require(line.binder_pair >= 0 && line.binder_pair < binder_.pair_count(),
                  "binder pair out of range");
  }

  const double tx_mw = util::dbm_per_hz_to_mw(params_.tx_psd_dbm_hz);
  const int n = line_count();
  signal_.assign(static_cast<std::size_t>(n), std::vector<double>(tones_.size(), 0.0));
  for (int v = 0; v < n; ++v) {
    for (std::size_t t = 0; t < tones_.size(); ++t) {
      signal_[static_cast<std::size_t>(v)][t] =
          tx_mw * cable_.power_gain(tones_[t], lines_[static_cast<std::size_t>(v)].length_m);
    }
  }

  fext_.assign(static_cast<std::size_t>(n),
               std::vector<std::vector<double>>(static_cast<std::size_t>(n)));
  for (int v = 0; v < n; ++v) {
    for (int d = 0; d < n; ++d) {
      if (d == v) continue;
      auto& row = fext_[static_cast<std::size_t>(v)][static_cast<std::size_t>(d)];
      row.resize(tones_.size());
      const double shared_km =
          std::min(lines_[static_cast<std::size_t>(v)].length_m,
                   lines_[static_cast<std::size_t>(d)].length_m) /
          1000.0;
      const double geometry = binder_.coupling_factor(
          lines_[static_cast<std::size_t>(v)].binder_pair,
          lines_[static_cast<std::size_t>(d)].binder_pair);
      for (std::size_t t = 0; t < tones_.size(); ++t) {
        const double f_mhz = tones_[t] / 1e6;
        row[t] = tx_mw * fext_coupling_linear_ * geometry * f_mhz * f_mhz * shared_km *
                 cable_.power_gain(tones_[t], lines_[static_cast<std::size_t>(d)].length_m);
      }
    }
  }
}

double CrosstalkModel::signal_psd(int line, std::size_t tone_index) const {
  return signal_.at(static_cast<std::size_t>(line)).at(tone_index);
}

double CrosstalkModel::fext_psd(int victim, int disturber, std::size_t tone_index) const {
  util::require(victim != disturber, "a line does not disturb itself");
  return fext_.at(static_cast<std::size_t>(victim))
      .at(static_cast<std::size_t>(disturber))
      .at(tone_index);
}

double CrosstalkModel::noise_psd(int victim, const std::vector<bool>& active,
                                 std::size_t tone_index) const {
  util::require(static_cast<int>(active.size()) == line_count(),
                "active flags must cover every line");
  double noise = floor_mw_;
  const auto& rows = fext_[static_cast<std::size_t>(victim)];
  for (int d = 0; d < line_count(); ++d) {
    if (d == victim || !active[static_cast<std::size_t>(d)]) continue;
    noise += rows[static_cast<std::size_t>(d)][tone_index];
  }
  return noise;
}

const LineConfig& CrosstalkModel::line(int index) const {
  return lines_.at(static_cast<std::size_t>(index));
}

}  // namespace insomnia::dsl
