// Multicarrier (DMT) bit-loading: turns per-tone SNR into a sync rate via
// the Shannon-gap approximation, and models the two VDSL2 initialisation
// policies of §6.1 — rate-adaptive (maximise rate at fixed margin) and
// fixed-rate (cap at the plan rate, excess SNR becomes margin).
#pragma once

#include <vector>

#include "dsl/crosstalk.h"
#include "dsl/vdsl2.h"

namespace insomnia::dsl {

/// Result of one line initialisation (sync).
struct SyncResult {
  double attainable_rate_bps = 0.0;  ///< rate-adaptive ceiling
  double sync_rate_bps = 0.0;        ///< after the service-profile cap
  bool capped = false;               ///< true if the plan rate binds
};

/// Bits per DMT symbol on one tone given signal and noise PSDs (densities
/// cancel, so any common unit works) and the effective SNR gap in dB.
/// Clamped to [0, max_bits].
double bits_per_tone(double signal_psd, double noise_psd, double gap_db, double max_bits);

/// Rate-adaptive attainable rate of `victim` under the given active set
/// (Shannon-gap bit-loading over every downstream tone), with an optional
/// extra margin perturbation `margin_noise_db` modelling the
/// non-determinism of real initialisations (Fig. 14 error bars).
double attainable_rate_bps(const CrosstalkModel& model, int victim,
                           const std::vector<bool>& active, double margin_noise_db = 0.0);

/// Full sync: attainable rate then the plan cap of `profile`.
SyncResult sync_line(const CrosstalkModel& model, int victim, const std::vector<bool>& active,
                     const ServiceProfile& profile, double margin_noise_db = 0.0);

/// §6.1 initialisation option (ii): fix the bit rate and maximise the noise
/// margin. Returns the extra margin (dB, relative to the parameters'
/// target margin) at which the line attains exactly `rate_bps` under the
/// given active set — positive when the line holds the plan rate with room
/// to spare, negative when it cannot (it would have to eat into its guard
/// band). Resolved by bisection over [-20, +60] dB to `tolerance_db`.
double margin_at_rate(const CrosstalkModel& model, int victim, const std::vector<bool>& active,
                      double rate_bps, double tolerance_db = 0.01);

}  // namespace insomnia::dsl
