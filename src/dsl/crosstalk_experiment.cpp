#include "dsl/crosstalk_experiment.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/summary.h"
#include "util/error.h"

namespace insomnia::dsl {

CrosstalkExperimentResult run_crosstalk_experiment(const CrosstalkExperimentConfig& config,
                                                   sim::Random& rng) {
  util::require(config.line_count >= 2 && config.line_count <= 24,
                "experiment supports 2..24 lines (binder positions)");
  for (int step : config.inactive_steps) {
    util::require(step >= 0 && step < config.line_count,
                  "cannot deactivate that many lines");
  }

  // Build the physical scenario: line i on binder ring position i+1 (the
  // centre pair stays unused, as in a real 25-pair count).
  std::vector<LineConfig> lines(static_cast<std::size_t>(config.line_count));
  for (int i = 0; i < config.line_count; ++i) {
    auto& line = lines[static_cast<std::size_t>(i)];
    line.binder_pair = i + 1;
    if (config.mixed_lengths) {
      const double u = std::pow(rng.uniform(0.0, 1.0), config.mixed_length_skew);
      line.length_m = config.mixed_min_m + (config.mixed_max_m - config.mixed_min_m) * u;
    } else {
      line.length_m = config.fixed_length_m;
    }
  }
  const CrosstalkModel model(lines, config.params, CableModel::pe04(),
                             config.fext_coupling_db);

  // Noise-free per-line baselines with every line active.
  std::vector<bool> all_active(static_cast<std::size_t>(config.line_count), true);
  std::vector<double> baseline(static_cast<std::size_t>(config.line_count));
  for (int v = 0; v < config.line_count; ++v) {
    baseline[static_cast<std::size_t>(v)] =
        sync_line(model, v, all_active, config.profile).sync_rate_bps;
  }

  CrosstalkExperimentResult result;
  result.baseline_mean_bps = stats::mean_of(baseline);

  // speedups[step] accumulates one mean-per-line speedup per (sequence,
  // repetition) measurement.
  std::vector<std::vector<double>> speedups(config.inactive_steps.size());

  for (int seq = 0; seq < config.sequences; ++seq) {
    std::vector<int> order(static_cast<std::size_t>(config.line_count));
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    for (int rep = 0; rep < config.repetitions; ++rep) {
      for (std::size_t s = 0; s < config.inactive_steps.size(); ++s) {
        const int inactive = config.inactive_steps[s];
        std::vector<bool> active(static_cast<std::size_t>(config.line_count), true);
        for (int i = 0; i < inactive; ++i) {
          active[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = false;
        }
        // Resynchronise every active line, one at a time (random order per
        // the methodology), each with independent margin noise.
        stats::RunningStats per_line;
        for (int v = 0; v < config.line_count; ++v) {
          if (!active[static_cast<std::size_t>(v)]) continue;
          const double noise_db = rng.normal(0.0, config.margin_noise_sigma_db);
          const double rate = sync_line(model, v, active, config.profile, noise_db).sync_rate_bps;
          per_line.add(rate / baseline[static_cast<std::size_t>(v)] - 1.0);
        }
        speedups[s].push_back(per_line.mean());
      }
    }
  }

  for (std::size_t s = 0; s < config.inactive_steps.size(); ++s) {
    result.points.push_back({config.inactive_steps[s], stats::mean_of(speedups[s]),
                             stats::stddev_of(speedups[s])});
  }
  return result;
}

std::vector<CrosstalkExperimentConfig> fig14_configurations() {
  CrosstalkExperimentConfig mixed62;
  mixed62.mixed_lengths = true;
  mixed62.params = Vdsl2Parameters::profile_17a();
  mixed62.profile = ServiceProfile::mbps62();

  CrosstalkExperimentConfig fixed62 = mixed62;
  fixed62.mixed_lengths = false;

  CrosstalkExperimentConfig mixed30;
  mixed30.mixed_lengths = true;
  mixed30.params = Vdsl2Parameters::profile_ds1_only();
  mixed30.profile = ServiceProfile::mbps30();

  CrosstalkExperimentConfig fixed30 = mixed30;
  fixed30.mixed_lengths = false;

  return {mixed62, fixed62, mixed30, fixed30};
}

}  // namespace insomnia::dsl
