#include "dsl/cable.h"

#include <cmath>

#include "util/error.h"

namespace insomnia::dsl {

double CableModel::attenuation_db(double f_hz, double length_m) const {
  util::require(f_hz >= 0.0 && length_m >= 0.0,
                "attenuation needs non-negative frequency and length");
  const double f_mhz = f_hz / 1e6;
  const double per_km =
      constant_db_per_km + sqrt_term_db_per_km * std::sqrt(f_mhz) + linear_term_db_per_km * f_mhz;
  return per_km * (length_m / 1000.0);
}

double CableModel::power_gain(double f_hz, double length_m) const {
  return std::pow(10.0, -attenuation_db(f_hz, length_m) / 10.0);
}

CableModel CableModel::pe04() { return {}; }

}  // namespace insomnia::dsl
