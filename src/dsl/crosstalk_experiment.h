// The Fig. 14 experiment: 24 VDSL2 lines in one binder; deactivate lines in
// random orders and measure the sync-rate speedup of the remaining active
// lines relative to the all-active baseline. Reproduces the paper's four
// configurations (30/62 Mbps plans x fixed-600 m / mixed-length loops),
// including the measurement noise that gives the error bars.
#pragma once

#include <vector>

#include "dsl/bitloading.h"
#include "dsl/crosstalk.h"
#include "dsl/vdsl2.h"
#include "sim/random.h"

namespace insomnia::dsl {

/// Parameters of one experiment configuration.
struct CrosstalkExperimentConfig {
  int line_count = 24;
  bool mixed_lengths = true;       ///< true: telco length mix; false: fixed
  double fixed_length_m = 600.0;
  double mixed_min_m = 50.0;       ///< mixed loops drawn from [min, max]
  double mixed_max_m = 600.0;
  /// Mixed loops are sampled as min + (max-min) * u^skew; skew < 1 skews
  /// the population towards long loops (telco plant is mostly far from the
  /// exchange).
  double mixed_length_skew = 0.40;
  Vdsl2Parameters params = Vdsl2Parameters::profile_17a();
  ServiceProfile profile = ServiceProfile::mbps62();
  double fext_coupling_db = kDefaultFextCouplingDb;

  /// §6.2 methodology: 5 random orders, each measured twice.
  int sequences = 5;
  int repetitions = 2;

  /// Per-sync noise on the effective margin (dB, 1 sigma) modelling the
  /// "non-deterministic nature of the measured medium".
  double margin_noise_sigma_db = 0.25;

  /// Numbers of inactive lines at which to measure (the paper's x-axis).
  std::vector<int> inactive_steps = {0, 2, 4, 6, 8, 10, 12, 16, 20};
};

/// Mean/stddev of the per-line speedup at one inactive-count step.
struct SpeedupPoint {
  int inactive_lines = 0;
  double mean_speedup = 0.0;    ///< fractional gain (0.25 = +25 %)
  double stddev_speedup = 0.0;  ///< across sequences x repetitions
};

/// Result of one configuration sweep.
struct CrosstalkExperimentResult {
  double baseline_mean_bps = 0.0;  ///< mean sync rate, all lines active
  std::vector<SpeedupPoint> points;
};

/// Runs the sweep. Deterministic given `rng`'s state.
CrosstalkExperimentResult run_crosstalk_experiment(const CrosstalkExperimentConfig& config,
                                                   sim::Random& rng);

/// The paper's four configurations in legend order (62 mixed, 62 fixed,
/// 30 mixed, 30 fixed). The 30 Mbps plan rides the narrower 8b band plan.
std::vector<CrosstalkExperimentConfig> fig14_configurations();

}  // namespace insomnia::dsl
