#include "dsl/binder.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace insomnia::dsl {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

Binder25::Binder25() {
  positions_.push_back({0.0, 0.0});  // centre pair
  constexpr int kInner = 8;
  constexpr int kOuter = 16;
  for (int i = 0; i < kInner; ++i) {
    const double angle = 2.0 * kPi * i / kInner;
    positions_.push_back({std::cos(angle), std::sin(angle)});
  }
  for (int i = 0; i < kOuter; ++i) {
    const double angle = 2.0 * kPi * (i + 0.5) / kOuter;
    positions_.push_back({2.0 * std::cos(angle), 2.0 * std::sin(angle)});
  }
  min_distance_ = std::numeric_limits<double>::infinity();
  for (int a = 0; a < pair_count(); ++a) {
    for (int b = a + 1; b < pair_count(); ++b) {
      min_distance_ = std::min(min_distance_, distance(a, b));
    }
  }
}

double Binder25::distance(int a, int b) const {
  const PairPosition& pa = position(a);
  const PairPosition& pb = position(b);
  return std::hypot(pa.x - pb.x, pa.y - pb.y);
}

double Binder25::coupling_factor(int a, int b) const {
  util::require(a != b, "coupling_factor needs two distinct pairs");
  const double d = distance(a, b) / min_distance_;
  return 1.0 / (d * d);
}

const PairPosition& Binder25::position(int pair) const {
  return positions_.at(static_cast<std::size_t>(pair));
}

}  // namespace insomnia::dsl
