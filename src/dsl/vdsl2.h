// VDSL2 transmission parameters: DMT tone grid, downstream band plan, and
// service profiles. Only the downstream direction is modelled (the paper's
// crosstalk experiment reports downstream sync rates).
#pragma once

#include <string>
#include <vector>

namespace insomnia::dsl {

/// A contiguous frequency band [low_hz, high_hz).
struct Band {
  double low_hz = 0.0;
  double high_hz = 0.0;
};

/// DMT constants shared by ADSL2+/VDSL2.
inline constexpr double kToneSpacingHz = 4312.5;
inline constexpr double kSymbolRateHz = 4000.0;  ///< DMT symbols per second

/// Modem/line transmission parameters.
struct Vdsl2Parameters {
  std::string name;
  std::vector<Band> downstream_bands;  ///< band plan, ascending, disjoint
  double tx_psd_dbm_hz = -60.0;        ///< flat downstream transmit PSD
  /// Receiver noise floor. -132 dBm/Hz folds the AWGN floor together with
  /// alien (out-of-binder) crosstalk and impulse-noise margin, calibrated
  /// against the Fig. 14 testbed baselines.
  double background_noise_dbm_hz = -132.0;
  double snr_gap_db = 9.75;            ///< Shannon gap for 1e-7 BER, uncoded
  double target_margin_db = 6.0;       ///< paper §6.1: at least 6 dB margin
  double coding_gain_db = 3.0;         ///< trellis + RS coding gain
  double max_bits_per_tone = 15.0;
  double framing_efficiency = 0.97;    ///< overhead of framing/RS parity

  /// Effective SNR gap including margin and coding gain (dB).
  double effective_gap_db() const {
    return snr_gap_db + target_margin_db - coding_gain_db;
  }

  /// Centre frequencies of every usable downstream tone, ascending.
  std::vector<double> downstream_tones() const;

  /// ITU-T band plan 998ADE17 (profile 17a) downstream bands: DS1-DS3.
  /// This is what a 62 Mbps service profile runs on.
  static Vdsl2Parameters profile_17a();

  /// Band plan 998 (profile 8b) downstream bands: DS1-DS2.
  static Vdsl2Parameters profile_8b();

  /// DS1 only (138 kHz - 3.75 MHz). Models the paper's 30 Mbps service
  /// profile, whose measured baselines (27.8/29.7 Mbps at <= 600 m) sit
  /// *below* the plan cap — only possible if the DSLAM provisioned the
  /// first downstream band alone.
  static Vdsl2Parameters profile_ds1_only();
};

/// A commercial service profile: the plan cap applied on top of whatever
/// the line could physically attain (§6.1 option (ii): fixed bit rate with
/// maximised margin — attainable rate above the cap is converted to margin).
struct ServiceProfile {
  std::string name;
  double plan_rate_bps = 0.0;  ///< subscribed downstream rate cap

  static ServiceProfile mbps30();
  static ServiceProfile mbps62();
};

}  // namespace insomnia::dsl
