#include "topology/degree_sequence.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace insomnia::topo {

std::vector<int> sample_degree_sequence(const DegreeSequenceConfig& config, sim::Random& rng) {
  util::require(config.node_count >= 2, "degree sequence needs at least two nodes");
  util::require(config.mean_degree >= config.min_degree,
                "mean degree below the minimum degree");
  const int max_degree = config.node_count - 1;
  // Log-normal with median chosen so that the post-clamp mean lands close to
  // the target: mu = ln(mean) - sigma^2/2 makes the *continuous* mean equal
  // to the target before discretisation.
  const double mu = std::log(config.mean_degree) - config.sigma * config.sigma / 2.0;

  std::vector<int> degrees(static_cast<std::size_t>(config.node_count));
  while (true) {
    for (auto& d : degrees) {
      const double sample = rng.lognormal(mu, config.sigma);
      d = std::clamp(static_cast<int>(std::lround(sample)), config.min_degree, max_degree);
    }
    // Make the sum even by nudging one node.
    int sum = std::accumulate(degrees.begin(), degrees.end(), 0);
    if (sum % 2 != 0) {
      for (auto& d : degrees) {
        if (d < max_degree) {
          ++d;
          ++sum;
          break;
        }
      }
    }
    if (sum % 2 == 0 && is_graphical(degrees)) {
      // A connected simple graph needs at least n-1 edges. Sparse presets
      // under heavy jitter can draw a sequence that is graphical yet too
      // thin to connect; thicken the sparsest nodes instead of handing
      // generate_connected_graph an impossible sequence. The bump count
      // (connect_min - sum) is even, so parity is preserved. Draws that
      // already satisfy the floor — every draw before this path existed —
      // return exactly as they used to.
      const int connect_min = 2 * (config.node_count - 1);
      if (sum >= connect_min) return degrees;
      while (sum < connect_min) {
        ++*std::min_element(degrees.begin(), degrees.end());
        ++sum;
      }
      if (is_graphical(degrees)) return degrees;
    }
  }
}

bool is_graphical(std::vector<int> degrees) {
  // Erdos-Gallai: sort descending; for each k check
  //   sum_{i<=k} d_i <= k(k-1) + sum_{i>k} min(d_i, k).
  if (degrees.empty()) return true;
  for (int d : degrees) {
    if (d < 0 || d >= static_cast<int>(degrees.size())) return false;
  }
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  long long total = std::accumulate(degrees.begin(), degrees.end(), 0LL);
  if (total % 2 != 0) return false;

  const int n = static_cast<int>(degrees.size());
  long long prefix = 0;
  for (int k = 1; k <= n; ++k) {
    prefix += degrees[static_cast<std::size_t>(k - 1)];
    long long bound = static_cast<long long>(k) * (k - 1);
    for (int i = k; i < n; ++i) {
      bound += std::min(degrees[static_cast<std::size_t>(i)], k);
    }
    if (prefix > bound) return false;
  }
  return true;
}

}  // namespace insomnia::topo
