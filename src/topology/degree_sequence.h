// Degree-sequence sampling for the wireless overlap graph. The paper builds
// its topology so that "node degrees follow the distribution of
// per-household wireless networks in a residential area" with a resulting
// mean of 5.6 networks in range of a client (home + neighbours), i.e. a mean
// gateway degree of ~4.6.
#pragma once

#include <vector>

#include "sim/random.h"

namespace insomnia::topo {

/// Parameters of the residential degree model: a discretised log-normal
/// (right-skewed, like measured AP densities) clamped to [min_degree,
/// node_count-1] and adjusted to an even sum so the sequence is realisable.
struct DegreeSequenceConfig {
  int node_count = 40;
  double mean_degree = 4.6;  ///< target mean; 1 + mean = networks in client range
  double sigma = 0.45;       ///< shape of the log-normal spread
  int min_degree = 1;        ///< keep the graph free of isolated gateways
};

/// Samples a graphical degree sequence with (approximately) the requested
/// mean. The sum is forced even; values are clamped to [min_degree, n-1].
std::vector<int> sample_degree_sequence(const DegreeSequenceConfig& config, sim::Random& rng);

/// Erdos-Gallai test: can `degrees` be realised by a simple graph?
bool is_graphical(std::vector<int> degrees);

}  // namespace insomnia::topo
