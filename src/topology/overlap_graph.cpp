#include "topology/overlap_graph.h"

#include <algorithm>
#include <numeric>

#include "topology/degree_sequence.h"
#include "util/error.h"

namespace insomnia::topo {

Graph::Graph(int node_count) {
  util::require(node_count >= 0, "Graph needs a non-negative node count");
  adjacency_.resize(static_cast<std::size_t>(node_count));
}

bool Graph::has_edge(int a, int b) const {
  return adjacency_.at(static_cast<std::size_t>(a)).count(b) != 0;
}

void Graph::add_edge(int a, int b) {
  util::require(a != b, "self-loops are not allowed");
  if (has_edge(a, b)) return;
  adjacency_.at(static_cast<std::size_t>(a)).insert(b);
  adjacency_.at(static_cast<std::size_t>(b)).insert(a);
  ++edge_count_;
}

void Graph::remove_edge(int a, int b) {
  if (!has_edge(a, b)) return;
  adjacency_.at(static_cast<std::size_t>(a)).erase(b);
  adjacency_.at(static_cast<std::size_t>(b)).erase(a);
  --edge_count_;
}

std::vector<int> Graph::neighbors(int node) const {
  const auto& set = adjacency_.at(static_cast<std::size_t>(node));
  return {set.begin(), set.end()};
}

int Graph::degree(int node) const {
  return static_cast<int>(adjacency_.at(static_cast<std::size_t>(node)).size());
}

bool Graph::is_connected() const {
  const int n = node_count();
  if (n <= 1) return true;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::vector<int> stack{0};
  seen[0] = true;
  int visited = 1;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    for (int next : adjacency_[static_cast<std::size_t>(node)]) {
      if (!seen[static_cast<std::size_t>(next)]) {
        seen[static_cast<std::size_t>(next)] = true;
        ++visited;
        stack.push_back(next);
      }
    }
  }
  return visited == n;
}

std::vector<std::pair<int, int>> Graph::edges() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(edge_count_);
  for (int a = 0; a < node_count(); ++a) {
    for (int b : adjacency_[static_cast<std::size_t>(a)]) {
      if (a < b) out.emplace_back(a, b);
    }
  }
  return out;
}

namespace {

/// Deterministic Havel-Hakimi realisation of a graphical sequence.
Graph havel_hakimi(const std::vector<int>& degrees) {
  const int n = static_cast<int>(degrees.size());
  Graph graph(n);
  // (remaining degree, node) pairs, repeatedly connect the largest to the
  // next-largest ones.
  std::vector<std::pair<int, int>> remaining;
  remaining.reserve(degrees.size());
  for (int i = 0; i < n; ++i) remaining.emplace_back(degrees[static_cast<std::size_t>(i)], i);
  while (true) {
    std::sort(remaining.begin(), remaining.end(), std::greater<>());
    if (remaining.front().first == 0) break;
    auto [d, node] = remaining.front();
    util::require(d < n, "degree sequence not graphical (degree too large)");
    remaining.front().first = 0;
    for (int i = 1; i <= d; ++i) {
      util::require(i < static_cast<int>(remaining.size()) &&
                        remaining[static_cast<std::size_t>(i)].first > 0,
                    "degree sequence not graphical");
      --remaining[static_cast<std::size_t>(i)].first;
      graph.add_edge(node, remaining[static_cast<std::size_t>(i)].second);
    }
  }
  return graph;
}

/// Attempts one randomising double-edge swap: pick edges {a,b}, {c,d} and
/// rewire to {a,d}, {c,b} when that keeps the graph simple.
void try_random_swap(Graph& graph, sim::Random& rng) {
  auto edge_list = graph.edges();
  if (edge_list.size() < 2) return;
  const auto& e1 =
      edge_list[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(edge_list.size()) - 1))];
  const auto& e2 =
      edge_list[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(edge_list.size()) - 1))];
  int a = e1.first, b = e1.second, c = e2.first, d = e2.second;
  if (rng.bernoulli(0.5)) std::swap(c, d);
  if (a == c || a == d || b == c || b == d) return;
  if (graph.has_edge(a, d) || graph.has_edge(c, b)) return;
  graph.remove_edge(a, b);
  graph.remove_edge(c, d);
  graph.add_edge(a, d);
  graph.add_edge(c, b);
}

/// Labels connected components; returns (component id per node, count).
std::pair<std::vector<int>, int> components(const Graph& graph) {
  const int n = graph.node_count();
  std::vector<int> component(static_cast<std::size_t>(n), -1);
  int count = 0;
  for (int start = 0; start < n; ++start) {
    if (component[static_cast<std::size_t>(start)] != -1) continue;
    std::vector<int> stack{start};
    component[static_cast<std::size_t>(start)] = count;
    while (!stack.empty()) {
      const int node = stack.back();
      stack.pop_back();
      for (int next : graph.neighbors(node)) {
        if (component[static_cast<std::size_t>(next)] == -1) {
          component[static_cast<std::size_t>(next)] = count;
          stack.push_back(next);
        }
      }
    }
    ++count;
  }
  return {component, count};
}

/// Merges components with degree-preserving swaps until connected.
void make_connected(Graph& graph, sim::Random& rng) {
  while (!graph.is_connected()) {
    auto [component, count] = components(graph);
    if (count <= 1) return;
    // Collect one random edge inside two distinct components and swap.
    auto edge_list = graph.edges();
    rng.shuffle(edge_list);
    bool swapped = false;
    for (std::size_t i = 0; i < edge_list.size() && !swapped; ++i) {
      for (std::size_t j = i + 1; j < edge_list.size() && !swapped; ++j) {
        const auto [a, b] = edge_list[i];
        const auto [c, d] = edge_list[j];
        if (component[static_cast<std::size_t>(a)] == component[static_cast<std::size_t>(c)]) {
          continue;
        }
        // Cross components: {a,b},{c,d} -> {a,d},{c,b} always joins them;
        // simplicity check still required.
        if (graph.has_edge(a, d) || graph.has_edge(c, b)) continue;
        graph.remove_edge(a, b);
        graph.remove_edge(c, d);
        graph.add_edge(a, d);
        graph.add_edge(c, b);
        swapped = true;
      }
    }
    util::require_state(swapped, "could not connect graph for this degree sequence");
  }
}

}  // namespace

Graph generate_connected_graph(const std::vector<int>& degrees, sim::Random& rng,
                               int shuffle_rounds) {
  util::require(is_graphical(degrees), "degree sequence is not graphical");
  const long long sum = std::accumulate(degrees.begin(), degrees.end(), 0LL);
  util::require(sum >= 2LL * (static_cast<long long>(degrees.size()) - 1),
                "too few edges for a connected graph");
  Graph graph = havel_hakimi(degrees);
  const auto swaps = static_cast<std::size_t>(shuffle_rounds) * graph.edge_count();
  for (std::size_t i = 0; i < swaps; ++i) try_random_swap(graph, rng);
  make_connected(graph, rng);
  return graph;
}

}  // namespace insomnia::topo
