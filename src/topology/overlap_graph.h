// Simple undirected graphs with prescribed degrees, in the style of
// Viger-Latapy [37]: realise the sequence (Havel-Hakimi), randomise with
// degree-preserving double-edge swaps, then restore connectivity with
// component-merging swaps.
#pragma once

#include <cstddef>
#include <set>
#include <utility>
#include <vector>

#include "sim/random.h"

namespace insomnia::topo {

/// An undirected simple graph over nodes 0..n-1 stored as adjacency sets.
class Graph {
 public:
  /// Creates an edgeless graph with `node_count` nodes.
  explicit Graph(int node_count);

  int node_count() const { return static_cast<int>(adjacency_.size()); }
  std::size_t edge_count() const { return edge_count_; }

  /// True if the undirected edge {a,b} exists.
  bool has_edge(int a, int b) const;

  /// Adds edge {a,b}; no-op if present. Self-loops are rejected.
  void add_edge(int a, int b);

  /// Removes edge {a,b}; no-op if absent.
  void remove_edge(int a, int b);

  /// Neighbours of `node`, ascending.
  std::vector<int> neighbors(int node) const;

  int degree(int node) const;

  /// True if the graph is connected (n==0 and n==1 count as connected).
  bool is_connected() const;

  /// All edges as (a < b) pairs.
  std::vector<std::pair<int, int>> edges() const;

 private:
  std::vector<std::set<int>> adjacency_;
  std::size_t edge_count_ = 0;
};

/// Builds a connected simple graph realising `degrees` (must be graphical
/// with even sum and sum >= 2(n-1) for connectivity to be achievable).
/// `shuffle_rounds` controls the number of randomising double-edge swaps per
/// edge (default 10 passes).
Graph generate_connected_graph(const std::vector<int>& degrees, sim::Random& rng,
                               int shuffle_rounds = 10);

}  // namespace insomnia::topo
