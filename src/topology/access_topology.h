// The client-side reachability structure consumed by the schemes: which
// gateways each client can associate with, and which gateway is "home".
#pragma once

#include <vector>

#include "sim/random.h"
#include "topology/degree_sequence.h"
#include "topology/overlap_graph.h"

namespace insomnia::topo {

/// Client <-> gateway reachability for one scenario.
///
/// `client_gateways[i]` lists the gateways client i can use; the home
/// gateway is always first. Invariant: every client can reach its home.
struct AccessTopology {
  int gateway_count = 0;
  std::vector<int> home_gateway;                 ///< per client
  std::vector<std::vector<int>> client_gateways;  ///< per client, home first

  int client_count() const { return static_cast<int>(home_gateway.size()); }

  /// True if `client` can reach `gateway`.
  bool can_reach(int client, int gateway) const;

  /// Mean number of gateways in range of a client (the paper's 5.6).
  double mean_gateways_per_client() const;
};

/// Balanced uniform assignment of clients to home gateways ("we uniformly
/// distribute the 272 clients over the 40 gateways"): a shuffled round-robin
/// so counts differ by at most one.
std::vector<int> assign_homes_balanced(int client_count, int gateway_count, sim::Random& rng);

/// Builds the paper's evaluation topology: a prescribed-degree connected
/// overlap graph between gateways; each client reaches its home gateway plus
/// the home's graph neighbours.
AccessTopology make_overlap_topology(int client_count, const DegreeSequenceConfig& degrees,
                                     sim::Random& rng);

/// Builds the Fig. 10 density-sweep topology: each client reaches home plus
/// a Binomial(gateway_count-1, q) set of others, with q chosen so the mean
/// number of reachable gateways equals `mean_gateways` (>= 1).
AccessTopology make_binomial_topology(int client_count, int gateway_count,
                                      double mean_gateways, sim::Random& rng);

/// Restricts a topology so no client reaches more than `max_gateways`
/// networks (home always kept; extras dropped at random). Models the
/// 3-gateway limit of the paper's live testbed (§5.3).
AccessTopology limit_gateways_per_client(const AccessTopology& topology, int max_gateways,
                                         sim::Random& rng);

}  // namespace insomnia::topo
