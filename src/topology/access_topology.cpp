#include "topology/access_topology.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace insomnia::topo {

bool AccessTopology::can_reach(int client, int gateway) const {
  const auto& reachable = client_gateways.at(static_cast<std::size_t>(client));
  return std::find(reachable.begin(), reachable.end(), gateway) != reachable.end();
}

double AccessTopology::mean_gateways_per_client() const {
  if (client_gateways.empty()) return 0.0;
  double total = 0.0;
  for (const auto& list : client_gateways) total += static_cast<double>(list.size());
  return total / static_cast<double>(client_gateways.size());
}

std::vector<int> assign_homes_balanced(int client_count, int gateway_count, sim::Random& rng) {
  util::require(client_count >= 0 && gateway_count > 0,
                "home assignment needs gateways and non-negative clients");
  std::vector<int> homes(static_cast<std::size_t>(client_count));
  for (int i = 0; i < client_count; ++i) homes[static_cast<std::size_t>(i)] = i % gateway_count;
  rng.shuffle(homes);
  return homes;
}

AccessTopology make_overlap_topology(int client_count, const DegreeSequenceConfig& degrees,
                                     sim::Random& rng) {
  const auto sequence = sample_degree_sequence(degrees, rng);
  const Graph graph = generate_connected_graph(sequence, rng);

  AccessTopology topology;
  topology.gateway_count = degrees.node_count;
  topology.home_gateway = assign_homes_balanced(client_count, degrees.node_count, rng);
  topology.client_gateways.resize(static_cast<std::size_t>(client_count));
  for (int client = 0; client < client_count; ++client) {
    const int home = topology.home_gateway[static_cast<std::size_t>(client)];
    auto& reachable = topology.client_gateways[static_cast<std::size_t>(client)];
    reachable.push_back(home);
    for (int neighbor : graph.neighbors(home)) reachable.push_back(neighbor);
  }
  return topology;
}

AccessTopology make_binomial_topology(int client_count, int gateway_count,
                                      double mean_gateways, sim::Random& rng) {
  util::require(mean_gateways >= 1.0, "a client always reaches at least its home gateway");
  util::require(mean_gateways <= static_cast<double>(gateway_count),
                "mean gateways cannot exceed the gateway count");
  const double q =
      gateway_count > 1
          ? (mean_gateways - 1.0) / static_cast<double>(gateway_count - 1)
          : 0.0;

  AccessTopology topology;
  topology.gateway_count = gateway_count;
  topology.home_gateway = assign_homes_balanced(client_count, gateway_count, rng);
  topology.client_gateways.resize(static_cast<std::size_t>(client_count));
  for (int client = 0; client < client_count; ++client) {
    const int home = topology.home_gateway[static_cast<std::size_t>(client)];
    auto& reachable = topology.client_gateways[static_cast<std::size_t>(client)];
    reachable.push_back(home);
    for (int gw = 0; gw < gateway_count; ++gw) {
      if (gw != home && rng.bernoulli(q)) reachable.push_back(gw);
    }
  }
  return topology;
}

AccessTopology limit_gateways_per_client(const AccessTopology& topology, int max_gateways,
                                         sim::Random& rng) {
  util::require(max_gateways >= 1, "clients must keep at least the home gateway");
  AccessTopology limited = topology;
  for (auto& reachable : limited.client_gateways) {
    if (static_cast<int>(reachable.size()) <= max_gateways) continue;
    // Keep home (front), shuffle the rest and truncate.
    std::vector<int> others(reachable.begin() + 1, reachable.end());
    rng.shuffle(others);
    others.resize(static_cast<std::size_t>(max_gateways - 1));
    reachable.assign(1, reachable.front());
    reachable.insert(reachable.end(), others.begin(), others.end());
  }
  return limited;
}

}  // namespace insomnia::topo
