// Analytic model of line-card sleep probability under k-switching (§4.2).
//
// Setting: k line cards with m modems each are interconnected by m
// k-switches; switch j can permute its k lines among the j-th port of every
// card. Each line is independently active with probability p. Every switch
// packs its inactive lines towards card 1, so card l sleeps iff *every*
// switch has at least l inactive lines.
//
// The paper's Eq. (2) writes P{at least l of k inactive} as
//     1 - sum_{i=0}^{l-1} (1-p)^i p^(k-i)
// which omits the binomial coefficients C(k,i). We provide that expression
// verbatim (to regenerate Fig. 5 as printed) *and* the correct binomial
// tail, plus a Monte-Carlo estimator that the tests use to show which one
// matches simulation (the binomial tail does).
#pragma once

#include "sim/random.h"

namespace insomnia::dslam {

/// P{at least l of k lines inactive}, lines active i.i.d. with prob. p —
/// correct binomial tail.
double prob_at_least_inactive(int l, int k, double p);

/// P{card l (1-based) sleeps} with the correct binomial tail:
/// prob_at_least_inactive(l,k,p) ^ m.
double sleep_probability_exact(int l, int k, int m, double p);

/// P{card l sleeps} using the paper's Eq. (2) exactly as published
/// (missing binomial coefficients).
double sleep_probability_paper(int l, int k, int m, double p);

/// Monte-Carlo estimate of P{card l sleeps}: draws m switches of k
/// Bernoulli lines per trial and applies the packing rule directly.
double sleep_probability_monte_carlo(int l, int k, int m, double p, int trials,
                                     sim::Random& rng);

/// Expected number of sleeping cards in a batch of k (sum over l of the
/// exact sleep probability).
double expected_sleeping_cards(int k, int m, double p);

/// Cards a *full* switch over n = cards*m lines can put to sleep in
/// expectation: E[floor((n - #active)/m)] under Binomial(n, p) actives,
/// computed exactly. The paper quotes the deterministic floor(n(1-p)/m).
double full_switch_expected_sleeping_cards(int cards, int m, double p);

/// The paper's deterministic approximation floor(n(1-p)/m).
int full_switch_sleeping_cards_approx(int cards, int m, double p);

}  // namespace insomnia::dslam
