#include "dslam/sleep_model.h"

#include <cmath>

#include "util/error.h"

namespace insomnia::dslam {

namespace {

void check_args(int l, int k, int m, double p) {
  util::require(k >= 1, "switch size k must be >= 1");
  util::require(l >= 1 && l <= k, "card index l must be in 1..k");
  util::require(m >= 1, "modems per card m must be >= 1");
  util::require(p >= 0.0 && p <= 1.0, "probability p must be in [0,1]");
}

double binomial_coefficient(int n, int r) {
  double result = 1.0;
  for (int i = 1; i <= r; ++i) {
    result *= static_cast<double>(n - r + i) / static_cast<double>(i);
  }
  return result;
}

}  // namespace

double prob_at_least_inactive(int l, int k, double p) {
  util::require(k >= 1 && l >= 0 && l <= k, "need 0 <= l <= k, k >= 1");
  util::require(p >= 0.0 && p <= 1.0, "probability p must be in [0,1]");
  const double q = 1.0 - p;  // per-line inactive probability
  // P{#inactive >= l} = 1 - sum_{i=0}^{l-1} C(k,i) q^i p^(k-i)
  double below = 0.0;
  for (int i = 0; i < l; ++i) {
    below += binomial_coefficient(k, i) * std::pow(q, i) * std::pow(p, k - i);
  }
  return std::max(0.0, 1.0 - below);
}

double sleep_probability_exact(int l, int k, int m, double p) {
  check_args(l, k, m, p);
  return std::pow(prob_at_least_inactive(l, k, p), m);
}

double sleep_probability_paper(int l, int k, int m, double p) {
  check_args(l, k, m, p);
  const double q = 1.0 - p;
  double below = 0.0;
  for (int i = 0; i < l; ++i) {
    below += std::pow(q, i) * std::pow(p, k - i);  // note: no C(k,i) — as published
  }
  return std::pow(std::max(0.0, 1.0 - below), m);
}

double sleep_probability_monte_carlo(int l, int k, int m, double p, int trials,
                                     sim::Random& rng) {
  check_args(l, k, m, p);
  util::require(trials > 0, "Monte Carlo needs at least one trial");
  int sleeps = 0;
  for (int trial = 0; trial < trials; ++trial) {
    bool card_sleeps = true;
    for (int sw = 0; sw < m && card_sleeps; ++sw) {
      int inactive = 0;
      for (int line = 0; line < k; ++line) {
        if (!rng.bernoulli(p)) ++inactive;
      }
      // Packing sends inactive lines to cards 1..#inactive of this switch;
      // card l gets an inactive line iff the switch has at least l of them.
      if (inactive < l) card_sleeps = false;
    }
    if (card_sleeps) ++sleeps;
  }
  return static_cast<double>(sleeps) / static_cast<double>(trials);
}

double expected_sleeping_cards(int k, int m, double p) {
  double expected = 0.0;
  for (int l = 1; l <= k; ++l) expected += sleep_probability_exact(l, k, m, p);
  return expected;
}

double full_switch_expected_sleeping_cards(int cards, int m, double p) {
  util::require(cards >= 1 && m >= 1, "need at least one card and modem");
  util::require(p >= 0.0 && p <= 1.0, "probability p must be in [0,1]");
  const int n = cards * m;
  // E[floor((n - A)/m)] with A ~ Binomial(n, p); evaluate the pmf directly.
  double expected = 0.0;
  double pmf = std::pow(1.0 - p, n);  // P{A = 0}
  for (int a = 0; a <= n; ++a) {
    if (a > 0) {
      if (p >= 1.0) {
        pmf = (a == n) ? 1.0 : 0.0;
      } else {
        pmf *= static_cast<double>(n - a + 1) / static_cast<double>(a) * (p / (1.0 - p));
      }
    }
    expected += pmf * static_cast<double>((n - a) / m);
  }
  return expected;
}

int full_switch_sleeping_cards_approx(int cards, int m, double p) {
  util::require(cards >= 1 && m >= 1, "need at least one card and modem");
  const int n = cards * m;
  return static_cast<int>(std::floor(static_cast<double>(n) * (1.0 - p) /
                                     static_cast<double>(m)));
}

}  // namespace insomnia::dslam
