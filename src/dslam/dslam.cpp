#include "dslam/dslam.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace insomnia::dslam {

Dslam::Dslam(const DslamConfig& config, sim::Random& rng) : config_(config) {
  util::require(config_.line_cards > 0 && config_.ports_per_card > 0,
                "DSLAM needs cards and ports");
  if (config_.mode == SwitchMode::kKSwitch) {
    util::require(config_.switch_size >= 1 && config_.line_cards % config_.switch_size == 0,
                  "switch size must divide the number of line cards");
  }
  const int n = config_.line_cards * config_.ports_per_card;

  ports_.resize(static_cast<std::size_t>(n));
  for (int card = 0; card < config_.line_cards; ++card) {
    for (int position = 0; position < config_.ports_per_card; ++position) {
      ports_[static_cast<std::size_t>(port_index(card, position))].card = card;
    }
  }

  // Random HDF wiring: a random bijection line -> port.
  std::vector<int> shuffled_ports(static_cast<std::size_t>(n));
  std::iota(shuffled_ports.begin(), shuffled_ports.end(), 0);
  rng.shuffle(shuffled_ports);
  line_to_port_.resize(static_cast<std::size_t>(n));
  for (int line = 0; line < n; ++line) {
    const int port = shuffled_ports[static_cast<std::size_t>(line)];
    line_to_port_[static_cast<std::size_t>(line)] = port;
    ports_[static_cast<std::size_t>(port)].line = line;
  }

  active_.assign(static_cast<std::size_t>(n), false);
  active_per_card_.assign(static_cast<std::size_t>(config_.line_cards), 0);

  if (config_.mode == SwitchMode::kKSwitch) {
    // Switch (group g, position p) covers port p of each card in group g.
    const int groups = config_.line_cards / config_.switch_size;
    const int switch_count = groups * config_.ports_per_card;
    switch_ports_.resize(static_cast<std::size_t>(switch_count));
    line_switch_.assign(static_cast<std::size_t>(n), -1);
    for (int card = 0; card < config_.line_cards; ++card) {
      const int group = card / config_.switch_size;
      for (int position = 0; position < config_.ports_per_card; ++position) {
        const int switch_id = group * config_.ports_per_card + position;
        const int port = port_index(card, position);
        switch_ports_[static_cast<std::size_t>(switch_id)].push_back(port);
        // The line wired through this port belongs to this switch for good.
        line_switch_[static_cast<std::size_t>(ports_[static_cast<std::size_t>(port)].line)] =
            switch_id;
      }
    }
  }
}

int Dslam::card_of_line(int line) const {
  return ports_.at(static_cast<std::size_t>(line_to_port_.at(static_cast<std::size_t>(line))))
      .card;
}

bool Dslam::card_awake(int card) const {
  return active_per_card_.at(static_cast<std::size_t>(card)) > 0;
}

int Dslam::awake_card_count() const {
  int count = 0;
  for (int per_card : active_per_card_) {
    if (per_card > 0) ++count;
  }
  return count;
}

int Dslam::active_line_count() const {
  return static_cast<int>(std::count(active_.begin(), active_.end(), true));
}

std::vector<int> Dslam::reachable_ports(int line) const {
  if (config_.mode == SwitchMode::kKSwitch) {
    return switch_ports_.at(
        static_cast<std::size_t>(line_switch_.at(static_cast<std::size_t>(line))));
  }
  std::vector<int> all(ports_.size());
  std::iota(all.begin(), all.end(), 0);
  return all;
}

void Dslam::swap_line_to_port(int line, int target_port) {
  const int old_port = line_to_port_[static_cast<std::size_t>(line)];
  if (old_port == target_port) return;
  const int displaced = ports_[static_cast<std::size_t>(target_port)].line;
  util::require_state(displaced < 0 || !active_[static_cast<std::size_t>(displaced)],
                      "cannot displace an active (synced) line");
  ports_[static_cast<std::size_t>(target_port)].line = line;
  ports_[static_cast<std::size_t>(old_port)].line = displaced;
  line_to_port_[static_cast<std::size_t>(line)] = target_port;
  if (displaced >= 0) line_to_port_[static_cast<std::size_t>(displaced)] = old_port;
}

void Dslam::line_activated(int line) {
  auto is_active = active_.at(static_cast<std::size_t>(line));
  if (is_active) return;

  if (config_.mode == SwitchMode::kKSwitch) {
    // Pack actives onto the highest-numbered cards of the switch group:
    // move the waking line to the highest-card port currently holding an
    // inactive line, if that is higher than where it sits now.
    int best_port = -1;
    int best_card = card_of_line(line);
    for (int port : reachable_ports(line)) {
      const int mapped = ports_[static_cast<std::size_t>(port)].line;
      if (mapped == line || active_[static_cast<std::size_t>(mapped)]) continue;
      if (ports_[static_cast<std::size_t>(port)].card > best_card) {
        best_card = ports_[static_cast<std::size_t>(port)].card;
        best_port = port;
      }
    }
    if (best_port >= 0) swap_line_to_port(line, best_port);
  } else if (config_.mode == SwitchMode::kFullSwitch) {
    // Best-fit: if our card is asleep, join the awake card with the most
    // active lines that still has an inactive port (ties: highest card).
    const int current_card = card_of_line(line);
    if (!card_awake(current_card)) {
      int best_port = -1;
      int best_load = -1;
      int best_card = -1;
      for (int port = 0; port < static_cast<int>(ports_.size()); ++port) {
        const Port& p = ports_[static_cast<std::size_t>(port)];
        if (p.line == line || active_[static_cast<std::size_t>(p.line)]) continue;
        if (!card_awake(p.card)) continue;
        const int load = active_per_card_[static_cast<std::size_t>(p.card)];
        if (load > best_load || (load == best_load && p.card > best_card)) {
          best_load = load;
          best_card = p.card;
          best_port = port;
        }
      }
      if (best_port >= 0) swap_line_to_port(line, best_port);
    }
  }

  active_[static_cast<std::size_t>(line)] = true;
  ++active_per_card_[static_cast<std::size_t>(card_of_line(line))];
}

void Dslam::line_deactivated(int line) {
  auto is_active = active_.at(static_cast<std::size_t>(line));
  if (!is_active) return;
  active_[static_cast<std::size_t>(line)] = false;
  --active_per_card_[static_cast<std::size_t>(card_of_line(line))];
}

int Dslam::repack_all() {
  // Collect active and inactive lines, then refill ports: actives fill the
  // last card first so awake cards are contiguous at the high end.
  std::vector<int> actives;
  std::vector<int> inactives;
  for (int line = 0; line < line_count(); ++line) {
    (active_[static_cast<std::size_t>(line)] ? actives : inactives).push_back(line);
  }
  std::vector<int> order(ports_.size());
  std::iota(order.begin(), order.end(), 0);
  // Descending port index == fill from the last card backwards.
  std::reverse(order.begin(), order.end());

  std::size_t next = 0;
  for (int line : actives) {
    const int port = order[next++];
    ports_[static_cast<std::size_t>(port)].line = line;
    line_to_port_[static_cast<std::size_t>(line)] = port;
  }
  for (int line : inactives) {
    const int port = order[next++];
    ports_[static_cast<std::size_t>(port)].line = line;
    line_to_port_[static_cast<std::size_t>(line)] = port;
  }

  std::fill(active_per_card_.begin(), active_per_card_.end(), 0);
  for (int line : actives) {
    ++active_per_card_[static_cast<std::size_t>(card_of_line(line))];
  }
  return awake_card_count();
}

int Dslam::minimal_awake_cards() const {
  const int active = active_line_count();
  return (active + config_.ports_per_card - 1) / config_.ports_per_card;
}

}  // namespace insomnia::dslam
