// DSLAM model: line cards, ports, and the HDF switching fabric in front of
// them. Tracks which card terminates each subscriber line as lines go
// active/inactive and applies the §4 switching policies:
//
//   * kFixed      — lines are permanently wired to ports (today's HDF),
//   * kKSwitch    — m k-switches per group of k cards; a waking line may be
//                   remapped (non-disruptively: only the waking line and an
//                   inactive line move) so actives pack onto few cards,
//   * kFullSwitch — any line can reach any port; same wake-time-only
//                   non-disruption rule, but the whole DSLAM is one group.
//
// The idealised Optimal scheme instead calls repack_all(), which migrates
// active lines with zero downtime onto the minimum number of cards.
//
// A card is awake iff at least one line currently mapped to it is active;
// per-line terminating modems follow their line's state directly and are
// accounted separately by the energy layer.
#pragma once

#include <functional>
#include <vector>

#include "sim/random.h"

namespace insomnia::dslam {

/// HDF switching capability in front of the DSLAM.
enum class SwitchMode {
  kFixed,
  kKSwitch,
  kFullSwitch,
};

/// Shape of the DSLAM and fabric.
struct DslamConfig {
  int line_cards = 4;
  int ports_per_card = 12;
  SwitchMode mode = SwitchMode::kFixed;
  /// Switch size k for kKSwitch (must divide line_cards).
  int switch_size = 4;
};

/// The DSLAM + fabric state machine. Time-free: the caller owns the clock
/// and reads card states after each transition (the core runtime wires
/// these into energy meters).
class Dslam {
 public:
  /// Wires `line_cards * ports_per_card` lines to ports. The HDF wiring is
  /// random (`rng`), matching the appendix finding that port assignment is
  /// uncorrelated with geography.
  Dslam(const DslamConfig& config, sim::Random& rng);

  int line_count() const { return static_cast<int>(line_to_port_.size()); }
  int card_count() const { return config_.line_cards; }

  /// Called when `line`'s gateway wakes (line goes active). Under k/full
  /// switching this is the only moment remapping is allowed; the line may
  /// swap ports with an inactive line of its switch group.
  void line_activated(int line);

  /// Called when `line`'s gateway goes to sleep.
  void line_deactivated(int line);

  bool line_active(int line) const { return active_.at(static_cast<std::size_t>(line)); }

  /// Card currently terminating `line`.
  int card_of_line(int line) const;

  /// True iff any active line terminates on `card`.
  bool card_awake(int card) const;

  /// Number of awake cards.
  int awake_card_count() const;

  /// Number of active lines.
  int active_line_count() const;

  /// Zero-downtime global repack (Optimal only): active lines migrate onto
  /// the minimal number of cards (filling from the last card), regardless
  /// of switch mode. Returns the number of awake cards afterwards.
  int repack_all();

  /// Lower bound on awake cards given the current active count:
  /// ceil(active / ports_per_card).
  int minimal_awake_cards() const;

 private:
  struct Port {
    int card = 0;
    int line = -1;  ///< line currently mapped here
  };

  int port_index(int card, int position) const { return card * config_.ports_per_card + position; }

  /// Ports reachable from `line` by its fabric (its switch group for
  /// kKSwitch, every port for kFullSwitch).
  std::vector<int> reachable_ports(int line) const;

  /// Swaps the port mappings of `line` (waking, unsynced) and the inactive
  /// line on `target_port`.
  void swap_line_to_port(int line, int target_port);

  DslamConfig config_;
  std::vector<Port> ports_;        // indexed by port_index
  std::vector<int> line_to_port_;  // line -> port index
  std::vector<bool> active_;       // per line
  std::vector<int> active_per_card_;
  std::vector<int> line_switch_;   // line -> switch id (kKSwitch only)
  std::vector<std::vector<int>> switch_ports_;  // switch id -> port indices
};

}  // namespace insomnia::dslam
