// Fleet heartbeat: a background thread that reports live progress of a
// sharded run to stderr — shards done, simulator events/sec, live watt
// aggregates, ETA — and mirrors the progress onto the exported trace's
// fleet-progress counter track. It only ever READS atomic metrics
// (counters/gauges), so it cannot perturb the simulation or its
// determinism; it prints to stderr so driver stdout (tables, goldens)
// stays clean.
//
//   [country] 12/31 shards | 6.8M ev/s | base 12.4 kW, scheme 5.1 kW | ETA 42s
//
// Construction is a no-op when observability is off, the interval is <= 0,
// or there are no shards to watch. With --procs fan-out the children own
// the shards, so the parent emits no heartbeat (counters are per-process);
// documented in README "Observability".
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace insomnia::obs {

class Counter;
class Gauge;

class Heartbeat {
 public:
  struct Options {
    std::string label = "fleet";      ///< line prefix
    double interval_sec = 2.0;        ///< <= 0 disables
    std::uint64_t total_shards = 0;   ///< 0 disables
    /// Registry names this heartbeat watches.
    std::string done_counter = "fleet.shards_done";
    std::string events_counter = "sim.events";
    std::string baseline_gauge = "fleet.baseline_watts";
    std::string scheme_gauge = "fleet.scheme_watts";
  };

  explicit Heartbeat(Options options);
  ~Heartbeat();  ///< stops the thread; prints one final summary line

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  /// Seconds between beats from INSOMNIA_HEARTBEAT ("off"/"0" disables,
  /// unset picks `fallback_sec`). Durations take the shared util grammar
  /// ("30", "500ms", "2s", "1m"). Malformed values warn on stderr and fall
  /// back — a typo'd heartbeat must never kill a country-scale run.
  static double interval_from_env(double fallback_sec);

 private:
  void loop();
  void beat(bool final_line);

  Options options_;
  const Counter* done_ = nullptr;
  const Counter* events_ = nullptr;
  const Gauge* baseline_watts_ = nullptr;
  const Gauge* scheme_watts_ = nullptr;

  std::uint64_t start_ns_ = 0;
  std::uint64_t done_at_start_ = 0;
  std::uint64_t events_at_start_ = 0;
  std::uint64_t last_ns_ = 0;
  std::uint64_t last_events_ = 0;

  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread thread_;  ///< joinable only when the heartbeat is live
};

}  // namespace insomnia::obs
