// Peak resident-set-size probe. Bounded memory is a stated contract of the
// city/country streaming folds (PR 3/7); this makes it measurable instead
// of asserted.
#pragma once

#include <cstdint>

namespace insomnia::obs {

/// Peak RSS of this process in bytes (VmHWM from /proc/self/status on
/// Linux); 0 where the probe is unavailable. Not gated on enabled() — it
/// reads, never records.
std::uint64_t rss_peak_bytes();

}  // namespace insomnia::obs
