// Chrome trace-event JSON exporter: turns the profiler's TraceSnapshot into
// a document loadable by Perfetto (ui.perfetto.dev) or chrome://tracing.
// One track per registered thread (ThreadPool workers are named
// "worker-N"), complete "X" events for every OBS_SCOPE, and counter "C"
// samples (the fleet-progress track emitted by the heartbeat). Timestamps
// are microseconds from the process anchor, written with util/json_writer
// (locale-independent, stable key order — golden-testable).
#pragma once

#include <string>

#include "obs/profiler.h"

namespace insomnia::obs {

/// Serializes an explicit snapshot (pure function — the golden test feeds a
/// hand-built snapshot and pins the exact document).
std::string chrome_trace_json(const TraceSnapshot& snapshot);

/// trace_snapshot() -> chrome_trace_json -> `path`. Collection-point only
/// (worker threads joined). Throws util::InvalidState when the file cannot
/// be written.
void write_chrome_trace(const std::string& path);

}  // namespace insomnia::obs
