// Phase profiler: OBS_SCOPE("name") RAII scopes that accumulate per-phase
// wall time (count + total ns, folded across threads at collection points)
// and — when tracing is armed via enable_tracing() / a driver's --trace
// flag — append one complete ("X") event per scope to a per-thread trace
// buffer for the Chrome trace-event exporter (obs/trace_export.h).
//
// Costs: a scope is two obs::now_ns() reads plus a short linear scan of the
// thread's phase table when enabled; one branch and nothing else when
// disabled; literally nothing under -DINSOMNIA_OBS=OFF (the macro expands
// to a no-op statement). Scope names must be string literals (or otherwise
// outlive the process) — the profiler stores the pointer, not a copy.
//
// Threading: each thread records into its own state without locks. Folding
// reads (phase_totals, trace_snapshot) are collection-point operations —
// call them when worker threads have been joined (SweepRunner pools are
// function-scoped, so every driver's finish() qualifies). The heartbeat
// never reads profiler state; it watches atomic counters only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace insomnia::obs {

/// Names this thread's track in phase fold-outs and the exported trace
/// ("main" by default; exec::ThreadPool names its workers "worker-N").
void set_thread_name(const std::string& name);

/// Arms trace-event recording (scopes start appending to the per-thread
/// buffers). Implies nothing about enabled(): tracing only records while
/// the master switch is on too.
void enable_tracing();
/// Disarms trace-event recording again (test isolation; drivers never need
/// it — the process exits after exporting).
void disable_tracing();
bool tracing();

/// Appends one Chrome counter ("C") sample — the fleet-progress track.
/// Low-rate (heartbeat ticks); goes through a small global locked buffer.
void emit_counter_event(const char* name, double value);

/// Accumulated wall time of one phase, folded across threads.
struct PhaseTotal {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

/// All phases, folded across every thread that ever recorded, name-sorted.
/// Collection-point only (see file comment).
std::vector<PhaseTotal> phase_totals();

/// One complete scope, for the trace exporter.
struct TraceEvent {
  const char* name = nullptr;
  int tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// One counter sample, for the trace exporter.
struct CounterEvent {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;
  double value = 0.0;
};

/// Everything the Chrome exporter needs. Collection-point only.
struct TraceSnapshot {
  struct Thread {
    int tid = 0;
    std::string name;
  };
  std::vector<Thread> threads;        ///< registration order
  std::vector<TraceEvent> events;     ///< thread-major, per-thread in order
  std::vector<CounterEvent> counters; ///< emission order
};

TraceSnapshot trace_snapshot();

/// Test hook: clears phase tables, trace buffers, and counter events (thread
/// registrations survive). Call only while no worker threads are recording.
void reset_profiler();

/// RAII phase scope. `force` measures wall time even when obs is disabled
/// (the perf harness sources its numbers here) — recording into the phase
/// table/trace still requires enabled().
class ScopeTimer {
 public:
  explicit ScopeTimer(const char* name, bool force = false)
      : name_(name), measuring_(force || enabled()), record_(enabled()) {
    if (measuring_) start_ns_ = now_ns();
  }

  ~ScopeTimer() { stop(); }

  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

  /// Records the scope (once) and returns its duration in ns; later calls
  /// return the same duration. 0 when nothing was measured.
  std::uint64_t stop();

  double stop_ms() { return static_cast<double>(stop()) / 1e6; }

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t dur_ns_ = 0;
  bool measuring_ = false;
  bool record_ = false;
};

#define INSOMNIA_OBS_CONCAT_(a, b) a##b
#define INSOMNIA_OBS_CONCAT(a, b) INSOMNIA_OBS_CONCAT_(a, b)

#ifdef INSOMNIA_OBS_DISABLED
#define OBS_SCOPE(name) ((void)0)
#else
/// Times the enclosing block as phase `name` (a string literal).
#define OBS_SCOPE(name) \
  ::insomnia::obs::ScopeTimer INSOMNIA_OBS_CONCAT(obs_scope_, __LINE__)(name)
#endif

}  // namespace insomnia::obs
