#include "obs/metrics.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "util/error.h"

namespace insomnia::obs {

namespace detail {

int shard_index() {
  static std::atomic<int> next{0};
  thread_local const int index =
      next.fetch_add(1, std::memory_order_relaxed) % kMaxShards;
  return index;
}

namespace {

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void atomic_add_double(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      expected, double_bits(bits_double(expected) + delta),
      std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (v < bits_double(expected) &&
         !bits.compare_exchange_weak(expected, double_bits(v),
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (v > bits_double(expected) &&
         !bits.compare_exchange_weak(expected, double_bits(v),
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

}  // namespace detail

// --- Counter ---------------------------------------------------------------

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const detail::Slot& slot : slots_) total += slot.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (detail::Slot& slot : slots_) slot.v.store(0, std::memory_order_relaxed);
}

// --- Gauge -----------------------------------------------------------------

void Gauge::set(double v) {
  if (!enabled()) return;
  bits_.store(detail::double_bits(v), std::memory_order_relaxed);
}

void Gauge::add(double v) {
  if (!enabled()) return;
  detail::atomic_add_double(bits_, v);
}

double Gauge::value() const {
  return detail::bits_double(bits_.load(std::memory_order_relaxed));
}

void Gauge::reset() { bits_.store(0, std::memory_order_relaxed); }

// --- Histogram -------------------------------------------------------------

namespace {

int checked_bins(double lo, double hi, int bins) {
  util::require(lo > 0.0 && hi > lo && bins >= 1,
                "Histogram needs 0 < lo < hi and bins >= 1");
  return bins;
}

}  // namespace

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo),
      hi_(hi),
      bins_(checked_bins(lo, hi, bins)),
      inv_log_step_(static_cast<double>(bins) / std::log(hi / lo)),
      counts_(static_cast<std::size_t>(kMaxShards) * (bins + 2)),
      min_bits_(kMaxShards),
      max_bits_(kMaxShards),
      sum_bits_(kMaxShards) {
  reset();
}

int Histogram::bin_for(double v) const {
  if (!(v >= lo_)) return 0;          // underflow (zero/negative/NaN)
  if (v >= hi_) return bins_ + 1;     // overflow
  const int bin = 1 + static_cast<int>(std::log(v / lo_) * inv_log_step_);
  // log() rounding can land an exact-edge value one bin out; clamp.
  return bin < 1 ? 1 : (bin > bins_ ? bins_ : bin);
}

double Histogram::bin_edge(int i) const {
  return lo_ * std::exp(static_cast<double>(i) / inv_log_step_);
}

void Histogram::record(double v) {
  if (!enabled()) return;
  const int shard = detail::shard_index();
  counts_[static_cast<std::size_t>(shard) * (bins_ + 2) + bin_for(v)].v.fetch_add(
      1, std::memory_order_relaxed);
  detail::atomic_min_double(min_bits_[shard], v);
  detail::atomic_max_double(max_bits_[shard], v);
  detail::atomic_add_double(sum_bits_[shard], v);
}

Histogram::Snapshot Histogram::snapshot() const {
  // Deterministic fold: bin sums in bin-major order (integers, so shard
  // assignment cannot change them), exact extrema, shard-ordered sum.
  std::vector<std::uint64_t> folded(static_cast<std::size_t>(bins_) + 2, 0);
  Snapshot out;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (int shard = 0; shard < kMaxShards; ++shard) {
    for (int bin = 0; bin < bins_ + 2; ++bin) {
      folded[bin] +=
          counts_[static_cast<std::size_t>(shard) * (bins_ + 2) + bin].v.load(
              std::memory_order_relaxed);
    }
    const double shard_min = detail::bits_double(min_bits_[shard].load(std::memory_order_relaxed));
    const double shard_max = detail::bits_double(max_bits_[shard].load(std::memory_order_relaxed));
    if (shard_min < min) min = shard_min;
    if (shard_max > max) max = shard_max;
    out.sum += detail::bits_double(sum_bits_[shard].load(std::memory_order_relaxed));
  }
  for (const std::uint64_t c : folded) out.count += c;
  if (out.count == 0) return Snapshot{};
  out.min = min;
  out.max = max;

  const auto quantile = [&](double q) {
    std::uint64_t target = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(out.count)));
    if (target < 1) target = 1;
    std::uint64_t cumulative = 0;
    for (int bin = 0; bin < bins_ + 2; ++bin) {
      cumulative += folded[bin];
      if (cumulative >= target) {
        double representative;
        if (bin == 0) {
          representative = min;  // underflow: only the exact floor is known
        } else if (bin == bins_ + 1) {
          representative = max;  // overflow: only the exact ceiling is known
        } else {
          representative = std::sqrt(bin_edge(bin - 1) * bin_edge(bin));
        }
        // Clamp to the observed range so degenerate histograms (one distinct
        // value) read back exactly.
        if (representative < min) representative = min;
        if (representative > max) representative = max;
        return representative;
      }
    }
    return max;
  };
  out.p50 = quantile(0.50);
  out.p95 = quantile(0.95);
  out.p99 = quantile(0.99);
  return out;
}

void Histogram::reset() {
  for (detail::Slot& slot : counts_) slot.v.store(0, std::memory_order_relaxed);
  for (auto& bits : min_bits_) {
    bits.store(detail::double_bits(std::numeric_limits<double>::infinity()),
               std::memory_order_relaxed);
  }
  for (auto& bits : max_bits_) {
    bits.store(detail::double_bits(-std::numeric_limits<double>::infinity()),
               std::memory_order_relaxed);
  }
  for (auto& bits : sum_bits_) {
    bits.store(detail::double_bits(0.0), std::memory_order_relaxed);
  }
}

// --- Registry --------------------------------------------------------------

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, double lo, double hi, int bins) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(lo, hi, bins);
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.push_back({name, counter->value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) out.gauges.push_back({name, gauge->value()});
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.push_back({name, histogram->snapshot()});
  }
  return out;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

Counter& counter(const std::string& name) { return Registry::global().counter(name); }

Gauge& gauge(const std::string& name) { return Registry::global().gauge(name); }

Histogram& histogram(const std::string& name, double lo, double hi, int bins) {
  return Registry::global().histogram(name, lo, hi, bins);
}

}  // namespace insomnia::obs
