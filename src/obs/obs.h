// Observability master switch and monotonic clock. The whole obs layer
// (obs/metrics.h counters, obs/profiler.h scopes, the Chrome-trace exporter)
// keys off enabled():
//
//   * compile time: configure with -DINSOMNIA_OBS=OFF and every OBS_SCOPE /
//     counter add compiles to nothing (enabled() is a constant false the
//     optimizer folds away);
//   * run time: INSOMNIA_OBS=off|0|false in the environment flips the same
//     switch without a rebuild. Anything else (including unset) is on.
//
// Enabling observability never perturbs simulation results: the obs layer
// only ever reads simulation state, all randomness stays in keyed
// sim::Random substreams, and the regression suite pins Engine/city outputs
// bit-identical with the switch on vs off (tests/test_obs_determinism.cpp).
#pragma once

#include <atomic>
#include <cstdint>

namespace insomnia::obs {

namespace detail {
/// Process-wide switch; initialized from INSOMNIA_OBS at static init.
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when the observability layer records anything. One relaxed load on
/// the hot path; a constant false under -DINSOMNIA_OBS=OFF.
inline bool enabled() {
#ifdef INSOMNIA_OBS_DISABLED
  return false;
#else
  return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

/// Test hook (and programmatic override): flips the runtime switch. A no-op
/// under -DINSOMNIA_OBS=OFF, where enabled() stays false.
void set_enabled(bool on);

/// Monotonic nanoseconds since an arbitrary process-start anchor
/// (std::chrono::steady_clock). Shared by the profiler, the trace exporter
/// (which converts to microseconds), and the heartbeat's rate estimates.
std::uint64_t now_ns();

}  // namespace insomnia::obs
