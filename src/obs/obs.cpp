#include "obs/obs.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

namespace insomnia::obs {

namespace detail {

namespace {

bool enabled_from_env() {
  const char* value = std::getenv("INSOMNIA_OBS");
  if (value == nullptr) return true;
  return std::strcmp(value, "off") != 0 && std::strcmp(value, "0") != 0 &&
         std::strcmp(value, "false") != 0;
}

}  // namespace

std::atomic<bool> g_enabled{enabled_from_env()};

}  // namespace detail

void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

std::uint64_t now_ns() {
  // One fixed anchor so every timestamp in a process (phases, trace events,
  // heartbeat deltas) shares the same origin.
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - anchor)
                                        .count());
}

}  // namespace insomnia::obs
