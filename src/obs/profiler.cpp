#include "obs/profiler.h"

#include <cstring>
#include <map>
#include <memory>
#include <mutex>

namespace insomnia::obs {

namespace {

/// Soft cap on trace events per thread: a runaway-hot scope cannot eat the
/// heap; drops are counted so the exporter can say so.
constexpr std::size_t kMaxTraceEventsPerThread = 1u << 20;

struct PhaseAcc {
  const char* name = nullptr;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

struct ThreadState {
  int tid = 0;
  std::string name = "main";
  std::vector<PhaseAcc> phases;      ///< small; linear scan keyed by name
  std::vector<TraceEvent> events;
  std::uint64_t dropped_events = 0;
};

struct Global {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadState>> threads;  ///< never shrinks
  std::vector<CounterEvent> counter_events;
  std::atomic<bool> tracing{false};
};

Global& global() {
  static Global instance;
  return instance;
}

ThreadState& thread_state() {
  thread_local ThreadState* state = [] {
    auto owned = std::make_unique<ThreadState>();
    ThreadState* raw = owned.get();
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mutex);
    raw->tid = static_cast<int>(g.threads.size());
    g.threads.push_back(std::move(owned));
    return raw;
  }();
  return *state;
}

// String-literal keys are usually unique pointers; fall back to strcmp so
// the same phase name used from two translation units still folds together.
bool same_name(const char* a, const char* b) {
  return a == b || std::strcmp(a, b) == 0;
}

}  // namespace

void set_thread_name(const std::string& name) { thread_state().name = name; }

void enable_tracing() { global().tracing.store(true, std::memory_order_relaxed); }

void disable_tracing() { global().tracing.store(false, std::memory_order_relaxed); }

bool tracing() { return global().tracing.load(std::memory_order_relaxed); }

void emit_counter_event(const char* name, double value) {
  if (!enabled() || !tracing()) return;
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mutex);
  g.counter_events.push_back({name, now_ns(), value});
}

std::uint64_t ScopeTimer::stop() {
  if (!measuring_) return dur_ns_;
  measuring_ = false;
  dur_ns_ = now_ns() - start_ns_;
  if (!record_) return dur_ns_;
  ThreadState& state = thread_state();
  PhaseAcc* acc = nullptr;
  for (PhaseAcc& candidate : state.phases) {
    if (same_name(candidate.name, name_)) {
      acc = &candidate;
      break;
    }
  }
  if (acc == nullptr) {
    state.phases.push_back({name_, 0, 0});
    acc = &state.phases.back();
  }
  acc->count += 1;
  acc->total_ns += dur_ns_;
  if (tracing()) {
    if (state.events.size() < kMaxTraceEventsPerThread) {
      state.events.push_back({name_, state.tid, start_ns_, dur_ns_});
    } else {
      ++state.dropped_events;
    }
  }
  return dur_ns_;
}

std::vector<PhaseTotal> phase_totals() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mutex);
  // Fold into a name-keyed map: sorted output, cross-thread accumulation.
  std::map<std::string, PhaseTotal> folded;
  for (const auto& thread : g.threads) {
    for (const PhaseAcc& acc : thread->phases) {
      PhaseTotal& total = folded[acc.name];
      total.name = acc.name;
      total.count += acc.count;
      total.total_ns += acc.total_ns;
    }
  }
  std::vector<PhaseTotal> out;
  out.reserve(folded.size());
  for (auto& [name, total] : folded) out.push_back(std::move(total));
  return out;
}

TraceSnapshot trace_snapshot() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mutex);
  TraceSnapshot out;
  out.threads.reserve(g.threads.size());
  for (const auto& thread : g.threads) {
    out.threads.push_back({thread->tid, thread->name});
    out.events.insert(out.events.end(), thread->events.begin(), thread->events.end());
  }
  out.counters = g.counter_events;
  return out;
}

void reset_profiler() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mutex);
  for (const auto& thread : g.threads) {
    thread->phases.clear();
    thread->events.clear();
    thread->dropped_events = 0;
  }
  g.counter_events.clear();
}

}  // namespace insomnia::obs
