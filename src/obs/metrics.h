// Lock-free-on-the-hot-path metrics: counters, gauges, and log-binned
// histograms, registered by name in a process-wide registry.
//
// Hot-path contract: add()/record() touch one cache-line-padded per-thread
// shard slot with a relaxed atomic op — no locks, no allocation, and nothing
// at all when obs::enabled() is false (a single predictable branch; a
// constant under -DINSOMNIA_OBS=OFF). Registry lookups (obs::counter("x"))
// take a mutex, so hot sites cache the reference once:
//
//   static obs::Counter& events = obs::counter("sim.events");
//   events.add(n);
//
// Collection contract: value()/snapshot() fold the per-thread shards in
// fixed slot order. Counter and histogram-bin folds are integer sums, so the
// folded totals are exactly the same whichever threads did the recording —
// sweep results collected at any thread count agree bit for bit
// (tests/test_obs_metrics.cpp pins this under exec::SweepRunner).
// Metric objects live for the whole process (reset zeroes values, never
// frees), so cached references stay valid forever.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace insomnia::obs {

/// Per-thread shard slots per metric. Threads hash onto slots (assignment
/// order, wrapping); collisions stay correct because slots are atomic.
inline constexpr int kMaxShards = 32;

namespace detail {

/// This thread's stable slot index in [0, kMaxShards).
int shard_index();

struct alignas(64) Slot {
  std::atomic<std::uint64_t> v{0};
};

}  // namespace detail

/// Monotonic event counter.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    slots_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Folded total (sum over shard slots in slot order).
  std::uint64_t value() const;

  void reset();

 private:
  detail::Slot slots_[kMaxShards];
};

/// Last-value / accumulating double (e.g. live watt aggregates, totals set
/// at collection points). Single atomic slot — gauges are low-rate.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v);
  void add(double v);  ///< atomic CAS add
  double value() const;
  void reset();

 private:
  std::atomic<std::uint64_t> bits_{0};  ///< IEEE-754 pattern of the value
};

/// Fixed log-spaced-bin histogram with p50/p95/p99 readout. Values below
/// `lo` (including zero/negative) land in an underflow bin, values >= `hi`
/// in an overflow bin; exact min/max/sum are tracked alongside so quantile
/// estimates clamp to the observed range (a single recorded value reads
/// back exactly).
class Histogram {
 public:
  /// `bins` log-spaced bins covering [lo, hi); lo > 0, hi > lo, bins >= 1.
  Histogram(double lo, double hi, int bins);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  /// Deterministic fold of the shard bins (integer sums), then quantiles by
  /// cumulative-rank walk: the same recorded multiset gives the same
  /// snapshot no matter which threads recorded it.
  Snapshot snapshot() const;

  void reset();

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int bins() const { return bins_; }

 private:
  int bin_for(double v) const;
  double bin_edge(int i) const;  ///< edge i of bins_ + 1 edges, log-spaced

  double lo_;
  double hi_;
  int bins_;
  double inv_log_step_;
  std::vector<detail::Slot> counts_;  ///< kMaxShards * (bins + 2), underflow first
  // Exact per-shard extrema/sum (CAS-maintained; folded at snapshot).
  std::vector<std::atomic<std::uint64_t>> min_bits_;
  std::vector<std::atomic<std::uint64_t>> max_bits_;
  std::vector<std::atomic<std::uint64_t>> sum_bits_;
};

/// Name-sorted value dump of every registered metric.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    double value = 0.0;
  };
  struct HistogramRow {
    std::string name;
    Histogram::Snapshot stats;
  };
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;
};

/// The process-wide metric registry. Metrics register on first lookup and
/// live forever; the same name always returns the same object.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// The shape parameters apply on first registration only; later lookups
  /// of the same name return the existing histogram unchanged.
  Histogram& histogram(const std::string& name, double lo = 1.0, double hi = 1e12,
                       int bins = 60);

  MetricsSnapshot snapshot() const;

  /// Zeroes every value (objects and registrations survive, so cached
  /// references stay valid). Test hook; call only while no worker threads
  /// are recording.
  void reset_values();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  // std::map: stable addresses are guaranteed by unique_ptr; sorted
  // iteration gives the name-ordered snapshot for free.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Conveniences over Registry::global().
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name, double lo = 1.0, double hi = 1e12,
                     int bins = 60);

}  // namespace insomnia::obs
