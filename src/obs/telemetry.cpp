#include "obs/telemetry.h"

#include "obs/rss.h"
#include "util/json_writer.h"

namespace insomnia::obs {

TelemetrySnapshot telemetry_snapshot() {
  TelemetrySnapshot out;
  out.metrics = Registry::global().snapshot();
  out.phases = phase_totals();
  out.rss_peak_bytes = rss_peak_bytes();
  return out;
}

void write_telemetry(util::JsonWriter& json) {
  const TelemetrySnapshot snapshot = telemetry_snapshot();
  json.key("telemetry").begin_object();
  json.field("rss_peak_bytes", snapshot.rss_peak_bytes);
  json.key("counters").begin_object();
  for (const auto& row : snapshot.metrics.counters) json.field(row.name, row.value);
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& row : snapshot.metrics.gauges) json.field(row.name, row.value);
  json.end_object();
  json.key("phases").begin_object();
  for (const PhaseTotal& phase : snapshot.phases) {
    json.key(phase.name).begin_object();
    json.field("count", phase.count);
    json.field("total_ms", static_cast<double>(phase.total_ns) / 1e6);
    json.end_object();
  }
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& row : snapshot.metrics.histograms) {
    json.key(row.name).begin_object();
    json.field("count", row.stats.count);
    json.field("min", row.stats.min);
    json.field("max", row.stats.max);
    json.field("sum", row.stats.sum);
    json.field("p50", row.stats.p50);
    json.field("p95", row.stats.p95);
    json.field("p99", row.stats.p99);
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

}  // namespace insomnia::obs
