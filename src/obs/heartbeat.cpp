#include "obs/heartbeat.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/duration.h"
#include "util/strings.h"

namespace insomnia::obs {

namespace {

void format_rate(double per_sec, char* out, std::size_t size) {
  if (per_sec >= 1e6) {
    std::snprintf(out, size, "%.1fM", per_sec / 1e6);
  } else if (per_sec >= 1e3) {
    std::snprintf(out, size, "%.1fk", per_sec / 1e3);
  } else {
    std::snprintf(out, size, "%.0f", per_sec);
  }
}

void format_watts(double watts, char* out, std::size_t size) {
  if (watts >= 1e4) {
    std::snprintf(out, size, "%.1f kW", watts / 1e3);
  } else {
    std::snprintf(out, size, "%.0f W", watts);
  }
}

void format_eta(double seconds, char* out, std::size_t size) {
  if (!(seconds >= 0.0)) {
    std::snprintf(out, size, "--");
  } else if (seconds >= 3600.0) {
    std::snprintf(out, size, "%.1fh", seconds / 3600.0);
  } else if (seconds >= 60.0) {
    std::snprintf(out, size, "%dm%02ds", static_cast<int>(seconds) / 60,
                  static_cast<int>(seconds) % 60);
  } else {
    std::snprintf(out, size, "%.0fs", seconds);
  }
}

}  // namespace

Heartbeat::Heartbeat(Options options) : options_(std::move(options)) {
  if (!enabled() || options_.interval_sec <= 0.0 || options_.total_shards == 0) return;
  done_ = &counter(options_.done_counter);
  events_ = &counter(options_.events_counter);
  baseline_watts_ = &gauge(options_.baseline_gauge);
  scheme_watts_ = &gauge(options_.scheme_gauge);
  start_ns_ = last_ns_ = now_ns();
  done_at_start_ = done_->value();
  events_at_start_ = last_events_ = events_->value();
  thread_ = std::thread([this] { loop(); });
}

Heartbeat::~Heartbeat() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  beat(/*final_line=*/true);
}

double Heartbeat::interval_from_env(double fallback_sec) {
  const char* value = std::getenv("INSOMNIA_HEARTBEAT");
  if (value == nullptr) return fallback_sec;
  if (std::strcmp(value, "off") == 0) return 0.0;
  const auto parsed = util::parse_duration_seconds(value);
  if (!parsed.has_value()) {
    // A malformed knob must never kill a long run — warn and keep the
    // driver's default cadence.
    std::fprintf(stderr,
                 "warning: INSOMNIA_HEARTBEAT=\"%s\" ignored — expected \"off\" or %s\n",
                 value, util::duration_grammar_help());
    return fallback_sec;
  }
  return *parsed;
}

void Heartbeat::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_cv_.wait_for(lock, std::chrono::duration<double>(options_.interval_sec),
                            [&] { return stopping_; })) {
    lock.unlock();
    beat(/*final_line=*/false);
    lock.lock();
  }
}

void Heartbeat::beat(bool final_line) {
  const std::uint64_t now = now_ns();
  std::uint64_t done = done_->value() - done_at_start_;
  if (done > options_.total_shards) done = options_.total_shards;  // shared counter slack
  const std::uint64_t events = events_->value();

  const double elapsed_sec = static_cast<double>(now - start_ns_) / 1e9;
  const double tick_sec = static_cast<double>(now - last_ns_) / 1e9;
  const double rate = final_line
                          ? (elapsed_sec > 0.0
                                 ? static_cast<double>(events - events_at_start_) / elapsed_sec
                                 : 0.0)
                          : (tick_sec > 0.0
                                 ? static_cast<double>(events - last_events_) / tick_sec
                                 : 0.0);
  last_ns_ = now;
  last_events_ = events;

  char rate_str[32];
  char base_str[32];
  char scheme_str[32];
  char eta_str[32];
  format_rate(rate, rate_str, sizeof(rate_str));
  format_watts(baseline_watts_->value(), base_str, sizeof(base_str));
  format_watts(scheme_watts_->value(), scheme_str, sizeof(scheme_str));

  if (final_line) {
    std::fprintf(stderr, "[%s] done: %llu/%llu shards in %.1fs | avg %s ev/s\n",
                 options_.label.c_str(), static_cast<unsigned long long>(done),
                 static_cast<unsigned long long>(options_.total_shards), elapsed_sec,
                 rate_str);
  } else {
    const double eta =
        done > 0 ? elapsed_sec / static_cast<double>(done) *
                       static_cast<double>(options_.total_shards - done)
                 : -1.0;
    format_eta(eta, eta_str, sizeof(eta_str));
    std::fprintf(stderr, "[%s] %llu/%llu shards | %s ev/s | base %s, scheme %s | ETA %s\n",
                 options_.label.c_str(), static_cast<unsigned long long>(done),
                 static_cast<unsigned long long>(options_.total_shards), rate_str,
                 base_str, scheme_str, eta_str);
  }
  emit_counter_event("fleet.shards_done", static_cast<double>(done));
}

}  // namespace insomnia::obs
