// The "telemetry" block of every driver's --json report: counters, gauges,
// histogram quantiles, per-phase wall time, and peak RSS, serialized with
// util/json_writer in stable (name-sorted) key order. Schema documented in
// docs/TELEMETRY.md.
#pragma once

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace insomnia::util {
class JsonWriter;
}

namespace insomnia::obs {

/// Everything write_telemetry serializes, as plain data.
struct TelemetrySnapshot {
  MetricsSnapshot metrics;
  std::vector<PhaseTotal> phases;
  std::uint64_t rss_peak_bytes = 0;
};

/// Collection-point fold of the registry + profiler + RSS probe.
TelemetrySnapshot telemetry_snapshot();

/// Emits `"telemetry": { ... }` as the next member of the currently open
/// JSON object. Wall times and RSS are inherently run-dependent; consumers
/// comparing reports for bit-identity must strip this block (scripts/check.sh
/// does exactly that for the obs-on-vs-off gate).
void write_telemetry(util::JsonWriter& json);

}  // namespace insomnia::obs
