#include "obs/trace_export.h"

#include <fstream>

#include "util/error.h"
#include "util/json_writer.h"

namespace insomnia::obs {

namespace {

double to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

void event_common(util::JsonWriter& json, const char* name, const char* ph, int tid) {
  json.field("name", name);
  json.field("ph", ph);
  json.field("pid", 0);
  json.field("tid", tid);
}

}  // namespace

std::string chrome_trace_json(const TraceSnapshot& snapshot) {
  util::JsonWriter json;
  json.begin_object();
  json.field("displayTimeUnit", "ms");
  json.key("traceEvents").begin_array();
  // Track metadata first: the process, then one name per thread.
  json.begin_object();
  event_common(json, "process_name", "M", 0);
  json.key("args").begin_object();
  json.field("name", "insomnia");
  json.end_object();
  json.end_object();
  for (const TraceSnapshot::Thread& thread : snapshot.threads) {
    json.begin_object();
    event_common(json, "thread_name", "M", thread.tid);
    json.key("args").begin_object();
    json.field("name", thread.name);
    json.end_object();
    json.end_object();
  }
  for (const TraceEvent& event : snapshot.events) {
    json.begin_object();
    event_common(json, event.name, "X", event.tid);
    json.field("cat", "phase");
    json.field("ts", to_us(event.start_ns));
    json.field("dur", to_us(event.dur_ns));
    json.end_object();
  }
  for (const CounterEvent& event : snapshot.counters) {
    json.begin_object();
    event_common(json, event.name, "C", 0);
    json.field("ts", to_us(event.ts_ns));
    json.key("args").begin_object();
    json.field("value", event.value);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

void write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  util::require_state(static_cast<bool>(out), "cannot write chrome trace " + path);
  out << chrome_trace_json(trace_snapshot()) << "\n";
  util::require_state(static_cast<bool>(out), "failed writing chrome trace " + path);
}

}  // namespace insomnia::obs
