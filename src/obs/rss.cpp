#include "obs/rss.h"

#include <cstdio>
#include <cstring>

namespace insomnia::obs {

std::uint64_t rss_peak_bytes() {
#ifdef __linux__
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  unsigned long long kib = 0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    // "VmHWM:    123456 kB" — the high-water mark of the resident set.
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      if (std::sscanf(line + 6, "%llu", &kib) != 1) kib = 0;
      break;
    }
  }
  std::fclose(status);
  return static_cast<std::uint64_t>(kib) * 1024;
#else
  return 0;
#endif
}

}  // namespace insomnia::obs
