// Empirical cumulative distribution functions, used for the QoS (Fig. 9a)
// and fairness (Fig. 9b) plots.
#pragma once

#include <cstddef>
#include <vector>

namespace insomnia::stats {

/// An empirical CDF built from a sample of doubles.
class EmpiricalCdf {
 public:
  /// Builds the CDF; the sample is copied and sorted. Empty samples are
  /// permitted (all queries return 0 and value_at throws).
  explicit EmpiricalCdf(std::vector<double> sample);

  /// P(X <= x).
  double fraction_at_or_below(double x) const;

  /// P(X < x).
  double fraction_below(double x) const;

  /// Inverse CDF: smallest sample value v with P(X <= v) >= q, q in (0,1].
  double value_at(double q) const;

  /// Number of observations.
  std::size_t size() const { return sorted_.size(); }

  /// Sorted sample, ascending (for plotting CDF staircases).
  const std::vector<double>& sorted_sample() const { return sorted_; }

  /// Emits (value, cumulative fraction) pairs at each distinct sample value.
  std::vector<std::pair<double, double>> staircase() const;

 private:
  std::vector<double> sorted_;
};

}  // namespace insomnia::stats
