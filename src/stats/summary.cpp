#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace insomnia::stats {

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStats RunningStats::from_moments(std::size_t count, double mean, double m2,
                                        double min, double max) {
  RunningStats stats;
  if (count == 0) return stats;
  stats.count_ = count;
  stats.mean_ = mean;
  stats.m2_ = m2;
  stats.min_ = min;
  stats.max_ = max;
  return stats;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double t_critical_95(std::size_t dof) {
  // Two-sided 0.05 (upper 0.975 quantile), dof 1..30.
  static constexpr double kTable[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof == 0) return 0.0;
  if (dof <= 30) return kTable[dof - 1];
  return 1.96;
}

double ci95_halfwidth(const RunningStats& stats) {
  if (stats.count() < 2) return 0.0;
  return t_critical_95(stats.count() - 1) * stats.stddev() /
         std::sqrt(static_cast<double>(stats.count()));
}

double quantile(std::vector<double> values, double q) {
  util::require(!values.empty(), "quantile of empty sample");
  util::require(q >= 0.0 && q <= 1.0, "quantile order must be in [0,1]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double position = q * static_cast<double>(values.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= values.size()) return values.back();
  return values[lower] + fraction * (values[lower + 1] - values[lower]);
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev_of(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean_of(values);
  double m2 = 0.0;
  for (double v : values) m2 += (v - m) * (v - m);
  return std::sqrt(m2 / static_cast<double>(values.size() - 1));
}

}  // namespace insomnia::stats
