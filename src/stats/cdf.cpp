#include "stats/cdf.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace insomnia::stats {

EmpiricalCdf::EmpiricalCdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::fraction_at_or_below(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::fraction_below(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::value_at(double q) const {
  util::require(!sorted_.empty(), "value_at on empty CDF");
  util::require(q > 0.0 && q <= 1.0, "CDF order must be in (0,1]");
  const auto n = static_cast<double>(sorted_.size());
  auto index = static_cast<std::size_t>(std::ceil(q * n)) - 1;
  index = std::min(index, sorted_.size() - 1);
  return sorted_[index];
}

std::vector<std::pair<double, double>> EmpiricalCdf::staircase() const {
  std::vector<std::pair<double, double>> points;
  const auto n = static_cast<double>(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    const bool last_of_value = (i + 1 == sorted_.size()) || (sorted_[i + 1] != sorted_[i]);
    if (last_of_value) {
      points.emplace_back(sorted_[i], static_cast<double>(i + 1) / n);
    }
  }
  return points;
}

}  // namespace insomnia::stats
