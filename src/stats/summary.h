// Streaming summary statistics (Welford) and batch quantile helpers.
#pragma once

#include <cstddef>
#include <vector>

namespace insomnia::stats {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
/// Numerically stable; O(1) memory.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double value);

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

  /// Reconstructs an accumulator from its exact internal moments (the values
  /// returned by count()/mean()/m2()/min()/max()). This is the
  /// checkpoint-resume bridge: serializing the five moments bit-exactly and
  /// rebuilding through here yields an accumulator whose every subsequent
  /// add()/merge() is bit-identical to the original's. `count` == 0 returns
  /// a fresh accumulator regardless of the other arguments.
  static RunningStats from_moments(std::size_t count, double mean, double m2,
                                   double min, double max);

  /// Number of observations added.
  std::size_t count() const { return count_; }

  /// Arithmetic mean; 0 if empty.
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;

  /// Raw second central moment (Welford's M2); the counterpart of
  /// from_moments for exact serialization.
  double m2() const { return m2_; }

  /// Sample standard deviation.
  double stddev() const;

  /// Smallest observation; +inf if empty.
  double min() const { return min_; }

  /// Largest observation; -inf if empty.
  double max() const { return max_; }

  /// Sum of all observations.
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;
};

/// Two-sided 95 % critical value of Student's t distribution with `dof`
/// degrees of freedom: the exact table value for dof <= 30, the normal
/// z = 1.96 beyond (the table is within 0.5 % of z there). Small samples —
/// e.g. the per-region neighbourhood counts of a country roll-up — need the
/// t value; the normal approximation understates the interval by 6x at
/// dof = 1. `dof` == 0 (fewer than two observations) returns 0.
double t_critical_95(std::size_t dof);

/// 95 % confidence half-width of the mean of `stats` using the Student-t
/// critical value: t * stddev / sqrt(n). 0 with fewer than two observations.
double ci95_halfwidth(const RunningStats& stats);

/// Returns the q-quantile (0 <= q <= 1) of `values` using linear
/// interpolation between order statistics. `values` is copied and sorted.
double quantile(std::vector<double> values, double q);

/// Returns the median of `values`.
double median(std::vector<double> values);

/// Arithmetic mean of `values`; 0 if empty.
double mean_of(const std::vector<double>& values);

/// Sample standard deviation of `values`; 0 with fewer than two elements.
double stddev_of(const std::vector<double>& values);

}  // namespace insomnia::stats
