// Streaming summary statistics (Welford) and batch quantile helpers.
#pragma once

#include <cstddef>
#include <vector>

namespace insomnia::stats {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
/// Numerically stable; O(1) memory.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double value);

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

  /// Number of observations added.
  std::size_t count() const { return count_; }

  /// Arithmetic mean; 0 if empty.
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Smallest observation; +inf if empty.
  double min() const { return min_; }

  /// Largest observation; -inf if empty.
  double max() const { return max_; }

  /// Sum of all observations.
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` using linear
/// interpolation between order statistics. `values` is copied and sorted.
double quantile(std::vector<double> values, double q);

/// Returns the median of `values`.
double median(std::vector<double> values);

/// Arithmetic mean of `values`; 0 if empty.
double mean_of(const std::vector<double>& values);

/// Sample standard deviation of `values`; 0 with fewer than two elements.
double stddev_of(const std::vector<double>& values);

}  // namespace insomnia::stats
