#include "stats/timeseries.h"

#include <algorithm>

#include "util/error.h"

namespace insomnia::stats {

StepSeries::StepSeries(double start_time, double initial_value) {
  times_.push_back(start_time);
  values_.push_back(initial_value);
}

void StepSeries::set(double t, double value) {
  util::require(t >= times_.back(), "StepSeries::set must move forward in time");
  if (value == values_.back()) return;
  if (t == times_.back()) {
    // Overwrite a zero-width segment instead of storing a duplicate instant.
    // Cached prefix areas only cover segments before this instant, so they
    // stay valid; the collapse below may drop the instant they end at.
    values_.back() = value;
    if (values_.size() >= 2 && values_[values_.size() - 2] == value) {
      values_.pop_back();
      times_.pop_back();
      if (prefix_.size() > times_.size()) prefix_.resize(times_.size());
      if (cursor_ >= times_.size()) cursor_ = times_.size() - 1;
    }
    return;
  }
  times_.push_back(t);
  values_.push_back(value);
}

std::size_t StepSeries::segment_index(double t) const {
  // Forward-moving queries (the trailing-window load() pattern) advance the
  // cursor a few segments per call; anything else falls back to a binary
  // search. The cursor is a hint only — results never depend on it.
  if (t >= times_[cursor_]) {
    std::size_t index = cursor_;
    while (index + 1 < times_.size() && times_[index + 1] <= t) ++index;
    cursor_ = index;
    return index;
  }
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const auto index = static_cast<std::size_t>(it - times_.begin()) - 1;
  cursor_ = index;
  return index;
}

void StepSeries::ensure_prefix(std::size_t index) const {
  if (prefix_.empty()) prefix_.push_back(0.0);
  while (prefix_.size() <= index) {
    const std::size_t i = prefix_.size();
    prefix_.push_back(prefix_[i - 1] + values_[i - 1] * (times_[i] - times_[i - 1]));
  }
}

double StepSeries::value_at(double t) const {
  util::require(t >= times_.front(), "StepSeries::value_at before start of series");
  return values_[segment_index(t)];
}

double StepSeries::integral(double t0, double t1) const {
  util::require(t1 >= t0, "StepSeries::integral needs t1 >= t0");
  util::require(t0 >= times_.front(), "StepSeries::integral before start of series");
  if (t0 == t1) return 0.0;
  if (t0 == times_.front()) {
    // Start-anchored: prefix area of every whole segment before t1 plus the
    // partial tail. The prefix accumulates segments left to right, so this
    // equals the naive scan bit for bit at O(log n).
    const std::size_t index = segment_index(t1);
    ensure_prefix(index);
    return prefix_[index] + values_[index] * (t1 - times_[index]);
  }
  // Mid-range: exact sequential scan over just the segments in [t0, t1].
  double total = 0.0;
  std::size_t index = segment_index(t0);
  double cursor = t0;
  while (cursor < t1) {
    const double segment_end =
        (index + 1 < times_.size()) ? std::min(times_[index + 1], t1) : t1;
    total += values_[index] * (segment_end - cursor);
    cursor = segment_end;
    ++index;
  }
  return total;
}

double StepSeries::mean(double t0, double t1) const {
  util::require(t1 > t0, "StepSeries::mean needs a non-empty interval");
  return integral(t0, t1) / (t1 - t0);
}

std::vector<double> StepSeries::binned_means(double t0, double t1, std::size_t bins) const {
  util::require(bins > 0 && t1 > t0, "StepSeries::binned_means needs bins>0, t1>t0");
  std::vector<double> means(bins);
  const double width = (t1 - t0) / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    const double lo = t0 + width * static_cast<double>(i);
    const double hi = (i + 1 == bins) ? t1 : lo + width;
    means[i] = integral(lo, hi) / (hi - lo);
  }
  return means;
}

StepSeries sum_series(const std::vector<const StepSeries*>& series, double constant) {
  util::require(!series.empty(), "sum_series needs at least one input");
  const double start = series.front()->times_front();
  for (const StepSeries* s : series) {
    util::require(s != nullptr && s->times_front() == start,
                  "sum_series inputs must share a start time");
  }
  // Gather every change instant across inputs.
  std::vector<double> instants;
  for (const StepSeries* s : series) s->append_change_times(instants);
  std::sort(instants.begin(), instants.end());
  instants.erase(std::unique(instants.begin(), instants.end()), instants.end());

  double initial = constant;
  for (const StepSeries* s : series) initial += s->value_at(start);
  StepSeries total(start, initial);
  for (double t : instants) {
    if (t == start) continue;
    double value = constant;
    for (const StepSeries* s : series) value += s->value_at(t);
    total.set(t, value);
  }
  return total;
}

std::vector<double> elementwise_mean(const std::vector<std::vector<double>>& rows) {
  util::require(!rows.empty(), "elementwise_mean of zero rows");
  const std::size_t width = rows.front().size();
  for (const auto& row : rows) {
    util::require(row.size() == width, "elementwise_mean rows must share a width");
  }
  std::vector<double> mean(width, 0.0);
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < width; ++i) mean[i] += row[i];
  }
  for (double& v : mean) v /= static_cast<double>(rows.size());
  return mean;
}

}  // namespace insomnia::stats
