// Histograms with either uniform or caller-supplied bin edges. Used for the
// inter-packet-gap analysis of Fig. 4 and several test assertions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace insomnia::stats {

/// Histogram over caller-supplied, strictly-increasing bin edges.
///
/// A value v falls in bin i when edges[i] <= v < edges[i+1]. Values below
/// the first edge are dropped; values at or above the last edge land in the
/// overflow bin. Weights allow mass-weighted histograms (e.g., "fraction of
/// idle *time*" rather than "fraction of gaps").
class Histogram {
 public:
  /// Constructs a histogram with `edges` (at least two, strictly increasing).
  explicit Histogram(std::vector<double> edges);

  /// Convenience factory: `count` uniform bins covering [lo, hi).
  static Histogram uniform(double lo, double hi, std::size_t count);

  /// Adds an observation with the given weight (default 1).
  void add(double value, double weight = 1.0);

  /// Number of regular bins (excluding overflow).
  std::size_t bin_count() const { return counts_.size(); }

  /// Weight accumulated in bin `i`.
  double bin_weight(std::size_t i) const { return counts_.at(i); }

  /// Weight accumulated at or above the last edge.
  double overflow_weight() const { return overflow_; }

  /// Total weight including overflow.
  double total_weight() const;

  /// Fraction of total weight in bin `i`; 0 if the histogram is empty.
  double bin_fraction(std::size_t i) const;

  /// Fraction of total weight in the overflow bin.
  double overflow_fraction() const;

  /// Lower edge of bin `i`.
  double lower_edge(std::size_t i) const { return edges_.at(i); }

  /// Upper edge of bin `i`.
  double upper_edge(std::size_t i) const { return edges_.at(i + 1); }

  /// Human-readable label "lo-hi" for bin `i` (e.g. "0-1").
  std::string bin_label(std::size_t i) const;

 private:
  std::vector<double> edges_;
  std::vector<double> counts_;
  double overflow_ = 0.0;
};

/// The exact bin edges used by the paper's Fig. 4 inter-packet-gap histogram:
/// one-second bins 0-1 .. 20-21, then 21-40, 40-60, and an implicit >60
/// overflow bin.
std::vector<double> fig4_gap_bin_edges();

}  // namespace insomnia::stats
