#include "stats/histogram.h"

#include <algorithm>

#include "util/error.h"
#include "util/strings.h"

namespace insomnia::stats {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  util::require(edges_.size() >= 2, "Histogram needs at least two edges");
  util::require(std::is_sorted(edges_.begin(), edges_.end()) &&
                    std::adjacent_find(edges_.begin(), edges_.end()) == edges_.end(),
                "Histogram edges must be strictly increasing");
  counts_.assign(edges_.size() - 1, 0.0);
}

Histogram Histogram::uniform(double lo, double hi, std::size_t count) {
  util::require(hi > lo && count > 0, "Histogram::uniform needs hi>lo and count>0");
  std::vector<double> edges(count + 1);
  for (std::size_t i = 0; i <= count; ++i) {
    edges[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(count);
  }
  return Histogram(std::move(edges));
}

void Histogram::add(double value, double weight) {
  if (value < edges_.front()) return;
  if (value >= edges_.back()) {
    overflow_ += weight;
    return;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  const auto bin = static_cast<std::size_t>(it - edges_.begin()) - 1;
  counts_[bin] += weight;
}

double Histogram::total_weight() const {
  double total = overflow_;
  for (double c : counts_) total += c;
  return total;
}

double Histogram::bin_fraction(std::size_t i) const {
  const double total = total_weight();
  return total == 0.0 ? 0.0 : counts_.at(i) / total;
}

double Histogram::overflow_fraction() const {
  const double total = total_weight();
  return total == 0.0 ? 0.0 : overflow_ / total;
}

std::string Histogram::bin_label(std::size_t i) const {
  auto fmt = [](double v) {
    if (v == static_cast<long long>(v)) return std::to_string(static_cast<long long>(v));
    return util::format_fixed(v, 2);
  };
  return fmt(lower_edge(i)) + "-" + fmt(upper_edge(i));
}

std::vector<double> fig4_gap_bin_edges() {
  std::vector<double> edges;
  for (int s = 0; s <= 21; ++s) edges.push_back(static_cast<double>(s));
  edges.push_back(40.0);
  edges.push_back(60.0);
  return edges;
}

}  // namespace insomnia::stats
