// Piecewise-constant time series: the workhorse for power draw, online
// gateway counts and utilization over the simulated day. Supports exact
// integration between arbitrary instants and uniform re-binning, plus
// element-wise averaging across simulation runs.
#pragma once

#include <cstddef>
#include <vector>

namespace insomnia::stats {

/// A right-open piecewise-constant function of time.
///
/// The series starts at `start_time` with `initial_value`; each `set(t, v)`
/// records that the value becomes v at time t (t must be non-decreasing
/// across calls). Queries and integrals are exact.
///
/// Query complexity: value_at and start-anchored integrals (t0 == start)
/// are O(log n) — the latter via a lazily extended prefix sum of segment
/// areas whose accumulation order matches the naive left-to-right scan bit
/// for bit. Mid-range integrals scan only the segments inside [t0, t1],
/// with the t0 lookup served amortized-O(1) by a monotone cursor when
/// queries move forward in time (the trailing-window load() pattern).
/// The cursor and prefix cache are mutable: concurrent queries on one
/// instance are not safe, matching the single-writer usage of the sim.
class StepSeries {
 public:
  /// Creates a series equal to `initial_value` from `start_time` onward.
  StepSeries(double start_time, double initial_value);

  /// Records a new value from time `t` onward. `t` must be >= the last
  /// change time. Setting the same value is a no-op (runs are merged).
  void set(double t, double value);

  /// Value at time `t` (t >= start_time).
  double value_at(double t) const;

  /// Exact integral of the series over [t0, t1].
  double integral(double t0, double t1) const;

  /// Mean value over [t0, t1].
  double mean(double t0, double t1) const;

  /// Averages the series over `bin` consecutive-width bins spanning
  /// [t0, t1]; returns one mean per bin.
  std::vector<double> binned_means(double t0, double t1, std::size_t bins) const;

  /// Time of the last recorded change.
  double last_change_time() const { return times_.back(); }

  /// Start time of the series.
  double times_front() const { return times_.front(); }

  /// Number of recorded change points (including the initial one).
  std::size_t change_count() const { return times_.size(); }

  /// Appends every change instant (including the start) to `out`.
  void append_change_times(std::vector<double>& out) const {
    out.insert(out.end(), times_.begin(), times_.end());
  }

 private:
  /// Index i with times_[i] <= t < times_[i+1], via the monotone cursor
  /// when possible, binary search otherwise.
  std::size_t segment_index(double t) const;

  /// Extends prefix_ so prefix_[index] is valid.
  void ensure_prefix(std::size_t index) const;

  std::vector<double> times_;   // change instants, non-decreasing
  std::vector<double> values_;  // value from times_[i] until times_[i+1]
  /// prefix_[i] = exact integral over [times_[0], times_[i]], accumulated
  /// left to right (the naive scan's addition order). Extended lazily on
  /// query; entries never change once a segment's width is final.
  mutable std::vector<double> prefix_;
  /// Last segment index served; hint for forward-moving queries.
  mutable std::size_t cursor_ = 0;
};

/// Element-wise mean of equally-sized vectors (used to average binned series
/// across runs); all inputs must share the same size.
std::vector<double> elementwise_mean(const std::vector<std::vector<double>>& rows);

/// Sums several step series (plus a constant offset) into one. All inputs
/// must share the same start time; the result changes wherever any input
/// changes.
StepSeries sum_series(const std::vector<const StepSeries*>& series, double constant = 0.0);

}  // namespace insomnia::stats
