// Piecewise-constant time series: the workhorse for power draw, online
// gateway counts and utilization over the simulated day. Supports exact
// integration between arbitrary instants and uniform re-binning, plus
// element-wise averaging across simulation runs.
#pragma once

#include <cstddef>
#include <vector>

namespace insomnia::stats {

/// A right-open piecewise-constant function of time.
///
/// The series starts at `start_time` with `initial_value`; each `set(t, v)`
/// records that the value becomes v at time t (t must be non-decreasing
/// across calls). Queries and integrals are exact.
class StepSeries {
 public:
  /// Creates a series equal to `initial_value` from `start_time` onward.
  StepSeries(double start_time, double initial_value);

  /// Records a new value from time `t` onward. `t` must be >= the last
  /// change time. Setting the same value is a no-op (runs are merged).
  void set(double t, double value);

  /// Value at time `t` (t >= start_time).
  double value_at(double t) const;

  /// Exact integral of the series over [t0, t1].
  double integral(double t0, double t1) const;

  /// Mean value over [t0, t1].
  double mean(double t0, double t1) const;

  /// Averages the series over `bin` consecutive-width bins spanning
  /// [t0, t1]; returns one mean per bin.
  std::vector<double> binned_means(double t0, double t1, std::size_t bins) const;

  /// Time of the last recorded change.
  double last_change_time() const { return times_.back(); }

  /// Start time of the series.
  double times_front() const { return times_.front(); }

  /// Number of recorded change points (including the initial one).
  std::size_t change_count() const { return times_.size(); }

  /// Appends every change instant (including the start) to `out`.
  void append_change_times(std::vector<double>& out) const {
    out.insert(out.end(), times_.begin(), times_.end());
  }

 private:
  std::vector<double> times_;   // change instants, non-decreasing
  std::vector<double> values_;  // value from times_[i] until times_[i+1]
};

/// Element-wise mean of equally-sized vectors (used to average binned series
/// across runs); all inputs must share the same size.
std::vector<double> elementwise_mean(const std::vector<std::vector<double>>& rows);

/// Sums several step series (plus a constant offset) into one. All inputs
/// must share the same start time; the result changes wherever any input
/// changes.
StepSeries sum_series(const std::vector<const StepSeries*>& series, double constant = 0.0);

}  // namespace insomnia::stats
