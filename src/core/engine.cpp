#include "core/engine.h"

#include <utility>

#include "core/day_summary.h"
#include "core/metrics.h"
#include "core/scenario_presets.h"
#include "exec/sweep_runner.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "sim/random.h"
#include "stats/timeseries.h"
#include "topology/access_topology.h"
#include "trace/synthetic_crawdad.h"
#include "trace/trace_io.h"
#include "util/error.h"
#include "util/json_writer.h"

namespace insomnia::core {

Engine::Engine() : registry_(&scheme_registry()) {}

Engine::Engine(const SchemeRegistry& registry) : registry_(&registry) {}

RunReport Engine::run(const RunSpec& spec) const {
  util::require(spec.runs >= 1, "engine run needs at least one repeat");
  util::require(spec.bins >= 1, "engine run needs at least one bin");
  util::require(spec.peak_start < spec.peak_end, "peak window must not be empty");
  util::require(spec.preset.empty() || !spec.scenario.has_value(),
                "RunSpec sets both a preset name and an inline scenario");

  const SchemeSpec& scheme = registry_->find(spec.scheme);
  const SchemeSpec& baseline_scheme = registry_->find("no-sleep");

  ScenarioConfig scenario;
  std::string preset_name = "(inline)";
  if (spec.scenario.has_value()) {
    scenario = *spec.scenario;
  } else {
    const ScenarioPreset& preset =
        find_scenario_preset(spec.preset.empty() ? "paper-default" : spec.preset);
    scenario = preset.scenario;
    preset_name = preset.name;
  }

  RunReport report;
  report.scheme = scheme.name;
  report.scheme_display = scheme.display;
  report.preset = preset_name;
  report.trace_file = spec.trace_file;
  report.seed = spec.seed;
  report.runs = spec.runs;
  report.bins = spec.bins;
  report.peak_start = spec.peak_start;
  report.peak_end = spec.peak_end;
  report.clients = scenario.client_count;
  report.gateways = scenario.gateway_count;

  // Same derivations as core/experiments: one fixed topology, per-run trace
  // substreams, fixed baseline/scheme salts.
  sim::Random topo_rng(sim::Random::substream_seed(spec.seed, 0, 7));
  const topo::AccessTopology topology =
      topo::make_overlap_topology(scenario.client_count, scenario.degrees, topo_rng);

  const trace::SyntheticCrawdadGenerator generator(scenario.traffic);
  trace::FlowTrace recorded;
  if (!spec.trace_file.empty()) recorded = trace::load_flow_trace(spec.trace_file);

  exec::SweepRunner runner(spec.threads);
  const std::vector<PairedDaySummary> outputs =
      runner.run(static_cast<std::size_t>(spec.runs), [&](std::size_t run) {
        OBS_SCOPE("engine.day");
        trace::FlowTrace generated;
        if (spec.trace_file.empty()) {
          sim::Random trace_rng(sim::Random::substream_seed(spec.seed, run, 1));
          generated = generator.generate(trace_rng);
        }
        const trace::FlowTrace& flows = spec.trace_file.empty() ? generated : recorded;

        const RunMetrics baseline =
            run_scheme(scenario, topology, flows, baseline_scheme,
                       sim::Random::substream_seed(spec.seed, run, 2));
        const RunMetrics metrics =
            run_scheme(scenario, topology, flows, scheme,
                       sim::Random::substream_seed(spec.seed, run, 100));

        return summarize_paired_day(baseline, metrics,
                                    static_cast<std::uint64_t>(flows.size()), spec.bins,
                                    spec.peak_start, spec.peak_end);
      });

  // Fold in run order — independent of the thread count.
  fold_paired_days(outputs, report);
  return report;
}

std::string RunReport::to_json(bool include_telemetry) const {
  util::JsonWriter json;
  json.begin_object();
  json.field("report", "engine-run");
  json.field("scheme", scheme);
  json.field("scheme_display", scheme_display);
  json.field("preset", preset);
  json.field("trace_file", trace_file);
  json.field("seed", seed);
  json.field("runs", runs);
  json.field("bins", bins);
  json.field("peak_start", peak_start);
  json.field("peak_end", peak_end);
  json.field("clients", clients);
  json.field("gateways", gateways);
  json.key("aggregate").begin_object();
  json.field("day_savings", day_savings);
  json.field("day_isp_share", day_isp_share);
  json.field("peak_online_gateways", peak_online_gateways);
  json.field("mean_wake_events", mean_wake_events);
  json.field("executed_events", executed_events);
  json.end_object();
  json.number_array("savings_series", savings_series);
  json.number_array("online_gateways_series", online_gateways_series);
  json.key("days").begin_array();
  for (const EngineDay& day : days) {
    json.begin_object();
    json.field("baseline_user_energy", day.baseline_user_energy);
    json.field("baseline_isp_energy", day.baseline_isp_energy);
    json.field("user_energy", day.user_energy);
    json.field("isp_energy", day.isp_energy);
    json.field("savings", day.savings);
    json.field("isp_share", day.isp_share);
    json.field("peak_online_gateways", day.peak_online_gateways);
    json.field("peak_online_cards", day.peak_online_cards);
    json.field("wake_events", day.wake_events);
    json.field("bh2_moves", day.bh2_moves);
    json.field("bh2_home_returns", day.bh2_home_returns);
    json.field("executed_events", day.executed_events);
    json.field("flows", day.flows);
    json.end_object();
  }
  json.end_array();
  if (include_telemetry) obs::write_telemetry(json);
  json.end_object();
  return json.str();
}

}  // namespace insomnia::core
