#include "core/engine.h"

#include <utility>

#include "core/metrics.h"
#include "core/scenario_presets.h"
#include "exec/sweep_runner.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "sim/random.h"
#include "stats/timeseries.h"
#include "topology/access_topology.h"
#include "trace/synthetic_crawdad.h"
#include "trace/trace_io.h"
#include "util/error.h"
#include "util/json_writer.h"

namespace insomnia::core {

namespace {

/// Exact per-bin total (user + ISP) energy integrals of one run.
std::vector<double> bin_total_energy(const RunMetrics& metrics, std::size_t bins) {
  std::vector<double> out(bins);
  const double width = metrics.duration / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    const double lo = width * static_cast<double>(i);
    const double hi = (i + 1 == bins) ? metrics.duration : lo + width;
    out[i] = metrics.user_power.integral(lo, hi) + metrics.isp_power.integral(lo, hi);
  }
  return out;
}

/// Everything one paired day contributes to the report.
struct DayOutput {
  EngineDay day;
  std::vector<double> baseline_energy_bins;
  std::vector<double> scheme_energy_bins;
  std::vector<double> online_gateways;  ///< binned means
};

}  // namespace

Engine::Engine() : registry_(&scheme_registry()) {}

Engine::Engine(const SchemeRegistry& registry) : registry_(&registry) {}

RunReport Engine::run(const RunSpec& spec) const {
  util::require(spec.runs >= 1, "engine run needs at least one repeat");
  util::require(spec.bins >= 1, "engine run needs at least one bin");
  util::require(spec.peak_start < spec.peak_end, "peak window must not be empty");
  util::require(spec.preset.empty() || !spec.scenario.has_value(),
                "RunSpec sets both a preset name and an inline scenario");

  const SchemeSpec& scheme = registry_->find(spec.scheme);
  const SchemeSpec& baseline_scheme = registry_->find("no-sleep");

  ScenarioConfig scenario;
  std::string preset_name = "(inline)";
  if (spec.scenario.has_value()) {
    scenario = *spec.scenario;
  } else {
    const ScenarioPreset& preset =
        find_scenario_preset(spec.preset.empty() ? "paper-default" : spec.preset);
    scenario = preset.scenario;
    preset_name = preset.name;
  }

  RunReport report;
  report.scheme = scheme.name;
  report.scheme_display = scheme.display;
  report.preset = preset_name;
  report.trace_file = spec.trace_file;
  report.seed = spec.seed;
  report.runs = spec.runs;
  report.bins = spec.bins;
  report.peak_start = spec.peak_start;
  report.peak_end = spec.peak_end;
  report.clients = scenario.client_count;
  report.gateways = scenario.gateway_count;

  // Same derivations as core/experiments: one fixed topology, per-run trace
  // substreams, fixed baseline/scheme salts.
  sim::Random topo_rng(sim::Random::substream_seed(spec.seed, 0, 7));
  const topo::AccessTopology topology =
      topo::make_overlap_topology(scenario.client_count, scenario.degrees, topo_rng);

  const trace::SyntheticCrawdadGenerator generator(scenario.traffic);
  trace::FlowTrace recorded;
  if (!spec.trace_file.empty()) recorded = trace::load_flow_trace(spec.trace_file);

  exec::SweepRunner runner(spec.threads);
  const std::vector<DayOutput> outputs =
      runner.run(static_cast<std::size_t>(spec.runs), [&](std::size_t run) {
        OBS_SCOPE("engine.day");
        trace::FlowTrace generated;
        if (spec.trace_file.empty()) {
          sim::Random trace_rng(sim::Random::substream_seed(spec.seed, run, 1));
          generated = generator.generate(trace_rng);
        }
        const trace::FlowTrace& flows = spec.trace_file.empty() ? generated : recorded;

        const RunMetrics baseline =
            run_scheme(scenario, topology, flows, baseline_scheme,
                       sim::Random::substream_seed(spec.seed, run, 2));
        const RunMetrics metrics =
            run_scheme(scenario, topology, flows, scheme,
                       sim::Random::substream_seed(spec.seed, run, 100));

        DayOutput out;
        out.day.baseline_user_energy = baseline.user_energy();
        out.day.baseline_isp_energy = baseline.isp_energy();
        out.day.user_energy = metrics.user_energy();
        out.day.isp_energy = metrics.isp_energy();
        const double base_total =
            out.day.baseline_user_energy + out.day.baseline_isp_energy;
        const double mine_total = out.day.user_energy + out.day.isp_energy;
        out.day.savings = base_total > 0.0 ? 1.0 - mine_total / base_total : 0.0;
        const double user_saved = out.day.baseline_user_energy - out.day.user_energy;
        const double isp_saved = out.day.baseline_isp_energy - out.day.isp_energy;
        const double total_saved = user_saved + isp_saved;
        out.day.isp_share = total_saved > 0.0 ? isp_saved / total_saved : 0.0;
        out.day.peak_online_gateways =
            metrics.online_gateways.mean(spec.peak_start, spec.peak_end);
        out.day.peak_online_cards =
            metrics.online_cards.mean(spec.peak_start, spec.peak_end);
        out.day.wake_events = metrics.gateway_wake_events;
        out.day.bh2_moves = metrics.bh2_moves;
        out.day.bh2_home_returns = metrics.bh2_home_returns;
        out.day.executed_events = metrics.executed_events;
        out.day.flows = static_cast<std::uint64_t>(flows.size());

        out.baseline_energy_bins = bin_total_energy(baseline, spec.bins);
        out.scheme_energy_bins = bin_total_energy(metrics, spec.bins);
        out.online_gateways =
            metrics.online_gateways.binned_means(0.0, metrics.duration, spec.bins);
        return out;
      });

  // Fold in run order — independent of the thread count.
  std::vector<double> baseline_bins(spec.bins, 0.0);
  std::vector<double> scheme_bins(spec.bins, 0.0);
  std::vector<std::vector<double>> gateway_rows;
  double baseline_energy = 0.0;
  double scheme_energy = 0.0;
  double baseline_user = 0.0;
  double scheme_user = 0.0;
  double peak_gateways = 0.0;
  double wakes = 0.0;
  for (const DayOutput& out : outputs) {
    report.days.push_back(out.day);
    for (std::size_t i = 0; i < spec.bins; ++i) {
      baseline_bins[i] += out.baseline_energy_bins[i];
      scheme_bins[i] += out.scheme_energy_bins[i];
    }
    gateway_rows.push_back(out.online_gateways);
    baseline_energy += out.day.baseline_user_energy + out.day.baseline_isp_energy;
    scheme_energy += out.day.user_energy + out.day.isp_energy;
    baseline_user += out.day.baseline_user_energy;
    scheme_user += out.day.user_energy;
    peak_gateways += out.day.peak_online_gateways;
    wakes += static_cast<double>(out.day.wake_events);
    report.executed_events += out.day.executed_events;
  }

  report.day_savings = baseline_energy > 0.0 ? 1.0 - scheme_energy / baseline_energy : 0.0;
  const double user_saved = baseline_user - scheme_user;
  const double total_saved = baseline_energy - scheme_energy;
  report.day_isp_share = total_saved > 0.0 ? (total_saved - user_saved) / total_saved : 0.0;
  const double runs_d = static_cast<double>(spec.runs);
  report.peak_online_gateways = peak_gateways / runs_d;
  report.mean_wake_events = wakes / runs_d;

  report.savings_series.resize(spec.bins);
  for (std::size_t i = 0; i < spec.bins; ++i) {
    report.savings_series[i] =
        baseline_bins[i] > 0.0 ? 1.0 - scheme_bins[i] / baseline_bins[i] : 0.0;
  }
  report.online_gateways_series = stats::elementwise_mean(gateway_rows);
  return report;
}

std::string RunReport::to_json(bool include_telemetry) const {
  util::JsonWriter json;
  json.begin_object();
  json.field("report", "engine-run");
  json.field("scheme", scheme);
  json.field("scheme_display", scheme_display);
  json.field("preset", preset);
  json.field("trace_file", trace_file);
  json.field("seed", seed);
  json.field("runs", runs);
  json.field("bins", bins);
  json.field("peak_start", peak_start);
  json.field("peak_end", peak_end);
  json.field("clients", clients);
  json.field("gateways", gateways);
  json.key("aggregate").begin_object();
  json.field("day_savings", day_savings);
  json.field("day_isp_share", day_isp_share);
  json.field("peak_online_gateways", peak_online_gateways);
  json.field("mean_wake_events", mean_wake_events);
  json.field("executed_events", executed_events);
  json.end_object();
  json.number_array("savings_series", savings_series);
  json.number_array("online_gateways_series", online_gateways_series);
  json.key("days").begin_array();
  for (const EngineDay& day : days) {
    json.begin_object();
    json.field("baseline_user_energy", day.baseline_user_energy);
    json.field("baseline_isp_energy", day.baseline_isp_energy);
    json.field("user_energy", day.user_energy);
    json.field("isp_energy", day.isp_energy);
    json.field("savings", day.savings);
    json.field("isp_share", day.isp_share);
    json.field("peak_online_gateways", day.peak_online_gateways);
    json.field("peak_online_cards", day.peak_online_cards);
    json.field("wake_events", day.wake_events);
    json.field("bh2_moves", day.bh2_moves);
    json.field("bh2_home_returns", day.bh2_home_returns);
    json.field("executed_events", day.executed_events);
    json.field("flows", day.flows);
    json.end_object();
  }
  json.end_array();
  if (include_telemetry) obs::write_telemetry(json);
  json.end_object();
  return json.str();
}

}  // namespace insomnia::core
