#include "core/runtime.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace insomnia::core {

namespace {

power::DevicePowerModel household_model(const ScenarioConfig& scenario) {
  const double watts = scenario.household_watts();
  return {.active_watts = watts, .waking_watts = watts, .asleep_watts = 0.0};
}

}  // namespace

AccessRuntime::AccessRuntime(const ScenarioConfig& scenario,
                             const topo::AccessTopology& topology,
                             const trace::FlowTrace& flows, Policy& policy, sim::Random rng)
    : scenario_(&scenario),
      topology_(&topology),
      flows_(&flows),
      policy_(&policy),
      rng_(rng),
      simulator_(0.0),
      dslam_(scenario.dslam, rng_),
      households_("households", household_model(scenario), scenario.gateway_count, 0.0,
                  power::PowerState::kAsleep),
      modems_("isp-modems", scenario.power.isp_modem, scenario.dslam_ports(), 0.0,
              power::PowerState::kAsleep),
      cards_("line-cards", scenario.power.line_card, scenario.dslam.line_cards, 0.0,
             power::PowerState::kAsleep),
      online_gateways_(0.0, 0.0),
      online_cards_(0.0, 0.0) {
  util::require(topology.gateway_count == scenario.gateway_count,
                "topology and scenario disagree on gateway count");
  util::require(topology.client_count() == scenario.client_count,
                "topology and scenario disagree on client count");
  util::require(scenario.gateway_count <= scenario.dslam_ports(),
                "every gateway needs a DSLAM port");

  std::vector<double> backhaul(static_cast<std::size_t>(scenario.gateway_count),
                               scenario.backhaul_bps);
  network_ = flow::make_fluid_network(simulator_, std::move(backhaul));
  network_->reserve_flows(flows.size());
  network_->set_completion_handler([this](const flow::CompletedFlow& done) {
    if (done.id < metrics_.completion_time.size()) {
      metrics_.completion_time[done.id] = done.duration();
    }
    auto& live = client_live_flows_[static_cast<std::size_t>(done.client)];
    live.erase(std::remove(live.begin(), live.end(), done.id), live.end());
    // Re-arm the SoI timer exactly when a gateway drains its last flow.
    if (policy_->sleep_on_idle() &&
        states_[static_cast<std::size_t>(done.gateway)] == GatewayState::kActive &&
        network_->active_flow_count(done.gateway) == 0) {
      arm_idle_check(done.gateway);
    }
    policy_->on_flow_complete(*this, done);
  });

  states_.assign(static_cast<std::size_t>(scenario.gateway_count), GatewayState::kAsleep);
  wake_events_.assign(states_.size(), sim::kInvalidEventId);
  idle_events_.assign(states_.size(), sim::kInvalidEventId);
  activation_time_.assign(states_.size(), 0.0);
  client_live_flows_.resize(static_cast<std::size_t>(scenario.client_count));

  metrics_.duration = scenario.duration;
  metrics_.completion_time.assign(flows.size(), std::numeric_limits<double>::quiet_NaN());
}

AccessRuntime::AccessRuntime(const ScenarioConfig& scenario,
                             const topo::AccessTopology& topology, Policy& policy,
                             sim::Random rng, LiveMode mode)
    : AccessRuntime(scenario, topology, live_flows_, policy, rng) {
  live_ = true;
  live_gated_ = mode.gated;
  live_last_time_ = -1.0;  // the sorted-times floor read_flow_trace uses
}

GatewayState AccessRuntime::gateway_state(int gateway) const {
  return states_.at(static_cast<std::size_t>(gateway));
}

bool AccessRuntime::gateway_active(int gateway) const {
  return gateway_state(gateway) == GatewayState::kActive;
}

int AccessRuntime::online_gateway_count() const {
  int count = 0;
  for (GatewayState s : states_) {
    if (s != GatewayState::kAsleep) ++count;
  }
  return count;
}

double AccessRuntime::wireless_rate(int client, int gateway) const {
  return topology_->home_gateway[static_cast<std::size_t>(client)] == gateway
             ? scenario_->home_wireless_bps
             : scenario_->remote_wireless_bps;
}

double AccessRuntime::gateway_load(int gateway) const {
  return network_->load(gateway, scenario_->bh2.load_window);
}

const std::vector<flow::FlowId>& AccessRuntime::live_flows(int client) const {
  return client_live_flows_.at(static_cast<std::size_t>(client));
}

void AccessRuntime::sync_gateway_meters(int gateway, power::PowerState state) {
  households_.set_state(gateway, state, simulator_.now());
  modems_.set_state(gateway, state, simulator_.now());
  online_gateways_.set(simulator_.now(), static_cast<double>(online_gateway_count()));
}

void AccessRuntime::sync_card_meters() {
  for (int card = 0; card < scenario_->dslam.line_cards; ++card) {
    cards_.set_state(card,
                     dslam_.card_awake(card) ? power::PowerState::kActive
                                             : power::PowerState::kAsleep,
                     simulator_.now());
  }
  online_cards_.set(simulator_.now(), static_cast<double>(dslam_.awake_card_count()));
}

void AccessRuntime::request_wake(int gateway) {
  auto& state = states_.at(static_cast<std::size_t>(gateway));
  if (state != GatewayState::kAsleep) return;
  state = GatewayState::kWaking;
  ++metrics_.gateway_wake_events;
  // The DSLAM side powers up with the premises side: the terminating modem
  // resynchronises and its (possibly remapped) card must be powered.
  dslam_.line_activated(gateway);
  sync_gateway_meters(gateway, power::PowerState::kWaking);
  sync_card_meters();
  wake_events_[static_cast<std::size_t>(gateway)] =
      simulator_.after(scenario_->wake_time, [this, gateway] { finish_wake(gateway); });
}

void AccessRuntime::finish_wake(int gateway) {
  auto& state = states_.at(static_cast<std::size_t>(gateway));
  util::require_state(state == GatewayState::kWaking, "finish_wake on a non-waking gateway");
  state = GatewayState::kActive;
  wake_events_[static_cast<std::size_t>(gateway)] = sim::kInvalidEventId;
  activation_time_[static_cast<std::size_t>(gateway)] = simulator_.now();
  sync_gateway_meters(gateway, power::PowerState::kActive);
  network_->set_gateway_serving(gateway, true);
  if (policy_->sleep_on_idle()) arm_idle_check(gateway);
  policy_->on_gateway_active(*this, gateway);
}

void AccessRuntime::sleep_gateway(int gateway) {
  auto& state = states_.at(static_cast<std::size_t>(gateway));
  util::require_state(state == GatewayState::kActive, "only active gateways sleep via SoI");
  state = GatewayState::kAsleep;
  if (idle_events_[static_cast<std::size_t>(gateway)] != sim::kInvalidEventId) {
    simulator_.cancel(idle_events_[static_cast<std::size_t>(gateway)]);
    idle_events_[static_cast<std::size_t>(gateway)] = sim::kInvalidEventId;
  }
  network_->set_gateway_serving(gateway, false);
  dslam_.line_deactivated(gateway);
  sync_gateway_meters(gateway, power::PowerState::kAsleep);
  sync_card_meters();
}

void AccessRuntime::force_active(int gateway) {
  auto& state = states_.at(static_cast<std::size_t>(gateway));
  if (state == GatewayState::kActive) return;
  if (state == GatewayState::kWaking &&
      wake_events_[static_cast<std::size_t>(gateway)] != sim::kInvalidEventId) {
    simulator_.cancel(wake_events_[static_cast<std::size_t>(gateway)]);
    wake_events_[static_cast<std::size_t>(gateway)] = sim::kInvalidEventId;
  }
  if (state == GatewayState::kAsleep) dslam_.line_activated(gateway);
  state = GatewayState::kActive;
  activation_time_[static_cast<std::size_t>(gateway)] = simulator_.now();
  sync_gateway_meters(gateway, power::PowerState::kActive);
  sync_card_meters();
  network_->set_gateway_serving(gateway, true);
  if (policy_->sleep_on_idle()) arm_idle_check(gateway);
  policy_->on_gateway_active(*this, gateway);
}

void AccessRuntime::force_asleep(int gateway) {
  auto& state = states_.at(static_cast<std::size_t>(gateway));
  if (state == GatewayState::kAsleep) return;
  util::require_state(network_->active_flow_count(gateway) == 0,
                      "cannot force a gateway with live flows asleep");
  if (wake_events_[static_cast<std::size_t>(gateway)] != sim::kInvalidEventId) {
    simulator_.cancel(wake_events_[static_cast<std::size_t>(gateway)]);
    wake_events_[static_cast<std::size_t>(gateway)] = sim::kInvalidEventId;
  }
  if (idle_events_[static_cast<std::size_t>(gateway)] != sim::kInvalidEventId) {
    simulator_.cancel(idle_events_[static_cast<std::size_t>(gateway)]);
    idle_events_[static_cast<std::size_t>(gateway)] = sim::kInvalidEventId;
  }
  state = GatewayState::kAsleep;
  network_->set_gateway_serving(gateway, false);
  dslam_.line_deactivated(gateway);
  sync_gateway_meters(gateway, power::PowerState::kAsleep);
  sync_card_meters();
}

void AccessRuntime::arm_idle_check(int gateway) {
  auto& pending = idle_events_[static_cast<std::size_t>(gateway)];
  const double reference = std::max(network_->last_activity(gateway),
                                    activation_time_[static_cast<std::size_t>(gateway)]);
  const double when = std::max(reference + scenario_->idle_timeout,
                               simulator_.now() + 1e-9);
  // Re-arming an armed timer moves the pending event (the stored closure is
  // identical); only a disarmed gateway needs a fresh one.
  if (pending != sim::kInvalidEventId && simulator_.reschedule(pending, when)) return;
  pending = simulator_.at(when, [this, gateway] {
    idle_events_[static_cast<std::size_t>(gateway)] = sim::kInvalidEventId;
    idle_check(gateway);
  });
}

void AccessRuntime::idle_check(int gateway) {
  if (states_[static_cast<std::size_t>(gateway)] != GatewayState::kActive) return;
  const double reference = std::max(network_->last_activity(gateway),
                                    activation_time_[static_cast<std::size_t>(gateway)]);
  const bool has_flows = network_->active_flow_count(gateway) > 0;
  if (!has_flows && simulator_.now() - reference >= scenario_->idle_timeout - 1e-9) {
    sleep_gateway(gateway);
    return;
  }
  // Not idle. With flows in service last_activity can be stale (it advances
  // only when this gateway's events run), so back off a full timeout; the
  // completion handler re-arms the timer exactly when the last flow ends.
  const double when = has_flows ? simulator_.now() + scenario_->idle_timeout
                                : reference + scenario_->idle_timeout;
  auto& pending = idle_events_[static_cast<std::size_t>(gateway)];
  pending = simulator_.at(std::max(when, simulator_.now() + 1e-9), [this, gateway] {
    idle_events_[static_cast<std::size_t>(gateway)] = sim::kInvalidEventId;
    idle_check(gateway);
  });
}

void AccessRuntime::repack_dslam() {
  dslam_.repack_all();
  sync_card_meters();
}

double AccessRuntime::ArrivalStream::next_time() const {
  return runtime_->cursor_ < runtime_->flows_->size()
             ? (*runtime_->flows_)[runtime_->cursor_].start_time
             : std::numeric_limits<double>::infinity();
}

void AccessRuntime::arm_next_arrival() {
  if (arrival_armed_ || cursor_ >= flows_->size()) return;
  arrival_rank_ = simulator_.allocate_sequence();
  arrival_armed_ = true;
}

bool AccessRuntime::arrival_ready() const {
  // Gated live replay holds the LAST buffered arrival back until its
  // successor exists (or never will): the successor's rank is claimed while
  // the head is processed, and claiming it later — after other events
  // allocated sequence numbers — would break same-instant FIFO ties against
  // the offline replay.
  return !live_gated_ || live_input_done_ || cursor_ + 1 < flows_->size();
}

void AccessRuntime::process_arrival() {
  const trace::FlowRecord& record = (*flows_)[cursor_];
  const auto id = static_cast<flow::FlowId>(cursor_);
  ++cursor_;
  arrival_armed_ = false;
  arm_next_arrival();

  const int gateway = policy_->route_flow(*this, record.client, record.bytes);
  util::require_state(gateway >= 0 && gateway < scenario_->gateway_count,
                      "policy routed a flow to an invalid gateway");
  client_live_flows_[static_cast<std::size_t>(record.client)].push_back(id);
  network_->add_flow(id, record.client, gateway, record.bytes,
                     wireless_rate(record.client, gateway));
}

RunMetrics AccessRuntime::run() {
  util::require_state(!live_, "AccessRuntime::run needs the trace constructor");
  util::require_state(!ran_, "AccessRuntime::run may only be called once");
  ran_ = true;

  if (scenario_->start_awake) {
    for (int g = 0; g < scenario_->gateway_count; ++g) force_active(g);
  }
  policy_->start(*this);
  arm_next_arrival();
  ArrivalStream arrivals(*this);
  simulator_.run_until(scenario_->duration + scenario_->drain_time, &arrivals);
  return assemble_metrics();
}

RunMetrics AccessRuntime::assemble_metrics() {
  metrics_.executed_events = simulator_.executed_events();
  metrics_.user_power = households_.power_series();
  metrics_.isp_power = stats::sum_series({&modems_.power_series(), &cards_.power_series()},
                                         scenario_->power.shelf.active_watts);
  metrics_.online_gateways = online_gateways_;
  metrics_.online_cards = online_cards_;
  metrics_.gateway_online_time.resize(static_cast<std::size_t>(scenario_->gateway_count));
  for (int g = 0; g < scenario_->gateway_count; ++g) {
    metrics_.gateway_online_time[static_cast<std::size_t>(g)] =
        households_.online_time(g, 0.0, metrics_.duration);
  }
  return metrics_;
}

void AccessRuntime::begin_live() {
  util::require_state(live_, "begin_live needs the LiveMode constructor");
  util::require_state(!ran_, "begin_live may only be called once");
  ran_ = true;
  live_started_ = true;

  if (scenario_->start_awake) {
    for (int g = 0; g < scenario_->gateway_count; ++g) force_active(g);
  }
  policy_->start(*this);
  // The first arrival's rank is claimed here — after policy start, exactly
  // where run() claims it — whether or not its record has been appended yet.
  arm_next_arrival();
}

void AccessRuntime::append_live_arrivals(const trace::FlowRecord* records,
                                         std::size_t count) {
  util::require_state(live_, "append_live_arrivals needs the LiveMode constructor");
  util::require_state(!live_input_done_,
                      "append_live_arrivals after finish_live_input");
  for (std::size_t i = 0; i < count; ++i) {
    trace::FlowRecord record = records[i];
    util::require(record.client >= 0 && record.client < scenario_->client_count,
                  "live arrival client out of range for the scenario");
    util::require(record.bytes >= 0.0, "flow bytes must be non-negative");
    if (live_gated_) {
      util::require(record.start_time >= live_last_time_,
                    "live arrivals must be sorted by time");
    } else {
      // Wall-clock mode: a late or out-of-order event is decided now — the
      // decision latency is real, the virtual clock never rewinds.
      record.start_time =
          std::max({record.start_time, live_last_time_, simulator_.now()});
    }
    live_last_time_ = record.start_time;
    live_flows_.push_back(record);
    metrics_.completion_time.push_back(std::numeric_limits<double>::quiet_NaN());
  }
  if (live_started_) arm_next_arrival();
}

void AccessRuntime::finish_live_input() {
  util::require_state(live_, "finish_live_input needs the LiveMode constructor");
  live_input_done_ = true;
}

AccessRuntime::StepResult AccessRuntime::step_live(double until) {
  util::require_state(live_started_, "step_live before begin_live");
  ArrivalStream arrivals(*this);
  if (live_gated_) {
    return simulator_.run_until_gated(until, &arrivals) ? StepResult::kReachedTime
                                                        : StepResult::kNeedArrival;
  }
  simulator_.run_until(until, &arrivals);
  return StepResult::kReachedTime;
}

RunMetrics AccessRuntime::finish_live(double covered_duration) {
  util::require_state(live_started_, "finish_live before begin_live");
  util::require_state(live_input_done_, "finish_live before finish_live_input");
  metrics_.duration = covered_duration;
  return assemble_metrics();
}

std::size_t AccessRuntime::arrivals_appended() const { return live_flows_.size(); }

}  // namespace insomnia::core
