// Per-run measurement products: exact energy integrals, state time series,
// flow completion times and per-gateway online time — everything Figs. 6-12
// and the §5.2.3 table are computed from.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "stats/timeseries.h"

namespace insomnia::core {

/// Everything recorded during one simulated day under one scheme.
struct RunMetrics {
  double duration = 0.0;  ///< trace length (excludes drain time)

  // Power draw over time, watts (piecewise-constant, exact).
  stats::StepSeries user_power{0.0, 0.0};   ///< all household equipment
  stats::StepSeries isp_power{0.0, 0.0};    ///< modems + cards + shelf

  // State counts over time.
  stats::StepSeries online_gateways{0.0, 0.0};
  stats::StepSeries online_cards{0.0, 0.0};

  /// Flow completion time per trace flow id; NaN when the flow never
  /// finished inside the simulation horizon.
  std::vector<double> completion_time;

  /// Seconds each gateway spent online (active or waking) during the day.
  std::vector<double> gateway_online_time;

  // Counters.
  long gateway_wake_events = 0;
  long bh2_moves = 0;          ///< BH2 assignment changes (oscillation gauge)
  long bh2_home_returns = 0;

  /// Discrete events the simulator dispatched during the day (arrivals,
  /// completions, wake-ups, idle checks, ...). Drives the events/sec figure
  /// reported by bench/day_throughput; does not affect any paper artefact.
  std::uint64_t executed_events = 0;

  /// Total energy over the day (J): user + ISP.
  double total_energy() const {
    return user_power.integral(0.0, duration) + isp_power.integral(0.0, duration);
  }
  double user_energy() const { return user_power.integral(0.0, duration); }
  double isp_energy() const { return isp_power.integral(0.0, duration); }
};

/// Fractional savings of `run` vs `baseline` over [t0, t1].
double savings_fraction(const RunMetrics& run, const RunMetrics& baseline, double t0, double t1);

/// Savings binned across the day: one fraction per bin, averaged exactly.
std::vector<double> binned_savings(const RunMetrics& run, const RunMetrics& baseline,
                                   std::size_t bins);

/// Share of the total savings attributable to the ISP side over [t0, t1]
/// (Fig. 8). Returns nullopt when the total savings are ~0 (the share is
/// undefined there, e.g. under no-sleep).
std::optional<double> isp_share_of_savings(const RunMetrics& run, const RunMetrics& baseline,
                                           double t0, double t1);

/// Per-flow completion-time increase of `run` vs `baseline`, as fractions
/// (0.07 = +7 %). Only flows that completed in both runs are compared.
std::vector<double> completion_time_increase(const RunMetrics& run, const RunMetrics& baseline);

/// Per-gateway percentage change in online time of `run` vs `baseline`
/// (Fig. 9b; -1.0 = the gateway never powered on under `run`). Gateways
/// idle in both runs contribute 0.
std::vector<double> online_time_variation(const RunMetrics& run, const RunMetrics& baseline);

}  // namespace insomnia::core
