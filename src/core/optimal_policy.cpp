#include "core/optimal_policy.h"

#include <algorithm>

#include "util/error.h"

namespace insomnia::core {

void OptimalPolicy::start(AccessRuntime& runtime) {
  const int clients = runtime.scenario().client_count;
  bytes_this_period_.assign(static_cast<std::size_t>(clients), 0.0);
  assignment_.assign(static_cast<std::size_t>(clients), -1);
  const double period = runtime.scenario().optimal_period;
  runtime.simulator().at(period, [this, &runtime] { solve(runtime); });
}

std::vector<double> OptimalPolicy::measure_demands(AccessRuntime& runtime) const {
  const ScenarioConfig& scenario = runtime.scenario();
  const double period = scenario.optimal_period;
  std::vector<double> demands(bytes_this_period_.size(), 0.0);
  for (std::size_t c = 0; c < bytes_this_period_.size(); ++c) {
    double d = bytes_this_period_[c] * 8.0 / period;
    if (!runtime.live_flows(static_cast<int>(c)).empty()) {
      d = std::max(d, scenario.optimal_live_demand_bps);
    }
    // Demands are elastic; cap at what a gateway may carry (Eq. 1's q*c_j)
    // so a single heavy user never makes the cover infeasible.
    d = std::min(d, scenario.optimal_q * scenario.backhaul_bps);
    demands[c] = d;
  }
  return demands;
}

void OptimalPolicy::solve(AccessRuntime& runtime) {
  const ScenarioConfig& scenario = runtime.scenario();
  const std::vector<double> demands = measure_demands(runtime);

  opt::GatewayCoverProblem problem;
  problem.capacity.assign(static_cast<std::size_t>(scenario.gateway_count),
                          scenario.optimal_q * scenario.backhaul_bps);
  problem.users.resize(demands.size());
  for (std::size_t c = 0; c < demands.size(); ++c) {
    problem.users[c].demand = demands[c];
    if (demands[c] <= 0.0) continue;
    for (int g : runtime.topology().client_gateways[c]) {
      if (runtime.wireless_rate(static_cast<int>(c), g) >= demands[c]) {
        problem.users[c].feasible.push_back(g);
      }
    }
    util::require_state(!problem.users[c].feasible.empty(),
                        "active user with no feasible gateway");
  }

  const opt::GatewayCoverSolution solution = opt::solve_greedy(problem);
  util::require_state(solution.feasible, "optimal cover must be feasible");

  // Open first so migrations always target active gateways.
  for (int g : solution.open) runtime.force_active(g);

  for (std::size_t c = 0; c < demands.size(); ++c) {
    assignment_[c] = solution.assignment[c];
    if (assignment_[c] < 0) continue;
    // Zero-downtime migration of every live flow to the new assignment.
    for (flow::FlowId id : std::vector<flow::FlowId>(runtime.live_flows(static_cast<int>(c)))) {
      runtime.network().migrate_flow(id, assignment_[c],
                                     runtime.wireless_rate(static_cast<int>(c), assignment_[c]));
    }
  }

  // Everything outside the cover sleeps immediately.
  std::vector<bool> keep(static_cast<std::size_t>(scenario.gateway_count), false);
  for (int g : solution.open) keep[static_cast<std::size_t>(g)] = true;
  for (int g = 0; g < scenario.gateway_count; ++g) {
    if (!keep[static_cast<std::size_t>(g)] &&
        runtime.gateway_state(g) != GatewayState::kAsleep) {
      runtime.force_asleep(g);
    }
  }

  // ISP side: full-switch optimal packing, zero downtime (§5.1).
  runtime.repack_dslam();

  std::fill(bytes_this_period_.begin(), bytes_this_period_.end(), 0.0);
  if (runtime.simulator().now() < runtime.duration()) {
    runtime.simulator().after(scenario.optimal_period,
                              [this, &runtime] { solve(runtime); });
  }
}

int OptimalPolicy::fallback_route(AccessRuntime& runtime, int client) {
  const auto& reachable = runtime.topology().client_gateways[static_cast<std::size_t>(client)];
  int best = -1;
  double best_load = 2.0;
  for (int g : reachable) {
    if (!runtime.gateway_active(g)) continue;
    const double load = runtime.network().gateway_throughput(g) /
                        runtime.scenario().backhaul_bps;
    if (load < best_load) {
      best = g;
      best_load = load;
    }
  }
  if (best >= 0) return best;
  // Nothing reachable is on: the idealised controller powers the home
  // gateway instantly.
  const int home = runtime.topology().home_gateway[static_cast<std::size_t>(client)];
  runtime.force_active(home);
  return home;
}

int OptimalPolicy::route_flow(AccessRuntime& runtime, int client, double bytes) {
  bytes_this_period_[static_cast<std::size_t>(client)] += bytes;
  int target = assignment_[static_cast<std::size_t>(client)];
  if (target >= 0 && runtime.gateway_active(target)) return target;
  target = fallback_route(runtime, client);
  assignment_[static_cast<std::size_t>(client)] = target;
  return target;
}

}  // namespace insomnia::core
