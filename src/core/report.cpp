#include "core/report.h"

#include <ostream>

#include "util/csv.h"
#include "util/error.h"

namespace insomnia::core {

void write_run_csv(std::ostream& out, const RunMetrics& metrics, std::size_t bins,
                   const std::string& label) {
  util::require(bins > 0, "write_run_csv needs at least one bin");
  util::CsvWriter csv(out);
  if (!label.empty()) csv.comment(label);
  csv.header({"hour", "user_watts", "isp_watts", "online_gateways", "online_cards"});
  const auto user = metrics.user_power.binned_means(0.0, metrics.duration, bins);
  const auto isp = metrics.isp_power.binned_means(0.0, metrics.duration, bins);
  const auto gateways = metrics.online_gateways.binned_means(0.0, metrics.duration, bins);
  const auto cards = metrics.online_cards.binned_means(0.0, metrics.duration, bins);
  for (std::size_t b = 0; b < bins; ++b) {
    const double hour =
        metrics.duration / 3600.0 * static_cast<double>(b) / static_cast<double>(bins);
    csv.row(std::vector<double>{hour, user[b], isp[b], gateways[b], cards[b]}, 3);
  }
}

void write_savings_csv(std::ostream& out, const RunMetrics& run, const RunMetrics& baseline,
                       std::size_t bins, const std::string& label) {
  util::require(bins > 0, "write_savings_csv needs at least one bin");
  util::require(run.duration == baseline.duration, "runs must cover the same day");
  util::CsvWriter csv(out);
  if (!label.empty()) csv.comment(label);
  csv.header({"hour", "savings_fraction", "scheme_watts", "baseline_watts"});
  const auto savings = binned_savings(run, baseline, bins);
  const auto run_user = run.user_power.binned_means(0.0, run.duration, bins);
  const auto run_isp = run.isp_power.binned_means(0.0, run.duration, bins);
  const auto base_user = baseline.user_power.binned_means(0.0, run.duration, bins);
  const auto base_isp = baseline.isp_power.binned_means(0.0, run.duration, bins);
  for (std::size_t b = 0; b < bins; ++b) {
    const double hour =
        run.duration / 3600.0 * static_cast<double>(b) / static_cast<double>(bins);
    csv.row(std::vector<double>{hour, savings[b], run_user[b] + run_isp[b],
                                base_user[b] + base_isp[b]},
            4);
  }
}

}  // namespace insomnia::core
