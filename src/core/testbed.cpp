#include "core/testbed.h"

#include <algorithm>

#include "core/metrics.h"
#include "core/schemes.h"
#include "sim/random.h"
#include "stats/timeseries.h"
#include "topology/access_topology.h"
#include "trace/flow_ops.h"
#include "trace/synthetic_crawdad.h"
#include "util/error.h"

namespace insomnia::core {

namespace {

/// Folds the traced clients onto replay terminals by their home AP (each
/// laptop replays all clients of one traced AP, §5.3) and cuts the window.
trace::FlowTrace fold_window(const trace::FlowTrace& flows, const std::vector<int>& client_ap,
                             const std::vector<int>& chosen_aps, double start, double end) {
  std::vector<int> client_map(client_ap.size(), -1);
  for (std::size_t c = 0; c < client_ap.size(); ++c) {
    const auto it = std::find(chosen_aps.begin(), chosen_aps.end(), client_ap[c]);
    if (it != chosen_aps.end()) {
      client_map[c] = static_cast<int>(it - chosen_aps.begin());
    }
  }
  return trace::window_trace(trace::fold_clients(flows, client_map), start, end);
}

}  // namespace

TestbedResult run_testbed_emulation(const TestbedConfig& config) {
  util::require(config.window_end > config.window_start, "empty testbed window");
  util::require(config.runs >= 1, "testbed needs at least one run");
  const SchemeSpec& under_test = find_scheme(config.scheme);

  // Scenario: 9 clients (one replay terminal per gateway), warm start,
  // 3 Mbps lines, one fixed-wiring line card (no DSLAM side in the testbed).
  ScenarioConfig scenario = config.base;
  scenario.client_count = config.gateway_count;
  scenario.gateway_count = config.gateway_count;
  scenario.backhaul_bps = config.backhaul_bps;
  scenario.duration = config.window_end - config.window_start;
  scenario.start_awake = true;
  // The testbed has no DSLAM side; give the runtime a minimal one that any
  // scheme's switch mode accepts (k = 4 divides 4 cards; 12 ports >= 9).
  scenario.dslam.line_cards = 4;
  scenario.dslam.ports_per_card = 3;
  scenario.dslam.switch_size = 4;
  scenario.degrees.node_count = config.gateway_count;

  const trace::SyntheticCrawdadGenerator generator(config.base.traffic);
  const int traced_clients = config.base.traffic.client_count;
  const int traced_aps = config.base.gateway_count;

  TestbedResult result;
  std::vector<std::vector<double>> soi_series;
  std::vector<std::vector<double>> bh2_series;

  for (int run = 0; run < config.runs; ++run) {
    sim::Random rng(config.seed + static_cast<std::uint64_t>(run) * 7919);

    // Trace: a full day for the traced population, folded onto terminals.
    // Client->AP association is Zipf-skewed: real enterprise WLANs have a
    // few hot APs and a long tail of quiet ones, which is what gives the
    // §5.3 window its idle stretches (uniform assignment would make every
    // replayed AP moderately busy and unsleepable).
    const trace::FlowTrace day = generator.generate(rng);
    std::vector<double> ap_weight(static_cast<std::size_t>(traced_aps));
    for (int a = 0; a < traced_aps; ++a) {
      ap_weight[static_cast<std::size_t>(a)] = 1.0 / static_cast<double>(a + 1);
    }
    rng.shuffle(ap_weight);
    std::vector<int> client_ap(static_cast<std::size_t>(traced_clients));
    for (int c = 0; c < traced_clients; ++c) {
      client_ap[static_cast<std::size_t>(c)] = static_cast<int>(rng.weighted_index(ap_weight));
    }
    std::vector<int> aps(static_cast<std::size_t>(traced_aps));
    for (int i = 0; i < traced_aps; ++i) aps[static_cast<std::size_t>(i)] = i;
    rng.shuffle(aps);
    aps.resize(static_cast<std::size_t>(config.gateway_count));
    const trace::FlowTrace window =
        fold_window(day, client_ap, aps, config.window_start, config.window_end);

    // Topology: dense overlap limited to 3 gateways per terminal; terminal
    // i owns gateway i.
    topo::AccessTopology dense = topo::make_binomial_topology(
        config.gateway_count, config.gateway_count, 5.5, rng);
    for (int c = 0; c < config.gateway_count; ++c) {
      // Force terminal c's home to be gateway c (one owner per line).
      dense.home_gateway[static_cast<std::size_t>(c)] = c;
      auto& reach = dense.client_gateways[static_cast<std::size_t>(c)];
      reach.erase(std::remove(reach.begin(), reach.end(), c), reach.end());
      reach.insert(reach.begin(), c);
    }
    const topo::AccessTopology topology =
        topo::limit_gateways_per_client(dense, config.max_gateways_in_range, rng);

    const RunMetrics soi = run_scheme(scenario, topology, window, scheme_spec(SchemeKind::kSoi),
                                      config.seed + static_cast<std::uint64_t>(run) * 31 + 1);
    const RunMetrics bh2 =
        run_scheme(scenario, topology, window, under_test,
                   config.seed + static_cast<std::uint64_t>(run) * 31 + 2);

    soi_series.push_back(soi.online_gateways.binned_means(0.0, scenario.duration, config.bins));
    bh2_series.push_back(bh2.online_gateways.binned_means(0.0, scenario.duration, config.bins));
    result.soi_mean_online += soi.online_gateways.mean(0.0, scenario.duration);
    result.bh2_mean_online += bh2.online_gateways.mean(0.0, scenario.duration);
  }

  result.soi_online = stats::elementwise_mean(soi_series);
  result.bh2_online = stats::elementwise_mean(bh2_series);
  result.soi_mean_online /= static_cast<double>(config.runs);
  result.bh2_mean_online /= static_cast<double>(config.runs);
  result.soi_mean_sleeping = config.gateway_count - result.soi_mean_online;
  result.bh2_mean_sleeping = config.gateway_count - result.bh2_mean_online;
  return result;
}

}  // namespace insomnia::core
