// The evaluation scenario of §5.1, as one value type with the paper's
// defaults. Every experiment starts from this and overrides what it sweeps.
#pragma once

#include "bh2/algorithm.h"
#include "dslam/dslam.h"
#include "power/device_power.h"
#include "topology/degree_sequence.h"
#include "trace/synthetic_crawdad.h"
#include "util/units.h"

namespace insomnia::core {

/// Complete description of one simulated neighbourhood + DSLAM.
struct ScenarioConfig {
  // --- population -------------------------------------------------------
  int client_count = 272;
  int gateway_count = 40;

  // --- wireless ---------------------------------------------------------
  /// Client to its home gateway (§5.1: 12 Mbps)...
  double home_wireless_bps = util::mbps(12.0);
  /// ...and half that to neighbouring gateways (per Mark-and-Sweep [40]).
  double remote_wireless_bps = util::mbps(6.0);
  topo::DegreeSequenceConfig degrees;  // 40 nodes, mean degree 4.6 -> 5.6 in range

  // --- broadband --------------------------------------------------------
  /// ADSL downlink per gateway (§5.1: 6 Mbps, the measured average).
  double backhaul_bps = util::mbps(6.0);

  // --- DSLAM ------------------------------------------------------------
  dslam::DslamConfig dslam;  // 4 cards x 12 ports; switch mode set per scheme

  // --- timing -----------------------------------------------------------
  double duration = util::kSecondsPerDay;
  /// §5.2 starts the day with every gateway asleep; the §5.3 testbed window
  /// starts mid-afternoon with everything powered (true = warm start).
  bool start_awake = false;
  /// Gateway boot + modem resynchronisation (§5.1: measured 60 s average).
  double wake_time = 60.0;
  /// SoI idle timeout chosen from the Fig. 4 gap analysis (§5.1).
  double idle_timeout = 60.0;
  /// Extra simulated time after the trace ends so in-flight flows drain.
  double drain_time = 2.0 * util::kSecondsPerHour;

  // --- algorithms -------------------------------------------------------
  bh2::Bh2Config bh2;
  /// Optimal: ILP re-solve and full-switch repack period (§5.1: 1 min).
  double optimal_period = 60.0;
  /// Optimal's gateway utilization bound q in Eq. (1).
  double optimal_q = 1.0;
  /// Demand floor for users that hold live flows but had no arrivals in the
  /// measurement window, so the cover still serves them.
  double optimal_live_demand_bps = util::kbps(10.0);

  // --- power ------------------------------------------------------------
  power::AccessPowerParams power;
  /// Per-household premises draw = ADSL gateway + wireless router; both
  /// sleep together under BH2/SoI (§5.1 measurements: 9 W + 5 W).
  double household_watts() const {
    return power.gateway.active_watts + power::defaults::wireless_router().active_watts;
  }

  // --- workload ---------------------------------------------------------
  trace::SyntheticTraceConfig traffic;

  ScenarioConfig() {
    degrees.node_count = gateway_count;
    degrees.mean_degree = 4.6;
    traffic.client_count = client_count;
    traffic.duration = duration;
    dslam.line_cards = 4;
    dslam.ports_per_card = 12;
    dslam.switch_size = 4;
  }

  /// Total DSLAM ports (some may exceed gateway_count and stay vacant).
  int dslam_ports() const { return dslam.line_cards * dslam.ports_per_card; }
};

}  // namespace insomnia::core
