// Figure-level experiment drivers. Each regenerates the data behind one or
// more of the paper's evaluation artefacts; the bench/ binaries only format
// what these return. Schemes are selected by registry name
// (core/scheme_registry.h) — any registered scheme, paper or beyond, can
// join a comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/schemes.h"

namespace insomnia::core {

/// Configuration shared by the simulation experiments (Figs. 6-9 + §5.2.3).
struct MainExperimentConfig {
  ScenarioConfig scenario;
  /// Registered scheme names to evaluate (the no-sleep baseline is
  /// implicit). Unknown names throw util::InvalidArgument listing the valid
  /// ones. "soi" must be listed before any scheme whose spec pairs fairness
  /// against it (the Fig. 9b convention).
  std::vector<std::string> schemes;
  int runs = 10;                    ///< §5.2: 10 repetitions, averaged
  std::uint64_t seed = 42;
  std::size_t bins = 96;            ///< day-series resolution (15 min)
  double peak_start = 11.0 * 3600;  ///< §5.2.5 peak window 11:00-19:00
  double peak_end = 19.0 * 3600;
  /// Worker threads for sharding the paired days; 0 = auto (INSOMNIA_THREADS
  /// or the hardware concurrency). Results are bit-identical for any value.
  int threads = 0;
};

/// Aggregated outcome of one scheme across all runs.
struct SchemeOutcome {
  std::string scheme;   ///< registry name
  std::string display;  ///< figure-style display name

  // Day series (one value per bin, energy-weighted across runs).
  std::vector<double> savings;          ///< fraction vs no-sleep (Fig. 6)
  std::vector<double> isp_share;        ///< ISP share of savings (Fig. 8)
  std::vector<double> online_gateways;  ///< mean count (Fig. 7)
  std::vector<double> online_cards;     ///< mean count (§5.2.3)

  // Whole-day / peak-window summaries.
  double day_savings = 0.0;
  double day_isp_share = 0.0;
  double peak_online_gateways = 0.0;
  double peak_online_cards = 0.0;

  // QoS and fairness samples pooled across runs.
  std::vector<double> fct_increase;          ///< Fig. 9a, vs no-sleep
  std::vector<double> online_time_variation; ///< Fig. 9b, vs same-run SoI

  // Behaviour counters (per run averages).
  double wake_events = 0.0;
  double bh2_moves = 0.0;
  double bh2_home_returns = 0.0;
};

/// Result of the main experiment.
struct MainExperimentResult {
  MainExperimentConfig config;
  std::vector<SchemeOutcome> schemes;

  const SchemeOutcome& outcome(const std::string& scheme) const;
  /// Paper-enum shim: outcome(scheme_token(kind)).
  const SchemeOutcome& outcome(SchemeKind kind) const;
};

/// Runs every requested scheme over `runs` paired days (same trace and
/// topology per run across schemes) and aggregates.
MainExperimentResult run_main_experiment(const MainExperimentConfig& config);

/// One point of the Fig. 10 density sweep.
struct DensityPoint {
  double mean_available_gateways = 0.0;
  double mean_online_gateways = 0.0;  ///< over the peak window
};

/// Fig. 10: aggregation vs wireless density for `scheme` (the paper runs
/// BH2). Each density level uses fresh binomial connectivity matrices per
/// run. All (level, run) cells are independent and sharded over `threads`
/// workers (0 = auto); results are bit-identical for any thread count.
std::vector<DensityPoint> run_density_sweep(const ScenarioConfig& scenario,
                                            const std::vector<double>& mean_gateways,
                                            int runs, std::uint64_t seed, int threads = 0,
                                            const std::string& scheme = "bh2-kswitch");

/// Reads the per-experiment run count from the INSOMNIA_RUNS environment
/// variable, defaulting to `fallback` when unset (lets CI trade fidelity for
/// time). Non-numeric, zero, or negative values throw util::InvalidArgument:
/// a typo'd override must not silently run the wrong experiment.
int runs_from_env(int fallback);

}  // namespace insomnia::core
