// Named neighbourhood scenarios. The paper's evaluation (§5.1) fixes one
// ADSL neighbourhood; related deployments (GATE's heterogeneous edges, PON
// split studies) show the same sleep-mode ideas matter across very different
// access plants. The registry makes whole scenario families selectable by
// name — from any driver via --preset/INSOMNIA_PRESET — without per-driver
// plumbing.
#pragma once

#include <string>
#include <vector>

#include "core/scenario.h"

namespace insomnia::core {

/// One named, ready-to-run neighbourhood scenario.
struct ScenarioPreset {
  std::string name;      ///< selection token (kebab-case, CLI/env friendly)
  std::string summary;   ///< one-line description for banners and --help
  ScenarioConfig scenario;
};

/// All built-in presets, paper default first. Stable order and names.
const std::vector<ScenarioPreset>& scenario_presets();

/// Looks a preset up by name; throws util::InvalidArgument listing the valid
/// names when `name` is unknown.
const ScenarioPreset& find_scenario_preset(const std::string& name);

/// Name of the preset selected by the INSOMNIA_PRESET environment variable,
/// or "paper-default" when unset. Throws on unknown names.
const ScenarioPreset& scenario_preset_from_env();

}  // namespace insomnia::core
