// The §5.4 back-of-the-envelope: extrapolating the measured savings to all
// DSL subscribers world-wide ("about 33 TWh per year, comparable to the
// output of 3 nuclear power plants").
#pragma once

namespace insomnia::core {

/// World-wide extrapolation inputs. Defaults follow the paper: >320 M DSL
/// subscribers (Point Topic Q3'10), a ~9 W integrated gateway per household,
/// per-subscriber ISP share from the §5.1 DSLAM (shelf + 4 cards + modems
/// over 48 ports), and the measured 66 % average savings.
struct WorldExtrapolationConfig {
  double dsl_subscribers = 320e6;
  double household_watts = 9.0;           ///< integrated gateway
  double isp_watts_per_subscriber = (21.0 + 4.0 * 98.0 + 48.0) / 48.0;
  double savings_fraction = 0.66;
};

/// Validates the extrapolation inputs: non-positive subscriber counts or
/// per-subscriber draws and savings fractions outside [0,1] throw
/// util::InvalidArgument — a nonsense TWh headline must be impossible to
/// produce silently. Every function below validates before computing.
void validate(const WorldExtrapolationConfig& config);

/// Total access-network draw covered by the model, in watts.
double world_access_watts(const WorldExtrapolationConfig& config);

/// Annual world-wide savings in TWh.
double annual_savings_twh(const WorldExtrapolationConfig& config);

/// Annual savings split into the user and ISP sides of the access network.
struct SavingsSplitTwh {
  double user_twh = 0.0;
  double isp_twh = 0.0;
  double total_twh() const { return user_twh + isp_twh; }
};

/// Splits annual_savings_twh by `isp_share` — the fraction of the saved
/// energy on the ISP side, as measured (the paper's ~1/3) or as simulated
/// (city::CityMetrics::isp_share_of_savings). Must be in [0,1].
SavingsSplitTwh annual_savings_split_twh(const WorldExtrapolationConfig& config,
                                         double isp_share);

/// Same savings expressed as equivalent ~1.3 GW-average nuclear plants
/// (the paper's "3 nuclear power plants in the US" comparison; a large US
/// plant produces ~10-11 TWh/yr).
double equivalent_nuclear_plants(const WorldExtrapolationConfig& config,
                                 double twh_per_plant_year = 11.0);

}  // namespace insomnia::core
