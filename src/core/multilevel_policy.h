// A beyond-paper scheme: multi-level sleep with a shallow and a deep doze
// state, after the multi-power-level sleep management studied for PONs and
// edge deployments (see PAPERS.md). The runtime's Sleep-on-Idle machinery
// provides the shallow doze; a gateway that stays asleep past a threshold
// is treated as deeply dozed — its resynchronisation is the expensive kind
// — and the policy then prefers hitch-hiking new traffic onto an already
// active neighbour gateway over paying the deep wake-up, falling back to
// waking home only when no warm host has headroom.
#pragma once

#include <vector>

#include "core/runtime.h"

namespace insomnia::core {

/// Tunables of the deep/shallow doze model.
struct MultiLevelDozeConfig {
  /// Continuous sleep beyond which a gateway counts as deeply dozed.
  double deep_after = 900.0;
  /// Cadence of the sleep-onset observation scan (terminals notice a
  /// gateway's beacons stopped within one period).
  double scan_period = 30.0;
  /// A neighbour only hosts guest traffic while its backhaul utilization is
  /// below this cap (protects the host's own QoS; mirrors BH2's high
  /// threshold).
  double host_load_cap = 0.5;
};

/// Home-first routing with doze-depth awareness. Shallow wake-ups behave
/// exactly like SoI; deep wake-ups are avoided when an active reachable
/// gateway has headroom.
class MultiLevelDozePolicy : public Policy {
 public:
  explicit MultiLevelDozePolicy(MultiLevelDozeConfig config = {});

  void start(AccessRuntime& runtime) override;
  int route_flow(AccessRuntime& runtime, int client, double bytes) override;
  void on_gateway_active(AccessRuntime& runtime, int gateway) override;

  /// True when `gateway` is observed asleep past the deep threshold.
  bool deep_asleep(AccessRuntime& runtime, int gateway) const;

 private:
  /// Periodic observation pass recording sleep onsets.
  void scan(AccessRuntime& runtime);

  MultiLevelDozeConfig config_;
  std::vector<double> sleep_since_;  ///< observed sleep onset; -1 = awake
};

}  // namespace insomnia::core
