#include "core/experiments.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

#include "core/metrics.h"
#include "exec/sweep_runner.h"
#include "sim/random.h"
#include "stats/timeseries.h"
#include "trace/synthetic_crawdad.h"
#include "util/error.h"
#include "util/strings.h"

namespace insomnia::core {

namespace {

/// Exact per-bin energy integrals of one run, user and ISP side.
struct BinnedEnergy {
  std::vector<double> user;
  std::vector<double> isp;
};

BinnedEnergy bin_energy(const RunMetrics& metrics, std::size_t bins) {
  BinnedEnergy out;
  out.user.resize(bins);
  out.isp.resize(bins);
  const double width = metrics.duration / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    const double lo = width * static_cast<double>(i);
    const double hi = (i + 1 == bins) ? metrics.duration : lo + width;
    out.user[i] = metrics.user_power.integral(lo, hi);
    out.isp[i] = metrics.isp_power.integral(lo, hi);
  }
  return out;
}

/// Run-summed per-bin energies; merged strictly in run-index order so the
/// floating-point accumulation matches the historical serial loop bit for
/// bit regardless of which thread computed each run.
struct EnergyBins {
  std::vector<double> user;
  std::vector<double> isp;

  void merge(const BinnedEnergy& run) {
    if (user.empty()) {
      user.assign(run.user.size(), 0.0);
      isp.assign(run.isp.size(), 0.0);
    }
    for (std::size_t i = 0; i < run.user.size(); ++i) {
      user[i] += run.user[i];
      isp[i] += run.isp[i];
    }
  }
};

/// Everything one scheme contributes from one paired day.
struct SchemeRunOutput {
  BinnedEnergy energy;
  std::vector<double> online_gateways;  ///< binned means
  std::vector<double> online_cards;
  double peak_gateways = 0.0;
  double peak_cards = 0.0;
  double user_energy = 0.0;
  double isp_energy = 0.0;
  double wakes = 0.0;
  double moves = 0.0;
  double returns = 0.0;
  std::vector<double> fct;
  std::vector<double> fairness;
};

/// One paired simulated day: baseline plus every requested scheme.
struct RunOutput {
  BinnedEnergy baseline;
  double baseline_user_energy = 0.0;
  double baseline_isp_energy = 0.0;
  std::vector<SchemeRunOutput> schemes;
};

/// Simulates paired day `run`. Pure function of (config, topology, run): all
/// randomness is derived from substream seeds keyed by the run index, so the
/// sweep can be sharded across threads in any order. `schemes` holds the
/// registry specs of config.schemes, resolved once by the caller.
RunOutput simulate_run(const MainExperimentConfig& config,
                       const topo::AccessTopology& topology,
                       const trace::SyntheticCrawdadGenerator& generator, int run,
                       const std::vector<const SchemeSpec*>& schemes,
                       const SchemeSpec& baseline_scheme, bool wants_soi) {
  RunOutput out;
  sim::Random trace_rng(sim::Random::substream_seed(config.seed, run, 1));
  const trace::FlowTrace flows = generator.generate(trace_rng);

  const RunMetrics baseline =
      run_scheme(config.scenario, topology, flows, baseline_scheme,
                 sim::Random::substream_seed(config.seed, run, 2));
  out.baseline = bin_energy(baseline, config.bins);
  out.baseline_user_energy = baseline.user_energy();
  out.baseline_isp_energy = baseline.isp_energy();

  RunMetrics soi_metrics;
  bool have_soi = false;

  out.schemes.resize(config.schemes.size());
  for (std::size_t s = 0; s < config.schemes.size(); ++s) {
    const SchemeSpec& spec = *schemes[s];
    RunMetrics metrics =
        run_scheme(config.scenario, topology, flows, spec,
                   sim::Random::substream_seed(config.seed, run, 100 + s));

    SchemeRunOutput& o = out.schemes[s];
    o.energy = bin_energy(metrics, config.bins);
    o.online_gateways = metrics.online_gateways.binned_means(0.0, metrics.duration, config.bins);
    o.online_cards = metrics.online_cards.binned_means(0.0, metrics.duration, config.bins);
    o.peak_gateways = metrics.online_gateways.mean(config.peak_start, config.peak_end);
    o.peak_cards = metrics.online_cards.mean(config.peak_start, config.peak_end);
    o.user_energy = metrics.user_energy();
    o.isp_energy = metrics.isp_energy();
    o.wakes = static_cast<double>(metrics.gateway_wake_events);
    o.moves = static_cast<double>(metrics.bh2_moves);
    o.returns = static_cast<double>(metrics.bh2_home_returns);

    if (spec.name != "no-sleep") {
      o.fct = completion_time_increase(metrics, baseline);
    }
    if (spec.name == "soi") {
      soi_metrics = std::move(metrics);
      have_soi = true;
      continue;
    }
    // Fairness (Fig. 9b) needs the same-run SoI metrics; fairness-paired
    // schemes are listed after SoI by convention (enforced below).
    if (spec.fairness_vs_soi && wants_soi) {
      util::require_state(have_soi, "list \"soi\" before fairness-paired schemes");
      o.fairness = online_time_variation(metrics, soi_metrics);
    }
  }
  return out;
}

}  // namespace

const SchemeOutcome& MainExperimentResult::outcome(const std::string& scheme) const {
  for (const SchemeOutcome& o : schemes) {
    if (o.scheme == scheme) return o;
  }
  throw util::InvalidArgument("scheme not part of this experiment: " + scheme);
}

const SchemeOutcome& MainExperimentResult::outcome(SchemeKind kind) const {
  return outcome(scheme_token(kind));
}

MainExperimentResult run_main_experiment(const MainExperimentConfig& config) {
  util::require(config.runs >= 1, "experiment needs at least one run");
  util::require(config.bins >= 1, "experiment needs at least one bin");

  MainExperimentResult result;
  result.config = config;

  // The paper evaluates every scheme on one fixed overlap topology.
  sim::Random topo_rng(sim::Random::substream_seed(config.seed, 0, 7));
  const topo::AccessTopology topology = topo::make_overlap_topology(
      config.scenario.client_count, config.scenario.degrees, topo_rng);

  // Resolve every scheme name once, up front — an unknown name must fail
  // before any simulation work starts (and the error lists what would work).
  std::vector<const SchemeSpec*> schemes;
  schemes.reserve(config.schemes.size());
  for (const std::string& name : config.schemes) schemes.push_back(&find_scheme(name));
  const SchemeSpec& baseline_scheme = find_scheme("no-sleep");

  const bool wants_soi =
      std::find(config.schemes.begin(), config.schemes.end(), "soi") !=
      config.schemes.end();

  const trace::SyntheticCrawdadGenerator generator(config.scenario.traffic);

  // Shard the paired days; each run is an independent task keyed by index.
  exec::SweepRunner runner(config.threads);
  const std::vector<RunOutput> runs =
      runner.run(static_cast<std::size_t>(config.runs), [&](std::size_t run) {
        return simulate_run(config, topology, generator, static_cast<int>(run), schemes,
                            baseline_scheme, wants_soi);
      });

  // Fold per-run outputs in run order — the exact addition sequence of the
  // old serial loop, so results do not depend on the thread count.
  struct Accumulator {
    EnergyBins energy;
    std::vector<std::vector<double>> online_gateways;
    std::vector<std::vector<double>> online_cards;
    double peak_gateways = 0.0;
    double peak_cards = 0.0;
    double day_user_energy = 0.0;
    double day_isp_energy = 0.0;
    double wakes = 0.0;
    double moves = 0.0;
    double returns = 0.0;
    std::vector<double> fct;
    std::vector<double> fairness;
  };
  std::vector<Accumulator> acc(config.schemes.size());
  EnergyBins baseline_energy;
  double baseline_user = 0.0;
  double baseline_isp = 0.0;

  for (const RunOutput& run : runs) {
    baseline_energy.merge(run.baseline);
    baseline_user += run.baseline_user_energy;
    baseline_isp += run.baseline_isp_energy;
    for (std::size_t s = 0; s < config.schemes.size(); ++s) {
      const SchemeRunOutput& o = run.schemes[s];
      Accumulator& a = acc[s];
      a.energy.merge(o.energy);
      a.online_gateways.push_back(o.online_gateways);
      a.online_cards.push_back(o.online_cards);
      a.peak_gateways += o.peak_gateways;
      a.peak_cards += o.peak_cards;
      a.day_user_energy += o.user_energy;
      a.day_isp_energy += o.isp_energy;
      a.wakes += o.wakes;
      a.moves += o.moves;
      a.returns += o.returns;
      a.fct.insert(a.fct.end(), o.fct.begin(), o.fct.end());
      a.fairness.insert(a.fairness.end(), o.fairness.begin(), o.fairness.end());
    }
  }

  const double runs_d = static_cast<double>(config.runs);
  for (std::size_t s = 0; s < config.schemes.size(); ++s) {
    Accumulator& a = acc[s];
    SchemeOutcome outcome;
    outcome.scheme = schemes[s]->name;
    outcome.display = schemes[s]->display;

    outcome.savings.resize(config.bins);
    outcome.isp_share.resize(config.bins);
    for (std::size_t i = 0; i < config.bins; ++i) {
      const double base = baseline_energy.user[i] + baseline_energy.isp[i];
      const double mine = a.energy.user[i] + a.energy.isp[i];
      outcome.savings[i] = base > 0.0 ? 1.0 - mine / base : 0.0;
      const double user_saved = baseline_energy.user[i] - a.energy.user[i];
      const double isp_saved = baseline_energy.isp[i] - a.energy.isp[i];
      const double total_saved = user_saved + isp_saved;
      outcome.isp_share[i] = total_saved > base * 1e-9 ? isp_saved / total_saved : 0.0;
    }
    outcome.online_gateways = stats::elementwise_mean(a.online_gateways);
    outcome.online_cards = stats::elementwise_mean(a.online_cards);

    const double base_day = baseline_user + baseline_isp;
    const double mine_day = a.day_user_energy + a.day_isp_energy;
    outcome.day_savings = 1.0 - mine_day / base_day;
    const double user_saved = baseline_user - a.day_user_energy;
    const double isp_saved = baseline_isp - a.day_isp_energy;
    outcome.day_isp_share =
        (user_saved + isp_saved) > 0.0 ? isp_saved / (user_saved + isp_saved) : 0.0;

    outcome.peak_online_gateways = a.peak_gateways / runs_d;
    outcome.peak_online_cards = a.peak_cards / runs_d;
    outcome.fct_increase = std::move(a.fct);
    outcome.online_time_variation = std::move(a.fairness);
    outcome.wake_events = a.wakes / runs_d;
    outcome.bh2_moves = a.moves / runs_d;
    outcome.bh2_home_returns = a.returns / runs_d;

    result.schemes.push_back(std::move(outcome));
  }
  return result;
}

std::vector<DensityPoint> run_density_sweep(const ScenarioConfig& scenario,
                                            const std::vector<double>& mean_gateways,
                                            int runs, std::uint64_t seed, int threads,
                                            const std::string& scheme) {
  util::require(runs >= 1, "density sweep needs at least one run");
  const SchemeSpec& spec = find_scheme(scheme);
  const trace::SyntheticCrawdadGenerator generator(scenario.traffic);
  const double peak_start = 11.0 * 3600.0;
  const double peak_end = 19.0 * 3600.0;

  // Every (density level, run) cell is independent: shard the flattened
  // grid, then reduce each level's runs in index order.
  const std::size_t runs_u = static_cast<std::size_t>(runs);
  exec::SweepRunner runner(threads);
  const std::vector<double> cells =
      runner.run(mean_gateways.size() * runs_u, [&](std::size_t cell) {
        const std::size_t level = cell / runs_u;
        const int run = static_cast<int>(cell % runs_u);
        sim::Random topo_rng(sim::Random::substream_seed(seed, run, 300 + level));
        const topo::AccessTopology topology = topo::make_binomial_topology(
            scenario.client_count, scenario.gateway_count, mean_gateways[level], topo_rng);
        sim::Random trace_rng(sim::Random::substream_seed(seed, run, 1));
        const trace::FlowTrace flows = generator.generate(trace_rng);
        const RunMetrics metrics =
            run_scheme(scenario, topology, flows, spec,
                       sim::Random::substream_seed(seed, run, 400 + level));
        return metrics.online_gateways.mean(peak_start, peak_end);
      });

  std::vector<DensityPoint> points;
  for (std::size_t level = 0; level < mean_gateways.size(); ++level) {
    double total = 0.0;
    for (std::size_t run = 0; run < runs_u; ++run) total += cells[level * runs_u + run];
    points.push_back({mean_gateways[level], total / static_cast<double>(runs)});
  }
  return points;
}

int runs_from_env(int fallback) {
  const char* env = std::getenv("INSOMNIA_RUNS");
  if (env == nullptr) return fallback;
  const auto parsed = util::parse_positive_int(env);
  util::require(parsed.has_value(),
                "INSOMNIA_RUNS must be a positive integer, got \"" + std::string(env) + "\"");
  return *parsed;
}

}  // namespace insomnia::core
