#include "core/experiments.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "core/metrics.h"
#include "sim/random.h"
#include "stats/timeseries.h"
#include "trace/synthetic_crawdad.h"
#include "util/error.h"

namespace insomnia::core {

namespace {

/// Per-scheme energy accumulators used to make run-averaged series
/// energy-weighted (ratios of summed energies, not means of ratios).
struct EnergyBins {
  std::vector<double> user;
  std::vector<double> isp;

  void accumulate(const RunMetrics& metrics, std::size_t bins) {
    if (user.empty()) {
      user.assign(bins, 0.0);
      isp.assign(bins, 0.0);
    }
    const double width = metrics.duration / static_cast<double>(bins);
    for (std::size_t i = 0; i < bins; ++i) {
      const double lo = width * static_cast<double>(i);
      const double hi = (i + 1 == bins) ? metrics.duration : lo + width;
      user[i] += metrics.user_power.integral(lo, hi);
      isp[i] += metrics.isp_power.integral(lo, hi);
    }
  }
};

std::uint64_t mix_seed(std::uint64_t seed, int run, int salt) {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(run + 1) +
                    0xbf58476d1ce4e5b9ULL * static_cast<std::uint64_t>(salt + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  return x;
}

}  // namespace

const SchemeOutcome& MainExperimentResult::outcome(SchemeKind kind) const {
  for (const SchemeOutcome& o : schemes) {
    if (o.scheme == kind) return o;
  }
  throw util::InvalidArgument("scheme not part of this experiment: " + scheme_name(kind));
}

MainExperimentResult run_main_experiment(const MainExperimentConfig& config) {
  util::require(config.runs >= 1, "experiment needs at least one run");
  util::require(config.bins >= 1, "experiment needs at least one bin");

  MainExperimentResult result;
  result.config = config;

  // The paper evaluates every scheme on one fixed overlap topology.
  sim::Random topo_rng(mix_seed(config.seed, 0, 7));
  const topo::AccessTopology topology = topo::make_overlap_topology(
      config.scenario.client_count, config.scenario.degrees, topo_rng);

  const bool wants_soi =
      std::find(config.schemes.begin(), config.schemes.end(), SchemeKind::kSoi) !=
      config.schemes.end();

  // Accumulators per scheme.
  struct Accumulator {
    EnergyBins energy;
    std::vector<std::vector<double>> online_gateways;
    std::vector<std::vector<double>> online_cards;
    double peak_gateways = 0.0;
    double peak_cards = 0.0;
    double day_user_energy = 0.0;
    double day_isp_energy = 0.0;
    double wakes = 0.0;
    double moves = 0.0;
    double returns = 0.0;
    std::vector<double> fct;
    std::vector<double> fairness;
  };
  std::vector<Accumulator> acc(config.schemes.size());
  EnergyBins baseline_energy;
  double baseline_user = 0.0;
  double baseline_isp = 0.0;

  const trace::SyntheticCrawdadGenerator generator(config.scenario.traffic);

  for (int run = 0; run < config.runs; ++run) {
    sim::Random trace_rng(mix_seed(config.seed, run, 1));
    const trace::FlowTrace flows = generator.generate(trace_rng);

    const RunMetrics baseline = run_scheme(config.scenario, topology, flows,
                                           SchemeKind::kNoSleep, mix_seed(config.seed, run, 2));
    baseline_energy.accumulate(baseline, config.bins);
    baseline_user += baseline.user_energy();
    baseline_isp += baseline.isp_energy();

    RunMetrics soi_metrics;
    bool have_soi = false;

    for (std::size_t s = 0; s < config.schemes.size(); ++s) {
      const SchemeKind kind = config.schemes[s];
      RunMetrics metrics =
          run_scheme(config.scenario, topology, flows, kind, mix_seed(config.seed, run, 100 + static_cast<int>(s)));

      Accumulator& a = acc[s];
      a.energy.accumulate(metrics, config.bins);
      a.online_gateways.push_back(
          metrics.online_gateways.binned_means(0.0, metrics.duration, config.bins));
      a.online_cards.push_back(
          metrics.online_cards.binned_means(0.0, metrics.duration, config.bins));
      a.peak_gateways += metrics.online_gateways.mean(config.peak_start, config.peak_end);
      a.peak_cards += metrics.online_cards.mean(config.peak_start, config.peak_end);
      a.day_user_energy += metrics.user_energy();
      a.day_isp_energy += metrics.isp_energy();
      a.wakes += static_cast<double>(metrics.gateway_wake_events);
      a.moves += static_cast<double>(metrics.bh2_moves);
      a.returns += static_cast<double>(metrics.bh2_home_returns);

      if (kind != SchemeKind::kNoSleep) {
        const auto fct = completion_time_increase(metrics, baseline);
        a.fct.insert(a.fct.end(), fct.begin(), fct.end());
      }
      if (kind == SchemeKind::kSoi) {
        soi_metrics = std::move(metrics);
        have_soi = true;
        continue;
      }
      // Fairness (Fig. 9b) needs the same-run SoI metrics; BH2 schemes are
      // listed after SoI by convention (enforced below).
      if ((kind == SchemeKind::kBh2KSwitch || kind == SchemeKind::kBh2NoBackupKSwitch ||
           kind == SchemeKind::kBh2FullSwitch) &&
          wants_soi) {
        util::require_state(have_soi, "list SchemeKind::kSoi before BH2 schemes");
        const auto variation = online_time_variation(metrics, soi_metrics);
        a.fairness.insert(a.fairness.end(), variation.begin(), variation.end());
      }
    }
  }

  const double runs_d = static_cast<double>(config.runs);
  for (std::size_t s = 0; s < config.schemes.size(); ++s) {
    Accumulator& a = acc[s];
    SchemeOutcome outcome;
    outcome.scheme = config.schemes[s];

    outcome.savings.resize(config.bins);
    outcome.isp_share.resize(config.bins);
    for (std::size_t i = 0; i < config.bins; ++i) {
      const double base = baseline_energy.user[i] + baseline_energy.isp[i];
      const double mine = a.energy.user[i] + a.energy.isp[i];
      outcome.savings[i] = base > 0.0 ? 1.0 - mine / base : 0.0;
      const double user_saved = baseline_energy.user[i] - a.energy.user[i];
      const double isp_saved = baseline_energy.isp[i] - a.energy.isp[i];
      const double total_saved = user_saved + isp_saved;
      outcome.isp_share[i] = total_saved > base * 1e-9 ? isp_saved / total_saved : 0.0;
    }
    outcome.online_gateways = stats::elementwise_mean(a.online_gateways);
    outcome.online_cards = stats::elementwise_mean(a.online_cards);

    const double base_day = baseline_user + baseline_isp;
    const double mine_day = a.day_user_energy + a.day_isp_energy;
    outcome.day_savings = 1.0 - mine_day / base_day;
    const double user_saved = baseline_user - a.day_user_energy;
    const double isp_saved = baseline_isp - a.day_isp_energy;
    outcome.day_isp_share =
        (user_saved + isp_saved) > 0.0 ? isp_saved / (user_saved + isp_saved) : 0.0;

    outcome.peak_online_gateways = a.peak_gateways / runs_d;
    outcome.peak_online_cards = a.peak_cards / runs_d;
    outcome.fct_increase = std::move(a.fct);
    outcome.online_time_variation = std::move(a.fairness);
    outcome.wake_events = a.wakes / runs_d;
    outcome.bh2_moves = a.moves / runs_d;
    outcome.bh2_home_returns = a.returns / runs_d;

    result.schemes.push_back(std::move(outcome));
  }
  return result;
}

std::vector<DensityPoint> run_density_sweep(const ScenarioConfig& scenario,
                                            const std::vector<double>& mean_gateways,
                                            int runs, std::uint64_t seed) {
  util::require(runs >= 1, "density sweep needs at least one run");
  std::vector<DensityPoint> points;
  const trace::SyntheticCrawdadGenerator generator(scenario.traffic);
  const double peak_start = 11.0 * 3600.0;
  const double peak_end = 19.0 * 3600.0;

  for (std::size_t level = 0; level < mean_gateways.size(); ++level) {
    double total = 0.0;
    for (int run = 0; run < runs; ++run) {
      sim::Random topo_rng(mix_seed(seed, run, 300 + static_cast<int>(level)));
      const topo::AccessTopology topology = topo::make_binomial_topology(
          scenario.client_count, scenario.gateway_count, mean_gateways[level], topo_rng);
      sim::Random trace_rng(mix_seed(seed, run, 1));
      const trace::FlowTrace flows = generator.generate(trace_rng);
      const RunMetrics metrics =
          run_scheme(scenario, topology, flows, SchemeKind::kBh2KSwitch,
                     mix_seed(seed, run, 400 + static_cast<int>(level)));
      total += metrics.online_gateways.mean(peak_start, peak_end);
    }
    points.push_back({mean_gateways[level], total / static_cast<double>(runs)});
  }
  return points;
}

int runs_from_env(int fallback) {
  const char* env = std::getenv("INSOMNIA_RUNS");
  if (env == nullptr) return fallback;
  try {
    const int parsed = std::stoi(env);
    return parsed >= 1 ? parsed : fallback;
  } catch (const std::exception&) {
    return fallback;
  }
}

}  // namespace insomnia::core
