#include "core/home_policy.h"

namespace insomnia::core {

void NoSleepPolicy::start(AccessRuntime& runtime) {
  for (int g = 0; g < runtime.scenario().gateway_count; ++g) runtime.force_active(g);
}

int NoSleepPolicy::route_flow(AccessRuntime& runtime, int client, double /*bytes*/) {
  return runtime.topology().home_gateway[static_cast<std::size_t>(client)];
}

int SoiPolicy::route_flow(AccessRuntime& runtime, int client, double /*bytes*/) {
  const int home = runtime.topology().home_gateway[static_cast<std::size_t>(client)];
  if (runtime.gateway_state(home) == GatewayState::kAsleep) runtime.request_wake(home);
  return home;
}

}  // namespace insomnia::core
