// The idealised "Optimal" scheme of §5.1: every minute a centralized solver
// minimises the number of online gateways (Eq. 1) over the users' measured
// demands, migrates all flows with zero downtime, switches gateway states
// instantaneously, and repacks the DSLAM with a full switch. Infeasible in
// practice — it upper-bounds the attainable savings.
#pragma once

#include <vector>

#include "core/runtime.h"
#include "opt/gateway_cover.h"

namespace insomnia::core {

class OptimalPolicy : public Policy {
 public:
  void start(AccessRuntime& runtime) override;
  int route_flow(AccessRuntime& runtime, int client, double bytes) override;
  /// Gateways under central control never use the distributed SoI timer.
  bool sleep_on_idle() const override { return false; }

 private:
  /// Periodic central re-optimisation.
  void solve(AccessRuntime& runtime);

  /// Demand of each client over the last period (bits/s), floored for
  /// clients holding live flows.
  std::vector<double> measure_demands(AccessRuntime& runtime) const;

  /// Routes a client whose assigned gateway is not active: pick the least
  /// loaded reachable active gateway, or instant-wake the home gateway.
  int fallback_route(AccessRuntime& runtime, int client);

  std::vector<double> bytes_this_period_;
  std::vector<int> assignment_;  ///< -1 while a client has no demand
};

}  // namespace insomnia::core
