#include "core/day_summary.h"

#include "stats/timeseries.h"

namespace insomnia::core {

namespace {

/// Exact per-bin total (user + ISP) energy integrals of one run.
std::vector<double> bin_total_energy(const RunMetrics& metrics, std::size_t bins) {
  std::vector<double> out(bins);
  const double width = metrics.duration / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    const double lo = width * static_cast<double>(i);
    const double hi = (i + 1 == bins) ? metrics.duration : lo + width;
    out[i] = metrics.user_power.integral(lo, hi) + metrics.isp_power.integral(lo, hi);
  }
  return out;
}

}  // namespace

PairedDaySummary summarize_paired_day(const RunMetrics& baseline,
                                      const RunMetrics& metrics, std::uint64_t flows,
                                      std::size_t bins, double peak_start,
                                      double peak_end) {
  PairedDaySummary out;
  out.day.baseline_user_energy = baseline.user_energy();
  out.day.baseline_isp_energy = baseline.isp_energy();
  out.day.user_energy = metrics.user_energy();
  out.day.isp_energy = metrics.isp_energy();
  const double base_total = out.day.baseline_user_energy + out.day.baseline_isp_energy;
  const double mine_total = out.day.user_energy + out.day.isp_energy;
  out.day.savings = base_total > 0.0 ? 1.0 - mine_total / base_total : 0.0;
  const double user_saved = out.day.baseline_user_energy - out.day.user_energy;
  const double isp_saved = out.day.baseline_isp_energy - out.day.isp_energy;
  const double total_saved = user_saved + isp_saved;
  out.day.isp_share = total_saved > 0.0 ? isp_saved / total_saved : 0.0;
  out.day.peak_online_gateways = metrics.online_gateways.mean(peak_start, peak_end);
  out.day.peak_online_cards = metrics.online_cards.mean(peak_start, peak_end);
  out.day.wake_events = metrics.gateway_wake_events;
  out.day.bh2_moves = metrics.bh2_moves;
  out.day.bh2_home_returns = metrics.bh2_home_returns;
  out.day.executed_events = metrics.executed_events;
  out.day.flows = flows;

  out.baseline_energy_bins = bin_total_energy(baseline, bins);
  out.scheme_energy_bins = bin_total_energy(metrics, bins);
  out.online_gateways =
      metrics.online_gateways.binned_means(0.0, metrics.duration, bins);
  return out;
}

void fold_paired_days(const std::vector<PairedDaySummary>& days, RunReport& report) {
  const std::size_t bins = report.bins;
  std::vector<double> baseline_bins(bins, 0.0);
  std::vector<double> scheme_bins(bins, 0.0);
  std::vector<std::vector<double>> gateway_rows;
  double baseline_energy = 0.0;
  double scheme_energy = 0.0;
  double baseline_user = 0.0;
  double scheme_user = 0.0;
  double peak_gateways = 0.0;
  double wakes = 0.0;
  for (const PairedDaySummary& out : days) {
    report.days.push_back(out.day);
    for (std::size_t i = 0; i < bins; ++i) {
      baseline_bins[i] += out.baseline_energy_bins[i];
      scheme_bins[i] += out.scheme_energy_bins[i];
    }
    gateway_rows.push_back(out.online_gateways);
    baseline_energy += out.day.baseline_user_energy + out.day.baseline_isp_energy;
    scheme_energy += out.day.user_energy + out.day.isp_energy;
    baseline_user += out.day.baseline_user_energy;
    scheme_user += out.day.user_energy;
    peak_gateways += out.day.peak_online_gateways;
    wakes += static_cast<double>(out.day.wake_events);
    report.executed_events += out.day.executed_events;
  }

  report.day_savings = baseline_energy > 0.0 ? 1.0 - scheme_energy / baseline_energy : 0.0;
  const double user_saved = baseline_user - scheme_user;
  const double total_saved = baseline_energy - scheme_energy;
  report.day_isp_share = total_saved > 0.0 ? (total_saved - user_saved) / total_saved : 0.0;
  const double runs_d = static_cast<double>(report.runs);
  report.peak_online_gateways = peak_gateways / runs_d;
  report.mean_wake_events = wakes / runs_d;

  report.savings_series.resize(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    report.savings_series[i] =
        baseline_bins[i] > 0.0 ? 1.0 - scheme_bins[i] / baseline_bins[i] : 0.0;
  }
  report.online_gateways_series = stats::elementwise_mean(gateway_rows);
}

}  // namespace insomnia::core
