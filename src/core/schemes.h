// The paper's eight evaluated schemes (§5.1 "Algorithms for comparison") as
// a closed enum, kept for figure-level code that enumerates exactly the
// paper's combinations. Everything here is a thin shim over the extensible
// string-keyed registry in core/scheme_registry.h — run_scheme(kind) and
// run_scheme(name) are bit-identical (pinned by tests/test_core_schemes.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "core/metrics.h"
#include "core/runtime.h"
#include "core/scenario.h"
#include "core/scheme_registry.h"
#include "topology/access_topology.h"
#include "trace/records.h"

namespace insomnia::core {

/// Every scheme/fabric combination the paper reports.
enum class SchemeKind {
  kNoSleep,             ///< baseline: everything always on
  kSoi,                 ///< Sleep-on-Idle, fixed wiring
  kSoiKSwitch,          ///< SoI + 12 4-switches
  kSoiFullSwitch,       ///< SoI + full switch (§5.2.3 comparison)
  kBh2KSwitch,          ///< BH2 (1 backup) + 4-switches — the headline scheme
  kBh2NoBackupKSwitch,  ///< BH2 without backup (Fig. 7/9)
  kBh2FullSwitch,       ///< BH2 + full switch (§5.2.3 comparison)
  kOptimal,             ///< centralized ILP + instantaneous full switching
};

/// Registry token of a paper scheme ("no-sleep", "soi", ..., "optimal").
std::string scheme_token(SchemeKind kind);

/// The registered spec behind a paper scheme.
const SchemeSpec& scheme_spec(SchemeKind kind);

/// Human-readable scheme name as used in the paper's figures.
std::string scheme_name(SchemeKind kind);

/// The HDF fabric each scheme assumes.
dslam::SwitchMode switch_mode_for(SchemeKind kind);

/// Runs one scheme over one day. The same `topology` and `flows` must be
/// passed to every scheme being compared (paired-run methodology); `seed`
/// feeds only the scheme's own randomness (BH2 choices, HDF wiring).
RunMetrics run_scheme(const ScenarioConfig& scenario, const topo::AccessTopology& topology,
                      const trace::FlowTrace& flows, SchemeKind kind, std::uint64_t seed);

/// Runs BH2 (backup count from scenario.bh2) over an explicit HDF fabric —
/// see run_scheme_with_fabric for the name-keyed general form.
RunMetrics run_bh2_with_fabric(const ScenarioConfig& scenario,
                               const topo::AccessTopology& topology,
                               const trace::FlowTrace& flows, dslam::SwitchMode mode,
                               int switch_size, std::uint64_t seed);

}  // namespace insomnia::core
