#include "core/scheme_registry.h"

#include <utility>

#include "core/bh2_policy.h"
#include "core/home_policy.h"
#include "core/multilevel_policy.h"
#include "core/optimal_policy.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/error.h"
#include "util/strings.h"

namespace insomnia::core {

namespace {

// Records one simulated day's event count. Deterministic values (event
// counts, not wall time), so the histogram folds identically across thread
// counts — test_obs_determinism pins that.
void record_day(const RunMetrics& metrics) {
#ifndef INSOMNIA_OBS_DISABLED
  static obs::Histogram& day_events = obs::histogram("day.events");
  day_events.record(static_cast<double>(metrics.executed_events));
#else
  (void)metrics;
#endif
}

}  // namespace

void SchemeRegistry::add(SchemeSpec spec) {
  util::require(!spec.name.empty(), "scheme name must not be empty");
  util::require(static_cast<bool>(spec.make_policy),
                "scheme \"" + spec.name + "\" needs a policy factory");
  util::require(index_.find(spec.name) == index_.end(),
                "scheme \"" + spec.name + "\" is already registered");
  index_.emplace(spec.name, specs_.size());
  specs_.push_back(std::move(spec));
}

bool SchemeRegistry::contains(const std::string& name) const {
  return index_.find(name) != index_.end();
}

const SchemeSpec& SchemeRegistry::find(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    throw util::InvalidArgument("unknown scheme \"" + name + "\"; valid schemes: " +
                                util::join(names(), ", "));
  }
  return specs_[it->second];
}

std::vector<std::string> SchemeRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const SchemeSpec& spec : specs_) out.push_back(spec.name);
  return out;
}

namespace {

template <typename P, typename... Args>
std::function<std::unique_ptr<Policy>(const ScenarioConfig&)> factory(Args... args) {
  return [args...](const ScenarioConfig&) -> std::unique_ptr<Policy> {
    return std::make_unique<P>(args...);
  };
}

SchemeRegistry built_ins() {
  SchemeRegistry registry;
  // The paper's eight §5.1 scheme/fabric combinations, in figure order.
  registry.add({"no-sleep", "No-sleep", "baseline: everything always on",
                dslam::SwitchMode::kFixed, false, factory<NoSleepPolicy>()});
  registry.add({"soi", "SoI", "Sleep-on-Idle, fixed DSLAM wiring",
                dslam::SwitchMode::kFixed, false, factory<SoiPolicy>()});
  registry.add({"soi-kswitch", "SoI + k-switch", "Sleep-on-Idle over 4-switches",
                dslam::SwitchMode::kKSwitch, false, factory<SoiPolicy>()});
  registry.add({"soi-fullswitch", "SoI + full-switch",
                "Sleep-on-Idle over a full switch (§5.2.3 comparison)",
                dslam::SwitchMode::kFullSwitch, false, factory<SoiPolicy>()});
  registry.add({"bh2-kswitch", "BH2 + k-switch",
                "Broadband Hitch-Hiking over 4-switches — the headline scheme",
                dslam::SwitchMode::kKSwitch, true,
                [](const ScenarioConfig& config) -> std::unique_ptr<Policy> {
                  return std::make_unique<Bh2Policy>(config.bh2.backup);
                }});
  registry.add({"bh2-nobackup-kswitch", "BH2 w/o backup + k-switch",
                "BH2 without backup associations (Fig. 7/9)",
                dslam::SwitchMode::kKSwitch, true, factory<Bh2Policy>(0)});
  registry.add({"bh2-fullswitch", "BH2 + full-switch",
                "BH2 over a full switch (§5.2.3 comparison)",
                dslam::SwitchMode::kFullSwitch, true,
                [](const ScenarioConfig& config) -> std::unique_ptr<Policy> {
                  return std::make_unique<Bh2Policy>(config.bh2.backup);
                }});
  registry.add({"optimal", "Optimal",
                "centralized ILP + instantaneous full switching (upper bound)",
                dslam::SwitchMode::kFullSwitch, false, factory<OptimalPolicy>()});

  // Beyond-paper built-ins: the extension path the registry exists for.
  registry.add({"bh2-jitter", "BH2 + k-switch (jittered thresholds)",
                "BH2 with per-terminal load thresholds scaled by U(0.75, 1.25)",
                dslam::SwitchMode::kKSwitch, true,
                [](const ScenarioConfig& config) -> std::unique_ptr<Policy> {
                  return std::make_unique<Bh2Policy>(config.bh2.backup,
                                                     /*threshold_jitter=*/0.25);
                }});
  registry.add({"multilevel-doze", "Multi-level doze",
                "shallow/deep doze states; deep wake-ups avoided via active neighbours",
                dslam::SwitchMode::kKSwitch, true, factory<MultiLevelDozePolicy>()});
  return registry;
}

}  // namespace

SchemeRegistry& scheme_registry() {
  static SchemeRegistry registry = built_ins();
  return registry;
}

const SchemeSpec& find_scheme(const std::string& name) { return scheme_registry().find(name); }

RunMetrics run_scheme(const ScenarioConfig& scenario, const topo::AccessTopology& topology,
                      const trace::FlowTrace& flows, const SchemeSpec& spec,
                      std::uint64_t seed) {
  OBS_SCOPE("day.run");
  ScenarioConfig configured = scenario;
  configured.dslam.mode = spec.switch_mode;
  sim::Random rng(seed);
  const std::unique_ptr<Policy> policy = spec.make_policy(configured);
  RunMetrics metrics = AccessRuntime(configured, topology, flows, *policy, rng).run();
  record_day(metrics);
  return metrics;
}

RunMetrics run_scheme(const ScenarioConfig& scenario, const topo::AccessTopology& topology,
                      const trace::FlowTrace& flows, const std::string& scheme,
                      std::uint64_t seed) {
  return run_scheme(scenario, topology, flows, find_scheme(scheme), seed);
}

RunMetrics run_scheme_with_fabric(const ScenarioConfig& scenario,
                                  const topo::AccessTopology& topology,
                                  const trace::FlowTrace& flows, const SchemeSpec& spec,
                                  dslam::SwitchMode mode, int switch_size,
                                  std::uint64_t seed) {
  OBS_SCOPE("day.run");
  ScenarioConfig configured = scenario;
  configured.dslam.mode = mode;
  configured.dslam.switch_size = switch_size;
  sim::Random rng(seed);
  const std::unique_ptr<Policy> policy = spec.make_policy(configured);
  RunMetrics metrics = AccessRuntime(configured, topology, flows, *policy, rng).run();
  record_day(metrics);
  return metrics;
}

}  // namespace insomnia::core
