// AccessRuntime drives one simulated day of one scheme: it owns the event
// clock, the fluid data plane, the per-gateway sleep state machines, the
// DSLAM + switching fabric, and the energy meters, and it replays the flow
// trace through a pluggable Policy. Policies pair with a DSLAM switch
// fabric in the string-keyed scheme registry (core/scheme_registry.h):
// the paper's eight §5.1 combinations are registered built-ins (no-sleep
// and SoI in core/home_policy.h, BH2 in core/bh2_policy.h, Optimal in
// core/optimal_policy.h), beyond-paper schemes (core/multilevel_policy.h,
// the jittered-threshold BH2 variant) sit next to them, and any new Policy
// implementation joins by registration — no enum or switch to edit.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/metrics.h"
#include "core/scenario.h"
#include "dslam/dslam.h"
#include "flow/fluid_network.h"
#include "power/energy_meter.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "topology/access_topology.h"
#include "trace/records.h"

namespace insomnia::core {

/// Gateway sleep lifecycle (user premises device + its DSLAM modem).
enum class GatewayState { kAsleep, kWaking, kActive };

class AccessRuntime;

/// A scheme's user-side behaviour. The runtime invokes the policy for every
/// routing decision and lifecycle event; the policy calls back into the
/// runtime to wake gateways, move traffic, and (for Optimal) force states.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Called once at t=0 before the replay starts.
  virtual void start(AccessRuntime&) {}

  /// Picks the gateway that will carry a new flow of `bytes` for `client`
  /// (requesting wake-ups as a side effect). Must return a valid gateway.
  virtual int route_flow(AccessRuntime& runtime, int client, double bytes) = 0;

  /// Notification that `gateway` finished waking and now serves traffic.
  virtual void on_gateway_active(AccessRuntime&, int /*gateway*/) {}

  /// Notification that a flow finished.
  virtual void on_flow_complete(AccessRuntime&, const flow::CompletedFlow&) {}

  /// False disables Sleep-on-Idle entirely (the no-sleep baseline).
  virtual bool sleep_on_idle() const { return true; }
};

/// One simulated day. Construct, then call run() exactly once — or, for the
/// online controller, construct with LiveMode and drive the incremental
/// begin_live / append_live_arrivals / step_live / finish_live sequence.
class AccessRuntime {
 public:
  AccessRuntime(const ScenarioConfig& scenario, const topo::AccessTopology& topology,
                const trace::FlowTrace& flows, Policy& policy, sim::Random rng);

  /// Incremental-replay mode (src/live/): the runtime owns a growing arrival
  /// buffer instead of borrowing a complete trace.
  struct LiveMode {
    /// With `gated` (virtual-time replay) the last buffered arrival is held
    /// back until its successor is appended or finish_live_input() promises
    /// there is none — the successor's FIFO rank is claimed while the head
    /// is processed, so this is what keeps event order bit-identical to an
    /// offline run() over the same records. Ungated (wall-clock mode) every
    /// buffered arrival dispatches immediately and late records are clamped
    /// to the current virtual time.
    bool gated = true;
  };
  AccessRuntime(const ScenarioConfig& scenario, const topo::AccessTopology& topology,
                Policy& policy, sim::Random rng, LiveMode mode);

  AccessRuntime(const AccessRuntime&) = delete;
  AccessRuntime& operator=(const AccessRuntime&) = delete;

  /// Replays the trace and returns the day's metrics.
  RunMetrics run();

  // --- incremental replay (LiveMode constructor only) ---------------------

  /// Mirrors run()'s preamble: warm start, policy start, first arrival armed.
  /// Call once, after appending any records already on hand.
  void begin_live();

  /// Appends `count` records to the arrival buffer. Gated mode enforces the
  /// trace contract (sorted times, non-negative bytes, valid client range);
  /// ungated mode additionally clamps stale times forward to the current
  /// virtual time, so late events are decided now rather than rejected.
  void append_live_arrivals(const trace::FlowRecord* records, std::size_t count);

  /// Promises no further append_live_arrivals calls; opens the gate for the
  /// final buffered arrival.
  void finish_live_input();

  enum class StepResult {
    kReachedTime,   ///< the clock advanced to `until`
    kNeedArrival,   ///< gated: paused before the last buffered arrival
  };

  /// Advances virtual time to `until` (monotone across calls). kNeedArrival
  /// asks the caller to append more records (or finish_live_input) and call
  /// again with the same `until`.
  StepResult step_live(double until);

  /// Assembles the day's metrics after the caller has stepped through the
  /// covered horizon plus drain. `covered_duration` is the virtual span the
  /// day actually covered (metrics normalise energy/series against it); an
  /// uninterrupted full-day live replay passes scenario().duration and gets
  /// metrics bit-identical to run().
  RunMetrics finish_live(double covered_duration);

  std::size_t arrivals_appended() const;
  /// Arrivals dispatched into the data plane so far (decision made).
  std::size_t arrivals_consumed() const { return cursor_; }

  // --- policy-facing API --------------------------------------------------

  sim::Simulator& simulator() { return simulator_; }
  flow::FluidNetwork& network() { return *network_; }
  const topo::AccessTopology& topology() const { return *topology_; }
  const ScenarioConfig& scenario() const { return *scenario_; }
  sim::Random& rng() { return rng_; }

  GatewayState gateway_state(int gateway) const;
  bool gateway_active(int gateway) const;

  /// Number of gateways that are awake (active or waking).
  int online_gateway_count() const;

  /// asleep -> waking; the gateway becomes active wake_time later. No-op
  /// unless asleep. Counts towards gateway_wake_events.
  void request_wake(int gateway);

  /// Instantaneous transitions (idealised Optimal only).
  void force_active(int gateway);
  void force_asleep(int gateway);

  /// Wireless rate between a client and a gateway (home vs neighbour).
  double wireless_rate(int client, int gateway) const;

  /// Gateway utilization over the BH2 load-estimation window.
  double gateway_load(int gateway) const;

  /// Live (unfinished) flows of one client.
  const std::vector<flow::FlowId>& live_flows(int client) const;

  /// Full-switch optimal repack of the DSLAM (Optimal only).
  void repack_dslam();

  /// Trace replay horizon (policies stop periodic work at this time).
  double duration() const { return scenario_->duration; }

  // Scheme-behaviour counters surfaced in RunMetrics.
  void count_bh2_move() { ++metrics_.bh2_moves; }
  void count_bh2_home_return() { ++metrics_.bh2_home_returns; }

 private:
  /// Completes a wake: starts serving, notifies the policy, arms SoI.
  void finish_wake(int gateway);

  /// Puts an active, idle gateway to sleep.
  void sleep_gateway(int gateway);

  /// (Re)schedules the SoI idle check for an active gateway.
  void arm_idle_check(int gateway);

  /// Fires when a gateway may have been idle long enough to sleep.
  void idle_check(int gateway);

  /// Pushes gateway/modem meter states and the online-gateway series.
  void sync_gateway_meters(int gateway, power::PowerState state);

  /// Re-reads the DSLAM card states into the card meter and series.
  void sync_card_meters();

  /// Claims the FIFO rank of the next trace arrival. The trace is already
  /// time-sorted, so arrivals replay as a sim::EventStream instead of
  /// churning through the event heap; the rank is taken exactly where the
  /// arrival event used to be scheduled, keeping event order identical. In
  /// live mode a rank is only claimed once the record exists; appending the
  /// record later claims it then (the gate keeps those two points the same
  /// instant in the event order).
  void arm_next_arrival();

  /// Processes the trace flow at `cursor_`.
  void process_arrival();

  /// Gate for run_until_gated: may the arrival at `cursor_` dispatch now?
  bool arrival_ready() const;

  /// Shared metrics-assembly tail of run() / finish_live().
  RunMetrics assemble_metrics();

  /// Adapts the trace cursor to sim::EventStream for the run loop.
  class ArrivalStream : public sim::EventStream {
   public:
    explicit ArrivalStream(AccessRuntime& runtime) : runtime_(&runtime) {}
    double next_time() const override;
    std::uint64_t next_rank() const override { return runtime_->arrival_rank_; }
    void fire() override { runtime_->process_arrival(); }
    bool ready() const override { return runtime_->arrival_ready(); }

   private:
    AccessRuntime* runtime_;
  };

  const ScenarioConfig* scenario_;
  const topo::AccessTopology* topology_;
  const trace::FlowTrace* flows_;
  Policy* policy_;
  sim::Random rng_;

  sim::Simulator simulator_;
  std::unique_ptr<flow::FluidNetwork> network_;
  dslam::Dslam dslam_;

  power::DeviceGroupMeter households_;
  power::DeviceGroupMeter modems_;
  power::DeviceGroupMeter cards_;

  std::vector<GatewayState> states_;
  std::vector<sim::EventId> wake_events_;
  std::vector<sim::EventId> idle_events_;
  std::vector<double> activation_time_;
  std::vector<std::vector<flow::FlowId>> client_live_flows_;

  stats::StepSeries online_gateways_;
  stats::StepSeries online_cards_;

  RunMetrics metrics_;
  std::size_t cursor_ = 0;
  std::uint64_t arrival_rank_ = 0;
  bool arrival_armed_ = false;
  bool ran_ = false;

  // Live-mode state. `live_flows_` backs `flows_` for the LiveMode
  // constructor (the delegating constructor binds the reference before the
  // vector is constructed — only its address is taken, and it is
  // default-constructed before any constructor body reads it).
  bool live_ = false;
  bool live_gated_ = false;
  bool live_started_ = false;
  bool live_input_done_ = false;
  double live_last_time_ = 0.0;
  trace::FlowTrace live_flows_;
};

}  // namespace insomnia::core
