// The two home-only schemes of §5.1: "No-sleep" (today's operation, the
// energy baseline) and "Sleep-on-Idle" (gateways sleep after the idle
// timeout; new traffic pays the wake-up penalty).
#pragma once

#include "core/runtime.h"

namespace insomnia::core {

/// Users connect only to their home gateways; gateways never sleep.
class NoSleepPolicy : public Policy {
 public:
  void start(AccessRuntime& runtime) override;
  int route_flow(AccessRuntime& runtime, int client, double bytes) override;
  bool sleep_on_idle() const override { return false; }
};

/// Users connect only to their home gateways; gateways sleep on idle and
/// are woken by the next arrival (wake-up takes ScenarioConfig::wake_time,
/// during which traffic stalls).
class SoiPolicy : public Policy {
 public:
  int route_flow(AccessRuntime& runtime, int client, double bytes) override;
};

}  // namespace insomnia::core
