// Runtime integration of Broadband Hitch-Hiking. Each terminal runs the
// distributed §3.1 algorithm every decision period (with a random offset to
// avoid synchronisation); new flows follow the current assignment while
// existing flows finish where they started. Returning home keeps traffic on
// the remote gateway until the home finishes waking (§5.1).
#pragma once

#include <vector>

#include "bh2/algorithm.h"
#include "core/runtime.h"

namespace insomnia::core {

/// BH2 user policy over the shared runtime. The gateway observer is backed
/// by the simulator's ground truth (equivalent to an ideal SN-counting
/// estimator; bh2::SnLoadEstimator shows the over-the-air version works).
class Bh2Policy : public Policy {
 public:
  /// `backup` overrides the scenario's bh2.backup (Fig. 7/9 compare 0 / 1).
  /// `threshold_jitter` > 0 scales each terminal's low/high load thresholds
  /// by an independent factor drawn uniformly from [1 - j, 1 + j] at start —
  /// the beyond-paper "bh2-jitter" scheme, which desynchronises herd
  /// reactions around a shared threshold. 0 (the paper's setting) draws
  /// nothing and keeps the historical RNG stream bit-identical.
  Bh2Policy(int backup, double threshold_jitter = 0.0);

  void start(AccessRuntime& runtime) override;
  int route_flow(AccessRuntime& runtime, int client, double bytes) override;
  void on_gateway_active(AccessRuntime& runtime, int gateway) override;

  /// Current gateway assignment of a client (tests/inspection).
  int assignment(int client) const { return assignment_.at(static_cast<std::size_t>(client)); }

 private:
  /// Observer over the runtime's ground truth.
  class RuntimeObserver : public bh2::GatewayObserver {
   public:
    explicit RuntimeObserver(AccessRuntime& runtime) : runtime_(&runtime) {}
    double load(int gateway) const override { return runtime_->gateway_load(gateway); }
    bool is_awake(int gateway) const override { return runtime_->gateway_active(gateway); }

   private:
    AccessRuntime* runtime_;
  };

  /// Periodic decision for one client; reschedules itself until the trace
  /// horizon.
  void decision_epoch(AccessRuntime& runtime, int client);

  /// Applies a §3.1 decision.
  void apply(AccessRuntime& runtime, int client, const bh2::Decision& decision);

  /// The thresholds this terminal decides with: the shared config, or its
  /// jittered copy when threshold_jitter > 0.
  const bh2::Bh2Config& config_for(int client) const {
    return client_config_.empty() ? config_
                                  : client_config_[static_cast<std::size_t>(client)];
  }

  AccessRuntime* runtime_ = nullptr;  ///< bound in start(); the periodic
                                      ///< decision closures capture only
                                      ///< {this, client} (12 bytes) so they
                                      ///< fit std::function's inline buffer
                                      ///< instead of heap-allocating once
                                      ///< per client per decision period
  bh2::Bh2Config config_;
  int backup_;
  double threshold_jitter_;
  std::vector<bh2::Bh2Config> client_config_;  ///< empty unless jittered
  std::vector<int> assignment_;      ///< gateway carrying new traffic
  std::vector<bool> pending_home_;   ///< waiting for home to finish waking
};

}  // namespace insomnia::core
