// CSV reporting of run metrics: the plumbing between RunMetrics and
// plotting tools. Used by the examples; exposed publicly so downstream
// users don't have to re-derive the binning conventions.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/metrics.h"

namespace insomnia::core {

/// Writes one run's day series as CSV: hour, user watts, ISP watts, online
/// gateways, online cards. One row per bin.
void write_run_csv(std::ostream& out, const RunMetrics& metrics, std::size_t bins,
                   const std::string& label = "");

/// Writes a paired comparison (scheme vs baseline) as CSV: hour, savings
/// fraction, scheme watts, baseline watts.
void write_savings_csv(std::ostream& out, const RunMetrics& run, const RunMetrics& baseline,
                       std::size_t bins, const std::string& label = "");

}  // namespace insomnia::core
