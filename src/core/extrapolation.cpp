#include "core/extrapolation.h"

#include "util/error.h"
#include "util/units.h"

namespace insomnia::core {

double world_access_watts(const WorldExtrapolationConfig& config) {
  util::require(config.dsl_subscribers >= 0.0, "subscriber count must be non-negative");
  return config.dsl_subscribers *
         (config.household_watts + config.isp_watts_per_subscriber);
}

double annual_savings_twh(const WorldExtrapolationConfig& config) {
  util::require(config.savings_fraction >= 0.0 && config.savings_fraction <= 1.0,
                "savings fraction must be in [0,1]");
  return util::watt_years_to_twh(world_access_watts(config) * config.savings_fraction);
}

double equivalent_nuclear_plants(const WorldExtrapolationConfig& config,
                                 double twh_per_plant_year) {
  util::require(twh_per_plant_year > 0.0, "plant output must be positive");
  return annual_savings_twh(config) / twh_per_plant_year;
}

}  // namespace insomnia::core
