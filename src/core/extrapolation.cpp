#include "core/extrapolation.h"

#include "util/error.h"
#include "util/units.h"

namespace insomnia::core {

void validate(const WorldExtrapolationConfig& config) {
  util::require(config.dsl_subscribers > 0.0, "subscriber count must be positive");
  util::require(config.household_watts > 0.0, "household draw must be positive");
  util::require(config.isp_watts_per_subscriber > 0.0,
                "per-subscriber ISP draw must be positive");
  util::require(config.savings_fraction >= 0.0 && config.savings_fraction <= 1.0,
                "savings fraction must be in [0,1]");
}

double world_access_watts(const WorldExtrapolationConfig& config) {
  validate(config);
  return config.dsl_subscribers *
         (config.household_watts + config.isp_watts_per_subscriber);
}

double annual_savings_twh(const WorldExtrapolationConfig& config) {
  validate(config);
  return util::watt_years_to_twh(world_access_watts(config) * config.savings_fraction);
}

SavingsSplitTwh annual_savings_split_twh(const WorldExtrapolationConfig& config,
                                         double isp_share) {
  util::require(isp_share >= 0.0 && isp_share <= 1.0, "ISP share must be in [0,1]");
  const double total = annual_savings_twh(config);
  return {total * (1.0 - isp_share), total * isp_share};
}

double equivalent_nuclear_plants(const WorldExtrapolationConfig& config,
                                 double twh_per_plant_year) {
  util::require(twh_per_plant_year > 0.0, "plant output must be positive");
  return annual_savings_twh(config) / twh_per_plant_year;
}

}  // namespace insomnia::core
