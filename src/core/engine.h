// The unified experiment-facing entry point: a declarative RunSpec in, a
// structured RunReport out. One Engine call replaces the scenario-resolve /
// topology / trace / paired-day / aggregate boilerplate every driver used
// to hand-roll: it resolves a scenario (preset name or inline config),
// builds the shared topology, replays `runs` paired days (no-sleep baseline
// + the named scheme on the same trace), shards them over the parallel
// sweep engine, and folds the outcomes deterministically (bit-identical for
// any thread count). RunReport serializes to JSON via util/json_writer for
// machine consumers (--json in every driver, CI checks, notebooks).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/scheme_registry.h"

namespace insomnia::core {

/// Declarative description of one engine run.
struct RunSpec {
  /// Scenario preset name (core/scenario_presets.h); empty selects the
  /// paper default unless `scenario` is set. Unknown names throw
  /// util::InvalidArgument listing the valid presets.
  std::string preset;
  /// Inline scenario; mutually exclusive with a non-empty `preset`.
  std::optional<ScenarioConfig> scenario;
  /// Path of a recorded flow trace (trace/trace_io.h) replayed in every
  /// run; empty generates a fresh synthetic day per run (§5.2 methodology).
  std::string trace_file;
  /// Registered scheme name (core/scheme_registry.h). Unknown names throw
  /// util::InvalidArgument listing the valid schemes.
  std::string scheme = "bh2-kswitch";
  std::uint64_t seed = 42;
  int runs = 1;      ///< paired days (§5.2 uses 10, averaged)
  int threads = 0;   ///< 0 = auto (INSOMNIA_THREADS / hardware concurrency)
  std::size_t bins = 24;  ///< day-series resolution
  double peak_start = 11.0 * 3600.0;  ///< §5.2.5 peak window
  double peak_end = 19.0 * 3600.0;
};

/// One paired simulated day (baseline + scheme on the same trace).
struct EngineDay {
  double baseline_user_energy = 0.0;  ///< J
  double baseline_isp_energy = 0.0;
  double user_energy = 0.0;
  double isp_energy = 0.0;
  double savings = 0.0;    ///< fraction vs baseline, whole day
  double isp_share = 0.0;  ///< ISP share of the savings
  double peak_online_gateways = 0.0;
  double peak_online_cards = 0.0;
  long wake_events = 0;
  long bh2_moves = 0;
  long bh2_home_returns = 0;
  std::uint64_t executed_events = 0;  ///< scheme run only
  std::uint64_t flows = 0;            ///< trace flows replayed
};

/// Structured result of Engine::run.
struct RunReport {
  // Resolved spec echo.
  std::string scheme;
  std::string scheme_display;
  std::string preset;      ///< preset name, or "(inline)" for inline configs
  std::string trace_file;  ///< empty for synthetic traces
  std::uint64_t seed = 0;
  int runs = 0;
  std::size_t bins = 0;
  double peak_start = 0.0;
  double peak_end = 0.0;
  int clients = 0;
  int gateways = 0;

  std::vector<EngineDay> days;  ///< one entry per run, in run order

  // Aggregates across runs (energy-weighted, matching core/experiments).
  double day_savings = 0.0;
  double day_isp_share = 0.0;
  double peak_online_gateways = 0.0;  ///< mean across runs
  double mean_wake_events = 0.0;
  std::uint64_t executed_events = 0;  ///< total, scheme runs

  // Day series (one value per bin).
  std::vector<double> savings_series;          ///< energy-weighted across runs
  std::vector<double> online_gateways_series;  ///< mean count

  /// Stable-key-order, locale-independent JSON document. With
  /// `include_telemetry` a "telemetry" block (counters, phase wall times,
  /// RSS — see docs/TELEMETRY.md) is appended; it contains run-dependent
  /// wall-clock values, so byte-compare consumers keep the default.
  std::string to_json(bool include_telemetry = false) const;
};

/// The facade. Stateless apart from the registry it resolves schemes in.
class Engine {
 public:
  /// Uses the process-wide scheme registry.
  Engine();
  /// Resolves schemes in a caller-supplied registry (tests, embeddings).
  explicit Engine(const SchemeRegistry& registry);

  /// Runs the spec. Seeding matches core/experiments' conventions — the
  /// topology comes from substream (seed, 0, 7), run r's trace from
  /// (seed, r, 1), its baseline from (seed, r, 2) and its scheme day from
  /// (seed, r, 100) — so a single-scheme Engine run reproduces the main
  /// experiment's per-run days bit for bit (pinned by
  /// tests/test_core_engine.cpp).
  RunReport run(const RunSpec& spec) const;

 private:
  const SchemeRegistry* registry_;
};

}  // namespace insomnia::core
