#include "core/scenario_presets.h"

#include <cstdlib>

#include "util/error.h"
#include "util/strings.h"

namespace insomnia::core {

namespace {

ScenarioConfig paper_default() { return ScenarioConfig{}; }

/// A dense urban block on VDSL2-style short loops: more households per
/// neighbourhood, a high-port-count DSLAM (8 cards x 9 ports), faster
/// backhaul, and a crowded wireless overlap graph. Stresses aggregation:
/// many candidate hubs, high contention for them.
ScenarioConfig dense_urban() {
  ScenarioConfig s;
  s.client_count = 512;
  s.gateway_count = 72;
  s.degrees.node_count = 72;
  s.degrees.mean_degree = 8.0;
  s.traffic.client_count = 512;
  s.backhaul_bps = util::mbps(25.0);  // VDSL2-class downstream average
  s.home_wireless_bps = util::mbps(24.0);
  s.remote_wireless_bps = util::mbps(12.0);
  s.dslam.line_cards = 8;  // 72 ports; switch_size 4 divides the card count
  s.dslam.ports_per_card = 9;
  return s;
}

/// A sparse rural stretch: few, far-apart gateways on long attenuated loops
/// (slow backhaul, 2-minute resyncs) with a barely-connected overlap graph.
/// The worst case for BH2's guest-hosting idea — little overlap to exploit.
ScenarioConfig sparse_rural() {
  ScenarioConfig s;
  s.client_count = 96;
  s.gateway_count = 24;
  s.degrees.node_count = 24;
  s.degrees.mean_degree = 2.2;
  s.traffic.client_count = 96;
  s.backhaul_bps = util::mbps(2.0);
  s.home_wireless_bps = util::mbps(6.0);
  s.remote_wireless_bps = util::mbps(3.0);
  s.wake_time = 120.0;  // long-loop ADSL resync
  s.dslam.line_cards = 2;
  s.dslam.ports_per_card = 12;
  s.dslam.switch_size = 2;
  return s;
}

/// A developing-world deployment in the spirit of "Designing Low Cost and
/// Energy Efficient Access Network for the Developing World" (PAPERS.md):
/// few gateways shared by many subscribers (high contention ratio), slow
/// long-haul backhaul, modest wireless rates, long resyncs, and a small
/// low-cost DSLAM. Sleep matters most here — powering the plant dominates
/// operating cost — but there is little overlap capacity to aggregate onto.
ScenarioConfig developing_world() {
  ScenarioConfig s;
  s.client_count = 160;
  s.gateway_count = 16;
  s.degrees.node_count = 16;
  s.degrees.mean_degree = 3.5;  // clustered village blocks, not a dense mesh
  s.traffic.client_count = 160;
  s.backhaul_bps = util::mbps(1.0);
  s.home_wireless_bps = util::mbps(4.0);
  s.remote_wireless_bps = util::mbps(2.0);
  s.wake_time = 90.0;
  s.dslam.line_cards = 2;
  s.dslam.ports_per_card = 8;
  s.dslam.switch_size = 2;
  return s;
}

/// The §5.3 testbed regime on the simulator: every gateway starts powered
/// (as a mid-afternoon deployment would) and has to be put to sleep, instead
/// of the §5.2 cold start where sleep is the initial state. Isolates how
/// much of the savings depends on the optimistic all-asleep start.
ScenarioConfig warm_start_testbed() {
  ScenarioConfig s;
  s.start_awake = true;
  return s;
}

}  // namespace

const std::vector<ScenarioPreset>& scenario_presets() {
  static const std::vector<ScenarioPreset> presets{
      {"paper-default", "the §5.1 ADSL neighbourhood (272 clients, 40 gateways)",
       paper_default()},
      {"dense-urban", "VDSL2-style dense block (512 clients, 72 gateways, 8x9 DSLAM)",
       dense_urban()},
      {"sparse-rural", "sparse low-degree stretch (96 clients, 24 gateways, slow loops)",
       sparse_rural()},
      {"developing-world",
       "low-cost shared-access deployment (160 clients, 16 gateways, 1 Mbps backhaul)",
       developing_world()},
      {"warm-start-testbed", "§5.3 regime: day starts with every gateway powered",
       warm_start_testbed()},
  };
  return presets;
}

const ScenarioPreset& find_scenario_preset(const std::string& name) {
  std::vector<std::string> names;
  for (const ScenarioPreset& preset : scenario_presets()) {
    if (preset.name == name) return preset;
    names.push_back(preset.name);
  }
  throw util::InvalidArgument("unknown scenario preset \"" + name + "\"; valid presets: " +
                              util::join(names, ", "));
}

const ScenarioPreset& scenario_preset_from_env() {
  const char* env = std::getenv("INSOMNIA_PRESET");
  return find_scenario_preset(env == nullptr ? "paper-default" : env);
}

}  // namespace insomnia::core
