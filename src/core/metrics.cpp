#include "core/metrics.h"

#include <cmath>

#include "util/error.h"

namespace insomnia::core {

namespace {
double power_integral(const RunMetrics& m, double t0, double t1) {
  return m.user_power.integral(t0, t1) + m.isp_power.integral(t0, t1);
}
}  // namespace

double savings_fraction(const RunMetrics& run, const RunMetrics& baseline, double t0,
                        double t1) {
  const double base = power_integral(baseline, t0, t1);
  util::require(base > 0.0, "baseline energy must be positive");
  return 1.0 - power_integral(run, t0, t1) / base;
}

std::vector<double> binned_savings(const RunMetrics& run, const RunMetrics& baseline,
                                   std::size_t bins) {
  util::require(bins > 0, "binned_savings needs at least one bin");
  util::require(run.duration == baseline.duration, "runs must cover the same day");
  std::vector<double> out(bins);
  const double width = run.duration / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    const double lo = width * static_cast<double>(i);
    const double hi = (i + 1 == bins) ? run.duration : lo + width;
    out[i] = savings_fraction(run, baseline, lo, hi);
  }
  return out;
}

std::optional<double> isp_share_of_savings(const RunMetrics& run, const RunMetrics& baseline,
                                           double t0, double t1) {
  const double user_saved =
      baseline.user_power.integral(t0, t1) - run.user_power.integral(t0, t1);
  const double isp_saved = baseline.isp_power.integral(t0, t1) - run.isp_power.integral(t0, t1);
  const double total = user_saved + isp_saved;
  const double base = power_integral(baseline, t0, t1);
  if (base <= 0.0 || total <= base * 1e-6) return std::nullopt;
  return isp_saved / total;
}

std::vector<double> completion_time_increase(const RunMetrics& run,
                                             const RunMetrics& baseline) {
  util::require(run.completion_time.size() == baseline.completion_time.size(),
                "runs must replay the same trace");
  std::vector<double> increase;
  increase.reserve(run.completion_time.size());
  for (std::size_t i = 0; i < run.completion_time.size(); ++i) {
    const double a = run.completion_time[i];
    const double b = baseline.completion_time[i];
    if (std::isnan(a) || std::isnan(b) || b <= 0.0) continue;
    increase.push_back(a / b - 1.0);
  }
  return increase;
}

std::vector<double> online_time_variation(const RunMetrics& run, const RunMetrics& baseline) {
  util::require(run.gateway_online_time.size() == baseline.gateway_online_time.size(),
                "runs must share the gateway population");
  std::vector<double> variation;
  variation.reserve(run.gateway_online_time.size());
  for (std::size_t g = 0; g < run.gateway_online_time.size(); ++g) {
    const double base = baseline.gateway_online_time[g];
    const double now = run.gateway_online_time[g];
    if (base <= 0.0) {
      variation.push_back(now > 0.0 ? 1.0 : 0.0);
    } else {
      variation.push_back(now / base - 1.0);
    }
  }
  return variation;
}

}  // namespace insomnia::core
