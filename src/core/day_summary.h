// The per-day summarization and run-order fold behind Engine::run, factored
// out so the online LiveController (src/live/) can assemble the exact same
// RunReport from days it simulated incrementally. Keeping one copy is what
// makes the live replay-equivalence gate a byte-compare: both paths derive
// savings, ISP share, peak windows, and the binned series from identical
// arithmetic in identical order.
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/metrics.h"

namespace insomnia::core {

/// Everything one paired day (no-sleep baseline + scheme on the same trace)
/// contributes to a RunReport.
struct PairedDaySummary {
  EngineDay day;
  std::vector<double> baseline_energy_bins;  ///< total (user+ISP) J per bin
  std::vector<double> scheme_energy_bins;
  std::vector<double> online_gateways;  ///< binned means
};

/// Summarizes one paired day. `flows` is the number of trace records
/// replayed; the peak window and bin count come from the run spec.
PairedDaySummary summarize_paired_day(const RunMetrics& baseline,
                                      const RunMetrics& metrics, std::uint64_t flows,
                                      std::size_t bins, double peak_start,
                                      double peak_end);

/// Folds day summaries into `report` strictly in day order — independent of
/// which thread computed each day. Reads report.runs and report.bins (the
/// caller sets the spec-echo fields first) and fills days, the aggregates,
/// and both day series.
void fold_paired_days(const std::vector<PairedDaySummary>& days, RunReport& report);

}  // namespace insomnia::core
