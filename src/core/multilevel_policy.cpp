#include "core/multilevel_policy.h"

#include "util/error.h"

namespace insomnia::core {

MultiLevelDozePolicy::MultiLevelDozePolicy(MultiLevelDozeConfig config) : config_(config) {
  util::require(config.deep_after > 0.0, "deep_after must be positive");
  util::require(config.scan_period > 0.0, "scan_period must be positive");
  util::require(config.host_load_cap > 0.0, "host_load_cap must be positive");
}

void MultiLevelDozePolicy::start(AccessRuntime& runtime) {
  // A cold §5.2 start means every gateway has been dozing "since before the
  // day began": onset 0 makes them deep once deep_after elapses. A warm
  // start observes everyone awake.
  sleep_since_.assign(static_cast<std::size_t>(runtime.scenario().gateway_count),
                      runtime.scenario().start_awake ? -1.0 : 0.0);
  runtime.simulator().at(config_.scan_period, [this, &runtime] { scan(runtime); });
}

void MultiLevelDozePolicy::scan(AccessRuntime& runtime) {
  for (int g = 0; g < static_cast<int>(sleep_since_.size()); ++g) {
    auto& since = sleep_since_[static_cast<std::size_t>(g)];
    if (runtime.gateway_state(g) == GatewayState::kAsleep) {
      if (since < 0.0) since = runtime.simulator().now();
    } else {
      since = -1.0;
    }
  }
  if (runtime.simulator().now() < runtime.duration()) {
    runtime.simulator().after(config_.scan_period, [this, &runtime] { scan(runtime); });
  }
}

bool MultiLevelDozePolicy::deep_asleep(AccessRuntime& runtime, int gateway) const {
  if (runtime.gateway_state(gateway) != GatewayState::kAsleep) return false;
  const double since = sleep_since_[static_cast<std::size_t>(gateway)];
  return since >= 0.0 && runtime.simulator().now() - since >= config_.deep_after;
}

void MultiLevelDozePolicy::on_gateway_active(AccessRuntime&, int gateway) {
  // A warm start (start_awake) activates gateways before start() runs;
  // those notifications carry no doze history to clear.
  if (sleep_since_.empty()) return;
  sleep_since_[static_cast<std::size_t>(gateway)] = -1.0;
}

int MultiLevelDozePolicy::route_flow(AccessRuntime& runtime, int client, double /*bytes*/) {
  const int home = runtime.topology().home_gateway[static_cast<std::size_t>(client)];
  if (runtime.gateway_state(home) != GatewayState::kAsleep) return home;

  if (!deep_asleep(runtime, home)) {
    // Shallow doze: the cheap wake-up, exactly SoI's behaviour.
    runtime.request_wake(home);
    return home;
  }

  // Deep doze: prefer an already active neighbour with headroom over paying
  // the expensive resynchronisation. First minimum wins (deterministic).
  const auto& reachable = runtime.topology().client_gateways[static_cast<std::size_t>(client)];
  int host = -1;
  double host_load = 0.0;
  for (const int g : reachable) {
    if (!runtime.gateway_active(g)) continue;
    const double load = runtime.gateway_load(g);
    if (load >= config_.host_load_cap) continue;
    if (host < 0 || load < host_load) {
      host = g;
      host_load = load;
    }
  }
  if (host >= 0) return host;

  // No warm host: the deep wake-up is unavoidable.
  runtime.request_wake(home);
  return home;
}

}  // namespace insomnia::core
