#include "core/schemes.h"

#include "util/error.h"

namespace insomnia::core {

std::string scheme_token(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNoSleep:
      return "no-sleep";
    case SchemeKind::kSoi:
      return "soi";
    case SchemeKind::kSoiKSwitch:
      return "soi-kswitch";
    case SchemeKind::kSoiFullSwitch:
      return "soi-fullswitch";
    case SchemeKind::kBh2KSwitch:
      return "bh2-kswitch";
    case SchemeKind::kBh2NoBackupKSwitch:
      return "bh2-nobackup-kswitch";
    case SchemeKind::kBh2FullSwitch:
      return "bh2-fullswitch";
    case SchemeKind::kOptimal:
      return "optimal";
  }
  throw util::InvalidArgument("unknown scheme");
}

const SchemeSpec& scheme_spec(SchemeKind kind) { return find_scheme(scheme_token(kind)); }

std::string scheme_name(SchemeKind kind) { return scheme_spec(kind).display; }

dslam::SwitchMode switch_mode_for(SchemeKind kind) { return scheme_spec(kind).switch_mode; }

RunMetrics run_scheme(const ScenarioConfig& scenario, const topo::AccessTopology& topology,
                      const trace::FlowTrace& flows, SchemeKind kind, std::uint64_t seed) {
  return run_scheme(scenario, topology, flows, scheme_spec(kind), seed);
}

RunMetrics run_bh2_with_fabric(const ScenarioConfig& scenario,
                               const topo::AccessTopology& topology,
                               const trace::FlowTrace& flows, dslam::SwitchMode mode,
                               int switch_size, std::uint64_t seed) {
  return run_scheme_with_fabric(scenario, topology, flows, find_scheme("bh2-kswitch"), mode,
                                switch_size, seed);
}

}  // namespace insomnia::core
