#include "core/schemes.h"

#include "core/bh2_policy.h"
#include "core/home_policy.h"
#include "core/optimal_policy.h"
#include "util/error.h"

namespace insomnia::core {

std::string scheme_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNoSleep:
      return "No-sleep";
    case SchemeKind::kSoi:
      return "SoI";
    case SchemeKind::kSoiKSwitch:
      return "SoI + k-switch";
    case SchemeKind::kSoiFullSwitch:
      return "SoI + full-switch";
    case SchemeKind::kBh2KSwitch:
      return "BH2 + k-switch";
    case SchemeKind::kBh2NoBackupKSwitch:
      return "BH2 w/o backup + k-switch";
    case SchemeKind::kBh2FullSwitch:
      return "BH2 + full-switch";
    case SchemeKind::kOptimal:
      return "Optimal";
  }
  throw util::InvalidArgument("unknown scheme");
}

dslam::SwitchMode switch_mode_for(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNoSleep:
    case SchemeKind::kSoi:
      return dslam::SwitchMode::kFixed;
    case SchemeKind::kSoiKSwitch:
    case SchemeKind::kBh2KSwitch:
    case SchemeKind::kBh2NoBackupKSwitch:
      return dslam::SwitchMode::kKSwitch;
    case SchemeKind::kSoiFullSwitch:
    case SchemeKind::kBh2FullSwitch:
    case SchemeKind::kOptimal:
      return dslam::SwitchMode::kFullSwitch;
  }
  throw util::InvalidArgument("unknown scheme");
}

RunMetrics run_bh2_with_fabric(const ScenarioConfig& scenario,
                               const topo::AccessTopology& topology,
                               const trace::FlowTrace& flows, dslam::SwitchMode mode,
                               int switch_size, std::uint64_t seed) {
  ScenarioConfig configured = scenario;
  configured.dslam.mode = mode;
  configured.dslam.switch_size = switch_size;
  sim::Random rng(seed);
  Bh2Policy policy(configured.bh2.backup);
  return AccessRuntime(configured, topology, flows, policy, rng).run();
}

RunMetrics run_scheme(const ScenarioConfig& scenario, const topo::AccessTopology& topology,
                      const trace::FlowTrace& flows, SchemeKind kind, std::uint64_t seed) {
  ScenarioConfig configured = scenario;
  configured.dslam.mode = switch_mode_for(kind);

  sim::Random rng(seed);
  switch (kind) {
    case SchemeKind::kNoSleep: {
      NoSleepPolicy policy;
      return AccessRuntime(configured, topology, flows, policy, rng).run();
    }
    case SchemeKind::kSoi:
    case SchemeKind::kSoiKSwitch:
    case SchemeKind::kSoiFullSwitch: {
      SoiPolicy policy;
      return AccessRuntime(configured, topology, flows, policy, rng).run();
    }
    case SchemeKind::kBh2KSwitch:
    case SchemeKind::kBh2FullSwitch: {
      Bh2Policy policy(configured.bh2.backup);
      return AccessRuntime(configured, topology, flows, policy, rng).run();
    }
    case SchemeKind::kBh2NoBackupKSwitch: {
      Bh2Policy policy(0);
      return AccessRuntime(configured, topology, flows, policy, rng).run();
    }
    case SchemeKind::kOptimal: {
      OptimalPolicy policy;
      return AccessRuntime(configured, topology, flows, policy, rng).run();
    }
  }
  throw util::InvalidArgument("unknown scheme");
}

}  // namespace insomnia::core
