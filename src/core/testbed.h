// Emulation of the §5.3 live deployment (Fig. 12): 9 gateways on 3 Mbps
// ADSL lines across three floors, one BH2 terminal per gateway, each
// terminal replaying the aggregate traffic of one traced AP, clients limited
// to 3 gateways in range, and the 15:00-15:30 peak window. Compares BH2
// (without backup, as deployed) against SoI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.h"

namespace insomnia::core {

/// Testbed shape; defaults follow §5.3.
struct TestbedConfig {
  int gateway_count = 9;           ///< the 9 "home" gateways of Fig. 11
  int max_gateways_in_range = 3;   ///< implementation limit of the deployment
  double backhaul_bps = 3e6;       ///< commercial 3 Mbps ADSL subscriptions
  double window_start = 15.0 * 3600.0;
  double window_end = 15.5 * 3600.0;
  int runs = 10;
  std::uint64_t seed = 7;
  std::size_t bins = 30;           ///< one sample per minute
  ScenarioConfig base;             ///< trace model and timing parameters
  /// Registered scheme compared against SoI (the deployment ran BH2
  /// without backup). Any core/scheme_registry.h name works.
  std::string scheme = "bh2-nobackup-kswitch";
};

/// Result: per-minute mean online APs for both schemes, plus averages.
/// The bh2_* fields hold the configured `scheme` (BH2 w/o backup unless
/// overridden).
struct TestbedResult {
  std::vector<double> soi_online;  ///< per bin
  std::vector<double> bh2_online;
  double soi_mean_online = 0.0;
  double bh2_mean_online = 0.0;
  double soi_mean_sleeping = 0.0;
  double bh2_mean_sleeping = 0.0;
};

/// Runs the emulation. Each run draws a fresh day of traffic, aggregates
/// the traced clients per AP onto the 9 replay terminals, cuts the
/// half-hour window, and replays it under SoI and BH2 (no backup) starting
/// from a warm (all-on) state.
TestbedResult run_testbed_emulation(const TestbedConfig& config);

}  // namespace insomnia::core
