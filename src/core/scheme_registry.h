// String-keyed scheme registry: the extensible successor of the closed
// SchemeKind enum. A SchemeSpec bundles everything one sleep scheme needs —
// a Policy factory, the DSLAM switch fabric it assumes, and display
// metadata — so adding a scheme is a registration, not a refactor of every
// driver. The paper's eight §5.1 combinations are pre-registered built-ins;
// two beyond-paper schemes (threshold-jittered BH2, multi-level doze) show
// the extension path, and scripts/drivers select any of them by name via
// --scheme/--list-schemes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/metrics.h"
#include "core/runtime.h"
#include "core/scenario.h"
#include "dslam/dslam.h"
#include "topology/access_topology.h"
#include "trace/records.h"

namespace insomnia::core {

/// Everything the engine needs to run one registered scheme.
struct SchemeSpec {
  /// Selection token (kebab-case; what --scheme and RunSpec carry).
  std::string name;
  /// Human-readable name as used in the paper's figures / banners.
  std::string display;
  /// One-line description for --list-schemes.
  std::string summary;
  /// The HDF fabric the scheme assumes (applied to the scenario's DSLAM).
  dslam::SwitchMode switch_mode = dslam::SwitchMode::kFixed;
  /// Fig. 9b pairing: compare per-gateway online time against the same-run
  /// SoI reference (the BH2-family fairness convention).
  bool fairness_vs_soi = false;
  /// Builds the scheme's user-side policy. Called once per simulated day
  /// with the fully configured scenario (fabric already applied).
  std::function<std::unique_ptr<Policy>(const ScenarioConfig&)> make_policy;
};

/// An ordered, name-indexed collection of SchemeSpecs. Lookups are O(1);
/// iteration follows registration order (stable --list-schemes output).
/// Registration is not thread-safe; register before spawning workers.
class SchemeRegistry {
 public:
  SchemeRegistry() = default;

  /// Registers a scheme. Throws util::InvalidArgument on an empty name, a
  /// missing factory, or a duplicate name.
  void add(SchemeSpec spec);

  bool contains(const std::string& name) const;

  /// Looks a scheme up by name; throws util::InvalidArgument listing the
  /// valid names when `name` is unknown (a CLI typo must say what would
  /// have worked).
  const SchemeSpec& find(const std::string& name) const;

  /// All registered schemes in registration order.
  const std::vector<SchemeSpec>& specs() const { return specs_; }

  /// Registered names in registration order.
  std::vector<std::string> names() const;

 private:
  std::vector<SchemeSpec> specs_;
  std::unordered_map<std::string, std::size_t> index_;
};

/// The process-wide registry, pre-loaded with the paper's eight schemes
/// (names: no-sleep, soi, soi-kswitch, soi-fullswitch, bh2-kswitch,
/// bh2-nobackup-kswitch, bh2-fullswitch, optimal) and the beyond-paper
/// built-ins (bh2-jitter, multilevel-doze).
SchemeRegistry& scheme_registry();

/// scheme_registry().find(name).
const SchemeSpec& find_scheme(const std::string& name);

/// Runs one registered scheme over one day: applies the spec's switch
/// fabric to the scenario, builds the policy, replays the trace. The same
/// `topology` and `flows` must be passed to every scheme being compared
/// (paired-run methodology); `seed` feeds only the scheme's own randomness.
/// Bit-identical to the historical SchemeKind switch for the paper's eight
/// schemes (pinned by tests/test_core_schemes.cpp golden shims).
RunMetrics run_scheme(const ScenarioConfig& scenario, const topo::AccessTopology& topology,
                      const trace::FlowTrace& flows, const SchemeSpec& spec,
                      std::uint64_t seed);

/// Name-keyed convenience over the global registry.
RunMetrics run_scheme(const ScenarioConfig& scenario, const topo::AccessTopology& topology,
                      const trace::FlowTrace& flows, const std::string& scheme,
                      std::uint64_t seed);

/// Runs a scheme's policy over an explicit HDF fabric — the switch-size
/// ablation's entry point. `switch_size` is only read in kKSwitch mode and
/// must divide the card count.
RunMetrics run_scheme_with_fabric(const ScenarioConfig& scenario,
                                  const topo::AccessTopology& topology,
                                  const trace::FlowTrace& flows, const SchemeSpec& spec,
                                  dslam::SwitchMode mode, int switch_size,
                                  std::uint64_t seed);

}  // namespace insomnia::core
