#include "core/bh2_policy.h"

#include "util/error.h"

namespace insomnia::core {

Bh2Policy::Bh2Policy(int backup, double threshold_jitter)
    : backup_(backup), threshold_jitter_(threshold_jitter) {
  util::require(backup >= 0, "backup count must be non-negative");
  util::require(threshold_jitter >= 0.0 && threshold_jitter < 1.0,
                "threshold jitter must be in [0, 1)");
}

void Bh2Policy::start(AccessRuntime& runtime) {
  runtime_ = &runtime;
  config_ = runtime.scenario().bh2;
  config_.backup = backup_;
  const int clients = runtime.scenario().client_count;
  assignment_.resize(static_cast<std::size_t>(clients));
  pending_home_.assign(static_cast<std::size_t>(clients), false);
  if (threshold_jitter_ > 0.0) {
    client_config_.assign(static_cast<std::size_t>(clients), config_);
  }
  for (int c = 0; c < clients; ++c) {
    assignment_[static_cast<std::size_t>(c)] =
        runtime.topology().home_gateway[static_cast<std::size_t>(c)];
    // Random offset desynchronises the terminals (§3.1).
    const double offset = runtime.rng().uniform(0.0, config_.decision_period);
    runtime.simulator().at(offset, [this, c] { decision_epoch(*runtime_, c); });
    if (threshold_jitter_ > 0.0) {
      // One factor scales both thresholds, preserving the hysteresis band.
      const double factor =
          runtime.rng().uniform(1.0 - threshold_jitter_, 1.0 + threshold_jitter_);
      auto& mine = client_config_[static_cast<std::size_t>(c)];
      mine.low_threshold *= factor;
      mine.high_threshold *= factor;
    }
  }
}

void Bh2Policy::decision_epoch(AccessRuntime& runtime, int client) {
  const int home = runtime.topology().home_gateway[static_cast<std::size_t>(client)];
  auto& current = assignment_[static_cast<std::size_t>(client)];
  RuntimeObserver observer(runtime);

  if (pending_home_[static_cast<std::size_t>(client)]) {
    // Waiting for the home gateway to finish waking; traffic keeps flowing
    // through the current remote until then (§5.1).
    if (runtime.gateway_active(home)) {
      current = home;
      pending_home_[static_cast<std::size_t>(client)] = false;
    }
  } else {
    const auto& reachable = runtime.topology().client_gateways[static_cast<std::size_t>(client)];
    const double own_share = runtime.network().client_throughput_at(client, current) /
                             runtime.scenario().backhaul_bps;
    const bh2::Decision decision = bh2::decide(home, reachable, current, observer,
                                               config_for(client), runtime.rng(), own_share);
    apply(runtime, client, decision);
  }

  if (runtime.simulator().now() < runtime.duration()) {
    runtime.simulator().after(config_.decision_period,
                              [this, client] { decision_epoch(*runtime_, client); });
  }
}

void Bh2Policy::apply(AccessRuntime& runtime, int client, const bh2::Decision& decision) {
  const int home = runtime.topology().home_gateway[static_cast<std::size_t>(client)];
  auto& current = assignment_[static_cast<std::size_t>(client)];
  switch (decision.action) {
    case bh2::Action::kStay:
      break;
    case bh2::Action::kMoveTo:
      if (decision.target != current) {
        current = decision.target;
        runtime.count_bh2_move();
      }
      break;
    case bh2::Action::kReturnHome:
      runtime.count_bh2_home_return();
      if (runtime.gateway_active(home)) {
        current = home;
      } else if (runtime.live_flows(client).empty()) {
        // Nothing in flight: point the assignment home but leave the home
        // gateway asleep. If traffic appears, route_flow wakes it (or finds
        // a warm target) — waking it now would burn 60 s of power for idle.
        current = home;
      } else {
        // Wake the home gateway (only the owner knows its WoWLAN MAC);
        // keep routing through the current gateway until home is up.
        runtime.request_wake(home);
        pending_home_[static_cast<std::size_t>(client)] = true;
      }
      break;
  }
}

void Bh2Policy::on_gateway_active(AccessRuntime& runtime, int gateway) {
  for (int c = 0; c < static_cast<int>(assignment_.size()); ++c) {
    if (pending_home_[static_cast<std::size_t>(c)] &&
        runtime.topology().home_gateway[static_cast<std::size_t>(c)] == gateway) {
      assignment_[static_cast<std::size_t>(c)] = gateway;
      pending_home_[static_cast<std::size_t>(c)] = false;
    }
  }
}

int Bh2Policy::route_flow(AccessRuntime& runtime, int client, double /*bytes*/) {
  const int home = runtime.topology().home_gateway[static_cast<std::size_t>(client)];
  auto& current = assignment_[static_cast<std::size_t>(client)];

  if (runtime.gateway_active(current)) return current;

  // The assigned gateway cannot serve right now (asleep, or still waking).
  // With standing backup associations the terminal shifts its new traffic
  // to a warm gateway; without backups it must wake its home and wait.
  RuntimeObserver observer(runtime);
  const auto& reachable = runtime.topology().client_gateways[static_cast<std::size_t>(client)];
  const int target = bh2::reroute_on_wake_needed(home, reachable, current, observer,
                                                 config_for(client), runtime.rng());
  if (target >= 0) {
    if (target != current) runtime.count_bh2_move();
    current = target;
    pending_home_[static_cast<std::size_t>(client)] = false;
    return current;
  }

  // No alternative: fall back to the home gateway, waking it if needed.
  if (runtime.gateway_state(home) == GatewayState::kAsleep) runtime.request_wake(home);
  if (current != home) {
    // The remote died while we were on it; traffic must queue at home.
    current = home;
    pending_home_[static_cast<std::size_t>(client)] = false;
    runtime.count_bh2_home_return();
  }
  return current;
}

}  // namespace insomnia::core
