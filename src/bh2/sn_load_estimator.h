// The §3.2 load-estimation trick: every 802.11 frame a gateway transmits
// carries a 12-bit MAC Sequence Number. A terminal that periodically
// listens on a gateway's channel can difference the SNs it sees to count
// how many frames the gateway pushed in between, and hence estimate its
// backhaul load without associating or exchanging a single byte.
#pragma once

#include <cstdint>
#include <deque>

namespace insomnia::bh2 {

/// 802.11 sequence numbers live in [0, 4096) and wrap.
inline constexpr int kSequenceModulus = 4096;

/// Streaming estimator of a single gateway's downlink rate from sparse
/// (time, sequence-number) observations.
class SnLoadEstimator {
 public:
  /// `window` seconds of history back the estimate; `mean_frame_bytes` is
  /// the assumed average frame size used to convert frames/s to bits/s.
  SnLoadEstimator(double window, double mean_frame_bytes);

  /// Records that at time `t` the latest frame from the gateway carried
  /// sequence number `sn` (0..4095). Times must be non-decreasing.
  void observe(double t, int sn);

  /// Estimated transmit rate in bits/s over the observation window ending
  /// at the latest sample; 0 with fewer than two samples.
  double rate_bps() const;

  /// Estimated utilization given the gateway's backhaul speed.
  double utilization(double backhaul_bps) const;

  /// Frames inferred between the oldest and newest retained samples.
  long frames_in_window() const { return frames_; }

 private:
  struct Sample {
    double time;
    int sn;
    long frames_since_previous;
  };

  void drop_expired(double now);

  double window_;
  double mean_frame_bytes_;
  std::deque<Sample> samples_;
  long frames_ = 0;  ///< sum of frames_since_previous over retained samples
};

/// Frames elapsed from sequence number `from` to `to`, accounting for
/// wraparound (result in [0, kSequenceModulus)).
int sequence_delta(int from, int to);

}  // namespace insomnia::bh2
