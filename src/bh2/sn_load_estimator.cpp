#include "bh2/sn_load_estimator.h"

#include "util/error.h"

namespace insomnia::bh2 {

int sequence_delta(int from, int to) {
  util::require(from >= 0 && from < kSequenceModulus && to >= 0 && to < kSequenceModulus,
                "sequence numbers must be in [0, 4096)");
  int delta = to - from;
  if (delta < 0) delta += kSequenceModulus;
  return delta;
}

SnLoadEstimator::SnLoadEstimator(double window, double mean_frame_bytes)
    : window_(window), mean_frame_bytes_(mean_frame_bytes) {
  util::require(window > 0.0 && mean_frame_bytes > 0.0,
                "estimator needs positive window and frame size");
}

void SnLoadEstimator::observe(double t, int sn) {
  if (!samples_.empty()) {
    util::require(t >= samples_.back().time, "observations must move forward in time");
    const long delta = sequence_delta(samples_.back().sn, sn);
    samples_.push_back({t, sn, delta});
    frames_ += delta;
  } else {
    samples_.push_back({t, sn, 0});
  }
  drop_expired(t);
}

void SnLoadEstimator::drop_expired(double now) {
  while (samples_.size() > 1 && samples_.front().time < now - window_) {
    // The frame count attributed to the second sample covers the interval
    // from the dropped one; remove it from the running total.
    frames_ -= samples_[1].frames_since_previous;
    samples_[1].frames_since_previous = 0;
    samples_.pop_front();
  }
}

double SnLoadEstimator::rate_bps() const {
  if (samples_.size() < 2) return 0.0;
  const double span = samples_.back().time - samples_.front().time;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(frames_) * mean_frame_bytes_ * 8.0 / span;
}

double SnLoadEstimator::utilization(double backhaul_bps) const {
  util::require(backhaul_bps > 0.0, "utilization needs a positive backhaul rate");
  const double u = rate_bps() / backhaul_bps;
  return u > 1.0 ? 1.0 : u;
}

}  // namespace insomnia::bh2
