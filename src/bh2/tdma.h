// The FatVAP/THEMIS-style single-radio virtualisation layer (§3.2/§5.3):
// one wireless card cycles through the gateways in range using 802.11
// Power-Save mode as a TDMA mechanism. The paper's deployment devotes 60 %
// of each 100 ms period to the selected gateway and splits the remainder
// evenly across the others for load monitoring.
#pragma once

#include <vector>

namespace insomnia::bh2 {

/// Airtime schedule of one virtualised radio.
struct TdmaConfig {
  double period = 0.100;        ///< seconds per TDMA cycle
  double primary_share = 0.60;  ///< fraction of the cycle on the selected AP
};

/// Computes per-gateway airtime fractions and achievable rates.
class TdmaSchedule {
 public:
  /// `gateways_in_range` counts every gateway the card is associated with,
  /// including the selected one (must be >= 1).
  TdmaSchedule(const TdmaConfig& config, int gateways_in_range);

  /// Airtime fraction on the selected gateway.
  double primary_share() const;

  /// Airtime fraction spent monitoring each non-selected gateway.
  double monitor_share() const;

  /// Effective throughput to the selected gateway given the wireless PHY
  /// rate: phy_rate * primary airtime.
  double effective_rate(double phy_rate_bps) const;

  /// True if the primary airtime suffices to drain the gateway's backhaul
  /// (the paper verified 60 % is enough since wireless >> ADSL rates).
  bool can_drain_backhaul(double phy_rate_bps, double backhaul_bps) const;

  /// Seconds per cycle spent on each monitored gateway.
  double monitor_time_per_cycle() const;

 private:
  TdmaConfig config_;
  int gateways_;
};

}  // namespace insomnia::bh2
