// The Broadband Hitch-Hiking (BH2) terminal algorithm of §3.1. Pure
// decision logic: terminals sense gateway state through a GatewayObserver
// (implemented over the air by SN counting — see sn_load_estimator.h — and
// by the simulator's ground truth in the evaluation), and emit decisions the
// runtime executes. Keeping the policy stateless makes every branch unit-
// testable.
//
// Faithfulness notes (also in DESIGN.md):
//  * The paper gates candidate gateways on "load above the low threshold"
//    (not about to sleep). Read literally this deadlocks at night when every
//    gateway's load is ~0 and nobody could ever aggregate. We interpret
//    "candidate for going to sleep" as "carrying no traffic at all": a
//    gateway is a valid target when it is awake, below the high threshold
//    and either above the low threshold or observably hosting traffic.
//  * Selection among candidates is random, proportional to load (plus a
//    small epsilon so freshly-aggregated gateways can be chosen), exactly
//    the paper's desynchronisation device.
#pragma once

#include <vector>

#include "sim/random.h"

namespace insomnia::bh2 {

/// Tunables of §5.1: thresholds, cadence, backups.
struct Bh2Config {
  double low_threshold = 0.10;   ///< fraction of backhaul capacity
  double high_threshold = 0.50;  ///< max utilization protecting local QoS
  double decision_period = 150.0;  ///< seconds between decisions (±offset)
  double load_window = 60.0;       ///< load estimation window, seconds
  int backup = 1;                  ///< minimum backup gateways for hand-off
  /// Added to every candidate's load when drawing proportionally, so
  /// zero-load candidates remain selectable (bootstrap).
  double selection_epsilon = 1e-3;
  /// A gateway with load below this carries no traffic and is treated as a
  /// sleep candidate (see faithfulness note above).
  double sleep_candidate_load = 1e-6;
  /// Join headroom: a gateway only qualifies as a *target* while its load
  /// is below high_threshold * join_headroom. Eviction (return home) still
  /// triggers at the full high threshold; the gap between the two is the
  /// hysteresis that prevents join-overshoot/evict herds around the
  /// threshold ("not heavily loaded" in §3.1).
  double join_headroom = 0.8;
};

/// What a BH2 terminal can sense about a gateway, over the air.
class GatewayObserver {
 public:
  virtual ~GatewayObserver() = default;

  /// Estimated backhaul utilization over the trailing load window, in
  /// [0, 1]. (Real terminals derive this by counting 802.11 MAC sequence
  /// numbers; the simulator supplies ground truth.)
  virtual double load(int gateway) const = 0;

  /// True if the gateway is powered and beaconing (awake or still waking).
  virtual bool is_awake(int gateway) const = 0;
};

/// What the terminal should do at this decision epoch.
enum class Action {
  kStay,        ///< keep the current assignment
  kMoveTo,      ///< route new traffic via `target`
  kReturnHome,  ///< go back to the home gateway (waking it if needed)
};

/// A decision plus its target (valid for kMoveTo only).
struct Decision {
  Action action = Action::kStay;
  int target = -1;
};

/// Periodic decision for one terminal (§3.1, both cases).
///
/// `reachable` lists the gateways in range (home included); `current` is
/// the gateway presently carrying the terminal's new traffic. `own_share`
/// is the fraction of `current`'s backhaul consumed by this terminal's own
/// traffic (a terminal always knows its own throughput): overload eviction
/// triggers on *other* users' load, because leaving cannot migrate the
/// terminal's existing flows anyway.
Decision decide(int home, const std::vector<int>& reachable, int current,
                const GatewayObserver& observer, const Bh2Config& config, sim::Random& rng,
                double own_share = 0.0);

/// Event-driven assist: traffic arrived while `current` is asleep. With
/// backups, the terminal shifts to a valid target without waking anything;
/// otherwise it must wake its home gateway. Returns the gateway to route
/// through, or -1 meaning "wake home and wait".
int reroute_on_wake_needed(int home, const std::vector<int>& reachable, int current,
                           const GatewayObserver& observer, const Bh2Config& config,
                           sim::Random& rng);

/// True if `gateway` qualifies as an aggregation target for this terminal.
bool is_valid_target(int gateway, const GatewayObserver& observer, const Bh2Config& config);

}  // namespace insomnia::bh2
