#include "bh2/algorithm.h"

#include <algorithm>

#include "util/error.h"

namespace insomnia::bh2 {

bool is_valid_target(int gateway, const GatewayObserver& observer, const Bh2Config& config) {
  if (!observer.is_awake(gateway)) return false;
  const double load = observer.load(gateway);
  if (load >= config.high_threshold * config.join_headroom) return false;
  // "Not a candidate for going to sleep": carrying traffic already.
  return load >= config.low_threshold || load > config.sleep_candidate_load;
}

namespace {

/// Collects valid aggregation targets among `reachable`, excluding `skip`.
std::vector<int> collect_targets(const std::vector<int>& reachable, int skip,
                                 const GatewayObserver& observer, const Bh2Config& config) {
  std::vector<int> targets;
  for (int gateway : reachable) {
    if (gateway == skip) continue;
    if (is_valid_target(gateway, observer, config)) targets.push_back(gateway);
  }
  return targets;
}

/// Counts the standby gateways available to a terminal currently using
/// `current`: awake in-range gateways (any load — a standby association
/// works regardless of the target's traffic) plus the home gateway, which
/// is always available because the terminal can wake it on demand via
/// WoWLAN (§3.2: "users can only wake their own home gateway"). Counting
/// home this way is what makes one backup free in practice — exactly the
/// paper's observation that "using a backup does not penalize performance".
int standby_count(const std::vector<int>& reachable, int current, int home,
                  const GatewayObserver& observer) {
  int count = 0;
  for (int gateway : reachable) {
    if (gateway == current) continue;
    if (gateway == home || observer.is_awake(gateway)) ++count;
  }
  return count;
}

/// Draws one gateway with probability proportional to (load + epsilon)^2 —
/// the paper's randomised load-proportional selection, sharpened so that a
/// clearly warmer hub wins decisively. (With linear weights and all loads
/// far below the thresholds, the neighbourhood settles into many lukewarm
/// hubs instead of consolidating; squaring restores winner-take-most while
/// keeping the desynchronising randomness.)
int pick_proportional(const std::vector<int>& candidates, const GatewayObserver& observer,
                      const Bh2Config& config, sim::Random& rng) {
  util::require(!candidates.empty(), "cannot pick from zero candidates");
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (int gateway : candidates) {
    const double w = observer.load(gateway) + config.selection_epsilon;
    weights.push_back(w * w);
  }
  return candidates[rng.weighted_index(weights)];
}

/// Draws one gateway with probability proportional to its remaining
/// headroom — used when escaping an overloaded gateway, where piling onto
/// the warmest target would recreate the overload.
int pick_headroom(const std::vector<int>& candidates, const GatewayObserver& observer,
                  const Bh2Config& config, sim::Random& rng) {
  util::require(!candidates.empty(), "cannot pick from zero candidates");
  const double ceiling = config.high_threshold * config.join_headroom;
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (int gateway : candidates) {
    weights.push_back(std::max(ceiling - observer.load(gateway), 0.0) +
                      config.selection_epsilon);
  }
  return candidates[rng.weighted_index(weights)];
}

}  // namespace

Decision decide(int home, const std::vector<int>& reachable, int current,
                const GatewayObserver& observer, const Bh2Config& config, sim::Random& rng,
                double own_share) {
  util::require(std::find(reachable.begin(), reachable.end(), current) != reachable.end() ||
                    current == home,
                "current gateway must be home or reachable");

  if (current == home) {
    // Case 1: connected to the home gateway. If the home is busy enough to
    // stay up anyway, there is nothing to gain by moving.
    if (observer.is_awake(home) && observer.load(home) >= config.low_threshold) {
      return {Action::kStay, current};
    }
    // Home is idle-ish (a sleep candidate): try to vacate so SoI can fire.
    // The move needs one valid primary target, and enough standby gateways
    // (home itself counts — it can be woken back on demand).
    const std::vector<int> targets = collect_targets(reachable, home, observer, config);
    if (!targets.empty()) {
      const int primary = pick_proportional(targets, observer, config, rng);
      if (standby_count(reachable, primary, home, observer) >= config.backup) {
        return {Action::kMoveTo, primary};
      }
    }
    return {Action::kStay, current};
  }

  // Case 2: connected to a remote gateway.
  if (!observer.is_awake(current)) {
    return {Action::kReturnHome, home};
  }
  if (observer.load(current) - own_share >= config.high_threshold) {
    // Overloaded by *other* users: this is what the backup associations are
    // for — a smooth hand-off to another gateway ("to allow users to
    // perform smooth hand-offs if they need to leave the remote gateway",
    // §3.1). Any awake, not-yet-full gateway will do as an escape (waking a
    // home would cost more than joining a cold-but-powered neighbour);
    // only when none exists does the user retreat to its home gateway.
    std::vector<int> escape;
    for (int gateway : reachable) {
      if (gateway == current || !observer.is_awake(gateway)) continue;
      if (observer.load(gateway) < config.high_threshold * config.join_headroom) {
        escape.push_back(gateway);
      }
    }
    if (!escape.empty()) {
      return {Action::kMoveTo, pick_headroom(escape, observer, config, rng)};
    }
    return {Action::kReturnHome, home};
  }
  if (standby_count(reachable, current, home, observer) < config.backup) {
    // Not enough standby gateways for a smooth hand-off: retreat to home.
    return {Action::kReturnHome, home};
  }
  if (observer.load(current) < config.low_threshold) {
    // The remote itself is dying down: re-select among the warm candidates,
    // proportional to load. The current gateway is deliberately *not* in
    // the pool — guests must evaporate off cold aggregation points or they
    // linger forever at near-zero load (the whole hub never drains).
    const std::vector<int> others = collect_targets(reachable, current, observer, config);
    if (!others.empty()) {
      const int choice = pick_proportional(others, observer, config, rng);
      if (choice != current) return {Action::kMoveTo, choice};
    }
  }
  return {Action::kStay, current};
}

int reroute_on_wake_needed(int /*home*/, const std::vector<int>& reachable, int current,
                           const GatewayObserver& observer, const Bh2Config& config,
                           sim::Random& rng) {
  if (config.backup <= 0) return -1;  // no standing backup associations
  const std::vector<int> targets = collect_targets(reachable, current, observer, config);
  if (targets.empty()) return -1;
  return pick_proportional(targets, observer, config, rng);
}

}  // namespace insomnia::bh2
