#include "bh2/tdma.h"

#include "util/error.h"

namespace insomnia::bh2 {

TdmaSchedule::TdmaSchedule(const TdmaConfig& config, int gateways_in_range)
    : config_(config), gateways_(gateways_in_range) {
  util::require(config.period > 0.0, "TDMA period must be positive");
  util::require(config.primary_share > 0.0 && config.primary_share <= 1.0,
                "primary share must be in (0,1]");
  util::require(gateways_in_range >= 1, "need at least one gateway in range");
}

double TdmaSchedule::primary_share() const {
  // With a single gateway there is nothing to monitor; the card stays put.
  return gateways_ == 1 ? 1.0 : config_.primary_share;
}

double TdmaSchedule::monitor_share() const {
  if (gateways_ == 1) return 0.0;
  return (1.0 - config_.primary_share) / static_cast<double>(gateways_ - 1);
}

double TdmaSchedule::effective_rate(double phy_rate_bps) const {
  util::require(phy_rate_bps >= 0.0, "PHY rate must be non-negative");
  return phy_rate_bps * primary_share();
}

bool TdmaSchedule::can_drain_backhaul(double phy_rate_bps, double backhaul_bps) const {
  util::require(backhaul_bps > 0.0, "backhaul rate must be positive");
  return effective_rate(phy_rate_bps) >= backhaul_bps;
}

double TdmaSchedule::monitor_time_per_cycle() const { return monitor_share() * config_.period; }

}  // namespace insomnia::bh2
