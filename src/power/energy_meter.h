// Energy accounting: per-device-class power time series that integrate to
// joules exactly (the series are piecewise constant, so no quadrature error).
#pragma once

#include <string>
#include <vector>

#include "power/device_power.h"
#include "stats/timeseries.h"

namespace insomnia::power {

/// Tracks the power state of a homogeneous group of devices (e.g. "all 40
/// gateways") and exposes the group's total draw as a StepSeries.
///
/// The meter stores one state per device; each transition updates the
/// aggregate power level at the simulation time of the change.
class DeviceGroupMeter {
 public:
  /// All `count` devices start in `initial` state at `start_time`.
  DeviceGroupMeter(std::string name, DevicePowerModel model, int count, double start_time,
                   PowerState initial);

  /// Records that device `index` enters `state` at time `t` (t must be
  /// non-decreasing across calls; same-state transitions are no-ops).
  void set_state(int index, PowerState state, double t);

  /// Current state of device `index`.
  PowerState state(int index) const { return states_.at(static_cast<std::size_t>(index)); }

  /// Number of devices currently in `state`.
  int count_in(PowerState state) const;

  /// Total group energy over [t0, t1], joules.
  double energy(double t0, double t1) const { return power_.integral(t0, t1); }

  /// Aggregate power series (watts over time).
  const stats::StepSeries& power_series() const { return power_; }

  /// Per-device time spent in kActive or kWaking ("online time") over
  /// [t0, t1] — the fairness metric of Fig. 9b.
  double online_time(int index, double t0, double t1) const;

  const std::string& name() const { return name_; }
  int device_count() const { return static_cast<int>(states_.size()); }

 private:
  std::string name_;
  DevicePowerModel model_;
  std::vector<PowerState> states_;
  std::vector<stats::StepSeries> online_;  ///< 1 while active/waking, else 0
  stats::StepSeries power_;
  double current_watts_;
};

}  // namespace insomnia::power
