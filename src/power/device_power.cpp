#include "power/device_power.h"

#include "util/error.h"

namespace insomnia::power {

double DevicePowerModel::watts(PowerState state) const {
  switch (state) {
    case PowerState::kAsleep:
      return asleep_watts;
    case PowerState::kWaking:
      return waking_watts;
    case PowerState::kActive:
      return active_watts;
  }
  throw util::InvalidArgument("unknown PowerState");
}

namespace defaults {

DevicePowerModel gateway() { return {.active_watts = 9.0, .waking_watts = 9.0, .asleep_watts = 0.0}; }

DevicePowerModel wireless_router() {
  return {.active_watts = 5.0, .waking_watts = 5.0, .asleep_watts = 0.0};
}

DevicePowerModel isp_modem() {
  return {.active_watts = 1.0, .waking_watts = 1.0, .asleep_watts = 0.0};
}

DevicePowerModel line_card() {
  return {.active_watts = 98.0, .waking_watts = 98.0, .asleep_watts = 0.0};
}

DevicePowerModel shelf() {
  return {.active_watts = 21.0, .waking_watts = 21.0, .asleep_watts = 21.0};
}

}  // namespace defaults

double no_sleep_watts(const AccessPowerParams& params, int gateways, int line_cards, int ports) {
  util::require(gateways >= 0 && line_cards >= 0 && ports >= 0,
                "device counts must be non-negative");
  return params.gateway.active_watts * gateways + params.shelf.active_watts +
         params.line_card.active_watts * line_cards + params.isp_modem.active_watts * ports;
}

}  // namespace insomnia::power
