// Power models for every device class in the access network, with the
// paper's measured defaults (§5.1 "Power consumption"):
//   * Telsey CPVA642WA ADSL gateway: ~9 W, flat across utilization,
//   * Netgear WNR3500L wireless router: ~5 W (reference measurement),
//   * DSLAM (Alcatel ISAM 7302): shelf 21 W typical / 53 W max,
//   * DSL line card (48-port NVLT-C): 98 W typical / 112 W max,
//   * per-port ISP modem: ~1 W.
// Devices are not energy proportional: consumption depends on the power
// state, not the load — which is precisely the paper's premise.
#pragma once

namespace insomnia::power {

/// Sleep / wake lifecycle of a sleepable device.
enum class PowerState {
  kAsleep,  ///< powered off via Sleep-on-Idle
  kWaking,  ///< booting/resynchronising: draws power, moves no traffic
  kActive,  ///< fully operational
};

/// Per-state power draw of one device, in watts.
struct DevicePowerModel {
  double active_watts = 0.0;
  double waking_watts = 0.0;   ///< boot/resync draw, typically = active
  double asleep_watts = 0.0;   ///< residual draw while sleeping (WoWLAN listener etc.)

  /// Draw in a given state.
  double watts(PowerState state) const;
};

/// Measured defaults used throughout the evaluation.
namespace defaults {

/// Integrated ADSL gateway (modem + AP + router), Telsey CPVA642WA.
DevicePowerModel gateway();

/// Wireless router alone, Netgear WNR3500L (reference measurement only).
DevicePowerModel wireless_router();

/// One DSLAM port's terminating modem.
DevicePowerModel isp_modem();

/// One DSL line card (shared circuitry, excluding per-port modems).
DevicePowerModel line_card();

/// DSLAM shelf (common equipment; never sleeps in any scheme).
DevicePowerModel shelf();

}  // namespace defaults

/// The full parameter set the energy accounting needs.
struct AccessPowerParams {
  DevicePowerModel gateway = defaults::gateway();
  DevicePowerModel isp_modem = defaults::isp_modem();
  DevicePowerModel line_card = defaults::line_card();
  DevicePowerModel shelf = defaults::shelf();
};

/// Total draw of a fully-awake access network: `gateways` user gateways and
/// a DSLAM with `line_cards` cards and `ports` terminating modems, plus the
/// shelf. This is the paper's no-sleep baseline (821 W for the §5.1
/// scenario: 40 gateways, 4 cards, 48 ports).
double no_sleep_watts(const AccessPowerParams& params, int gateways, int line_cards, int ports);

}  // namespace insomnia::power
