#include "power/energy_meter.h"

#include "util/error.h"

namespace insomnia::power {

namespace {
double online_level(PowerState state) {
  return state == PowerState::kAsleep ? 0.0 : 1.0;
}
}  // namespace

DeviceGroupMeter::DeviceGroupMeter(std::string name, DevicePowerModel model, int count,
                                   double start_time, PowerState initial)
    : name_(std::move(name)),
      model_(model),
      states_(static_cast<std::size_t>(count), initial),
      power_(start_time, model.watts(initial) * count),
      current_watts_(model.watts(initial) * count) {
  util::require(count >= 0, "DeviceGroupMeter needs a non-negative device count");
  online_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) online_.emplace_back(start_time, online_level(initial));
}

void DeviceGroupMeter::set_state(int index, PowerState state, double t) {
  auto& current = states_.at(static_cast<std::size_t>(index));
  if (current == state) return;
  current_watts_ += model_.watts(state) - model_.watts(current);
  current = state;
  power_.set(t, current_watts_);
  online_[static_cast<std::size_t>(index)].set(t, online_level(state));
}

int DeviceGroupMeter::count_in(PowerState state) const {
  int count = 0;
  for (PowerState s : states_) {
    if (s == state) ++count;
  }
  return count;
}

double DeviceGroupMeter::online_time(int index, double t0, double t1) const {
  return online_.at(static_cast<std::size_t>(index)).integral(t0, t1);
}

}  // namespace insomnia::power
