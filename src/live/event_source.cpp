#include "live/event_source.h"

#include <utility>

#include "sim/random.h"
#include "util/error.h"
#include "util/strings.h"

namespace insomnia::live {

GeneratorSource::GeneratorSource(trace::SyntheticTraceConfig config, std::uint64_t seed,
                                 int days)
    : config_(config), seed_(seed), days_(days) {
  util::require(days >= 1, "GeneratorSource needs at least one day");
  util::require(config.duration > 0.0, "GeneratorSource needs a positive day length");
  // Synthesize day 0 now: it is the daemon's startup cost (like a trace file
  // already existing on disk for the tail source), not part of the ingest
  // window the controller measures. Later days refill lazily.
  refill();
}

bool GeneratorSource::refill() {
  while (cursor_ >= buffer_.size()) {
    if (next_day_ >= days_) return false;
    const int day = next_day_++;
    // Engine run k's trace substream, so day 0 == the offline synthetic day.
    sim::Random rng(sim::Random::substream_seed(seed_, static_cast<std::uint64_t>(day), 1));
    buffer_ = trace::SyntheticCrawdadGenerator(config_).generate(rng);
    cursor_ = 0;
    const double offset = config_.duration * static_cast<double>(day);
    for (trace::FlowRecord& record : buffer_) record.start_time += offset;
  }
  return true;
}

std::size_t GeneratorSource::poll(double horizon, std::size_t max, trace::FlowTrace& out) {
  std::size_t produced = 0;
  while (produced < max && refill()) {
    const trace::FlowRecord& head = buffer_[cursor_];
    if (head.start_time > horizon) break;  // the future stays unsynthesized
    out.push_back(head);
    ++cursor_;
    ++produced;
  }
  return produced;
}

bool GeneratorSource::exhausted() const {
  return next_day_ >= days_ && cursor_ >= buffer_.size();
}

std::string GeneratorSource::describe() const {
  return "gen(seed " + std::to_string(seed_) + ", " + std::to_string(days_) + " day" +
         (days_ == 1 ? "" : "s") + ", " + std::to_string(config_.client_count) +
         " clients)";
}

double GeneratorSource::mean_records_per_virtual_sec() {
  util::require_state(next_day_ <= 1 && cursor_ == 0,
                      "rate estimate must run before polling starts");
  refill();  // generates day 0 on first use; kept for serving
  return static_cast<double>(buffer_.size()) / config_.duration;
}

}  // namespace insomnia::live
