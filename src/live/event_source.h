// The online layer's ingest abstraction: an EventSource produces flow
// arrivals incrementally — a deterministic seeded generator (load tests,
// demos, the replay-equivalence gate), a tailed trace file, or a socket fed
// by an external producer (live/tail_source.h, live/socket_source.h). The
// LiveController polls the active source once per tick, moves the records
// through a bounded IngestQueue, and feeds them to the paired baseline +
// scheme AccessRuntime twins.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "trace/records.h"
#include "trace/synthetic_crawdad.h"

namespace insomnia::live {

/// An incremental producer of time-sorted flow arrivals.
class EventSource {
 public:
  virtual ~EventSource() = default;

  /// Appends up to `max` records to `out` and returns how many. `horizon`
  /// caps the virtual time of synthesized arrivals (the generator never
  /// emits an arrival later than `horizon`, keeping memory bounded to the
  /// controller's tick lookahead); IO-backed sources ignore it — whatever
  /// bytes have arrived are already "now" in wall terms. Returning 0 means
  /// nothing is available yet, not necessarily exhaustion.
  virtual std::size_t poll(double horizon, std::size_t max, trace::FlowTrace& out) = 0;

  /// True once the source can never produce another record.
  virtual bool exhausted() const = 0;

  /// One-line description for banners and error messages.
  virtual std::string describe() const = 0;
};

/// Deterministic synthetic source: day k is the synthetic-CRAWDAD trace
/// drawn from keyed substream (seed, k, 1) — exactly the trace Engine run k
/// replays — with start times offset by k * day duration, so consecutive
/// days form one continuous sorted stream. A one-day GeneratorSource fed
/// through the virtual-time LiveController therefore reproduces the offline
/// Engine's synthetic run 0 bit for bit.
class GeneratorSource : public EventSource {
 public:
  /// Generates `days` >= 1 days of `config` traffic seeded from `seed`.
  GeneratorSource(trace::SyntheticTraceConfig config, std::uint64_t seed, int days);

  std::size_t poll(double horizon, std::size_t max, trace::FlowTrace& out) override;
  bool exhausted() const override;
  std::string describe() const override;

  /// Mean records per virtual second of day 0 (generating it on first use);
  /// livectl derives the --rate pacing factor from this.
  double mean_records_per_virtual_sec();

 private:
  /// Ensures the day containing the cursor is generated; false when all
  /// days are spent.
  bool refill();

  trace::SyntheticTraceConfig config_;
  std::uint64_t seed_;
  int days_;
  int next_day_ = 0;        ///< next day index to generate
  trace::FlowTrace buffer_; ///< current day, times already offset
  std::size_t cursor_ = 0;  ///< next unread record in buffer_
};

}  // namespace insomnia::live
