// Bounded ingest buffer between an EventSource and the simulation twins.
// The bound is the controller's memory/latency contract: when the fleet
// cannot keep up, either the source stops being polled (kBackpressure — the
// kernel's socket buffer or the file itself absorbs the burst) or the
// newest records are counted and dropped (kDropNewest — load-shedding for
// sources that must be drained). Each accepted record carries its ingest
// wall-clock stamp; because records are stamped once per poll batch, stamps
// are stored run-length-encoded — the queue moves ~1M records/s through a
// single thread, so per-record bookkeeping is what the layout optimizes
// away. The controller turns stamps into the ingest→decision latency
// histogram when arrivals are consumed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "trace/records.h"

namespace insomnia::live {

enum class OverflowPolicy {
  kBackpressure,  ///< stop polling the source while full
  kDropNewest,    ///< keep polling; count and discard what does not fit
};

/// A contiguous run of records sharing one ingest stamp.
struct StampRun {
  std::uint64_t stamp_ns = 0;
  std::uint32_t count = 0;
};

class IngestQueue {
 public:
  IngestQueue(std::size_t capacity, OverflowPolicy policy);

  /// Slots available before the queue is full.
  std::size_t free_slots() const { return capacity_ - records_.size(); }
  std::size_t size() const { return records_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return records_.empty(); }

  /// Accepts (or sheds, see OverflowPolicy) `count` records stamped
  /// `stamp_ns` and returns how many were queued. Under kBackpressure
  /// pushing past capacity is a caller bug (it must honour free_slots())
  /// and throws; under kDropNewest the overflow is counted and discarded.
  std::size_t push_batch(const trace::FlowRecord* records, std::size_t count,
                         std::uint64_t stamp_ns);

  /// Pops up to `max` records in FIFO order into `records`, with their
  /// ingest stamps appended to `stamps` as runs (merged with the last run
  /// when the stamp matches). Returns the count.
  std::size_t pop(std::size_t max, trace::FlowTrace& records,
                  std::deque<StampRun>& stamps);

  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t peak_depth() const { return peak_depth_; }

 private:
  std::size_t capacity_;
  OverflowPolicy policy_;
  std::deque<trace::FlowRecord> records_;
  std::deque<StampRun> stamps_;  ///< run-length, same order as records_
  std::uint64_t accepted_ = 0;
  std::uint64_t dropped_ = 0;
  std::size_t peak_depth_ = 0;
};

}  // namespace insomnia::live
