#include "live/tail_source.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.h"

namespace insomnia::live {

namespace {
constexpr std::size_t kChunkBytes = 1 << 16;
}  // namespace

TailSource::TailSource(Options options) : options_(std::move(options)) {
  fd_ = ::open(options_.path.c_str(), O_RDONLY | O_CLOEXEC);
  util::require(fd_ >= 0, "cannot open trace file for tailing: " + options_.path +
                              " (" + std::strerror(errno) + ")");
}

TailSource::~TailSource() {
  if (fd_ >= 0) ::close(fd_);
}

void TailSource::stop_following() { options_.follow = false; }

std::size_t TailSource::read_chunk() {
  struct stat st {};
  util::require_state(::fstat(fd_, &st) == 0,
                      "fstat failed while tailing " + options_.path);
  util::require_state(static_cast<std::uint64_t>(st.st_size) >= consumed_,
                      "trace file truncated while tailing: " + options_.path);
  char buffer[kChunkBytes];
  const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
  util::require_state(n >= 0, "read failed while tailing " + options_.path + " (" +
                                  std::strerror(errno) + ")");
  if (n == 0) return 0;
  consumed_ += static_cast<std::uint64_t>(n);
  decoder_.feed(std::string_view(buffer, static_cast<std::size_t>(n)), pending_);
  return static_cast<std::size_t>(n);
}

std::size_t TailSource::poll(double /*horizon*/, std::size_t max, trace::FlowTrace& out) {
  // Drain the file before serving, so `max` bounds what the caller takes
  // per tick while the decoder stays current with the writer.
  while (!finalized_) {
    if (read_chunk() == 0) {
      // At end-of-file. A growing file may have more later (follow mode);
      // a one-pass read is complete — flush a final unterminated row, if
      // any, exactly like read_flow_trace accepts one.
      if (!options_.follow) {
        decoder_.finalize(pending_);
        // read_flow_trace rejects a headerless (e.g. empty) file; the
        // one-pass tail must agree.
        util::require(decoder_.header_seen(),
                      "flow trace must start with a start_time,client,bytes header");
        finalized_ = true;
      }
      break;
    }
  }
  std::size_t served = 0;
  while (served < max && pending_pos_ < pending_.size()) {
    out.push_back(pending_[pending_pos_++]);
    ++served;
  }
  if (pending_pos_ == pending_.size() && pending_pos_ > 0) {
    pending_.clear();
    pending_pos_ = 0;
  }
  return served;
}

bool TailSource::exhausted() const {
  return finalized_ && pending_pos_ >= pending_.size();
}

std::string TailSource::describe() const {
  return std::string(options_.follow ? "tail -f " : "tail ") + options_.path;
}

}  // namespace insomnia::live
