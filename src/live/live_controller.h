// The online fleet controller: polls an EventSource once per tick, moves
// records through a bounded IngestQueue, feeds them to paired baseline +
// scheme AccessRuntime twins (the engine's paired-day methodology, run
// incrementally), and assembles the exact offline RunReport at the end.
//
// Two pacing modes:
//  - kVirtual replays as fast as the machine allows with the arrival gate
//    engaged; over the same records and seed the final report is
//    byte-identical (modulo the telemetry block) to an offline Engine run —
//    the replay-equivalence contract pinned by tests/test_live_controller.cpp
//    and scripts/check.sh.
//  - kWall pins virtual time to the wall clock (scaled by `speedup`),
//    sleeping between ticks and counting overruns; late records are clamped
//    forward and decided immediately rather than rejected.
//
// Every accepted record carries an ingest wall-clock stamp; the controller
// turns stamps into the ingest→decision latency distribution (p50/p95/p99)
// surfaced in LiveStats and the "live.ingest_decision_ns" obs histogram.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <string>

#include "core/engine.h"
#include "core/scenario.h"
#include "live/event_source.h"
#include "live/ingest_queue.h"
#include "trace/records.h"

namespace insomnia::live {

enum class PaceMode {
  kVirtual,  ///< as-fast-as-possible gated replay (bit-identical to offline)
  kWall,     ///< virtual time pinned to the wall clock via `speedup`
};

/// Compact power-of-two-binned latency distribution. Always on (unlike obs
/// histograms, which are no-ops unless telemetry is enabled) so livectl can
/// print p99 in its summary regardless of INSOMNIA_OBS.
class LatencyTrack {
 public:
  void record(std::uint64_t ns) { record_n(ns, 1); }
  /// Records `n` samples of the same value (ingest stamps are per poll
  /// batch, so consumed runs share one latency).
  void record_n(std::uint64_t ns, std::uint64_t n);

  std::uint64_t count() const { return count_; }
  std::uint64_t max_ns() const { return max_ns_; }
  /// Quantile estimate: the upper edge of the bin holding the q-th sample,
  /// clamped to the observed [min, max] (a single sample reads back exactly).
  double quantile_ns(double q) const;

 private:
  static constexpr int kBins = 48;  ///< bin b covers [2^b, 2^{b+1}) ns

  std::array<std::uint64_t, kBins> bins_{};
  std::uint64_t count_ = 0;
  std::uint64_t min_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

/// Operational counters for one controller run (the report covers the
/// simulated day; this covers the machine running it).
struct LiveStats {
  std::uint64_t ingested = 0;  ///< records accepted into the queue
  std::uint64_t dropped = 0;   ///< records shed by kDropNewest
  std::uint64_t decided = 0;   ///< arrivals dispatched into the data plane
  std::uint64_t ticks = 0;
  std::uint64_t tick_overruns = 0;  ///< wall ticks that missed their deadline
  std::size_t peak_queue_depth = 0;
  double wall_seconds = 0.0;
  double virtual_seconds = 0.0;  ///< covered day span (excludes drain)
  double ingest_events_per_sec = 0.0;
  std::uint64_t latency_samples = 0;
  double latency_p50_ns = 0.0;
  double latency_p95_ns = 0.0;
  double latency_p99_ns = 0.0;
  double latency_max_ns = 0.0;
  bool interrupted = false;  ///< a stop signal ended the run early
};

struct LiveResult {
  core::RunReport report;
  LiveStats stats;
};

class LiveController {
 public:
  struct Options {
    /// Resolved scenario; `scenario.duration` is the virtual-day horizon the
    /// controller advances towards (plus drain_time at shutdown).
    core::ScenarioConfig scenario;
    /// Report-echo fields — must match the offline RunSpec being compared
    /// against for the byte-identity gate to hold.
    std::string preset_name = "paper-default";
    std::string trace_file;
    std::string scheme = "bh2-kswitch";
    std::uint64_t seed = 42;
    PaceMode pace = PaceMode::kVirtual;
    double tick_virtual_sec = 300.0;  ///< virtual step per tick (kVirtual)
    double tick_wall_sec = 0.02;      ///< wall tick period (kWall)
    double speedup = 1.0;             ///< virtual seconds per wall second (kWall)
    double max_wall_sec = 0.0;        ///< wall-clock budget; 0 = unbounded
    std::size_t queue_capacity = 65536;
    OverflowPolicy overflow = OverflowPolicy::kBackpressure;
    std::size_t bins = 24;
    double peak_start = 11.0 * 3600.0;
    double peak_end = 19.0 * 3600.0;
    double heartbeat_sec = 0.0;  ///< stderr heartbeat period; 0 = off
    /// Mirrors every accepted record to a flow-trace file (trace_io format)
    /// so a live day can be replayed offline.
    std::string record_path;
  };

  LiveController(Options options, std::unique_ptr<EventSource> source);
  ~LiveController();

  LiveController(const LiveController&) = delete;
  LiveController& operator=(const LiveController&) = delete;

  /// Runs to completion (source exhausted / horizon reached / wall budget
  /// spent) or until `*stop` becomes true — the SIGINT/SIGTERM drain path:
  /// queued records still get decisions, the day drains, and the report
  /// covers the span actually simulated.
  LiveResult run(const std::atomic<bool>* stop = nullptr);

 private:
  struct Twins;  ///< paired baseline + scheme runtimes (defined in the .cpp)

  /// Polls the source into the queue (honouring the overflow policy) and
  /// drains the queue into both twins. Returns records appended.
  std::size_t ingest(double horizon);

  /// The poll half of ingest(): source -> queue only, no runtime touched —
  /// safe to run while the twins are stepping. Returns records accepted.
  std::size_t poll_into_queue(double horizon);

  /// Moves everything queued into both twins (stamps kept FIFO). The
  /// poll-free half of ingest(); the shutdown path uses it alone so an
  /// interrupted run never appends arrivals it will not simulate.
  std::size_t drain_queue();

  /// Steps both twins to `until` (concurrently — they are independent
  /// simulations), prefetching the source up to `poll_horizon` while they
  /// run and replenishing whenever the arrival gate starves; marks input
  /// finished when the source is spent.
  void advance_to(double until, double poll_horizon, const std::atomic<bool>* stop);

  /// Folds ingest stamps of newly consumed arrivals into the latency track.
  void account_latency();

  void heartbeat(double virtual_time);

  Options options_;
  std::unique_ptr<EventSource> source_;
  std::unique_ptr<Twins> twins_;
  IngestQueue queue_;
  trace::FlowTrace scratch_;  ///< poll/pop staging, reused across ticks
  std::deque<StampRun> inflight_stamps_;
  LatencyTrack latency_;
  LiveStats stats_;
  bool input_done_ = false;
  std::ofstream record_out_;
  std::uint64_t wall_start_ns_ = 0;
  std::uint64_t next_heartbeat_ns_ = 0;
};

}  // namespace insomnia::live
