#include "live/live_controller.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <iostream>
#include <limits>
#include <thread>
#include <vector>

#include "core/day_summary.h"
#include "core/metrics.h"
#include "core/runtime.h"
#include "core/scheme_registry.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "sim/random.h"
#include "topology/access_topology.h"
#include "util/csv.h"
#include "util/error.h"

namespace insomnia::live {

namespace {

constexpr std::size_t kPollBatch = 4096;

topo::AccessTopology make_live_topology(const LiveController::Options& options) {
  // Same derivation as Engine::run: topology from substream (seed, 0, 7).
  sim::Random rng(sim::Random::substream_seed(options.seed, 0, 7));
  return topo::make_overlap_topology(options.scenario.client_count,
                                     options.scenario.degrees, rng);
}

core::ScenarioConfig configure(core::ScenarioConfig scenario,
                               const core::SchemeSpec& spec) {
  scenario.dslam.mode = spec.switch_mode;
  return scenario;
}

// Mirrors the per-day histogram run_scheme records, so a live day folds into
// "day.events" exactly like its offline twin (baseline first, then scheme).
void record_day_events(const core::RunMetrics& metrics) {
#ifndef INSOMNIA_OBS_DISABLED
  obs::histogram("day.events").record(static_cast<double>(metrics.executed_events));
#else
  (void)metrics;
#endif
}

}  // namespace

void LatencyTrack::record_n(std::uint64_t ns, std::uint64_t n) {
  if (n == 0) return;
  if (count_ == 0 || ns < min_ns_) min_ns_ = ns;
  if (ns > max_ns_) max_ns_ = ns;
  count_ += n;
#if defined(__GNUC__)
  const int bin = ns <= 1 ? 0 : std::min(63 - __builtin_clzll(ns), kBins - 1);
#else
  int bin = 0;
  for (std::uint64_t v = ns; v > 1 && bin < kBins - 1; v >>= 1) ++bin;
#endif
  bins_[bin] += n;
}

double LatencyTrack::quantile_ns(double q) const {
  if (count_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBins; ++b) {
    seen += bins_[b];
    if (seen >= target) {
      const double upper = std::ldexp(1.0, b + 1);
      return std::clamp(upper, static_cast<double>(min_ns_),
                        static_cast<double>(max_ns_));
    }
  }
  return static_cast<double>(max_ns_);
}

// The paired twins of one live day: the no-sleep baseline and the scheme
// under study over the very same arrival stream (the engine's paired-run
// methodology, fed incrementally). Constructed exactly as run_scheme does —
// switch fabric applied to a scenario copy, then the policy, then the
// runtime with the run-0 baseline/scheme seed substreams.
struct LiveController::Twins {
  topo::AccessTopology topology;
  core::ScenarioConfig baseline_config;
  core::ScenarioConfig scheme_config;
  std::unique_ptr<core::Policy> baseline_policy;
  std::unique_ptr<core::Policy> scheme_policy;
  core::AccessRuntime baseline;
  core::AccessRuntime scheme;

  Twins(const Options& options, const core::SchemeSpec& baseline_spec,
        const core::SchemeSpec& scheme_spec, bool gated)
      : topology(make_live_topology(options)),
        baseline_config(configure(options.scenario, baseline_spec)),
        scheme_config(configure(options.scenario, scheme_spec)),
        baseline_policy(baseline_spec.make_policy(baseline_config)),
        scheme_policy(scheme_spec.make_policy(scheme_config)),
        baseline(baseline_config, topology, *baseline_policy,
                 sim::Random(sim::Random::substream_seed(options.seed, 0, 2)),
                 core::AccessRuntime::LiveMode{gated}),
        scheme(scheme_config, topology, *scheme_policy,
               sim::Random(sim::Random::substream_seed(options.seed, 0, 100)),
               core::AccessRuntime::LiveMode{gated}) {}

  void append(const trace::FlowRecord* records, std::size_t count) {
    baseline.append_live_arrivals(records, count);
    scheme.append_live_arrivals(records, count);
  }

  void finish_input() {
    baseline.finish_live_input();
    scheme.finish_live_input();
  }
};

LiveController::LiveController(Options options, std::unique_ptr<EventSource> source)
    : options_(std::move(options)),
      source_(std::move(source)),
      queue_(options_.queue_capacity, options_.overflow) {
  util::require(source_ != nullptr, "live controller needs an event source");
  util::require(options_.scenario.duration > 0, "live run needs a positive horizon");
  util::require(options_.bins >= 1, "live run needs at least one bin");
  util::require(options_.peak_start < options_.peak_end, "peak window must not be empty");
  util::require(options_.tick_virtual_sec > 0 && options_.tick_wall_sec > 0,
                "tick sizes must be positive");
  util::require(options_.speedup > 0, "speedup must be positive");
  util::require(options_.overflow == OverflowPolicy::kBackpressure ||
                    options_.pace == PaceMode::kWall,
                "drop-newest load shedding requires wall pacing (a virtual-time "
                "replay must decide every record)");
}

LiveController::~LiveController() = default;

std::size_t LiveController::ingest(double horizon) {
  poll_into_queue(horizon);
  return drain_queue();
}

std::size_t LiveController::poll_into_queue(double horizon) {
  OBS_SCOPE("live.poll");
  // Move whatever the source has (up to `horizon` for the generator) into
  // the bounded queue, one ingest stamp per batch.
  std::size_t accepted = 0;
  while (!source_->exhausted()) {
    const std::size_t room = options_.overflow == OverflowPolicy::kBackpressure
                                 ? queue_.free_slots()
                                 : kPollBatch;
    if (room == 0) break;
    scratch_.clear();
    const std::size_t got = source_->poll(horizon, std::min(room, kPollBatch), scratch_);
    if (got == 0) break;
    const std::uint64_t stamp = obs::now_ns();
    // Under kDropNewest the overflow is the batch TAIL, so the accepted
    // records are exactly the first `taken` — what the recorder mirrors.
    const std::size_t taken = queue_.push_batch(scratch_.data(), got, stamp);
    accepted += taken;
    if (record_out_.is_open() && taken > 0) {
      util::CsvWriter writer(record_out_);
      for (std::size_t r = 0; r < taken; ++r) {
        writer.row({scratch_[r].start_time, static_cast<double>(scratch_[r].client),
                    scratch_[r].bytes});
      }
    }
  }
  return accepted;
}

std::size_t LiveController::drain_queue() {
  OBS_SCOPE("live.drain");
  scratch_.clear();
  const std::size_t drained = queue_.pop(queue_.size(), scratch_, inflight_stamps_);
  util::require_state(drained == 0 || !input_done_,
                      "records queued after live input was finished");
  if (drained > 0) twins_->append(scratch_.data(), drained);
  return drained;
}

void LiveController::advance_to(double until, double poll_horizon,
                                const std::atomic<bool>* stop) {
  // Wall pace polls fresh records up to `until` so this tick decides them;
  // virtual pace only appends what the previous tick's helper thread already
  // prefetched — polling here would put the generator back on the critical
  // path.
  if (options_.pace == PaceMode::kWall) {
    ingest(poll_horizon);
  } else {
    drain_queue();
  }
  while (true) {
    // The twins are independent simulations over the same already-appended
    // records — step them concurrently. The scheme twin is the critical
    // path, so it keeps the main thread (and its cache); the helper thread
    // takes the shorter baseline step plus the source prefetch (poll touches
    // no runtime; the staging buffer, queue and appends are only ever used
    // between joins, so nothing is seen by two threads at once).
    auto baseline_future = std::async(std::launch::async, [&] {
      const auto step = twins_->baseline.step_live(until);
      poll_into_queue(poll_horizon);
      return step;
    });
    const auto scheme_step = twins_->scheme.step_live(until);
    const auto baseline_step = baseline_future.get();
    const std::size_t appended = drain_queue();
    if (baseline_step == core::AccessRuntime::StepResult::kReachedTime &&
        scheme_step == core::AccessRuntime::StepResult::kReachedTime) {
      break;
    }
    // The gate starved: the last buffered arrival needs its successor (or an
    // end-of-input promise) before it may dispatch.
    if (appended > 0) continue;
    if (ingest(std::numeric_limits<double>::infinity()) > 0) continue;
    if (source_->exhausted() || (stop != nullptr && stop->load())) {
      if (!input_done_) {
        twins_->finish_input();
        input_done_ = true;
      }
      continue;  // the gate is open; stepping now reaches `until`
    }
    // A live source with nothing buffered yet: wait for bytes.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  account_latency();
}

void LiveController::account_latency() {
  const std::uint64_t consumed = twins_->scheme.arrivals_consumed();
  std::uint64_t newly = consumed - stats_.decided;
  if (newly == 0) return;
  const std::uint64_t now = obs::now_ns();
#ifndef INSOMNIA_OBS_DISABLED
  static obs::Histogram& decision_ns =
      obs::histogram("live.ingest_decision_ns", /*lo=*/100.0, /*hi=*/1e10);
  const bool telemetry = obs::enabled();
#endif
  while (newly > 0) {
    util::require_state(!inflight_stamps_.empty(),
                        "live latency accounting lost an ingest stamp");
    StampRun& run = inflight_stamps_.front();
    const auto slice =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(newly, run.count));
    const std::uint64_t ns = now >= run.stamp_ns ? now - run.stamp_ns : 0;
    latency_.record_n(ns, slice);
#ifndef INSOMNIA_OBS_DISABLED
    if (telemetry) {
      for (std::uint32_t s = 0; s < slice; ++s) {
        decision_ns.record(static_cast<double>(ns));
      }
    }
#endif
    run.count -= slice;
    if (run.count == 0) inflight_stamps_.pop_front();
    newly -= slice;
  }
  stats_.decided = consumed;
}

void LiveController::heartbeat(double virtual_time) {
  if (options_.heartbeat_sec <= 0) return;
  const std::uint64_t now = obs::now_ns();
  if (now < next_heartbeat_ns_) return;
  next_heartbeat_ns_ =
      now + static_cast<std::uint64_t>(options_.heartbeat_sec * 1e9);
  const double wall = static_cast<double>(now - wall_start_ns_) / 1e9;
  std::cerr << "[live] vt " << virtual_time << "s | wall " << wall << "s | ingested "
            << queue_.accepted() << " | decided " << stats_.decided << " | queue "
            << queue_.size() << " (peak " << queue_.peak_depth() << ") | dropped "
            << queue_.dropped() << " | online gw "
            << twins_->scheme.online_gateway_count() << "/"
            << options_.scenario.gateway_count << "\n";
}

LiveResult LiveController::run(const std::atomic<bool>* stop) {
  OBS_SCOPE("live.run");
  util::require_state(twins_ == nullptr, "LiveController::run may be called once");

  const core::SchemeSpec& scheme_spec = core::find_scheme(options_.scheme);
  const core::SchemeSpec& baseline_spec = core::find_scheme("no-sleep");
  const bool gated = options_.pace == PaceMode::kVirtual;
  {
    OBS_SCOPE("live.setup");
    twins_ = std::make_unique<Twins>(options_, baseline_spec, scheme_spec, gated);
  }

  core::RunReport report;
  report.scheme = scheme_spec.name;
  report.scheme_display = scheme_spec.display;
  report.preset = options_.preset_name;
  report.trace_file = options_.trace_file;
  report.seed = options_.seed;
  report.runs = 1;
  report.bins = options_.bins;
  report.peak_start = options_.peak_start;
  report.peak_end = options_.peak_end;
  report.clients = options_.scenario.client_count;
  report.gateways = options_.scenario.gateway_count;

  if (!options_.record_path.empty()) {
    record_out_.open(options_.record_path);
    util::require(static_cast<bool>(record_out_),
                  "cannot write trace record file " + options_.record_path);
    util::CsvWriter writer(record_out_);
    writer.header({"start_time", "client", "bytes"});
  }

  wall_start_ns_ = obs::now_ns();
  next_heartbeat_ns_ =
      wall_start_ns_ + static_cast<std::uint64_t>(options_.heartbeat_sec * 1e9);

  const double day_span = options_.scenario.duration;
  double virtual_time = 0.0;
  bool interrupted = false;

  // Records already on hand land in the buffer before the warm start.
  ingest(options_.pace == PaceMode::kVirtual ? options_.tick_virtual_sec : 0.0);
  twins_->baseline.begin_live();
  twins_->scheme.begin_live();

  if (options_.pace == PaceMode::kVirtual) {
    while (virtual_time < day_span) {
      if (stop != nullptr && stop->load()) {
        interrupted = true;
        break;
      }
      if (options_.max_wall_sec > 0 &&
          static_cast<double>(obs::now_ns() - wall_start_ns_) / 1e9 >=
              options_.max_wall_sec) {
        break;
      }
      virtual_time = std::min(virtual_time + options_.tick_virtual_sec, day_span);
      // Two ticks of poll lookahead: records prefetched during tick N cover
      // past tick N+1's horizon, so N+1 steps through in one round — the
      // gate never starves at a tick boundary waiting for a successor.
      advance_to(virtual_time, virtual_time + 2.0 * options_.tick_virtual_sec, stop);
      ++stats_.ticks;
#ifndef INSOMNIA_OBS_DISABLED
      obs::gauge("live.virtual_time_sec").set(virtual_time);
      obs::gauge("live.online_gateways")
          .set(static_cast<double>(twins_->scheme.online_gateway_count()));
#endif
      heartbeat(virtual_time);
    }
  } else {
    const std::uint64_t start = wall_start_ns_;
    const auto tick_ns = static_cast<std::uint64_t>(options_.tick_wall_sec * 1e9);
    std::uint64_t next_tick = start + tick_ns;
    while (true) {
      if (stop != nullptr && stop->load()) {
        interrupted = true;
        break;
      }
      std::uint64_t now = obs::now_ns();
      if (options_.max_wall_sec > 0 &&
          static_cast<double>(now - start) / 1e9 >= options_.max_wall_sec) {
        break;
      }
      if (now < next_tick) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(next_tick - now));
      } else {
        ++stats_.tick_overruns;
      }
      next_tick += tick_ns;
      now = obs::now_ns();
      const double elapsed = static_cast<double>(now - start) / 1e9;
      virtual_time = std::min(elapsed * options_.speedup, day_span);
      advance_to(virtual_time, virtual_time, stop);
      ++stats_.ticks;
#ifndef INSOMNIA_OBS_DISABLED
      obs::gauge("live.virtual_time_sec").set(virtual_time);
      obs::gauge("live.online_gateways")
          .set(static_cast<double>(twins_->scheme.online_gateway_count()));
#endif
      heartbeat(virtual_time);
      if (virtual_time >= day_span) break;
      if (source_->exhausted() && queue_.empty() &&
          twins_->scheme.arrivals_consumed() == twins_->scheme.arrivals_appended()) {
        break;
      }
    }
  }

  // Graceful drain: every queued record still gets a decision, the day
  // drains for drain_time past the covered span, and the report covers what
  // was actually simulated. An uninterrupted virtual replay has
  // covered == duration and this is exactly run()'s epilogue.
  const double covered = std::max(std::min(virtual_time, day_span), 1e-9);
  if (!input_done_) {
    drain_queue();
    twins_->finish_input();
    input_done_ = true;
  }
  const double drain_end = covered + options_.scenario.drain_time;
  auto baseline_drain = std::async(std::launch::async, [&] {
    return twins_->baseline.step_live(drain_end);
  });
  const auto scheme_step = twins_->scheme.step_live(drain_end);
  const auto baseline_step = baseline_drain.get();
  util::require_state(
      baseline_step == core::AccessRuntime::StepResult::kReachedTime &&
          scheme_step == core::AccessRuntime::StepResult::kReachedTime,
      "live drain stalled with input finished");
  account_latency();
  // The ingest window closes with the last decision; assembling the report
  // below is offline bookkeeping, not part of the streaming path.
  stats_.wall_seconds = static_cast<double>(obs::now_ns() - wall_start_ns_) / 1e9;

  const core::RunMetrics baseline_metrics = twins_->baseline.finish_live(covered);
  record_day_events(baseline_metrics);
  const core::RunMetrics scheme_metrics = twins_->scheme.finish_live(covered);
  record_day_events(scheme_metrics);

  std::vector<core::PairedDaySummary> days;
  days.push_back(core::summarize_paired_day(
      baseline_metrics, scheme_metrics,
      static_cast<std::uint64_t>(twins_->scheme.arrivals_appended()), options_.bins,
      options_.peak_start, options_.peak_end));
  core::fold_paired_days(days, report);

  if (record_out_.is_open()) record_out_.close();

  stats_.interrupted = interrupted;
  stats_.virtual_seconds = covered;
  stats_.ingested = queue_.accepted();
  stats_.dropped = queue_.dropped();
  stats_.peak_queue_depth = queue_.peak_depth();
  stats_.ingest_events_per_sec =
      stats_.wall_seconds > 0 ? static_cast<double>(stats_.ingested) / stats_.wall_seconds
                              : 0.0;
  stats_.latency_samples = latency_.count();
  stats_.latency_p50_ns = latency_.quantile_ns(0.50);
  stats_.latency_p95_ns = latency_.quantile_ns(0.95);
  stats_.latency_p99_ns = latency_.quantile_ns(0.99);
  stats_.latency_max_ns = static_cast<double>(latency_.max_ns());
#ifndef INSOMNIA_OBS_DISABLED
  obs::counter("live.ingest.accepted").add(stats_.ingested);
  obs::counter("live.ingest.dropped").add(stats_.dropped);
  obs::counter("live.ticks").add(stats_.ticks);
  obs::counter("live.tick.overruns").add(stats_.tick_overruns);
  obs::gauge("live.queue.peak_depth").set(static_cast<double>(stats_.peak_queue_depth));
#endif

  return LiveResult{std::move(report), stats_};
}

}  // namespace insomnia::live
