// File-tail EventSource: follows a trace file being written by another
// process, decoding only complete lines via trace::FlowLineDecoder (a row
// split across polls is buffered, never torn). One-pass mode (follow=false)
// reads to end-of-file and stops — the replay path; follow mode keeps
// polling for growth until stop_following() (e.g. on SIGINT). Truncation —
// the file shrinking below what was already consumed — is unrecoverable
// corruption of the stream and refuses loudly.
#pragma once

#include <string>

#include "live/event_source.h"
#include "trace/incremental_reader.h"

namespace insomnia::live {

class TailSource : public EventSource {
 public:
  struct Options {
    std::string path;
    /// Keep polling after end-of-file, waiting for the file to grow. False
    /// reads one pass and exhausts at the current end.
    bool follow = false;
  };

  /// Opens the file; throws util::InvalidArgument when it cannot be read.
  explicit TailSource(Options options);
  ~TailSource() override;

  TailSource(const TailSource&) = delete;
  TailSource& operator=(const TailSource&) = delete;

  std::size_t poll(double horizon, std::size_t max, trace::FlowTrace& out) override;
  bool exhausted() const override;
  std::string describe() const override;

  /// Follow mode: stop waiting for growth — the next poll drains what is on
  /// disk, flushes the decoder, and exhausts.
  void stop_following();

 private:
  /// Reads available bytes (up to one chunk) into the decoder; returns the
  /// byte count, 0 at end-of-file.
  std::size_t read_chunk();

  Options options_;
  int fd_ = -1;
  std::uint64_t consumed_ = 0;  ///< bytes handed to the decoder
  bool finalized_ = false;
  trace::FlowLineDecoder decoder_;
  trace::FlowTrace pending_;     ///< decoded, not yet served
  std::size_t pending_pos_ = 0;  ///< next unserved record in pending_
};

}  // namespace insomnia::live
