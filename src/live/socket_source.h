// Socket EventSource: listens on a UNIX-domain or TCP socket, accepts one
// producer connection, and decodes the same `start_time,client,bytes` CSV
// stream the trace files use (header first) via trace::FlowLineDecoder —
// complete lines only, so a slow or bursty producer can never make the
// controller observe a torn row. The producer closing its end marks the
// stream complete (a final unterminated row is flushed, like end-of-file).
// Everything is non-blocking: poll() returns whatever has arrived.
#pragma once

#include <string>

#include "live/event_source.h"
#include "trace/incremental_reader.h"

namespace insomnia::live {

class SocketSource : public EventSource {
 public:
  struct Options {
    /// UNIX-domain listening socket path; mutually exclusive with tcp_port.
    std::string unix_path;
    /// TCP listening port on 127.0.0.1 (0 picks an ephemeral port; see
    /// port()). -1 selects the UNIX path instead.
    int tcp_port = -1;
  };

  /// Binds and listens; throws util::InvalidArgument on any socket failure
  /// (an existing file at unix_path is replaced — stale sockets from a
  /// killed daemon must not wedge a restart).
  explicit SocketSource(Options options);
  ~SocketSource() override;

  SocketSource(const SocketSource&) = delete;
  SocketSource& operator=(const SocketSource&) = delete;

  std::size_t poll(double horizon, std::size_t max, trace::FlowTrace& out) override;
  bool exhausted() const override;
  std::string describe() const override;

  /// The bound TCP port (resolves port 0), or -1 for a UNIX socket.
  int port() const { return port_; }

 private:
  std::size_t read_available();

  Options options_;
  int listen_fd_ = -1;
  int conn_fd_ = -1;
  int port_ = -1;
  bool peer_closed_ = false;
  trace::FlowLineDecoder decoder_;
  trace::FlowTrace pending_;
  std::size_t pending_pos_ = 0;
};

}  // namespace insomnia::live
