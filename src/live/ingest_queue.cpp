#include "live/ingest_queue.h"

#include <algorithm>

#include "util/error.h"

namespace insomnia::live {

IngestQueue::IngestQueue(std::size_t capacity, OverflowPolicy policy)
    : capacity_(capacity), policy_(policy) {
  util::require(capacity >= 1, "ingest queue needs capacity >= 1");
}

std::size_t IngestQueue::push_batch(const trace::FlowRecord* records, std::size_t count,
                                    std::uint64_t stamp_ns) {
  const std::size_t room = free_slots();
  const std::size_t taken = std::min(count, room);
  if (taken < count) {
    util::require_state(policy_ == OverflowPolicy::kDropNewest,
                        "backpressure ingest queue overfilled — poll must honour "
                        "free_slots()");
    dropped_ += count - taken;
  }
  if (taken == 0) return 0;
  records_.insert(records_.end(), records, records + taken);
  if (!stamps_.empty() && stamps_.back().stamp_ns == stamp_ns) {
    stamps_.back().count += static_cast<std::uint32_t>(taken);
  } else {
    stamps_.push_back({stamp_ns, static_cast<std::uint32_t>(taken)});
  }
  accepted_ += taken;
  peak_depth_ = std::max(peak_depth_, records_.size());
  return taken;
}

std::size_t IngestQueue::pop(std::size_t max, trace::FlowTrace& records,
                             std::deque<StampRun>& stamps) {
  const std::size_t taken = std::min(max, records_.size());
  if (taken == 0) return 0;
  records.insert(records.end(), records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(taken));
  records_.erase(records_.begin(), records_.begin() + static_cast<std::ptrdiff_t>(taken));
  std::size_t remaining = taken;
  while (remaining > 0) {
    StampRun& head = stamps_.front();
    const std::uint32_t slice =
        static_cast<std::uint32_t>(std::min<std::size_t>(remaining, head.count));
    if (!stamps.empty() && stamps.back().stamp_ns == head.stamp_ns) {
      stamps.back().count += slice;
    } else {
      stamps.push_back({head.stamp_ns, slice});
    }
    head.count -= slice;
    if (head.count == 0) stamps_.pop_front();
    remaining -= slice;
  }
  return taken;
}

}  // namespace insomnia::live
