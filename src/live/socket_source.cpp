#include "live/socket_source.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.h"

namespace insomnia::live {

namespace {

constexpr std::size_t kChunkBytes = 1 << 16;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  util::require_state(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                      "cannot set socket non-blocking");
}

}  // namespace

SocketSource::SocketSource(Options options) : options_(std::move(options)) {
  const bool tcp = options_.tcp_port >= 0;
  util::require(tcp || !options_.unix_path.empty(),
                "socket source needs a UNIX path or a TCP port");
  listen_fd_ = ::socket(tcp ? AF_INET : AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  util::require(listen_fd_ >= 0,
                std::string("cannot create socket (") + std::strerror(errno) + ")");
  if (tcp) {
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    util::require(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                  "cannot bind tcp port " + std::to_string(options_.tcp_port) + " (" +
                      std::strerror(errno) + ")");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    util::require_state(
        ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
        "getsockname failed");
    port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    util::require(options_.unix_path.size() < sizeof(addr.sun_path),
                  "unix socket path too long: " + options_.unix_path);
    std::strncpy(addr.sun_path, options_.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());  // a stale socket must not wedge a restart
    util::require(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                  "cannot bind unix socket " + options_.unix_path + " (" +
                      std::strerror(errno) + ")");
  }
  util::require(::listen(listen_fd_, 1) == 0,
                std::string("cannot listen (") + std::strerror(errno) + ")");
  set_nonblocking(listen_fd_);
}

SocketSource::~SocketSource() {
  if (conn_fd_ >= 0) ::close(conn_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (options_.tcp_port < 0 && !options_.unix_path.empty()) {
    ::unlink(options_.unix_path.c_str());
  }
}

std::size_t SocketSource::read_available() {
  if (conn_fd_ < 0) {
    conn_fd_ = ::accept(listen_fd_, nullptr, nullptr);
    if (conn_fd_ < 0) return 0;  // nobody connected yet
    set_nonblocking(conn_fd_);
  }
  std::size_t total = 0;
  while (!peer_closed_) {
    char buffer[kChunkBytes];
    const ssize_t n = ::read(conn_fd_, buffer, sizeof(buffer));
    if (n > 0) {
      total += static_cast<std::size_t>(n);
      decoder_.feed(std::string_view(buffer, static_cast<std::size_t>(n)), pending_);
      continue;
    }
    if (n == 0) {
      // Peer closed: the stream is complete; flush like end-of-file.
      peer_closed_ = true;
      decoder_.finalize(pending_);
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    util::require_state(errno == EINTR, std::string("socket read failed (") +
                                            std::strerror(errno) + ")");
  }
  return total;
}

std::size_t SocketSource::poll(double /*horizon*/, std::size_t max, trace::FlowTrace& out) {
  if (!peer_closed_) read_available();
  std::size_t served = 0;
  while (served < max && pending_pos_ < pending_.size()) {
    out.push_back(pending_[pending_pos_++]);
    ++served;
  }
  if (pending_pos_ == pending_.size() && pending_pos_ > 0) {
    pending_.clear();
    pending_pos_ = 0;
  }
  return served;
}

bool SocketSource::exhausted() const {
  return peer_closed_ && pending_pos_ >= pending_.size();
}

std::string SocketSource::describe() const {
  return options_.tcp_port >= 0 ? "tcp 127.0.0.1:" + std::to_string(port_)
                                : "unix " + options_.unix_path;
}

}  // namespace insomnia::live
