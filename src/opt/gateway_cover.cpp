#include "opt/gateway_cover.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/error.h"

namespace insomnia::opt {

namespace {

/// Users with positive demand, sorted by a caller-chosen key.
std::vector<std::size_t> active_users(const GatewayCoverProblem& problem) {
  std::vector<std::size_t> ids;
  for (std::size_t u = 0; u < problem.users.size(); ++u) {
    if (problem.users[u].demand > 0.0) ids.push_back(u);
  }
  return ids;
}

bool user_can_use(const GatewayCoverProblem& problem, std::size_t user, int gateway) {
  const auto& feasible = problem.users[user].feasible;
  return std::find(feasible.begin(), feasible.end(), gateway) != feasible.end();
}

/// First-fit-decreasing packing of `users` into `residual` capacities over
/// the open set. Returns per-user gateway or empty on failure. Does not
/// mutate residual on failure.
std::vector<int> pack_users(const GatewayCoverProblem& problem,
                            const std::vector<std::size_t>& users,
                            const std::vector<int>& open, std::vector<double>& residual) {
  std::vector<std::size_t> order = users;
  std::sort(order.begin(), order.end(), [&problem](std::size_t a, std::size_t b) {
    return problem.users[a].demand > problem.users[b].demand;
  });
  std::vector<double> scratch = residual;
  std::vector<int> chosen(users.size(), -1);
  std::vector<int> by_user(problem.users.size(), -1);
  for (std::size_t u : order) {
    int best = -1;
    double best_residual = -1.0;
    for (int j : open) {
      if (!user_can_use(problem, u, j)) continue;
      const double r = scratch[static_cast<std::size_t>(j)];
      if (r >= problem.users[u].demand && r > best_residual) {
        best = j;
        best_residual = r;
      }
    }
    if (best < 0) return {};
    scratch[static_cast<std::size_t>(best)] -= problem.users[u].demand;
    by_user[u] = best;
  }
  residual = scratch;
  for (std::size_t i = 0; i < users.size(); ++i) chosen[i] = by_user[users[i]];
  return chosen;
}

}  // namespace

bool is_feasible(const GatewayCoverProblem& problem, const GatewayCoverSolution& solution) {
  if (!solution.feasible) return false;
  if (solution.assignment.size() != problem.users.size()) return false;
  std::vector<double> used(problem.capacity.size(), 0.0);
  for (std::size_t u = 0; u < problem.users.size(); ++u) {
    const int j = solution.assignment[u];
    if (problem.users[u].demand <= 0.0) continue;
    if (j < 0 || j >= static_cast<int>(problem.capacity.size())) return false;
    if (std::find(solution.open.begin(), solution.open.end(), j) == solution.open.end()) {
      return false;
    }
    if (!user_can_use(problem, u, j)) return false;
    used[static_cast<std::size_t>(j)] += problem.users[u].demand;
  }
  for (std::size_t j = 0; j < used.size(); ++j) {
    if (used[j] > problem.capacity[j] * (1.0 + 1e-9)) return false;
  }
  return true;
}

GatewayCoverSolution solve_greedy(const GatewayCoverProblem& problem) {
  GatewayCoverSolution solution;
  solution.assignment.assign(problem.users.size(), -1);

  std::vector<std::size_t> unassigned = active_users(problem);
  std::vector<double> residual = problem.capacity;
  std::vector<bool> open_flag(problem.capacity.size(), false);

  // Folds any unassigned user into an already-open gateway with spare
  // capacity (cheapest users first, best-fit target).
  auto absorb_into_open = [&] {
    std::sort(unassigned.begin(), unassigned.end(),
              [&problem](std::size_t a, std::size_t b) {
                return problem.users[a].demand < problem.users[b].demand;
              });
    for (auto it = unassigned.begin(); it != unassigned.end();) {
      int best = -1;
      double best_residual = -1.0;
      for (int j : problem.users[*it].feasible) {
        if (!open_flag[static_cast<std::size_t>(j)]) continue;
        const double r = residual[static_cast<std::size_t>(j)];
        if (r >= problem.users[*it].demand && r > best_residual) {
          best = j;
          best_residual = r;
        }
      }
      if (best >= 0) {
        solution.assignment[*it] = best;
        residual[static_cast<std::size_t>(best)] -= problem.users[*it].demand;
        it = unassigned.erase(it);
      } else {
        ++it;
      }
    }
  };

  while (!unassigned.empty()) {
    absorb_into_open();
    if (unassigned.empty()) break;
    // Score each closed gateway: how many unassigned users (cheapest first)
    // it could absorb within its capacity.
    int best_gateway = -1;
    std::size_t best_count = 0;
    double best_demand = 0.0;
    std::vector<std::size_t> best_take;
    for (int j = 0; j < static_cast<int>(problem.capacity.size()); ++j) {
      if (open_flag[static_cast<std::size_t>(j)]) continue;
      std::vector<std::size_t> takers;
      for (std::size_t u : unassigned) {
        if (user_can_use(problem, u, j)) takers.push_back(u);
      }
      std::sort(takers.begin(), takers.end(), [&problem](std::size_t a, std::size_t b) {
        return problem.users[a].demand < problem.users[b].demand;
      });
      double room = problem.capacity[static_cast<std::size_t>(j)];
      std::vector<std::size_t> take;
      double taken_demand = 0.0;
      for (std::size_t u : takers) {
        if (problem.users[u].demand > room) break;
        room -= problem.users[u].demand;
        taken_demand += problem.users[u].demand;
        take.push_back(u);
      }
      if (take.size() > best_count ||
          (take.size() == best_count && taken_demand > best_demand)) {
        best_gateway = j;
        best_count = take.size();
        best_demand = taken_demand;
        best_take = std::move(take);
      }
    }
    if (best_gateway < 0 || best_count == 0) {
      // Some user cannot be served by any remaining gateway.
      solution.feasible = false;
      return solution;
    }
    open_flag[static_cast<std::size_t>(best_gateway)] = true;
    for (std::size_t u : best_take) {
      solution.assignment[u] = best_gateway;
      residual[static_cast<std::size_t>(best_gateway)] -= problem.users[u].demand;
      unassigned.erase(std::remove(unassigned.begin(), unassigned.end(), u), unassigned.end());
    }
  }

  // Local search: try to close each open gateway by re-packing its users
  // into the other open gateways.
  bool improved = true;
  while (improved) {
    improved = false;
    std::vector<int> open;
    for (int j = 0; j < static_cast<int>(open_flag.size()); ++j) {
      if (open_flag[static_cast<std::size_t>(j)]) open.push_back(j);
    }
    // Try the most lightly-loaded gateways first.
    std::vector<double> load(problem.capacity.size(), 0.0);
    for (std::size_t u = 0; u < problem.users.size(); ++u) {
      if (solution.assignment[u] >= 0) {
        load[static_cast<std::size_t>(solution.assignment[u])] += problem.users[u].demand;
      }
    }
    std::sort(open.begin(), open.end(),
              [&load](int a, int b) { return load[static_cast<std::size_t>(a)] <
                                             load[static_cast<std::size_t>(b)]; });
    for (int victim : open) {
      std::vector<std::size_t> movers;
      for (std::size_t u = 0; u < problem.users.size(); ++u) {
        if (solution.assignment[u] == victim) movers.push_back(u);
      }
      std::vector<int> others;
      std::vector<double> others_residual = problem.capacity;
      for (int j : open) {
        if (j != victim && open_flag[static_cast<std::size_t>(j)]) others.push_back(j);
      }
      for (std::size_t u = 0; u < problem.users.size(); ++u) {
        const int j = solution.assignment[u];
        if (j >= 0 && j != victim) {
          others_residual[static_cast<std::size_t>(j)] -= problem.users[u].demand;
        }
      }
      if (movers.empty()) {
        open_flag[static_cast<std::size_t>(victim)] = false;
        improved = true;
        break;
      }
      const std::vector<int> packed = pack_users(problem, movers, others, others_residual);
      if (packed.size() == movers.size()) {
        for (std::size_t i = 0; i < movers.size(); ++i) {
          solution.assignment[movers[i]] = packed[i];
        }
        open_flag[static_cast<std::size_t>(victim)] = false;
        improved = true;
        break;
      }
    }
  }

  for (int j = 0; j < static_cast<int>(open_flag.size()); ++j) {
    if (open_flag[static_cast<std::size_t>(j)]) solution.open.push_back(j);
  }
  solution.feasible = true;
  util::require_state(is_feasible(problem, solution), "greedy produced infeasible solution");
  return solution;
}

namespace {

/// DFS assigning users (hardest first) to open-or-new gateways.
struct ExactSearch {
  const GatewayCoverProblem& problem;
  std::vector<std::size_t> order;     // user visit order
  std::vector<double> residual;
  std::vector<int> open_count_by_id;  // users assigned per gateway (0 = closed)
  std::vector<int> assignment;        // per user
  int open_now = 0;
  int best = std::numeric_limits<int>::max();
  std::vector<int> best_assignment;
  std::uint64_t nodes = 0;
  std::uint64_t budget;
  bool exhausted_budget = false;

  ExactSearch(const GatewayCoverProblem& p, std::uint64_t node_budget)
      : problem(p),
        residual(p.capacity),
        open_count_by_id(p.capacity.size(), 0),
        assignment(p.users.size(), -1),
        budget(node_budget) {}

  void run() {
    order = active_users(problem);
    std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
      return problem.users[a].demand > problem.users[b].demand;
    });
    dfs(0);
  }

  void dfs(std::size_t depth) {
    if (++nodes > budget) {
      exhausted_budget = true;
      return;
    }
    if (open_now >= best) return;  // cannot improve
    if (depth == order.size()) {
      best = open_now;
      best_assignment = assignment;
      return;
    }
    const std::size_t user = order[depth];
    // First try already-open gateways (no cost), then closed ones. Among
    // closed ones, identical choices are symmetric; trying each feasible
    // closed gateway once is still exact and the budget bounds the work.
    for (int pass = 0; pass < 2 && !exhausted_budget; ++pass) {
      for (int j : problem.users[user].feasible) {
        const bool is_open = open_count_by_id[static_cast<std::size_t>(j)] > 0;
        if ((pass == 0) != is_open) continue;
        if (residual[static_cast<std::size_t>(j)] < problem.users[user].demand) continue;
        residual[static_cast<std::size_t>(j)] -= problem.users[user].demand;
        ++open_count_by_id[static_cast<std::size_t>(j)];
        if (open_count_by_id[static_cast<std::size_t>(j)] == 1) ++open_now;
        assignment[user] = j;
        dfs(depth + 1);
        assignment[user] = -1;
        if (open_count_by_id[static_cast<std::size_t>(j)] == 1) --open_now;
        --open_count_by_id[static_cast<std::size_t>(j)];
        residual[static_cast<std::size_t>(j)] += problem.users[user].demand;
      }
    }
  }
};

}  // namespace

ExactResult solve_exact(const GatewayCoverProblem& problem, std::uint64_t node_budget) {
  ExactResult result;
  // Seed the incumbent with the greedy solution so pruning bites early.
  GatewayCoverSolution greedy = solve_greedy(problem);
  ExactSearch search(problem, node_budget);
  if (greedy.feasible) {
    search.best = greedy.online_count() + 1;  // allow matching-or-better proof
  }
  search.run();
  result.explored_nodes = search.nodes;

  if (!search.best_assignment.empty()) {
    GatewayCoverSolution exact;
    exact.feasible = true;
    exact.assignment = search.best_assignment;
    std::vector<bool> open_flag(problem.capacity.size(), false);
    for (std::size_t u = 0; u < problem.users.size(); ++u) {
      if (exact.assignment[u] >= 0) {
        open_flag[static_cast<std::size_t>(exact.assignment[u])] = true;
      }
    }
    for (int j = 0; j < static_cast<int>(open_flag.size()); ++j) {
      if (open_flag[static_cast<std::size_t>(j)]) exact.open.push_back(j);
    }
    result.solution = std::move(exact);
    result.proven_optimal = !search.exhausted_budget;
  } else {
    result.solution = std::move(greedy);
    result.proven_optimal = false;
  }
  return result;
}

}  // namespace insomnia::opt
