// Solvers for the paper's Eq. (1): minimise the number of online gateways
// subject to (i) every active user assigned to a gateway it can reach at
// its demand, and (ii) gateway capacity q*c_j. The decision problem is
// NP-complete (SET-COVER), so the per-minute "Optimal" re-solves use a
// greedy cover with closing-based local search; an exact branch-and-bound
// is provided for small instances and for bounding the heuristic's gap in
// tests.
#pragma once

#include <cstdint>
#include <vector>

namespace insomnia::opt {

/// One user's demand and the gateways that could serve it (those with
/// wireless capacity w_ij >= demand, per the second constraint of Eq. (1)).
struct UserDemand {
  double demand = 0.0;          ///< bits/s the user currently needs
  std::vector<int> feasible;    ///< gateway ids able to carry the demand
};

/// A gateway-minimisation instance.
struct GatewayCoverProblem {
  std::vector<double> capacity;   ///< per gateway: q * c_j (bits/s)
  std::vector<UserDemand> users;  ///< only users with demand > 0 need cover
};

/// A (possibly suboptimal) solution.
struct GatewayCoverSolution {
  bool feasible = false;
  std::vector<int> open;        ///< online gateways, ascending
  std::vector<int> assignment;  ///< per user: gateway id, or -1 if demand 0
  int online_count() const { return static_cast<int>(open.size()); }
};

/// Greedy set-cover with capacity awareness followed by a local search that
/// tries to close each open gateway by re-packing its users elsewhere.
/// Runs in polynomial time; used by the per-minute Optimal re-solve.
GatewayCoverSolution solve_greedy(const GatewayCoverProblem& problem);

/// Exact branch-and-bound minimisation. Intended for small instances
/// (tests, ablations); gives up and returns the greedy solution flagged
/// feasible-but-unproven after `node_budget` search nodes.
struct ExactResult {
  GatewayCoverSolution solution;
  bool proven_optimal = false;
  std::uint64_t explored_nodes = 0;
};
ExactResult solve_exact(const GatewayCoverProblem& problem, std::uint64_t node_budget = 2'000'000);

/// Checks feasibility of `solution` against `problem` (used by tests and
/// by the runtime as a defensive invariant).
bool is_feasible(const GatewayCoverProblem& problem, const GatewayCoverSolution& solution);

}  // namespace insomnia::opt
