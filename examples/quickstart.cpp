// Quickstart: build a small neighbourhood, replay one synthetic day under
// Sleep-on-Idle and under BH2 + k-switching, and compare energy and QoS.
//
//   $ ./build/example_quickstart [clients] [gateways]
//
// This walks through the library's core workflow:
//   1. describe the scenario        (core::ScenarioConfig)
//   2. generate topology + traffic  (topo::, trace::)
//   3. run registered schemes       (core::run_scheme + core/scheme_registry.h)
//   4. read the metrics             (core::RunMetrics, core::savings_fraction)
#include <cstdlib>
#include <iostream>

#include "core/metrics.h"
#include "core/schemes.h"
#include "stats/cdf.h"
#include "topology/access_topology.h"
#include "trace/synthetic_crawdad.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;

  // 1. Scenario: paper defaults scaled down so the example runs in seconds.
  ScenarioConfig scenario;
  scenario.client_count = argc > 1 ? std::atoi(argv[1]) : 68;
  scenario.gateway_count = argc > 2 ? std::atoi(argv[2]) : 10;
  scenario.degrees.node_count = scenario.gateway_count;
  scenario.traffic.client_count = scenario.client_count;
  scenario.dslam.line_cards = 4;
  scenario.dslam.ports_per_card = 3;

  std::cout << "Scenario: " << scenario.client_count << " clients, "
            << scenario.gateway_count << " gateways, 6 Mbps ADSL, one day\n\n";

  // 2. One fixed overlap topology and one day of traffic, shared by both
  //    schemes (paired comparison).
  sim::Random rng(2026);
  const topo::AccessTopology topology =
      topo::make_overlap_topology(scenario.client_count, scenario.degrees, rng);
  const trace::FlowTrace flows =
      trace::SyntheticCrawdadGenerator(scenario.traffic).generate(rng);
  std::cout << "Generated " << flows.size() << " flows; mean gateways in range "
            << util::format_fixed(topology.mean_gateways_per_client(), 1) << "\n\n";

  // 3. Run the baseline and the two schemes, selected by registry name.
  const RunMetrics baseline = run_scheme(scenario, topology, flows, "no-sleep", 1);
  const RunMetrics soi = run_scheme(scenario, topology, flows, "soi", 1);
  const RunMetrics bh2 = run_scheme(scenario, topology, flows, "bh2-kswitch", 1);

  // 4. Report.
  auto report = [&](const char* name, const RunMetrics& m) {
    const auto fct = completion_time_increase(m, baseline);
    const stats::EmpiricalCdf cdf(fct);
    std::cout << name << "\n"
              << "  energy savings vs no-sleep : "
              << util::format_percent(savings_fraction(m, baseline, 0.0, m.duration), 1) << "\n"
              << "  gateway wake-ups           : " << m.gateway_wake_events << "\n"
              << "  flows slowed by >1%        : "
              << util::format_percent(
                     fct.empty() ? 0.0 : 1.0 - cdf.fraction_at_or_below(0.01), 2)
              << "\n\n";
  };
  report("Sleep-on-Idle", soi);
  report("BH2 + k-switch", bh2);

  std::cout << "BH2 aggregates users onto few gateways: it saves far more energy\n"
               "and pays fewer 60 s wake-up stalls than plain SoI, at the price of\n"
               "mild slowdowns from sharing the aggregation gateways' backhaul.\n";
  return 0;
}
