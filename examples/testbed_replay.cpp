// Replays the §5.3 live-deployment experiment: 9 gateways across three
// floors, one terminal per gateway replaying a traced AP's clients, at most
// 3 gateways in range, 15:00-15:30. Prints the per-minute online-AP count
// for SoI vs BH2 (no backup), like Fig. 12.
//
//   $ ./build/example_testbed_replay [runs]
#include <cstdlib>
#include <iostream>

#include "core/testbed.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;

  TestbedConfig config;
  config.runs = argc > 1 ? std::atoi(argv[1]) : 5;

  std::cout << "Testbed: " << config.gateway_count << " gateways, "
            << config.max_gateways_in_range << " reachable per terminal, "
            << "3 Mbps ADSL, window 15:00-15:30, " << config.runs << " runs\n\n";

  const TestbedResult result = run_testbed_emulation(config);

  util::TextTable table;
  table.set_header({"minute", "SoI online", "BH2 online"});
  for (std::size_t minute = 0; minute < result.soi_online.size(); ++minute) {
    table.add_row({std::to_string(minute + 1),
                   util::format_fixed(result.soi_online[minute], 2),
                   util::format_fixed(result.bh2_online[minute], 2)});
  }
  table.print(std::cout);

  std::cout << "\naverage sleeping APs: BH2 " << util::format_fixed(result.bh2_mean_sleeping, 2)
            << " of 9, SoI " << util::format_fixed(result.soi_mean_sleeping, 2)
            << " of 9 (paper: 5.46 vs 3.72)\n";
  return 0;
}
