// Simulates one day of a configurable neighbourhood under a chosen scheme
// and writes CSV time series (power draw, online gateways, online cards) to
// stdout — ready for plotting.
//
//   $ ./build/example_neighborhood_day [scheme] [bins]
//     scheme: any registered name (see core/scheme_registry.h), e.g.
//             no-sleep | soi | soi-kswitch | bh2-kswitch | bh2-jitter |
//             multilevel-doze | optimal; short aliases nosleep/soi-k/bh2/
//             bh2-nobackup/bh2-full keep working
//     bins:   number of day bins (default 96 = 15 min)
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "core/report.h"
#include "core/scheme_registry.h"
#include "topology/access_topology.h"
#include "trace/synthetic_crawdad.h"
#include "util/error.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;

  // Legacy spellings from before the registry existed.
  const std::map<std::string, std::string> aliases{{"nosleep", "no-sleep"},
                                                   {"soi-k", "soi-kswitch"},
                                                   {"bh2", "bh2-kswitch"},
                                                   {"bh2-nobackup", "bh2-nobackup-kswitch"},
                                                   {"bh2-full", "bh2-fullswitch"}};

  std::string name = argc > 1 ? argv[1] : "bh2-kswitch";
  const std::size_t bins = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 96;
  const auto alias = aliases.find(name);
  if (alias != aliases.end()) name = alias->second;

  const SchemeSpec* spec = nullptr;
  try {
    spec = &find_scheme(name);
  } catch (const util::InvalidArgument& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }

  ScenarioConfig scenario;  // the full §5.1 neighbourhood
  sim::Random rng(2026);
  const topo::AccessTopology topology =
      topo::make_overlap_topology(scenario.client_count, scenario.degrees, rng);
  const trace::FlowTrace flows =
      trace::SyntheticCrawdadGenerator(scenario.traffic).generate(rng);
  const RunMetrics metrics = run_scheme(scenario, topology, flows, *spec, 7);
  write_run_csv(std::cout, metrics, bins, "scheme: " + spec->display);
  return 0;
}
