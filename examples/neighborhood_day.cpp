// Simulates one day of a configurable neighbourhood under a chosen scheme
// and writes CSV time series (power draw, online gateways, online cards) to
// stdout — ready for plotting.
//
//   $ ./build/example_neighborhood_day [scheme] [bins]
//     scheme: nosleep | soi | soi-k | bh2 | bh2-nobackup | bh2-full | optimal
//     bins:   number of day bins (default 96 = 15 min)
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "core/report.h"
#include "core/schemes.h"
#include "topology/access_topology.h"
#include "trace/synthetic_crawdad.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;

  const std::map<std::string, SchemeKind> by_name{
      {"nosleep", SchemeKind::kNoSleep},
      {"soi", SchemeKind::kSoi},
      {"soi-k", SchemeKind::kSoiKSwitch},
      {"bh2", SchemeKind::kBh2KSwitch},
      {"bh2-nobackup", SchemeKind::kBh2NoBackupKSwitch},
      {"bh2-full", SchemeKind::kBh2FullSwitch},
      {"optimal", SchemeKind::kOptimal}};

  const std::string name = argc > 1 ? argv[1] : "bh2";
  const std::size_t bins = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 96;
  const auto it = by_name.find(name);
  if (it == by_name.end()) {
    std::cerr << "unknown scheme '" << name << "'; options:";
    for (const auto& [key, kind] : by_name) std::cerr << " " << key;
    std::cerr << "\n";
    return 1;
  }

  ScenarioConfig scenario;  // the full §5.1 neighbourhood
  sim::Random rng(2026);
  const topo::AccessTopology topology =
      topo::make_overlap_topology(scenario.client_count, scenario.degrees, rng);
  const trace::FlowTrace flows =
      trace::SyntheticCrawdadGenerator(scenario.traffic).generate(rng);
  const RunMetrics metrics = run_scheme(scenario, topology, flows, it->second, 7);
  write_run_csv(std::cout, metrics, bins, "scheme: " + scheme_name(it->second));
  return 0;
}
