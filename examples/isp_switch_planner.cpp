// ISP-side planning tool: given the line-card size (m modems) and the
// expected fraction of active lines (p, e.g. what BH2 leaves awake), how
// big must the HDF k-switches be to put a target share of line cards to
// sleep? Uses the §4.2 analytic model (corrected binomial form).
//
//   $ ./build/example_isp_switch_planner [m] [p] [target_share]
#include <cstdlib>
#include <iostream>

#include "dslam/sleep_model.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace insomnia;

  const int m = argc > 1 ? std::atoi(argv[1]) : 24;
  const double p = argc > 2 ? std::atof(argv[2]) : 0.5;
  const double target = argc > 3 ? std::atof(argv[3]) : 0.30;

  std::cout << "Line cards with m = " << m << " modems; line active probability p = " << p
            << "; target: sleep " << util::format_percent(target, 0)
            << " of cards.\n\n";

  util::TextTable table;
  table.set_header({"k", "expected sleeping cards / k", "share", "meets target"});
  int recommended = -1;
  for (int k : {2, 4, 8, 16, 32}) {
    const double sleeping = dslam::expected_sleeping_cards(k, m, p);
    const double share = sleeping / k;
    if (recommended < 0 && share >= target) recommended = k;
    table.add_row({std::to_string(k), util::format_fixed(sleeping, 2),
                   util::format_percent(share, 1), share >= target ? "yes" : "no"});
  }
  table.print(std::cout);

  const double full = dslam::full_switch_expected_sleeping_cards(8, m, p) / 8.0;
  std::cout << "\nfull switching would sleep " << util::format_percent(full, 1)
            << " of cards (upper bound)\n";
  if (recommended > 0) {
    std::cout << "recommendation: k = " << recommended
              << " (smallest switch meeting the target)\n";
  } else {
    std::cout << "no k up to 32 meets the target — lower p first (aggregate harder, e.g."
                 " deploy BH2) or accept a smaller share.\n";
  }
  return 0;
}
