// Explores the DSL physical-layer model directly: builds a 24-pair binder,
// then shows per-line sync rates as neighbouring lines power off — the
// §6 "crosstalk bonus" at the API level.
//
//   $ ./build/example_crosstalk_study [loop_length_m] [plan_mbps]
#include <cstdlib>
#include <iostream>

#include "dsl/bitloading.h"
#include "dsl/crosstalk.h"
#include "sim/random.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace insomnia;

  const double length = argc > 1 ? std::atof(argv[1]) : 600.0;
  const double plan_mbps = argc > 2 ? std::atof(argv[2]) : 62.0;

  // 24 equal-length lines on the two binder rings (pair 0 is the unused
  // centre position).
  std::vector<dsl::LineConfig> lines;
  for (int i = 0; i < 24; ++i) lines.push_back({length, i + 1});
  const dsl::Vdsl2Parameters params = dsl::Vdsl2Parameters::profile_17a();
  const dsl::CrosstalkModel model(lines, params);
  const dsl::ServiceProfile profile{"custom plan", plan_mbps * 1e6};

  std::cout << "Binder of 24 lines, " << length << " m loops, " << params.name << ", plan "
            << plan_mbps << " Mbps\n\n";

  util::TextTable table;
  table.set_header({"active lines", "victim sync Mbps", "attainable Mbps", "capped"});
  std::vector<bool> active(24, true);
  sim::Random rng(1);
  std::vector<int> order;
  for (int i = 1; i < 24; ++i) order.push_back(i);  // victim is line 0
  rng.shuffle(order);

  int remaining = 24;
  std::size_t next_off = 0;
  while (true) {
    const dsl::SyncResult sync = dsl::sync_line(model, 0, active, profile);
    table.add_row({std::to_string(remaining),
                   util::format_fixed(sync.sync_rate_bps / 1e6, 2),
                   util::format_fixed(sync.attainable_rate_bps / 1e6, 2),
                   sync.capped ? "yes" : "no"});
    if (remaining <= 4) break;
    // Power off four more neighbours.
    for (int i = 0; i < 4 && next_off < order.size(); ++i) {
      active[static_cast<std::size_t>(order[next_off++])] = false;
      --remaining;
    }
  }
  table.print(std::cout);

  std::cout << "\nEach powered-off neighbour removes FEXT noise, so the victim's\n"
               "bit-loading rises until the service-profile cap binds (§6).\n";
  return 0;
}
