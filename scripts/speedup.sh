#!/usr/bin/env sh
# Measures the parallel experiment engine's wall-clock scaling: runs the
# Fig. 6 main experiment serially (INSOMNIA_THREADS=1) and with N threads,
# then prints the speedup. Results are bit-identical by construction (see
# tests/test_exec_determinism.cpp); this script checks the other half of the
# contract — that wall-clock actually scales with cores.
#
# Usage: scripts/speedup.sh [build-dir] [threads]
#   build-dir  default: build
#   threads    default: nproc
#   SPEEDUP_MIN  when set (e.g. 3.0), exit nonzero below that speedup.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
threads=${2:-$(nproc 2>/dev/null || echo 4)}
driver="$build_dir/fig06_energy_savings"

[ -x "$driver" ] || { echo "error: $driver not built (run scripts/check.sh first)" >&2; exit 2; }

runs=${INSOMNIA_RUNS:-8}

# GNU date has nanosecond %N; BSD/macOS date prints a literal "N" — fall
# back to second granularity there (still fine for multi-second runs).
if [ "$(date +%N)" != "N" ] 2>/dev/null; then
  now_ms() { echo $(( $(date +%s%N) / 1000000 )); }
else
  now_ms() { echo $(( $(date +%s) * 1000 )); }
fi

elapsed_ms() {
  start=$(now_ms)
  INSOMNIA_RUNS="$runs" INSOMNIA_THREADS="$1" "$driver" > /dev/null
  end=$(now_ms)
  ms=$(( end - start ))
  [ "$ms" -ge 1 ] || ms=1   # guard the ratio against sub-resolution runs
  echo "$ms"
}

echo "fig06_energy_savings, $runs paired runs"
serial_ms=$(elapsed_ms 1)
echo "  1 thread : ${serial_ms} ms"
parallel_ms=$(elapsed_ms "$threads")
echo "  $threads threads: ${parallel_ms} ms"

speedup=$(awk "BEGIN { printf \"%.2f\", $serial_ms / $parallel_ms }")
echo "  speedup  : ${speedup}x"

if [ -n "${SPEEDUP_MIN:-}" ]; then
  awk "BEGIN { exit !($speedup >= $SPEEDUP_MIN) }" || {
    echo "error: speedup ${speedup}x below required ${SPEEDUP_MIN}x" >&2
    exit 1
  }
fi
