#!/usr/bin/env sh
# Repeatable single-machine perf baseline: builds Release and runs the
# bench/day_throughput harness (paired no-sleep + BH2 days across the four
# scenario presets), leaving BENCH_day_throughput.json at the repo root.
# The JSON is this repo's tracked perf trajectory — compare events_per_sec
# across commits measured on the same machine.
#
# Usage: scripts/perfbench.sh [--smoke] [--engine ENGINE] [build-dir]
#   --smoke    CI mode: one paired day per preset, then validate the JSON
#              shape (events/sec > 0) instead of gating on wall clock —
#              hosted runners are too noisy for absolute thresholds. Smoke
#              output goes to <build-dir>/BENCH_day_throughput.json so a
#              routine check.sh run never clobbers the committed repo-root
#              snapshot (which only a full run refreshes, deliberately).
#   --engine ENGINE
#              fluid engine to measure: incremental (default) or reference.
#              Exported as INSOMNIA_FLOW_ENGINE; the harness records the
#              engine name in the JSON so snapshots are self-describing.
#   build-dir  default: build
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
smoke=0
engine=""
build_dir="$repo_root/build"
expect_engine=0
for arg in "$@"; do
  if [ "$expect_engine" -eq 1 ]; then
    engine="$arg"
    expect_engine=0
    continue
  fi
  case "$arg" in
    --smoke) smoke=1 ;;
    --engine) expect_engine=1 ;;
    --engine=*) engine="${arg#--engine=}" ;;
    *) build_dir="$arg" ;;
  esac
done
[ "$expect_engine" -eq 0 ] || { echo "error: --engine needs a value" >&2; exit 1; }
if [ -n "$engine" ]; then
  case "$engine" in
    reference|incremental) ;;
    *) echo "error: --engine must be 'reference' or 'incremental'" >&2; exit 1 ;;
  esac
  INSOMNIA_FLOW_ENGINE="$engine"
  export INSOMNIA_FLOW_ENGINE
fi
jobs=$(nproc 2>/dev/null || echo 4)

cmake -B "$build_dir" -S "$repo_root" > /dev/null
cmake --build "$build_dir" -j "$jobs" --target day_throughput > /dev/null

if [ "$smoke" -eq 1 ]; then
  out="$build_dir/BENCH_day_throughput.json"
  "$build_dir/day_throughput" --smoke --out "$out"
else
  out="$repo_root/BENCH_day_throughput.json"
  "$build_dir/day_throughput" --out "$out"
fi

# Validate the artefact: actually parseable JSON with the right tag, and
# the harness simulated something (events/sec strictly positive).
[ -s "$out" ] || { echo "error: $out missing or empty" >&2; exit 1; }
events=$(python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["benchmark"] == "day_throughput", "missing benchmark tag"
assert doc["engine"] in ("reference", "incremental"), "missing engine tag"
print(doc["total"]["events_per_sec"])
' "$out") || { echo "error: $out is not a valid day_throughput artefact" >&2; exit 1; }
awk "BEGIN { exit !($events > 0) }" || {
  echo "error: total events_per_sec is $events (expected > 0)" >&2; exit 1; }
echo "BENCH_day_throughput.json: engine = ${engine:-incremental}, total events/sec = $events"
