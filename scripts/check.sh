#!/usr/bin/env sh
# One-shot verify: configure + build + test. Exits nonzero on any failure.
# This is the repo's tier-1 check; run it before every PR.
#
# Usage: scripts/check.sh [build-dir]    (default: build)
#
# INSOMNIA_THREADS passes through to the experiment engine and is safe to
# set: sweep results are bit-identical for any thread count (asserted by
# test_exec_determinism), so the suite's outcome cannot depend on it.
# INSOMNIA_PRESET does NOT affect this check — tests pin their own
# scenarios; presets only steer the bench/ drivers.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
jobs=$(nproc 2>/dev/null || echo 4)

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$jobs"
# Reduced differential fuzz for the routine check (the suite's default is
# 1000 scenarios; nightly/local full runs can unset this or raise it).
INSOMNIA_DIFF_SCENARIOS=${INSOMNIA_DIFF_SCENARIOS:-250} \
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

# Small-N city fleet smoke: exercises the whole src/city stack (sampler ->
# sharded paired days -> streamed aggregates -> simulation-grounded §5.4
# extrapolation) end to end through the real CLI, including the Chrome trace
# export, validated by an independent JSON parser.
"$build_dir/city01_fleet" --size 4 --seed 7 \
  --trace "$build_dir/city01_smoke.trace" > /dev/null
python3 -m json.tool "$build_dir/city01_smoke.trace" > /dev/null

# Small-N country fleet smoke: the whole src/country stack (portfolio
# sampling -> sharded city sims -> checkpointed streaming roll-up -> fully
# simulated §5.4 world figure) through the real CLI, including a forced
# kill-and-resume cycle. The resumed run's JSON report must be BYTE-identical
# to an uninterrupted run's (doubles serialize via shortest-round-trip
# to_chars, so byte equality is bit equality). Telemetry is disabled for
# these runs: the telemetry block carries wall-clock values, which would
# break the byte comparison by construction.
country_ckpt="$build_dir/country_smoke_ckpt"
rm -rf "$country_ckpt"
INSOMNIA_OBS=off "$build_dir/country01_fleet" --scale 0.005 --nbhd-scale 0.05 --seed 7 \
  --checkpoint "$country_ckpt" --flush-every 1 --max-shards 2 \
  --json "$build_dir/country01_partial.json" > /dev/null
INSOMNIA_OBS=off "$build_dir/country01_fleet" --scale 0.005 --nbhd-scale 0.05 --seed 7 \
  --checkpoint "$country_ckpt" \
  --json "$build_dir/country01_resumed.json" > /dev/null
INSOMNIA_OBS=off "$build_dir/country01_fleet" --scale 0.005 --nbhd-scale 0.05 --seed 7 \
  --json "$build_dir/country01_fresh.json" > /dev/null
cmp "$build_dir/country01_resumed.json" "$build_dir/country01_fresh.json"
python3 -m json.tool "$build_dir/country01_resumed.json" > /dev/null
rm -rf "$country_ckpt"

# Observability must never change results: an obs-enabled run's JSON minus
# its "telemetry" block must equal the INSOMNIA_OBS=off run's payload, and
# the exported Chrome trace must parse.
INSOMNIA_HEARTBEAT=off "$build_dir/country01_fleet" --scale 0.005 --nbhd-scale 0.05 --seed 7 \
  --json "$build_dir/country01_obs.json" \
  --trace "$build_dir/country01_smoke.trace" > /dev/null
python3 - "$build_dir/country01_obs.json" "$build_dir/country01_fresh.json" <<'EOF'
import json, sys
with_obs = json.load(open(sys.argv[1]))
without = json.load(open(sys.argv[2]))
assert "telemetry" in with_obs, "obs-enabled run must report a telemetry block"
with_obs.pop("telemetry")
assert with_obs == without, "telemetry changed the report payload"
print("obs-on report matches obs-off modulo the telemetry block")
EOF
python3 -m json.tool "$build_dir/country01_smoke.trace" > /dev/null

# Chaos smoke: a RECOVERABLE deterministic fault plan — injected shard
# throws and latency, every one healed by the retry policy — must produce a
# report BYTE-identical to the fault-free run above. Fault injection and
# self-healing are invisible unless a shard exhausts its retry budget.
# (docs/RESILIENCE.md documents the fault grammar and the retry policy.)
INSOMNIA_OBS=off "$build_dir/country01_fleet" --scale 0.005 --nbhd-scale 0.05 --seed 7 \
  --fault-spec "shard-throw=0.45,slow-shard=0.1:5ms" --max-attempts 6 \
  --json "$build_dir/country01_chaos.json" > /dev/null
cmp "$build_dir/country01_chaos.json" "$build_dir/country01_fresh.json"

# Scheme-registry + Engine smoke: a beyond-paper registered scheme end to
# end through the unified CLI, with the structured RunReport JSON validated
# by an independent parser.
"$build_dir/engine01_run" --scheme multilevel-doze --runs 1 --bins 6 \
  --json "$build_dir/engine01_report.json" > /dev/null
python3 -m json.tool "$build_dir/engine01_report.json" > /dev/null

# Perf-harness smoke: one paired day per preset, then validate the shape of
# BENCH_day_throughput.json (events/sec > 0 — no wall-clock gate here).
"$repo_root/scripts/perfbench.sh" --smoke "$build_dir" > /dev/null

# Fluid-engine twin check: the reference and incremental engines must drive
# byte-identical simulations — same events dispatched, same flows replayed,
# per preset. (The differential fuzz suite asserts bit-identical rates and
# completions; this closes the loop on the full day-scale workload.)
INSOMNIA_FLOW_ENGINE=reference \
  "$build_dir/day_throughput" --smoke --out "$build_dir/BENCH_engine_ref.json" > /dev/null
INSOMNIA_FLOW_ENGINE=incremental \
  "$build_dir/day_throughput" --smoke --out "$build_dir/BENCH_engine_inc.json" > /dev/null
python3 - "$build_dir/BENCH_engine_ref.json" "$build_dir/BENCH_engine_inc.json" <<'EOF'
import json, sys
ref = json.load(open(sys.argv[1]))
inc = json.load(open(sys.argv[2]))
assert ref["engine"] == "reference" and inc["engine"] == "incremental"
assert ref["presets"].keys() == inc["presets"].keys()
for name in ref["presets"]:
    r, i = ref["presets"][name], inc["presets"][name]
    for key in ("days", "events", "flows"):
        assert r[key] == i[key], (
            f"engine divergence on {name}.{key}: reference={r[key]} incremental={i[key]}")
print("fluid engines agree on", ", ".join(sorted(ref["presets"])))
EOF

# Online-mode replay equivalence: the live controller in virtual time over
# the same records and seed must produce a report BYTE-identical to the
# offline engine (docs/LIVE.md). Gate A: the generator source against the
# synthetic offline day. Gate B: a live day recorded with --record, then
# replayed both offline (--trace-file) and live (--source tail) — all three
# reports must agree. Telemetry is off: its block carries wall-clock values.
INSOMNIA_OBS=off "$build_dir/engine01_run" --runs 1 --seed 42 \
  --json "$build_dir/live_offline.json" > /dev/null
INSOMNIA_OBS=off "$build_dir/livectl" --source gen --seed 42 \
  --json "$build_dir/live_gen.json" > /dev/null
cmp "$build_dir/live_gen.json" "$build_dir/live_offline.json"
INSOMNIA_OBS=off "$build_dir/livectl" --source gen --seed 42 \
  --record "$build_dir/live_recorded.trace" > /dev/null
INSOMNIA_OBS=off "$build_dir/engine01_run" --runs 1 --seed 42 \
  --trace-file "$build_dir/live_recorded.trace" \
  --json "$build_dir/live_replay_offline.json" > /dev/null
INSOMNIA_OBS=off "$build_dir/livectl" --source tail \
  --path "$build_dir/live_recorded.trace" --seed 42 \
  --json "$build_dir/live_replay_tail.json" > /dev/null
cmp "$build_dir/live_replay_tail.json" "$build_dir/live_replay_offline.json"

# Obs-enabled livectl leg: the JSON must parse and its telemetry block must
# carry the ingest->decision latency histogram (the bounded-latency claim
# is measured, not asserted).
INSOMNIA_HEARTBEAT=off "$build_dir/livectl" --source gen --seed 42 \
  --json "$build_dir/live_obs.json" > /dev/null
python3 -m json.tool "$build_dir/live_obs.json" > /dev/null
grep -q "live.ingest_decision_ns" "$build_dir/live_obs.json"
