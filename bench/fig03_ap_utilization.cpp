// Regenerates Fig. 3: average downlink utilization of the (synthetic)
// UCSD-like wireless trace when each AP is fronted by a 6 Mbps backhaul.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "sim/random.h"
#include "topology/access_topology.h"
#include "trace/analysis.h"
#include "trace/synthetic_crawdad.h"
#include "util/units.h"

int main(int argc, char** argv) {
  insomnia::bench::parse_common_args_or_exit(argc, argv);
  using namespace insomnia;
  bench::banner("Fig. 3", "average AP downlink utilization at 6 Mbps backhaul");

  trace::SyntheticTraceConfig config;  // 272 clients, UCSD diurnal shape
  const trace::SyntheticCrawdadGenerator generator(config);

  // Average three trace days to steady the heavy-tailed hours.
  std::vector<double> mean_util(24, 0.0);
  const int days = 3;
  for (int day = 0; day < days; ++day) {
    sim::Random rng(500 + static_cast<std::uint64_t>(day));
    const trace::FlowTrace flows = generator.generate(rng);
    const auto homes = topo::assign_homes_balanced(config.client_count, 40, rng);
    const auto util = trace::hourly_gateway_utilization(flows, homes, 40, util::mbps(6.0));
    for (int h = 0; h < 24; ++h) mean_util[static_cast<std::size_t>(h)] += util[static_cast<std::size_t>(h)] / days;
  }

  util::TextTable table;
  table.set_header({"hour", "avg AP utilization %"});
  for (int h = 0; h < 24; ++h) {
    table.add_row({std::to_string(h), bench::num(mean_util[static_cast<std::size_t>(h)] * 100, 3)});
  }
  table.print(std::cout);

  const double peak = *std::max_element(mean_util.begin(), mean_util.end());
  const auto peak_hour = std::max_element(mean_util.begin(), mean_util.end()) - mean_util.begin();
  std::cout << "\n";
  bench::compare("peak average utilization", "~7%", bench::pct(peak));
  bench::compare("peak hour", "15-17h", std::to_string(peak_hour) + "h");
  bench::compare("night utilization", "<1.5%", bench::pct(mean_util[3]));
  insomnia::bench::note_scheme_not_applicable();
  return insomnia::bench::finish();
}
