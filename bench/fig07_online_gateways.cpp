// Regenerates Fig. 7: number of online gateways over the day for SoI, BH2
// (with and without backup) and Optimal — the aggregation picture behind
// the Fig. 6 savings.
#include <iostream>

#include "bench_common.h"
#include "core/experiments.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;
  bench::banner("Fig. 7", "number of online gateways over the day");

  MainExperimentConfig config;
  config.scenario = bench::scenario_from_args(argc, argv);
  config.runs = bench::runs_from_env(3);
  config.bins = 24;
  config.schemes = {"soi", "bh2-kswitch", "bh2-nobackup-kswitch", "optimal"};
  bench::add_scheme_override(config.schemes);
  std::cout << "(" << config.runs << " paired runs)\n\n";
  const MainExperimentResult result = run_main_experiment(config);

  const auto& soi = result.outcome("soi");
  const auto& bh2 = result.outcome("bh2-kswitch");
  const auto& bh2nb = result.outcome("bh2-nobackup-kswitch");
  const auto& optimal = result.outcome("optimal");
  for (const SchemeOutcome& outcome : result.schemes) {
    bench::report().add_series(outcome.scheme + "_online_gateways", outcome.online_gateways);
  }

  util::TextTable table;
  table.set_header({"hour", "SoI", "BH2", "BH2 w/o backup", "Optimal"});
  for (std::size_t bin = 0; bin < config.bins; ++bin) {
    table.add_row({std::to_string(bin), bench::num(soi.online_gateways[bin], 1),
                   bench::num(bh2.online_gateways[bin], 1),
                   bench::num(bh2nb.online_gateways[bin], 1),
                   bench::num(optimal.online_gateways[bin], 1)});
  }
  table.print(std::cout);

  std::cout << "\n";
  bench::compare("off-peak online gateways (all schemes)", "3-4 of 40",
                 bench::num(optimal.online_gateways[3], 1) + " (Optimal, 3h)");
  bench::compare("SoI at peak", "up to ~38 of 40 (95% at 15h)",
                 bench::num(soi.peak_online_gateways, 1) + " (11-19h mean)");
  bench::compare("BH2 tracks Optimal at peak", "close",
                 bench::num(bh2.peak_online_gateways, 1) + " vs " +
                     bench::num(optimal.peak_online_gateways, 1));
  bench::compare("backup does not hurt aggregation", "similar counts",
                 bench::num(bh2.peak_online_gateways, 1) + " (backup) vs " +
                     bench::num(bh2nb.peak_online_gateways, 1) + " (none)");
  bench::compare("BH2 assignment changes per run", "low (oscillation-free)",
                 bench::num(bh2.bh2_moves, 0) + " moves, " +
                     bench::num(bh2.bh2_home_returns, 0) + " home returns");
  bench::report_scheme_override(result);
  return bench::finish();
}
