// Regenerates Fig. 5 (middle and right): probability that line card l of a
// k-card batch can sleep, for 2-/4-/8-switches with m = 24 modems per card
// and per-line activity p = 0.5 / 0.25.
//
// Three columns per point: the paper's Eq. (2) exactly as published, the
// corrected binomial-tail formula, and a Monte-Carlo simulation of the
// packing rule. The published expression omits the binomial coefficients
// C(k,i); Monte Carlo sides with the corrected formula (see DESIGN.md).
#include <iostream>

#include "bench_common.h"
#include "dslam/sleep_model.h"
#include "sim/random.h"

int main(int argc, char** argv) {
  insomnia::bench::parse_common_args_or_exit(argc, argv);
  using namespace insomnia;
  bench::banner("Fig. 5", "P{line card l sleeps} under k-switching, m=24");

  sim::Random rng(7);
  for (double p : {0.5, 0.25}) {
    std::cout << "\nmodem online probability p = " << p << "\n";
    for (int k : {2, 4, 8}) {
      std::cout << "\n  " << k << "-switch\n";
      util::TextTable table;
      table.set_header({"card l", "paper Eq.(2)", "exact binomial", "Monte Carlo"});
      for (int l = 1; l <= k; ++l) {
        const double paper = dslam::sleep_probability_paper(l, k, 24, p);
        const double exact = dslam::sleep_probability_exact(l, k, 24, p);
        const double mc = dslam::sleep_probability_monte_carlo(l, k, 24, p, 40000, rng);
        table.add_row({std::to_string(l), bench::num(paper, 4), bench::num(exact, 4),
                       bench::num(mc, 4)});
      }
      table.print(std::cout);
      std::cout << "  expected sleeping cards (exact): "
                << bench::num(dslam::expected_sleeping_cards(k, 24, p), 3) << " of " << k
                << "  | full switch: "
                << bench::num(dslam::full_switch_expected_sleeping_cards(k, 24, p), 3)
                << "\n";
    }
  }
  std::cout << "\n";
  bench::compare("shape", "even k=4/8 switches sleep a good number of cards",
                 "see expected sleeping cards above");
  insomnia::bench::note_scheme_not_applicable();
  return insomnia::bench::finish();
}
