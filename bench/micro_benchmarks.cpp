// google-benchmark micro-benchmarks for the library's hot paths: the fluid
// data plane, the event queue, BH2 decisions, the DSL bit-loader, and the
// cover solver. These guard the simulator's throughput (a full evaluation
// replays ~10^6 flow events per simulated day).
//
// A counting global operator new feeds the "allocs_per_op" counter on the
// steady-state benchmarks — the inner simulation loop is contractually
// allocation-free (see tests/test_hotpath_alloc.cpp), and these counters
// make a regression visible in the same run that times it.
#include <atomic>
#include <cstdlib>
#include <new>

#include <benchmark/benchmark.h>

// The counting operator new below is malloc-backed; once the compiler
// inlines it, paired deletes look like free() on a "mismatched" pointer.
// The pairing is correct — silence the false positive for this TU.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include "bh2/algorithm.h"
#include "dsl/bitloading.h"
#include "dsl/crosstalk.h"
#include "dslam/dslam.h"
#include "flow/fluid_network.h"
#include "flow/max_min.h"
#include "opt/gateway_cover.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "stats/timeseries.h"

std::atomic<long> g_allocations{0};

namespace {

using namespace insomnia;

void BM_MaxMinAllocate(benchmark::State& state) {
  sim::Random rng(1);
  std::vector<double> caps;
  for (int i = 0; i < state.range(0); ++i) caps.push_back(rng.uniform(0.1, 10.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::max_min_allocate(6.0, caps));
  }
}
BENCHMARK(BM_MaxMinAllocate)->Arg(4)->Arg(32)->Arg(256);

void BM_MaxMinAllocateInto(benchmark::State& state) {
  // The incremental form: caller-owned scratch and output, zero
  // steady-state allocations (the water-fill the fluid plane runs inline).
  sim::Random rng(1);
  std::vector<double> caps;
  for (int i = 0; i < state.range(0); ++i) caps.push_back(rng.uniform(0.1, 10.0));
  flow::MaxMinScratch scratch;
  std::vector<double> rates;
  max_min_allocate_into(6.0, caps, scratch, rates);  // warm the buffers
  const long before = g_allocations.load();
  for (auto _ : state) {
    max_min_allocate_into(6.0, caps, scratch, rates);
    benchmark::DoNotOptimize(rates.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(g_allocations.load() - before), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_MaxMinAllocateInto)->Arg(4)->Arg(32)->Arg(256);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int i = 0; i < state.range(0); ++i) {
      queue.schedule(static_cast<double>(i % 97), [] {});
    }
    while (!queue.empty()) queue.run_next();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void BM_EventQueueReschedule(benchmark::State& state) {
  // The dedicated reschedule path: the closure stays in its slot and the
  // heap node moves in place — the pattern the gateway completion event
  // hits on every flow arrival and departure.
  sim::EventQueue queue;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < state.range(0); ++i) {
    ids.push_back(queue.schedule(1e6 + i, [] {}));
  }
  sim::Random rng(9);
  std::vector<double> new_times;
  for (int i = 0; i < 1024; ++i) new_times.push_back(rng.uniform(1e6, 2e6));
  std::size_t pick = 0;
  const long before = g_allocations.load();
  for (auto _ : state) {
    const sim::EventId id = ids[pick % ids.size()];
    benchmark::DoNotOptimize(queue.reschedule(id, new_times[pick % new_times.size()]));
    ++pick;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(g_allocations.load() - before), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_EventQueueReschedule)->Arg(64)->Arg(1024);

void BM_FluidNetworkChurn(benchmark::State& state) {
  const auto kind =
      state.range(1) == 0 ? flow::EngineKind::kReference : flow::EngineKind::kIncremental;
  for (auto _ : state) {
    sim::Simulator sim;
    const auto net_owned = flow::make_fluid_network(sim, {6e6}, kind);
    flow::FluidNetwork& net = *net_owned;
    net.set_gateway_serving(0, true);
    const int flows = static_cast<int>(state.range(0));
    for (int i = 0; i < flows; ++i) {
      sim.at(i * 0.05, [&net, i] {
        net.add_flow(static_cast<flow::FlowId>(i), i % 7, 0, 1500.0, 12e6);
      });
    }
    sim.run_until(flows * 0.05 + 10.0);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(flow::engine_kind_name(kind));
}
BENCHMARK(BM_FluidNetworkChurn)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1});

void BM_FluidNetworkSteadyState(benchmark::State& state) {
  // The full inner loop in steady state — arrival, water-fill, completion
  // reschedule, completion pop — after the warm-up has grown every buffer.
  // allocs_per_op must stay ~0 (only the monitoring series' doubling tail).
  const auto kind =
      state.range(0) == 0 ? flow::EngineKind::kReference : flow::EngineKind::kIncremental;
  sim::Simulator sim;
  const auto net_owned = flow::make_fluid_network(sim, {6e6}, kind);
  flow::FluidNetwork& net = *net_owned;
  net.set_gateway_serving(0, true);
  net.reserve_flows(1u << 22);
  flow::FlowId id = 0;
  double t = 0.0;
  const auto one_arrival = [&] {
    net.add_flow(id, static_cast<int>(id % 7), 0, 20000.0, (id % 3 == 0) ? 2e6 : 9e6);
    ++id;
    // 22 arrivals/s against a ~37 flows/s drain: a handful of concurrent
    // flows, stable backlog — genuine steady state.
    t += 0.045;
    sim.run_until(t);
  };
  for (int i = 0; i < 4000; ++i) one_arrival();  // warm up
  const long before = g_allocations.load();
  for (auto _ : state) one_arrival();
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(g_allocations.load() - before), benchmark::Counter::kAvgIterations);
  state.SetLabel(flow::engine_kind_name(kind));
}
BENCHMARK(BM_FluidNetworkSteadyState)->Arg(0)->Arg(1);

void BM_StepSeriesIntegral(benchmark::State& state) {
  stats::StepSeries series(0.0, 0.0);
  sim::Random rng(3);
  double t = 0.0;
  for (int i = 0; i < state.range(0); ++i) {
    t += rng.exponential(1.0);
    series.set(t, rng.uniform(0.0, 10.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(series.integral(t * 0.4, t * 0.6));
  }
}
BENCHMARK(BM_StepSeriesIntegral)->Arg(1000)->Arg(100000);

class BenchObserver : public bh2::GatewayObserver {
 public:
  double load(int gateway) const override { return 0.01 * (gateway % 40); }
  bool is_awake(int gateway) const override { return gateway % 3 != 0; }
};

void BM_Bh2Decide(benchmark::State& state) {
  BenchObserver observer;
  bh2::Bh2Config config;
  sim::Random rng(5);
  const std::vector<int> reachable{0, 1, 2, 3, 4, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(bh2::decide(0, reachable, 0, observer, config, rng));
  }
}
BENCHMARK(BM_Bh2Decide);

void BM_DslamWakeRemap(benchmark::State& state) {
  sim::Random rng(7);
  dslam::DslamConfig config;
  config.mode = dslam::SwitchMode::kKSwitch;
  for (auto _ : state) {
    dslam::Dslam dslam(config, rng);
    for (int line = 0; line < 48; ++line) dslam.line_activated(line % 48);
    for (int line = 0; line < 48; line += 2) dslam.line_deactivated(line);
    benchmark::DoNotOptimize(dslam.awake_card_count());
  }
}
BENCHMARK(BM_DslamWakeRemap);

void BM_SyncLine(benchmark::State& state) {
  std::vector<dsl::LineConfig> lines;
  for (int i = 0; i < 24; ++i) lines.push_back({400.0 + i * 5.0, i + 1});
  const dsl::CrosstalkModel model(lines, dsl::Vdsl2Parameters::profile_17a());
  std::vector<bool> active(24, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dsl::sync_line(model, 0, active, dsl::ServiceProfile::mbps62()));
  }
}
BENCHMARK(BM_SyncLine);

void BM_GreedyCover(benchmark::State& state) {
  sim::Random rng(11);
  opt::GatewayCoverProblem problem;
  problem.capacity.assign(40, 6e6);
  for (int u = 0; u < 272; ++u) {
    opt::UserDemand demand;
    demand.demand = rng.uniform(1e3, 2e5);
    for (int g = 0; g < 40; ++g) {
      if (rng.bernoulli(0.14)) demand.feasible.push_back(g);
    }
    if (demand.feasible.empty()) demand.feasible.push_back(rng.uniform_int(0, 39));
    problem.users.push_back(std::move(demand));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::solve_greedy(problem));
  }
}
BENCHMARK(BM_GreedyCover);

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

BENCHMARK_MAIN();
