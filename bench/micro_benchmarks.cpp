// google-benchmark micro-benchmarks for the library's hot paths: the fluid
// data plane, the event queue, BH2 decisions, the DSL bit-loader, and the
// cover solver. These guard the simulator's throughput (a full evaluation
// replays ~10^6 flow events per simulated day).
#include <benchmark/benchmark.h>

#include "bh2/algorithm.h"
#include "dsl/bitloading.h"
#include "dsl/crosstalk.h"
#include "dslam/dslam.h"
#include "flow/fluid_network.h"
#include "flow/max_min.h"
#include "opt/gateway_cover.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "stats/timeseries.h"

namespace {

using namespace insomnia;

void BM_MaxMinAllocate(benchmark::State& state) {
  sim::Random rng(1);
  std::vector<double> caps;
  for (int i = 0; i < state.range(0); ++i) caps.push_back(rng.uniform(0.1, 10.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::max_min_allocate(6.0, caps));
  }
}
BENCHMARK(BM_MaxMinAllocate)->Arg(4)->Arg(32)->Arg(256);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int i = 0; i < state.range(0); ++i) {
      queue.schedule(static_cast<double>(i % 97), [] {});
    }
    while (!queue.empty()) queue.run_next();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void BM_FluidNetworkChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    flow::FluidNetwork net(sim, {6e6});
    net.set_gateway_serving(0, true);
    const int flows = static_cast<int>(state.range(0));
    for (int i = 0; i < flows; ++i) {
      sim.at(i * 0.05, [&net, i] {
        net.add_flow(static_cast<flow::FlowId>(i), i % 7, 0, 1500.0, 12e6);
      });
    }
    sim.run_until(flows * 0.05 + 10.0);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FluidNetworkChurn)->Arg(1000)->Arg(10000);

void BM_StepSeriesIntegral(benchmark::State& state) {
  stats::StepSeries series(0.0, 0.0);
  sim::Random rng(3);
  double t = 0.0;
  for (int i = 0; i < state.range(0); ++i) {
    t += rng.exponential(1.0);
    series.set(t, rng.uniform(0.0, 10.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(series.integral(t * 0.4, t * 0.6));
  }
}
BENCHMARK(BM_StepSeriesIntegral)->Arg(1000)->Arg(100000);

class BenchObserver : public bh2::GatewayObserver {
 public:
  double load(int gateway) const override { return 0.01 * (gateway % 40); }
  bool is_awake(int gateway) const override { return gateway % 3 != 0; }
};

void BM_Bh2Decide(benchmark::State& state) {
  BenchObserver observer;
  bh2::Bh2Config config;
  sim::Random rng(5);
  const std::vector<int> reachable{0, 1, 2, 3, 4, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(bh2::decide(0, reachable, 0, observer, config, rng));
  }
}
BENCHMARK(BM_Bh2Decide);

void BM_DslamWakeRemap(benchmark::State& state) {
  sim::Random rng(7);
  dslam::DslamConfig config;
  config.mode = dslam::SwitchMode::kKSwitch;
  for (auto _ : state) {
    dslam::Dslam dslam(config, rng);
    for (int line = 0; line < 48; ++line) dslam.line_activated(line % 48);
    for (int line = 0; line < 48; line += 2) dslam.line_deactivated(line);
    benchmark::DoNotOptimize(dslam.awake_card_count());
  }
}
BENCHMARK(BM_DslamWakeRemap);

void BM_SyncLine(benchmark::State& state) {
  std::vector<dsl::LineConfig> lines;
  for (int i = 0; i < 24; ++i) lines.push_back({400.0 + i * 5.0, i + 1});
  const dsl::CrosstalkModel model(lines, dsl::Vdsl2Parameters::profile_17a());
  std::vector<bool> active(24, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dsl::sync_line(model, 0, active, dsl::ServiceProfile::mbps62()));
  }
}
BENCHMARK(BM_SyncLine);

void BM_GreedyCover(benchmark::State& state) {
  sim::Random rng(11);
  opt::GatewayCoverProblem problem;
  problem.capacity.assign(40, 6e6);
  for (int u = 0; u < 272; ++u) {
    opt::UserDemand demand;
    demand.demand = rng.uniform(1e3, 2e5);
    for (int g = 0; g < 40; ++g) {
      if (rng.bernoulli(0.14)) demand.feasible.push_back(g);
    }
    if (demand.feasible.empty()) demand.feasible.push_back(rng.uniform_int(0, 39));
    problem.users.push_back(std::move(demand));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::solve_greedy(problem));
  }
}
BENCHMARK(BM_GreedyCover);

}  // namespace

BENCHMARK_MAIN();
