// Perf harness (not a paper artefact): measures how fast one simulated
// gateway-day runs. For every scenario preset it replays paired days — the
// no-sleep baseline plus the headline BH2 scheme on the same trace and
// topology, the unit every figure and the city fleet is built from — and
// reports wall clock, events/sec and flows/sec, then writes the machine
// readable BENCH_day_throughput.json consumed by scripts/perfbench.sh.
//
// Usage: day_throughput [--runs N] [--smoke] [--out PATH]
//                       [--threads N] [--list-presets]
//   --runs N   paired days per preset (default 3)
//   --smoke    CI mode: one paired day per preset
//   --out PATH where to write the JSON (default: BENCH_day_throughput.json)
//
// The harness is deliberately single-threaded: it measures the inner event
// loop, not the sharding engine (scripts/speedup.sh covers that half).
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/scenario_presets.h"
#include "flow/fluid_network.h"
#include "core/schemes.h"
#include "sim/random.h"
#include "util/json_writer.h"
#include "topology/access_topology.h"
#include "trace/synthetic_crawdad.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace insomnia;

struct PresetResult {
  std::string name;
  int days = 0;                 ///< simulated gateway-days (runs x 2 schemes)
  std::uint64_t events = 0;     ///< simulator events dispatched
  std::uint64_t flows = 0;      ///< trace flows replayed
  double wall_ms = 0.0;
};

double events_per_sec(const PresetResult& r) {
  return r.wall_ms > 0.0 ? static_cast<double>(r.events) / (r.wall_ms / 1e3) : 0.0;
}

double flows_per_sec(const PresetResult& r) {
  return r.wall_ms > 0.0 ? static_cast<double>(r.flows) / (r.wall_ms / 1e3) : 0.0;
}

double wall_ms_per_day(const PresetResult& r) {
  return r.days > 0 ? r.wall_ms / static_cast<double>(r.days) : 0.0;
}

void write_result(util::JsonWriter& json, const PresetResult& r) {
  json.begin_object();
  json.field("days", r.days);
  json.field("events", r.events);
  json.field("flows", r.flows);
  json.field("wall_ms", r.wall_ms);
  json.field("wall_ms_per_day", wall_ms_per_day(r));
  json.field("events_per_sec", events_per_sec(r));
  json.field("flows_per_sec", flows_per_sec(r));
  json.end_object();
}

PresetResult run_preset(const core::ScenarioPreset& preset, const core::SchemeSpec& scheme,
                        int runs, std::uint64_t seed) {
  PresetResult result;
  result.name = preset.name;
  const core::ScenarioConfig& scenario = preset.scenario;

  // Same derivations as core::run_main_experiment: one fixed topology per
  // preset, per-run trace substreams, per-scheme seeds.
  sim::Random topo_rng(sim::Random::substream_seed(seed, 0, 7));
  const topo::AccessTopology topology =
      topo::make_overlap_topology(scenario.client_count, scenario.degrees, topo_rng);
  const trace::SyntheticCrawdadGenerator generator(scenario.traffic);

  for (int run = 0; run < runs; ++run) {
    sim::Random trace_rng(sim::Random::substream_seed(seed, run, 1));
    const trace::FlowTrace flows = generator.generate(trace_rng);

    // force=true: the harness must keep timing even under INSOMNIA_OBS=off
    // (the CI overhead gate compares exactly those two modes).
    obs::ScopeTimer timer("bench.paired_day", /*force=*/true);
    const core::RunMetrics baseline =
        run_scheme(scenario, topology, flows, core::find_scheme("no-sleep"),
                   sim::Random::substream_seed(seed, run, 2));
    const core::RunMetrics bh2 =
        run_scheme(scenario, topology, flows, scheme,
                   sim::Random::substream_seed(seed, run, 100));

    result.days += 2;
    result.events += baseline.executed_events + bh2.executed_events;
    result.flows += 2 * static_cast<std::uint64_t>(flows.size());
    result.wall_ms += timer.stop_ms();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int runs = 3;
  std::string out_path = "BENCH_day_throughput.json";
  try {
    for (int i = 1; i < argc; ++i) {
      if (bench::handle_common_flag(argc, argv, i)) continue;
      const std::string arg = argv[i];
      if (arg == "--smoke") {
        runs = 1;
      } else if (arg == "--runs") {
        util::require(i + 1 < argc, "--runs needs a count");
        const auto parsed = util::parse_positive_int(argv[++i]);
        util::require(parsed.has_value(), "--runs must be a positive integer");
        runs = *parsed;
      } else if (arg == "--out") {
        util::require(i + 1 < argc, "--out needs a path");
        out_path = argv[++i];
      } else {
        throw util::InvalidArgument(
            "unknown argument \"" + arg + "\"; usage: " + argv[0] +
            " [--runs N] [--smoke] [--out PATH] [--scheme NAME] [--json PATH]"
            " [--threads N] [--list-presets] [--list-schemes]");
      }
    }
  } catch (const util::InvalidArgument& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }

  bench::banner("BENCH day_throughput",
                "paired no-sleep + BH2 day wall-clock across presets");
  const core::SchemeSpec& scheme = bench::scheme_or("bh2-kswitch");
  // Honour INSOMNIA_FLOW_ENGINE (scripts/perfbench.sh --engine) and record
  // which fluid engine produced the numbers — reference/incremental
  // snapshots are not comparable to each other.
  const char* engine = flow::engine_kind_name(flow::engine_from_env());
  std::cout << runs << " paired day(s) per preset (no-sleep + " << scheme.display
            << "), single worker, " << engine << " fluid engine\n\n";

  const std::uint64_t seed = 42;
  std::vector<PresetResult> results;
  for (const core::ScenarioPreset& preset : core::scenario_presets()) {
    results.push_back(run_preset(preset, scheme, runs, seed));
  }

  util::TextTable table;
  table.set_header({"preset", "days", "events", "wall ms/day", "events/sec", "flows/sec"});
  PresetResult total;
  total.name = "total";
  for (const PresetResult& r : results) {
    table.add_row({r.name, std::to_string(r.days), std::to_string(r.events),
                   util::format_fixed(wall_ms_per_day(r), 1),
                   util::format_fixed(events_per_sec(r), 0),
                   util::format_fixed(flows_per_sec(r), 0)});
    total.days += r.days;
    total.events += r.events;
    total.flows += r.flows;
    total.wall_ms += r.wall_ms;
  }
  table.add_row({total.name, std::to_string(total.days), std::to_string(total.events),
                 util::format_fixed(wall_ms_per_day(total), 1),
                 util::format_fixed(events_per_sec(total), 0),
                 util::format_fixed(flows_per_sec(total), 0)});
  table.print(std::cout);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  char hostname[256] = "unknown";
  if (::gethostname(hostname, sizeof(hostname)) != 0) {
    std::snprintf(hostname, sizeof(hostname), "unknown");
  }
  hostname[sizeof(hostname) - 1] = '\0';

  util::JsonWriter json;
  json.begin_object();
  json.field("benchmark", "day_throughput");
  json.field("engine", engine);
  // The harness is single-threaded by design (see header comment); recorded
  // so snapshot consumers never have to guess.
  json.field("threads", 1);
  json.field("obs_enabled", obs::enabled());
  json.key("host").begin_object();
  json.field("hostname", hostname);
  json.field("hardware_threads",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.field("compiler", __VERSION__);
  json.end_object();
  json.key("schemes").begin_array();
  json.value("no-sleep").value(scheme.name);
  json.end_array();
  json.field("runs_per_preset", runs);
  json.key("presets").begin_object();
  for (const PresetResult& r : results) {
    json.key(r.name);
    write_result(json, r);
  }
  json.end_object();
  json.key("total");
  write_result(json, total);
  json.end_object();
  out << json.str() << "\n";
  std::cout << "\nwrote " << out_path << "\n";
  bench::report().set_field("events_per_sec_total", events_per_sec(total));
  bench::report().set_field("wall_ms_per_day_total", wall_ms_per_day(total));
  return bench::finish();
}
