// Regenerates Fig. 9b: CDF of the per-gateway online-time variation of BH2
// (with and without backup) relative to plain SoI — the fairness picture:
// who sleeps more, who carries the guests.
#include <iostream>

#include "bench_common.h"
#include "core/experiments.h"
#include "stats/cdf.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;
  bench::banner("Fig. 9b", "CDF of gateway online-time variation vs SoI");

  MainExperimentConfig config;
  config.scenario = bench::scenario_from_args(argc, argv);
  config.runs = bench::runs_from_env(3);
  // SoI must be listed before the BH2 schemes (it is the reference).
  config.schemes = {"soi", "bh2-kswitch", "bh2-nobackup-kswitch"};
  bench::add_scheme_override(config.schemes);
  std::cout << "(" << config.runs << " paired runs)\n\n";
  const MainExperimentResult result = run_main_experiment(config);

  const auto& bh2 = result.outcome("bh2-kswitch").online_time_variation;
  const auto& bh2nb = result.outcome("bh2-nobackup-kswitch").online_time_variation;

  const stats::EmpiricalCdf cdf_bh2(bh2);
  const stats::EmpiricalCdf cdf_nb(bh2nb);

  util::TextTable table;
  table.set_header({"variation x", "BH2 CDF", "BH2 w/o backup CDF"});
  for (double x : {-1.0, -0.75, -0.5, -0.25, 0.0, 0.25, 0.5, 1.0}) {
    table.add_row({bench::pct(x, 0), bench::num(cdf_bh2.fraction_at_or_below(x), 3),
                   bench::num(cdf_nb.fraction_at_or_below(x), 3)});
  }
  table.print(std::cout);

  const double always_asleep = cdf_bh2.fraction_at_or_below(-0.999);
  const double increased = 1.0 - cdf_bh2.fraction_at_or_below(1e-9);
  const double nb_always_asleep = cdf_nb.fraction_at_or_below(-0.999);
  const double nb_increased = 1.0 - cdf_nb.fraction_at_or_below(1e-9);

  std::cout << "\n";
  bench::compare("gateways with -100% online time under BH2", "~25%",
                 bench::pct(always_asleep));
  bench::compare("gateways online longer under BH2", "~14%", bench::pct(increased));
  bench::compare("w/o backup is less fair", "more extremes",
                 bench::pct(nb_always_asleep) + " fully asleep, " + bench::pct(nb_increased) +
                     " increased");
  bench::report_scheme_override(result);
  return bench::finish();
}
