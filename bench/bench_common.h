// Shared helpers for the figure-regeneration benches: consistent headers,
// paper-vs-measured rows, environment-controlled run counts, scenario
// preset selection (--preset NAME / INSOMNIA_PRESET), scheme selection from
// the registry (--scheme NAME / --list-schemes), and a structured mirror of
// everything a driver prints, written as JSON by --json PATH.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiments.h"
#include "core/scenario_presets.h"
#include "core/scheme_registry.h"
#include "exec/thread_pool.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "obs/trace_export.h"
#include "util/error.h"
#include "util/json_writer.h"
#include "util/strings.h"
#include "util/table.h"

namespace insomnia::bench {

/// Structured mirror of a driver's output: the banner, scalar facts, every
/// paper-vs-measured comparison row, and any number series the driver adds.
/// Serialized with stable key order via util::JsonWriter when --json PATH
/// is given.
class DriverReport {
 public:
  void set_banner(const std::string& id, const std::string& title) {
    id_ = id;
    title_ = title;
  }

  /// Scalar facts in insertion order; last write to a key wins its slot.
  void set_field(const std::string& key, const std::string& value) {
    set_encoded(key, '"' + util::json_escape(value) + '"');
  }
  void set_field(const std::string& key, double value) {
    set_encoded(key, util::json_number(value));
  }
  void set_field(const std::string& key, long long value) {
    set_encoded(key, util::json_number(static_cast<std::int64_t>(value)));
  }
  void set_field(const std::string& key, unsigned long long value) {
    set_encoded(key, util::json_number(static_cast<std::uint64_t>(value)));
  }

  /// A pre-encoded JSON value (an object or array built with
  /// util::JsonWriter) in the scalar-field slot — for structured blocks
  /// like the fleet driver's degraded-coverage report.
  void set_raw_field(const std::string& key, std::string encoded) {
    set_encoded(key, std::move(encoded));
  }

  void add_compare(const std::string& what, const std::string& paper,
                   const std::string& measured) {
    compares_.push_back({what, paper, measured});
  }

  void add_series(const std::string& name, std::vector<double> values) {
    series_.push_back({name, std::move(values)});
  }

  std::string to_json() const {
    util::JsonWriter json;
    json.begin_object();
    json.field("artefact", id_);
    json.field("title", title_);
    for (const auto& [key, encoded] : fields_) json.key(key).raw_value(encoded);
    json.key("comparisons").begin_array();
    for (const CompareRow& row : compares_) {
      json.begin_object();
      json.field("what", row.what);
      json.field("paper", row.paper);
      json.field("measured", row.measured);
      json.end_object();
    }
    json.end_array();
    json.key("series").begin_object();
    for (const auto& [name, values] : series_) json.number_array(name, values);
    json.end_object();
    // Run-dependent (wall times, RSS), so byte-compare consumers run with
    // INSOMNIA_OBS=off or strip the key (scripts/check.sh does both).
    if (obs::enabled()) obs::write_telemetry(json);
    json.end_object();
    return json.str();
  }

 private:
  struct CompareRow {
    std::string what;
    std::string paper;
    std::string measured;
  };

  void set_encoded(const std::string& key, std::string encoded) {
    for (auto& [existing, value] : fields_) {
      if (existing == key) {
        value = std::move(encoded);
        return;
      }
    }
    fields_.push_back({key, std::move(encoded)});
  }

  std::string id_;
  std::string title_;
  std::vector<std::pair<std::string, std::string>> fields_;  ///< key -> encoded JSON
  std::vector<CompareRow> compares_;
  std::vector<std::pair<std::string, std::vector<double>>> series_;
};

/// The driver's structured report (every driver has exactly one).
inline DriverReport& report() {
  static DriverReport instance;
  return instance;
}

namespace detail {

inline std::string& json_path() {
  static std::string path;
  return path;
}

inline std::string& trace_path() {
  static std::string path;
  return path;
}

// The --scheme override is stored by NAME and resolved against the registry
// at every use. Storing the SchemeSpec* (as this used to) dangles the
// moment any scheme registered after flag parsing reallocates the
// registry's backing vector (regression: tests/test_bench_common.cpp).
inline std::string& scheme_override_name_slot() {
  static std::string name;
  return name;
}

inline bool& scheme_override_appended_slot() {
  static bool appended = false;
  return appended;
}

}  // namespace detail

/// Prints the standard banner for one regenerated artefact.
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "==============================================================\n"
            << id << " — " << title << "\n"
            << "==============================================================\n";
  report().set_banner(id, title);
}

/// Prints one "paper vs measured" comparison line (mirrored into --json).
inline void compare(const std::string& what, const std::string& paper,
                    const std::string& measured) {
  std::cout << "  " << what << ": paper " << paper << " | measured " << measured << "\n";
  report().add_compare(what, paper, measured);
}

inline std::string pct(double fraction, int decimals = 1) {
  return util::format_percent(fraction, decimals);
}

inline std::string num(double value, int decimals = 2) {
  return util::format_fixed(value, decimals);
}

/// The --scheme override, or nullptr when the driver's default applies.
/// Resolved against the registry at call time, so the returned pointer is
/// valid even when schemes were registered after flag parsing.
inline const core::SchemeSpec* scheme_override() {
  const std::string& name = detail::scheme_override_name_slot();
  return name.empty() ? nullptr : &core::find_scheme(name);
}

/// The --json output path ("" when not requested). Most drivers let
/// finish() write the DriverReport here; drivers whose natural structured
/// result is something richer (engine01_run's RunReport) write it
/// themselves.
inline const std::string& json_path() { return detail::json_path(); }

/// The --trace output path ("" when not requested). finish() exports the
/// Chrome trace here; tracing itself is switched on at flag-parse time so
/// the whole run is captured.
inline const std::string& trace_path() { return detail::trace_path(); }

/// The scheme this driver studies: the --scheme override when given, else
/// the named registry default. Records the choice in the report.
inline const core::SchemeSpec& scheme_or(const std::string& default_name) {
  const core::SchemeSpec& spec =
      scheme_override() != nullptr ? *scheme_override() : core::find_scheme(default_name);
  report().set_field("scheme", spec.name);
  report().set_field("scheme_display", spec.display);
  return spec;
}

/// For drivers comparing a fixed paper scheme list: adds the --scheme
/// override to `schemes` (unless already listed) so it joins the
/// comparison. "soi" is prepended — it is the Fig. 9b fairness reference
/// and must run before any fairness-paired scheme — everything else is
/// appended (after soi, if listed, so the pairing convention holds).
/// Returns the override, or nullptr when none was given.
inline const core::SchemeSpec* add_scheme_override(std::vector<std::string>& schemes) {
  const core::SchemeSpec* spec = scheme_override();
  if (spec == nullptr) return nullptr;
  for (const std::string& name : schemes) {
    if (name == spec->name) return spec;
  }
  if (spec->name == "soi") {
    schemes.insert(schemes.begin(), spec->name);
  } else {
    schemes.push_back(spec->name);
  }
  detail::scheme_override_appended_slot() = true;
  return spec;
}

/// Companion of add_scheme_override: prints (and mirrors into the report)
/// the override scheme's headline numbers next to the paper schemes the
/// driver formats by hand. No-op when the override was already part of the
/// driver's comparison (its numbers are in the driver's own table).
inline void report_scheme_override(const core::MainExperimentResult& result) {
  const core::SchemeSpec* spec = scheme_override();
  if (spec == nullptr || !detail::scheme_override_appended_slot()) return;
  const core::SchemeOutcome& o = result.outcome(spec->name);
  std::cout << "\n--scheme " << spec->name << " (" << spec->display << "):\n";
  compare(spec->name + " day savings", "n/a (--scheme row)", pct(o.day_savings));
  compare(spec->name + " ISP share", "n/a (--scheme row)", pct(o.day_isp_share));
  compare(spec->name + " peak online gateways", "n/a (--scheme row)",
          num(o.peak_online_gateways, 1));
  compare(spec->name + " wake events/run", "n/a (--scheme row)", num(o.wake_events, 0));
}

/// For artefacts with no sleep scheme in them (trace/PHY figures): tell the
/// user a --scheme override cannot change anything rather than silently
/// ignoring it.
inline void note_scheme_not_applicable() {
  if (scheme_override() != nullptr) {
    std::cout << "(note: --scheme " << scheme_override()->name
              << " has no effect — this artefact involves no sleep scheme)\n";
  }
}

/// Writes the structured report when --json PATH was given. Every driver
/// returns finish() (or finish(code)) from main so the flag works uniformly.
inline int finish(int code = 0) {
  if (code != 0) return code;
  const std::string& path = detail::json_path();
  if (!path.empty()) {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "error: cannot write " << path << "\n";
      return 1;
    }
    out << report().to_json() << "\n";
    std::cout << "\nwrote " << path << "\n";
  }
  const std::string& trace = detail::trace_path();
  if (!trace.empty()) {
    try {
      obs::write_chrome_trace(trace);
    } catch (const std::exception& error) {
      std::cerr << "error: cannot write " << trace << ": " << error.what() << "\n";
      return 1;
    }
    std::cout << "wrote " << trace << " (chrome://tracing / ui.perfetto.dev)\n";
  }
  return 0;
}

/// Validates INSOMNIA_THREADS with the drivers' CLI error convention and
/// returns the resolved worker count. Even drivers that never shard call
/// this, so a typo'd value fails fast everywhere instead of being silently
/// ignored by some binaries.
inline int threads_from_env_or_exit() {
  try {
    return exec::default_thread_count();
  } catch (const util::InvalidArgument& error) {
    std::cerr << error.what() << "\n";
    std::exit(1);
  }
}

/// Handles the flags every driver shares. Returns true when argv[i] (plus a
/// possible value, past which `i` is advanced) was consumed:
///   * `--threads N` / `--threads=N` — worker threads, parsed with
///     util::parse_positive_int and exported as INSOMNIA_THREADS (overriding
///     any inherited value) so it reaches exec::default_thread_count() in
///     every layer without per-driver plumbing,
///   * `--scheme NAME` / `--scheme=NAME` — selects a registered scheme; an
///     unknown name throws util::InvalidArgument listing the valid ones,
///   * `--json PATH` / `--json=PATH` — where finish() writes the report,
///   * `--trace PATH` / `--trace=PATH` — enables phase tracing and makes
///     finish() export a Chrome trace-event JSON (Perfetto-loadable) here,
///   * `--list-presets` — prints the scenario registry and exits 0,
///   * `--list-schemes` — prints the scheme registry and exits 0.
/// Malformed values throw util::InvalidArgument (callers print and exit 1).
inline bool handle_common_flag(int argc, char** argv, int& i) {
  const std::string arg = argv[i];
  const auto flag_value = [&](const char* flag) -> std::string {
    if (i + 1 >= argc) throw util::InvalidArgument(std::string(flag) + " needs a value");
    return argv[++i];
  };
  std::string threads_value;
  if (arg == "--threads") {
    threads_value = flag_value("--threads");
  } else if (util::starts_with(arg, "--threads=")) {
    threads_value = arg.substr(10);
  } else if (arg == "--scheme" || util::starts_with(arg, "--scheme=")) {
    const std::string name =
        arg == "--scheme" ? flag_value("--scheme") : arg.substr(9);
    core::find_scheme(name);  // typos fail at parse time, with the valid list
    detail::scheme_override_name_slot() = name;
    return true;
  } else if (arg == "--json" || util::starts_with(arg, "--json=")) {
    detail::json_path() = arg == "--json" ? flag_value("--json") : arg.substr(7);
    util::require(!detail::json_path().empty(), "--json needs a non-empty path");
    return true;
  } else if (arg == "--trace" || util::starts_with(arg, "--trace=")) {
    detail::trace_path() = arg == "--trace" ? flag_value("--trace") : arg.substr(8);
    util::require(!detail::trace_path().empty(), "--trace needs a non-empty path");
    // Switch event capture on now so everything after flag parsing lands in
    // the trace. With INSOMNIA_OBS=off the file still comes out valid, just
    // without events.
    obs::enable_tracing();
    return true;
  } else if (arg == "--list-presets") {
    for (const core::ScenarioPreset& preset : core::scenario_presets()) {
      std::cout << preset.name << " — " << preset.summary << "\n";
    }
    std::exit(0);
  } else if (arg == "--list-schemes") {
    for (const core::SchemeSpec& spec : core::scheme_registry().specs()) {
      std::cout << spec.name << " — " << spec.display << " — " << spec.summary << "\n";
    }
    std::exit(0);
  } else {
    return false;
  }
  const auto parsed = util::parse_positive_int(threads_value);
  util::require(parsed.has_value(), "--threads must be a positive integer, got \"" +
                                        threads_value + "\"");
  setenv("INSOMNIA_THREADS", std::to_string(*parsed).c_str(), /*overwrite=*/1);
  return true;
}

/// The usage tail shared by every driver's error message.
inline const char* common_usage() {
  return " [--preset NAME] [--scheme NAME] [--threads N] [--json PATH]"
         " [--trace PATH] [--list-presets] [--list-schemes]";
}

/// For drivers without driver-specific flags or a scenario to swap:
/// accepts only the shared flags; anything else (including --preset) prints
/// the problem and exits 1.
inline void parse_common_args_or_exit(int argc, char** argv) {
  try {
    for (int i = 1; i < argc; ++i) {
      if (handle_common_flag(argc, argv, i)) continue;
      throw util::InvalidArgument(
          "unknown argument \"" + std::string(argv[i]) + "\"; usage: " + argv[0] +
          " [--scheme NAME] [--threads N] [--json PATH] [--trace PATH]"
          " [--list-presets] [--list-schemes]");
    }
    threads_from_env_or_exit();
  } catch (const util::InvalidArgument& error) {
    std::cerr << error.what() << "\n";
    std::exit(1);
  }
}

/// Resolves the scenario every driver simulates: `--preset NAME` (or
/// `--preset=NAME`) on the command line wins, then the INSOMNIA_PRESET
/// environment variable, then the paper default. Prints which preset is in
/// effect. Also accepts the shared flags (see handle_common_flag). Any
/// other argument, an unknown preset or scheme name, or a malformed
/// INSOMNIA_THREADS prints the problem and exits 1 — a typo must fail fast,
/// not silently run a different experiment.
inline core::ScenarioConfig scenario_from_args(int argc, char** argv) {
  try {
    const core::ScenarioPreset* selected = nullptr;
    for (int i = 1; i < argc; ++i) {
      if (handle_common_flag(argc, argv, i)) continue;
      const std::string arg = argv[i];
      if (arg == "--preset") {
        if (i + 1 >= argc) throw util::InvalidArgument("--preset needs a name");
        selected = &core::find_scenario_preset(argv[i + 1]);
        ++i;
      } else if (util::starts_with(arg, "--preset=")) {
        selected = &core::find_scenario_preset(arg.substr(9));
      } else {
        throw util::InvalidArgument("unknown argument \"" + arg + "\"; usage: " + argv[0] +
                                    common_usage());
      }
    }
    threads_from_env_or_exit();
    if (selected == nullptr) selected = &core::scenario_preset_from_env();
    std::cout << "scenario preset: " << selected->name << " — " << selected->summary << "\n";
    report().set_field("preset", selected->name);
    return selected->scenario;
  } catch (const util::InvalidArgument& error) {
    std::cerr << error.what() << "\n";
    std::exit(1);
  }
}

/// core::runs_from_env with the drivers' CLI error convention: a malformed
/// INSOMNIA_RUNS prints the problem and exits 1 instead of terminating.
inline int runs_from_env(int fallback) {
  try {
    const int runs = core::runs_from_env(fallback);
    report().set_field("runs", static_cast<long long>(runs));
    return runs;
  } catch (const util::InvalidArgument& error) {
    std::cerr << error.what() << "\n";
    std::exit(1);
  }
}

/// Averages one statistic over per-run sweep rows, folding in run-index
/// order with the historical `total += x / runs` form — the accumulation
/// sequence every abl sweep used serially, kept in one place so the
/// bit-identity convention cannot drift between drivers.
template <typename Row, typename Get>
double mean_over_runs(const std::vector<Row>& rows, Get get) {
  // An empty sweep would silently divide by zero and put NaN in every
  // driver table and --json report; fail loudly instead.
  util::require(!rows.empty(), "mean_over_runs needs at least one sweep row");
  const int runs = static_cast<int>(rows.size());
  double total = 0.0;
  for (const Row& row : rows) total += get(row) / runs;
  return total;
}

}  // namespace insomnia::bench
