// Shared helpers for the figure-regeneration benches: consistent headers,
// paper-vs-measured rows, environment-controlled run counts, and scenario
// preset selection (--preset NAME / INSOMNIA_PRESET).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiments.h"
#include "core/scenario_presets.h"
#include "exec/thread_pool.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/table.h"

namespace insomnia::bench {

/// Prints the standard banner for one regenerated artefact.
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "==============================================================\n"
            << id << " — " << title << "\n"
            << "==============================================================\n";
}

/// Prints one "paper vs measured" comparison line.
inline void compare(const std::string& what, const std::string& paper,
                    const std::string& measured) {
  std::cout << "  " << what << ": paper " << paper << " | measured " << measured << "\n";
}

inline std::string pct(double fraction, int decimals = 1) {
  return util::format_percent(fraction, decimals);
}

inline std::string num(double value, int decimals = 2) {
  return util::format_fixed(value, decimals);
}

/// Validates INSOMNIA_THREADS with the drivers' CLI error convention and
/// returns the resolved worker count. Even drivers that never shard call
/// this, so a typo'd value fails fast everywhere instead of being silently
/// ignored by some binaries.
inline int threads_from_env_or_exit() {
  try {
    return exec::default_thread_count();
  } catch (const util::InvalidArgument& error) {
    std::cerr << error.what() << "\n";
    std::exit(1);
  }
}

/// Handles the flags every driver shares. Returns true when argv[i] (plus a
/// possible value, past which `i` is advanced) was consumed:
///   * `--threads N` / `--threads=N` — worker threads, parsed with
///     util::parse_positive_int and exported as INSOMNIA_THREADS (overriding
///     any inherited value) so it reaches exec::default_thread_count() in
///     every layer without per-driver plumbing,
///   * `--list-presets` — prints the scenario registry and exits 0.
/// Malformed values throw util::InvalidArgument (callers print and exit 1).
inline bool handle_common_flag(int argc, char** argv, int& i) {
  const std::string arg = argv[i];
  std::string threads_value;
  if (arg == "--threads") {
    if (i + 1 >= argc) throw util::InvalidArgument("--threads needs a count");
    threads_value = argv[++i];
  } else if (util::starts_with(arg, "--threads=")) {
    threads_value = arg.substr(10);
  } else if (arg == "--list-presets") {
    for (const core::ScenarioPreset& preset : core::scenario_presets()) {
      std::cout << preset.name << " — " << preset.summary << "\n";
    }
    std::exit(0);
  } else {
    return false;
  }
  const auto parsed = util::parse_positive_int(threads_value);
  util::require(parsed.has_value(), "--threads must be a positive integer, got \"" +
                                        threads_value + "\"");
  setenv("INSOMNIA_THREADS", std::to_string(*parsed).c_str(), /*overwrite=*/1);
  return true;
}

/// Resolves the scenario every driver simulates: `--preset NAME` (or
/// `--preset=NAME`) on the command line wins, then the INSOMNIA_PRESET
/// environment variable, then the paper default. Prints which preset is in
/// effect. Also accepts the shared flags (`--threads N`, `--list-presets`).
/// Any other argument, an unknown preset name, or a malformed
/// INSOMNIA_THREADS prints the problem and exits 1 — a typo must fail fast,
/// not silently run a different experiment.
inline core::ScenarioConfig scenario_from_args(int argc, char** argv) {
  try {
    const core::ScenarioPreset* selected = nullptr;
    for (int i = 1; i < argc; ++i) {
      if (handle_common_flag(argc, argv, i)) continue;
      const std::string arg = argv[i];
      if (arg == "--preset") {
        if (i + 1 >= argc) throw util::InvalidArgument("--preset needs a name");
        selected = &core::find_scenario_preset(argv[i + 1]);
        ++i;
      } else if (util::starts_with(arg, "--preset=")) {
        selected = &core::find_scenario_preset(arg.substr(9));
      } else {
        throw util::InvalidArgument(
            "unknown argument \"" + arg + "\"; usage: " + argv[0] +
            " [--preset NAME] [--threads N] [--list-presets]");
      }
    }
    threads_from_env_or_exit();
    if (selected == nullptr) selected = &core::scenario_preset_from_env();
    std::cout << "scenario preset: " << selected->name << " — " << selected->summary << "\n";
    return selected->scenario;
  } catch (const util::InvalidArgument& error) {
    std::cerr << error.what() << "\n";
    std::exit(1);
  }
}

/// core::runs_from_env with the drivers' CLI error convention: a malformed
/// INSOMNIA_RUNS prints the problem and exits 1 instead of terminating.
inline int runs_from_env(int fallback) {
  try {
    return core::runs_from_env(fallback);
  } catch (const util::InvalidArgument& error) {
    std::cerr << error.what() << "\n";
    std::exit(1);
  }
}

/// Averages one statistic over per-run sweep rows, folding in run-index
/// order with the historical `total += x / runs` form — the accumulation
/// sequence every abl sweep used serially, kept in one place so the
/// bit-identity convention cannot drift between drivers.
template <typename Row, typename Get>
double mean_over_runs(const std::vector<Row>& rows, Get get) {
  const int runs = static_cast<int>(rows.size());
  double total = 0.0;
  for (const Row& row : rows) total += get(row) / runs;
  return total;
}

}  // namespace insomnia::bench
