// Shared helpers for the figure-regeneration benches: consistent headers,
// paper-vs-measured rows, and environment-controlled run counts.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "util/strings.h"
#include "util/table.h"

namespace insomnia::bench {

/// Prints the standard banner for one regenerated artefact.
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "==============================================================\n"
            << id << " — " << title << "\n"
            << "==============================================================\n";
}

/// Prints one "paper vs measured" comparison line.
inline void compare(const std::string& what, const std::string& paper,
                    const std::string& measured) {
  std::cout << "  " << what << ": paper " << paper << " | measured " << measured << "\n";
}

inline std::string pct(double fraction, int decimals = 1) {
  return util::format_percent(fraction, decimals);
}

inline std::string num(double value, int decimals = 2) {
  return util::format_fixed(value, decimals);
}

}  // namespace insomnia::bench
