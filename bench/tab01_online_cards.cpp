// Regenerates the §5.2.3 in-text table: average number of online line cards
// during peak hours for every scheme/fabric combination —
//   Optimal: 1, BH2+full: 2, BH2+k: 2.88, SoI+full: 3, SoI+k: 3.74, SoI: 3.99.
#include <iostream>

#include "bench_common.h"
#include "core/experiments.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;
  bench::banner("Table (§5.2.3)", "average online line cards during peak hours");

  MainExperimentConfig config;
  config.scenario = bench::scenario_from_args(argc, argv);
  config.runs = bench::runs_from_env(3);
  config.schemes = {"soi",         "soi-kswitch",    "soi-fullswitch",
                    "bh2-kswitch", "bh2-fullswitch", "optimal"};
  bench::add_scheme_override(config.schemes);
  std::cout << "(" << config.runs << " paired runs)\n\n";
  const MainExperimentResult result = run_main_experiment(config);

  const std::vector<std::pair<std::string, double>> paper{
      {"optimal", 1.0},        {"bh2-fullswitch", 2.0}, {"bh2-kswitch", 2.88},
      {"soi-fullswitch", 3.0}, {"soi-kswitch", 3.74},   {"soi", 3.99}};

  util::TextTable table;
  table.set_header({"scheme", "paper", "measured (11-19h mean)"});
  for (const auto& [name, expected] : paper) {
    const SchemeOutcome& outcome = result.outcome(name);
    table.add_row({outcome.display, bench::num(expected, 2),
                   bench::num(outcome.peak_online_cards, 2)});
    bench::report().set_field(name + "_peak_online_cards", outcome.peak_online_cards);
  }
  table.print(std::cout);

  std::cout << "\n";
  bench::compare("ordering", "Optimal < BH2+full < BH2+k < SoI+full < SoI+k < SoI",
                 "see table");
  bench::compare("small switches track full switching", "4-switch close to full",
                 "compare BH2 rows");
  bench::report_scheme_override(result);
  return bench::finish();
}
