// Regenerates the §5.2.3 in-text table: average number of online line cards
// during peak hours for every scheme/fabric combination —
//   Optimal: 1, BH2+full: 2, BH2+k: 2.88, SoI+full: 3, SoI+k: 3.74, SoI: 3.99.
#include <iostream>

#include "bench_common.h"
#include "core/experiments.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;
  bench::banner("Table (§5.2.3)", "average online line cards during peak hours");

  MainExperimentConfig config;
  config.scenario = bench::scenario_from_args(argc, argv);
  config.runs = bench::runs_from_env(3);
  config.schemes = {SchemeKind::kSoi,           SchemeKind::kSoiKSwitch,
                    SchemeKind::kSoiFullSwitch, SchemeKind::kBh2KSwitch,
                    SchemeKind::kBh2FullSwitch, SchemeKind::kOptimal};
  std::cout << "(" << config.runs << " paired runs)\n\n";
  const MainExperimentResult result = run_main_experiment(config);

  const std::vector<std::pair<SchemeKind, double>> paper{
      {SchemeKind::kOptimal, 1.0},       {SchemeKind::kBh2FullSwitch, 2.0},
      {SchemeKind::kBh2KSwitch, 2.88},   {SchemeKind::kSoiFullSwitch, 3.0},
      {SchemeKind::kSoiKSwitch, 3.74},   {SchemeKind::kSoi, 3.99}};

  util::TextTable table;
  table.set_header({"scheme", "paper", "measured (11-19h mean)"});
  for (const auto& [kind, expected] : paper) {
    table.add_row({scheme_name(kind), bench::num(expected, 2),
                   bench::num(result.outcome(kind).peak_online_cards, 2)});
  }
  table.print(std::cout);

  std::cout << "\n";
  bench::compare("ordering", "Optimal < BH2+full < BH2+k < SoI+full < SoI+k < SoI",
                 "see table");
  bench::compare("small switches track full switching", "4-switch close to full",
                 "compare BH2 rows");
  return 0;
}
