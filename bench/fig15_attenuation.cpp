// Regenerates Fig. 15 (appendix): the distribution of port attenuations on
// each line card of a production-scale DSLAM (14 cards x 72 ports), from a
// Gaussian loop-length population with sigma of one mile. The take-away the
// paper draws: per-card distributions are statistically identical, so the
// gateway-to-port assignment is effectively random.
#include <iostream>

#include "bench_common.h"
#include "dsl/attenuation_survey.h"
#include "sim/random.h"

int main(int argc, char** argv) {
  insomnia::bench::parse_common_args_or_exit(argc, argv);
  using namespace insomnia;
  bench::banner("Fig. 15", "port attenuation distribution per line card");

  dsl::AttenuationSurveyConfig config;
  sim::Random rng(15);
  const dsl::AttenuationSurvey survey = run_attenuation_survey(config, rng);

  util::TextTable table;
  table.set_header({"card", "mean dB", "p25", "median", "p75", "min", "max", "stddev"});
  for (const auto& card : survey.cards) {
    table.add_row({std::to_string(card.card), bench::num(card.mean, 1),
                   bench::num(card.p25, 1), bench::num(card.median, 1),
                   bench::num(card.p75, 1), bench::num(card.min, 1),
                   bench::num(card.max, 1), bench::num(card.stddev, 1)});
  }
  table.print(std::cout);

  std::cout << "\n";
  bench::compare("per-card distribution", "similar Gaussian on every card",
                 "between-card stddev of means " + bench::num(survey.between_card_stddev, 2) +
                     " dB vs overall stddev " + bench::num(survey.overall_stddev, 2) + " dB");
  bench::compare("spread", "~1 mile of loop (= ~23 dB at 70 m/dB)",
                 bench::num(survey.overall_stddev, 1) + " dB");
  insomnia::bench::note_scheme_not_applicable();
  return insomnia::bench::finish();
}
