// Regenerates Fig. 2: daily average and median utilization of the access
// links of a 10 K-subscriber residential ADSL population (synthesised; the
// paper's commercial dataset is proprietary).
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "sim/random.h"
#include "trace/adsl_utilization.h"

int main(int argc, char** argv) {
  insomnia::bench::parse_common_args_or_exit(argc, argv);
  using namespace insomnia;
  bench::banner("Fig. 2", "daily average and median ADSL link utilization");

  trace::AdslUtilizationConfig config;
  sim::Random rng(2026);
  const trace::AdslUtilizationDay day = generate_adsl_utilization(config, rng);

  util::TextTable table;
  table.set_header({"hour", "down avg %", "down median %", "up avg %", "up median %"});
  for (int h = 0; h < 24; ++h) {
    table.add_row({std::to_string(h),
                   bench::num(day.downlink.average[static_cast<std::size_t>(h)] * 100, 3),
                   bench::num(day.downlink.median[static_cast<std::size_t>(h)] * 100, 4),
                   bench::num(day.uplink.average[static_cast<std::size_t>(h)] * 100, 3),
                   bench::num(day.uplink.median[static_cast<std::size_t>(h)] * 100, 4)});
  }
  table.print(std::cout);

  const double peak =
      *std::max_element(day.downlink.average.begin(), day.downlink.average.end());
  const double peak_median =
      *std::max_element(day.downlink.median.begin(), day.downlink.median.end());
  std::cout << "\n";
  bench::compare("peak downlink average", "<= 9%", bench::pct(peak));
  bench::compare("peak downlink median", "~0.01-0.05%", bench::pct(peak_median, 3));
  bench::compare("shape", "evening peak, early-morning trough",
                 "peak hour " + std::to_string(static_cast<int>(
                                    std::max_element(day.downlink.average.begin(),
                                                     day.downlink.average.end()) -
                                    day.downlink.average.begin())));
  insomnia::bench::note_scheme_not_applicable();
  return insomnia::bench::finish();
}
