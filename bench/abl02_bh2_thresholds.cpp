// Ablation: the §5.1 sensitivity analysis. Sweeps BH2's low/high load
// thresholds and decision period; reports savings, aggregation level, and
// the oscillation counters the paper says it minimised ("we paid special
// attention to oscillations").
#include <iostream>

#include "bench_common.h"
#include "core/experiments.h"
#include "core/metrics.h"
#include "exec/sweep_runner.h"
#include "topology/access_topology.h"
#include "trace/synthetic_crawdad.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;
  bench::banner("Ablation 2", "BH2 threshold and cadence sensitivity (§5.1)");

  const ScenarioConfig base_scenario = bench::scenario_from_args(argc, argv);
  const int runs = bench::runs_from_env(2);
  const SchemeSpec& scheme = bench::scheme_or("bh2-kswitch");
  exec::SweepRunner runner;
  std::cout << "(" << runs << " paired runs per point, scheme " << scheme.display << ")\n";

  sim::Random topo_rng(7);
  const auto topology = topo::make_overlap_topology(base_scenario.client_count,
                                                    base_scenario.degrees, topo_rng);

  auto evaluate = [&](const ScenarioConfig& scenario) {
    struct RunRow {
      double savings;
      double peak_gw;
      double moves;
      double wakes;
    };
    const auto rows = runner.run(static_cast<std::size_t>(runs), [&](std::size_t run) {
      sim::Random trace_rng(100 + run);
      const auto flows =
          trace::SyntheticCrawdadGenerator(scenario.traffic).generate(trace_rng);
      const RunMetrics nosleep =
          run_scheme(scenario, topology, flows, SchemeKind::kNoSleep, 1);
      const RunMetrics m = run_scheme(scenario, topology, flows, scheme, 900 + run);
      return RunRow{savings_fraction(m, nosleep, 0.0, m.duration),
                    m.online_gateways.mean(11 * 3600.0, 19 * 3600.0),
                    static_cast<double>(m.bh2_moves),
                    static_cast<double>(m.gateway_wake_events)};
    });
    return std::vector<std::string>{
        bench::num(bench::mean_over_runs(rows, [](const RunRow& r) { return r.savings; }) * 100, 1),
        bench::num(bench::mean_over_runs(rows, [](const RunRow& r) { return r.peak_gw; }), 1),
        bench::num(bench::mean_over_runs(rows, [](const RunRow& r) { return r.moves; }), 0),
        bench::num(bench::mean_over_runs(rows, [](const RunRow& r) { return r.wakes; }), 0)};
  };

  std::cout << "\nThreshold sweep (decision period fixed at 150 s):\n";
  util::TextTable thresholds;
  thresholds.set_header({"low / high", "savings %", "peak online gw", "moves", "wakes"});
  struct Pair {
    double low;
    double high;
  };
  for (const Pair p : {Pair{0.05, 0.30}, Pair{0.10, 0.50}, Pair{0.20, 0.70}}) {
    ScenarioConfig scenario = base_scenario;
    scenario.bh2.low_threshold = p.low;
    scenario.bh2.high_threshold = p.high;
    auto row = evaluate(scenario);
    row.insert(row.begin(),
               bench::pct(p.low, 0) + " / " + bench::pct(p.high, 0) +
                   (p.low == 0.10 ? " (paper)" : ""));
    thresholds.add_row(std::move(row));
  }
  thresholds.print(std::cout);

  std::cout << "\nDecision-period sweep (thresholds fixed at 10 % / 50 %):\n";
  util::TextTable cadence;
  cadence.set_header({"period", "savings %", "peak online gw", "moves", "wakes"});
  for (double period : {60.0, 150.0, 300.0}) {
    ScenarioConfig scenario = base_scenario;
    scenario.bh2.decision_period = period;
    auto row = evaluate(scenario);
    row.insert(row.begin(), bench::num(period, 0) + " s" + (period == 150.0 ? " (paper)" : ""));
    cadence.add_row(std::move(row));
  }
  cadence.print(std::cout);

  std::cout << "\n";
  bench::compare("claim (§5.1)", "10%/50% and 150 s balance convergence vs stability",
                 "paper rows should be at or near the savings/oscillation sweet spot");
  return bench::finish();
}
