// Ablation: how big do the HDF switches need to be? Runs BH2 over the §5.1
// scenario with no switching, 2-/4-/8-switches(*) and a full switch, and
// reports ISP-side results. This is the experimental companion to the
// analytic Fig. 5 model — §4.2 claims "even tiny switches suffice".
//
// (*) with 4 line cards an 8-switch cannot be wired (k must divide the card
// count), so the 8-switch point uses an 8-card x 6-port DSLAM of the same
// 48 ports to keep totals comparable.
#include <iostream>

#include "bench_common.h"
#include "core/experiments.h"
#include "core/metrics.h"
#include "exec/sweep_runner.h"
#include "topology/access_topology.h"
#include "trace/synthetic_crawdad.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;
  bench::banner("Ablation 1", "HDF switch size vs ISP-side savings (BH2 user side)");

  const ScenarioConfig scenario = bench::scenario_from_args(argc, argv);
  const int runs = bench::runs_from_env(3);
  const SchemeSpec& scheme = bench::scheme_or("bh2-kswitch");
  exec::SweepRunner runner;
  std::cout << "(" << runs << " paired runs, user side: " << scheme.display << ")\n\n";

  struct Config {
    std::string label;
    dslam::SwitchMode mode;
    int switch_size;
    int cards;
    int ports;
  };
  const std::vector<Config> configs{
      {"fixed wiring (no switch)", dslam::SwitchMode::kFixed, 4, 4, 12},
      {"2-switches", dslam::SwitchMode::kKSwitch, 2, 4, 12},
      {"4-switches (paper)", dslam::SwitchMode::kKSwitch, 4, 4, 12},
      {"8-switches (8x6 DSLAM)", dslam::SwitchMode::kKSwitch, 8, 8, 6},
      {"full switch", dslam::SwitchMode::kFullSwitch, 4, 4, 12},
  };

  util::TextTable table;
  table.set_header({"fabric", "total savings %", "ISP share %", "peak online cards"});
  // One fixed topology for every fabric and run (only the DSLAM varies).
  sim::Random topo_rng(7);
  const auto topology =
      topo::make_overlap_topology(scenario.client_count, scenario.degrees, topo_rng);

  for (const auto& config : configs) {
    ScenarioConfig shaped = scenario;
    shaped.dslam.line_cards = config.cards;
    shaped.dslam.ports_per_card = config.ports;

    struct RunRow {
      double savings;
      double isp_share;
      double peak_cards;
    };
    const auto rows = runner.run(static_cast<std::size_t>(runs), [&](std::size_t run) {
      sim::Random trace_rng(100 + run);
      const auto flows =
          trace::SyntheticCrawdadGenerator(shaped.traffic).generate(trace_rng);
      const RunMetrics base =
          run_scheme(shaped, topology, flows, SchemeKind::kNoSleep, 1);
      const RunMetrics m = run_scheme_with_fabric(shaped, topology, flows, scheme,
                                                  config.mode, config.switch_size, 500 + run);
      return RunRow{savings_fraction(m, base, 0.0, m.duration),
                    isp_share_of_savings(m, base, 0.0, m.duration).value_or(0.0),
                    m.online_cards.mean(11 * 3600.0, 19 * 3600.0)};
    });
    const double savings = bench::mean_over_runs(rows, [](const RunRow& r) { return r.savings; });
    const double isp_share =
        bench::mean_over_runs(rows, [](const RunRow& r) { return r.isp_share; });
    const double peak_cards =
        bench::mean_over_runs(rows, [](const RunRow& r) { return r.peak_cards; });
    table.add_row({config.label, bench::num(savings * 100, 1), bench::num(isp_share * 100, 1),
                   bench::num(peak_cards, 2)});
  }
  table.print(std::cout);

  std::cout << "\n";
  bench::compare("claim (§4.2)", "k=4 already close to full switching",
                 "compare the 4-switch and full-switch rows");
  return bench::finish();
}
