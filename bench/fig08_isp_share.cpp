// Regenerates Fig. 8: the share of each scheme's total savings contributed
// by the ISP side (DSLAM modems + line cards), over the day.
#include <iostream>

#include "bench_common.h"
#include "core/experiments.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;
  bench::banner("Fig. 8", "ISP-side contribution to the total energy savings");

  MainExperimentConfig config;
  config.scenario = bench::scenario_from_args(argc, argv);
  config.runs = bench::runs_from_env(3);
  config.bins = 24;
  config.schemes = {"soi", "soi-kswitch", "bh2-kswitch", "optimal"};
  bench::add_scheme_override(config.schemes);
  std::cout << "(" << config.runs << " paired runs)\n\n";
  const MainExperimentResult result = run_main_experiment(config);

  const auto& soi = result.outcome("soi");
  const auto& soik = result.outcome("soi-kswitch");
  const auto& bh2k = result.outcome("bh2-kswitch");
  const auto& optimal = result.outcome("optimal");
  for (const SchemeOutcome& outcome : result.schemes) {
    bench::report().add_series(outcome.scheme + "_isp_share", outcome.isp_share);
  }

  util::TextTable table;
  table.set_header({"hour", "Optimal %", "SoI+k-switch %", "BH2+k-switch %", "SoI %"});
  for (std::size_t bin = 0; bin < config.bins; ++bin) {
    table.add_row({std::to_string(bin), bench::num(optimal.isp_share[bin] * 100, 1),
                   bench::num(soik.isp_share[bin] * 100, 1),
                   bench::num(bh2k.isp_share[bin] * 100, 1),
                   bench::num(soi.isp_share[bin] * 100, 1)});
  }
  table.print(std::cout);

  std::cout << "\n";
  bench::compare("Optimal day-average ISP share", "~40%", bench::pct(optimal.day_isp_share));
  bench::compare("BH2+k-switch day-average ISP share", "~30%", bench::pct(bh2k.day_isp_share));
  bench::compare("SoI saves little for the ISP at peak", "near zero",
                 bench::pct(soi.isp_share[15]) + " at 15h");
  bench::report_scheme_override(result);
  return bench::finish();
}
