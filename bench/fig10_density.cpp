// Regenerates Fig. 10: the effect of wireless gateway density on BH2's
// aggregation — mean number of online gateways during peak hours (11-19 h)
// vs the mean number of gateways a user can connect to (binomial
// connectivity matrices, as in §5.2.5).
#include <iostream>

#include "bench_common.h"
#include "core/experiments.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;
  bench::banner("Fig. 10", "impact of gateway density on aggregation");

  const ScenarioConfig scenario = bench::scenario_from_args(argc, argv);
  const int runs = bench::runs_from_env(2);
  const SchemeSpec& scheme = bench::scheme_or("bh2-kswitch");
  std::cout << "(" << runs << " runs per density level, scheme " << scheme.display << ")\n\n";
  const std::vector<double> densities{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto points = run_density_sweep(scenario, densities, runs, 2026, 0, scheme.name);

  util::TextTable table;
  table.set_header({"mean available gateways", "mean online gateways (peak)"});
  for (const auto& point : points) {
    table.add_row({bench::num(point.mean_available_gateways, 0),
                   bench::num(point.mean_online_gateways, 1)});
  }
  table.print(std::cout);

  std::cout << "\n";
  bench::compare("home-only (density 1)", "~29-30 online",
                 bench::num(points.front().mean_online_gateways, 1));
  bench::compare("two gateways available", "~19 online (35% fewer)",
                 bench::num(points[1].mean_online_gateways, 1));
  bench::compare("monotone decrease with density", "yes",
                 bench::num(points.back().mean_online_gateways, 1) + " at density 10");
  std::vector<double> online;
  for (const auto& point : points) online.push_back(point.mean_online_gateways);
  bench::report().add_series("mean_available_gateways", densities);
  bench::report().add_series("mean_online_gateways", online);
  return bench::finish();
}
