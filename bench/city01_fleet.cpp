// City-scale fleet study (§5.4 grounded in simulation): a whole ISP city of
// heterogeneous neighbourhoods — a weighted mix of scenario presets with
// per-neighbourhood jitter — simulated in parallel, then extrapolated to the
// world subscriber base. Prints the per-preset breakdown, the fleet
// aggregates, and the simulation-grounded world numbers next to the paper's
// constant-based ~33 TWh/yr back-of-the-envelope.
//
// Knobs: --size N (neighbourhoods), --mix name=w[,name=w...], --seed S,
// --scheme NAME (any registered scheme), --json PATH, --threads N,
// --list-presets, --list-schemes; INSOMNIA_THREADS applies as everywhere.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "city/city_runner.h"
#include "city/neighbourhood_sampler.h"
#include "city/world_extrapolation.h"
#include "core/extrapolation.h"
#include "obs/heartbeat.h"
#include "util/table.h"

namespace {

using namespace insomnia;

/// Parses "name=w[,name=w...]" into mix components carrying `jitter`.
std::vector<city::CityMixComponent> parse_mix(const std::string& spec,
                                              const city::NeighbourhoodJitter& jitter) {
  std::vector<city::CityMixComponent> mix;
  for (const std::string& entry : util::split(spec, ',')) {
    const auto eq = entry.find('=');
    util::require(eq != std::string::npos && eq > 0 && eq + 1 < entry.size(),
                  "mix entry \"" + entry + "\" must look like preset=weight");
    city::CityMixComponent component;
    component.preset = entry.substr(0, eq);
    const auto weight = util::parse_double(entry.substr(eq + 1));
    util::require(weight.has_value(), "mix weight in \"" + entry + "\" is not a number");
    component.weight = *weight;
    component.jitter = jitter;
    mix.push_back(component);
  }
  return mix;
}

city::CityConfig config_from_args(int argc, char** argv) {
  city::CityConfig config = city::default_city(/*neighbourhoods=*/24);
  const city::NeighbourhoodJitter jitter = config.mix.front().jitter;
  for (int i = 1; i < argc; ++i) {
    if (bench::handle_common_flag(argc, argv, i)) continue;
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) throw util::InvalidArgument(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (arg == "--size") {
      const auto parsed = util::parse_positive_int(value("--size"));
      util::require(parsed.has_value(), "--size must be a positive integer");
      config.neighbourhoods = *parsed;
    } else if (arg == "--seed") {
      const auto parsed = util::parse_uint64(value("--seed"));
      util::require(parsed.has_value(), "--seed must be an unsigned 64-bit integer");
      config.seed = *parsed;
    } else if (arg == "--mix") {
      config.mix = parse_mix(value("--mix"), jitter);
    } else {
      throw util::InvalidArgument(
          "unknown argument \"" + arg + "\"; usage: " + argv[0] +
          " [--size N] [--mix name=w,...] [--seed S] [--scheme NAME] [--json PATH]"
          " [--threads N] [--list-presets] [--list-schemes]");
    }
  }
  config.scheme = bench::scheme_or(config.scheme).name;
  city::resolve_mix(config);  // structural + registry validation, fails fast
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace insomnia;
  bench::banner("City fleet (§5.4)", "heterogeneous neighbourhood fleet behind one ISP");

  city::CityConfig config;
  try {
    config = config_from_args(argc, argv);
  } catch (const util::InvalidArgument& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
  bench::threads_from_env_or_exit();

  std::cout << config.neighbourhoods << " neighbourhoods, seed " << config.seed
            << ", scheme " << core::find_scheme(config.scheme).display << ", mix:";
  for (const city::CityMixComponent& component : config.mix) {
    std::cout << " " << component.preset << "=" << bench::num(component.weight, 2);
  }
  std::cout << "\n\n";

  const city::CityResult result = [&] {
    obs::Heartbeat::Options beat;
    beat.label = "city";
    beat.interval_sec = obs::Heartbeat::interval_from_env(2.0);
    beat.total_shards = static_cast<std::uint64_t>(config.neighbourhoods);
    beat.done_counter = "city.neighbourhoods_done";
    const obs::Heartbeat heartbeat(beat);  // final summary prints on scope exit
    return city::run_city(config);
  }();
  const city::CityMetrics& metrics = result.metrics;

  util::TextTable table;
  table.set_header({"preset", "nbhds", "gateways", "clients", "baseline W", "scheme W",
                    "savings"});
  for (const city::PresetAggregate& slice : metrics.per_preset()) {
    table.add_row({slice.preset, std::to_string(slice.neighbourhoods),
                   std::to_string(slice.gateways), std::to_string(slice.clients),
                   bench::num(slice.baseline_watts, 0), bench::num(slice.scheme_watts, 0),
                   bench::pct(slice.savings_fraction())});
  }
  table.add_row({"city", std::to_string(metrics.neighbourhoods()),
                 std::to_string(metrics.total_gateways()),
                 std::to_string(metrics.total_clients()),
                 bench::num(metrics.baseline_watts(), 0),
                 bench::num(metrics.scheme_watts(), 0),
                 bench::pct(metrics.savings_fraction())});
  table.print(std::cout);

  std::cout << "\n";
  bench::compare("fleet savings (energy-weighted)", "66% (one fixed neighbourhood)",
                 bench::pct(metrics.savings_fraction()) + " ± " +
                     bench::pct(metrics.savings_ci95_halfwidth()) +
                     " (95% CI across neighbourhoods)");
  bench::compare("share of savings at the ISP side", "~1/3",
                 bench::pct(metrics.isp_share_of_savings()));
  std::cout << "  peak-window online gateways (fleet): "
            << bench::num(metrics.peak_online_gateways(), 1) << " of "
            << metrics.total_gateways() << "\n"
            << "  gateway wake events (fleet day): " << metrics.wake_events() << "\n";

  // §5.4, twice: grounded in the simulated fleet, then the paper's four
  // constants — same subscriber base, so the rows are comparable.
  const core::WorldExtrapolationConfig simulated = city::world_config_from_city(result);
  const core::SavingsSplitTwh split = city::annual_savings_from_city(result);
  const core::WorldExtrapolationConfig paper{};

  std::cout << "\nWorld extrapolation ("
            << bench::num(paper.dsl_subscribers / 1e6, 0) << "M DSL subscribers):\n";
  bench::compare("annual savings",
                 bench::num(core::annual_savings_twh(paper), 1) + " TWh (paper constants)",
                 bench::num(core::annual_savings_twh(simulated), 1) +
                     " TWh (simulated fleet)");
  bench::compare("user / ISP split",
                 "~2/3 / ~1/3",
                 bench::num(split.user_twh, 1) + " / " + bench::num(split.isp_twh, 1) +
                     " TWh");
  bench::compare("equivalent nuclear plants",
                 bench::num(core::equivalent_nuclear_plants(paper), 1) + " (paper constants)",
                 bench::num(core::equivalent_nuclear_plants(simulated), 1) +
                     " (simulated fleet)");
  std::cout << "  simulated per-subscriber draw: household "
            << bench::num(simulated.household_watts) << " W, ISP "
            << bench::num(simulated.isp_watts_per_subscriber) << " W\n";

  bench::report().set_field("neighbourhoods", static_cast<long long>(config.neighbourhoods));
  bench::report().set_field("seed", static_cast<unsigned long long>(config.seed));
  bench::report().set_field("fleet_savings", metrics.savings_fraction());
  bench::report().set_field("fleet_savings_ci95", metrics.savings_ci95_halfwidth());
  bench::report().set_field("isp_share", metrics.isp_share_of_savings());
  bench::report().set_field("peak_online_gateways", metrics.peak_online_gateways());
  bench::report().set_field("annual_savings_twh_simulated",
                            core::annual_savings_twh(simulated));
  return bench::finish();
}
