// Regenerates Fig. 14: average per-line sync-rate speedup as lines in a
// 24-pair binder are powered off, for the four configurations (62/30 Mbps
// plans x mixed/fixed loop lengths), with the §6.2 methodology (5 random
// orders, each measured twice; error bars from per-sync margin noise).
#include <iostream>

#include "bench_common.h"
#include "dsl/crosstalk_experiment.h"
#include "sim/random.h"

int main(int argc, char** argv) {
  insomnia::bench::parse_common_args_or_exit(argc, argv);
  using namespace insomnia;
  bench::banner("Fig. 14", "crosstalk bonus: speedup vs number of inactive lines");

  const std::vector<std::string> labels{
      "62 Mbps plan, loop lengths 50-600 m", "62 Mbps plan, fixed 600 m",
      "30 Mbps plan, loop lengths 50-600 m", "30 Mbps plan, fixed 600 m"};
  const std::vector<double> paper_baseline{41.3, 43.7, 27.8, 29.7};

  const auto configs = dsl::fig14_configurations();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    sim::Random rng(900 + i);
    const auto result = dsl::run_crosstalk_experiment(configs[i], rng);
    std::cout << "\n" << labels[i] << "\n";
    bench::compare("baseline (all 24 lines active)",
                   bench::num(paper_baseline[i], 1) + " Mbps",
                   bench::num(result.baseline_mean_bps / 1e6, 1) + " Mbps");
    util::TextTable table;
    table.set_header({"inactive lines", "avg speedup %", "stddev %"});
    for (const auto& point : result.points) {
      table.add_row({std::to_string(point.inactive_lines),
                     bench::num(point.mean_speedup * 100, 2),
                     bench::num(point.stddev_speedup * 100, 2)});
    }
    table.print(std::cout);
  }

  std::cout << "\n";
  bench::compare("62 Mbps early slope", "1.1-1.2% per inactive line", "see tables");
  bench::compare("62 Mbps, half the lines off", "~13.6%", "row 'inactive 12'");
  bench::compare("62 Mbps, 75% off", "~25%", "row 'inactive 20' (fixed 600 m)");
  insomnia::bench::note_scheme_not_applicable();
  return insomnia::bench::finish();
}
