// Ablation: number of backup gateways. §5.2.6 argues one backup buys
// fairness (and slightly better completion times) without hurting
// aggregation. Sweeps backup = 0..3.
#include <iostream>

#include "bench_common.h"
#include "core/experiments.h"
#include "core/metrics.h"
#include "exec/sweep_runner.h"
#include "stats/cdf.h"
#include "topology/access_topology.h"
#include "trace/synthetic_crawdad.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;
  bench::banner("Ablation 4", "BH2 backup count: savings, aggregation, fairness");

  const ScenarioConfig base_scenario = bench::scenario_from_args(argc, argv);
  const int runs = bench::runs_from_env(2);
  const SchemeSpec& scheme = bench::scheme_or("bh2-kswitch");
  exec::SweepRunner runner;
  std::cout << "(" << runs << " paired runs per point, scheme " << scheme.display << ")\n\n";

  sim::Random topo_rng(7);
  const auto topology = topo::make_overlap_topology(base_scenario.client_count,
                                                    base_scenario.degrees, topo_rng);

  util::TextTable table;
  table.set_header({"backups", "savings %", "peak online gw", "fully-asleep gw %",
                    "gw online longer %", "home returns"});
  for (int backup : {0, 1, 2, 3}) {
    ScenarioConfig scenario = base_scenario;
    scenario.bh2.backup = backup;

    struct RunRow {
      double savings;
      double peak_gw;
      double returns;
      std::vector<double> variation;
    };
    const auto rows = runner.run(static_cast<std::size_t>(runs), [&](std::size_t run) {
      sim::Random trace_rng(100 + run);
      const auto flows =
          trace::SyntheticCrawdadGenerator(scenario.traffic).generate(trace_rng);
      const RunMetrics nosleep =
          run_scheme(scenario, topology, flows, SchemeKind::kNoSleep, 1);
      const RunMetrics soi = run_scheme(scenario, topology, flows, SchemeKind::kSoi,
                                        50 + run);
      const RunMetrics bh2 = run_scheme(scenario, topology, flows, scheme, 60 + run);
      return RunRow{savings_fraction(bh2, nosleep, 0.0, bh2.duration),
                    bh2.online_gateways.mean(11 * 3600.0, 19 * 3600.0),
                    static_cast<double>(bh2.bh2_home_returns),
                    online_time_variation(bh2, soi)};
    });
    const double savings = bench::mean_over_runs(rows, [](const RunRow& r) { return r.savings; });
    const double peak_gw = bench::mean_over_runs(rows, [](const RunRow& r) { return r.peak_gw; });
    const double returns = bench::mean_over_runs(rows, [](const RunRow& r) { return r.returns; });
    std::vector<double> variation;
    for (const RunRow& row : rows) {
      variation.insert(variation.end(), row.variation.begin(), row.variation.end());
    }
    const stats::EmpiricalCdf cdf(variation);
    table.add_row({std::to_string(backup) + (backup == 1 ? " (paper)" : ""),
                   bench::num(savings * 100, 1), bench::num(peak_gw, 1),
                   bench::pct(cdf.fraction_at_or_below(-0.999)),
                   bench::pct(1.0 - cdf.fraction_at_or_below(1e-9)),
                   bench::num(returns, 0)});
  }
  table.print(std::cout);

  std::cout << "\n";
  bench::compare("claim (§5.2.6)", "one backup: fairer sleeping-time split, no savings penalty",
                 "compare rows 0 and 1");
  return bench::finish();
}
