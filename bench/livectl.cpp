// Online-mode daemon (not a paper artefact): runs the src/live/ streaming
// fleet controller over an EventSource — the deterministic generator, a
// tailed trace file, or a listening socket — pacing the paired baseline +
// scheme day either in gated virtual time (bit-identical to an offline
// engine01_run over the same records; scripts/check.sh byte-compares the
// two) or pinned to the wall clock. SIGINT/SIGTERM drain gracefully: queued
// records still get decisions, the day drains, and the final report covers
// the span actually simulated.
//
// Usage: livectl [--source gen|tail|socket] [--path PATH] [--port N]
//                [--follow] [--pace virtual|wall] [--preset NAME] [--seed S]
//                [--bins N] [--tick-ms DUR] [--tick-virtual SEC]
//                [--duration DUR] [--speed F] [--rate EV_PER_SEC]
//                [--queue N] [--overflow backpressure|drop] [--record PATH]
//                [--fault-spec SPEC] [--list-faults] [--scheme NAME]
//                [--threads N] [--json PATH] [--trace PATH]
//                [--list-presets] [--list-schemes]
//
// --json writes the structured RunReport (same schema as engine01_run);
// with telemetry enabled it carries the "live.ingest_decision_ns" p99
// histogram in its telemetry block. --record mirrors every accepted record
// to a flow-trace file so a live day can be replayed offline.
#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "bench_common.h"
#include "live/event_source.h"
#include "live/live_controller.h"
#include "live/socket_source.h"
#include "live/tail_source.h"
#include "obs/heartbeat.h"
#include "resilience/fault_plan.h"
#include "util/duration.h"

namespace {

std::atomic<bool> g_stop{false};

void handle_stop_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace insomnia;
  using live::LiveController;

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  std::string source_kind = "gen";
  std::string path;
  int port = -1;
  bool follow = false;
  std::string preset;
  double rate = 0.0;
  LiveController::Options options;

  try {
    for (int i = 1; i < argc; ++i) {
      if (bench::handle_common_flag(argc, argv, i)) continue;
      const std::string arg = argv[i];
      const auto value = [&](const char* flag) -> std::string {
        if (i + 1 >= argc) throw util::InvalidArgument(std::string(flag) + " needs a value");
        return argv[++i];
      };
      const auto duration_value = [&](const char* flag,
                                      util::DurationUnit bare) -> double {
        const std::string text = value(flag);
        const auto parsed = util::parse_duration_seconds(text, bare);
        util::require(parsed.has_value(), std::string(flag) + " got \"" + text +
                                              "\" — expected " +
                                              util::duration_grammar_help());
        return *parsed;
      };
      if (arg == "--source") {
        source_kind = value("--source");
        util::require(source_kind == "gen" || source_kind == "tail" ||
                          source_kind == "socket",
                      "--source must be gen, tail or socket");
      } else if (arg == "--path") {
        path = value("--path");
      } else if (arg == "--port") {
        const auto parsed = util::parse_positive_int(value("--port"));
        util::require(parsed.has_value() && *parsed <= 65535,
                      "--port must be a TCP port number");
        port = *parsed;
      } else if (arg == "--follow") {
        follow = true;
      } else if (arg == "--pace") {
        const std::string pace = value("--pace");
        util::require(pace == "virtual" || pace == "wall",
                      "--pace must be virtual or wall");
        options.pace = pace == "virtual" ? live::PaceMode::kVirtual
                                         : live::PaceMode::kWall;
      } else if (arg == "--preset") {
        preset = value("--preset");
      } else if (arg == "--seed") {
        const auto parsed = util::parse_uint64(value("--seed"));
        util::require(parsed.has_value(), "--seed must be an unsigned 64-bit integer");
        options.seed = *parsed;
      } else if (arg == "--bins") {
        const auto parsed = util::parse_positive_int(value("--bins"));
        util::require(parsed.has_value(), "--bins must be a positive integer");
        options.bins = static_cast<std::size_t>(*parsed);
      } else if (arg == "--tick-ms") {
        options.tick_wall_sec = duration_value("--tick-ms", util::DurationUnit::kMilliseconds);
        util::require(options.tick_wall_sec > 0, "--tick-ms must be positive");
      } else if (arg == "--tick-virtual") {
        const auto parsed = util::parse_double(value("--tick-virtual"));
        util::require(parsed.has_value() && *parsed > 0,
                      "--tick-virtual must be a positive number of virtual seconds");
        options.tick_virtual_sec = *parsed;
      } else if (arg == "--duration") {
        options.max_wall_sec = duration_value("--duration", util::DurationUnit::kSeconds);
        util::require(options.max_wall_sec > 0, "--duration must be positive");
      } else if (arg == "--speed") {
        const auto parsed = util::parse_double(value("--speed"));
        util::require(parsed.has_value() && *parsed > 0,
                      "--speed must be a positive virtual-seconds-per-wall-second factor");
        options.speedup = *parsed;
      } else if (arg == "--rate") {
        const auto parsed = util::parse_double(value("--rate"));
        util::require(parsed.has_value() && *parsed > 0,
                      "--rate must be a positive events-per-second target");
        rate = *parsed;
      } else if (arg == "--queue") {
        const auto parsed = util::parse_positive_int(value("--queue"));
        util::require(parsed.has_value(), "--queue must be a positive integer");
        options.queue_capacity = static_cast<std::size_t>(*parsed);
      } else if (arg == "--overflow") {
        const std::string policy = value("--overflow");
        util::require(policy == "backpressure" || policy == "drop",
                      "--overflow must be backpressure or drop");
        options.overflow = policy == "drop" ? live::OverflowPolicy::kDropNewest
                                            : live::OverflowPolicy::kBackpressure;
      } else if (arg == "--record") {
        options.record_path = value("--record");
      } else if (arg == "--fault-spec") {
        resilience::set_global_fault_plan(
            resilience::parse_fault_plan(value("--fault-spec")));
      } else if (arg == "--list-faults") {
        std::cout << resilience::fault_spec_help();
        return 0;
      } else {
        throw util::InvalidArgument(
            "unknown argument \"" + arg + "\"; usage: " + argv[0] +
            " [--source gen|tail|socket] [--path PATH] [--port N] [--follow]"
            " [--pace virtual|wall] [--preset NAME] [--seed S] [--bins N]"
            " [--tick-ms DUR] [--tick-virtual SEC] [--duration DUR] [--speed F]"
            " [--rate EV_PER_SEC] [--queue N] [--overflow backpressure|drop]"
            " [--record PATH] [--fault-spec SPEC] [--list-faults]" +
            bench::common_usage());
      }
    }
    bench::threads_from_env_or_exit();

    const core::ScenarioPreset& selected =
        core::find_scenario_preset(preset.empty() ? "paper-default" : preset);
    options.scenario = selected.scenario;
    options.preset_name = selected.name;
    if (bench::scheme_override() != nullptr) {
      options.scheme = bench::scheme_override()->name;
    }
    // Heartbeat to stderr: 2 s by default when wall-paced (a daemon should
    // say it is alive), off for batch virtual replays; INSOMNIA_HEARTBEAT
    // retunes or silences it.
    options.heartbeat_sec = obs::Heartbeat::interval_from_env(
        options.pace == live::PaceMode::kWall ? 2.0 : 0.0);

    std::unique_ptr<live::EventSource> source;
    if (source_kind == "gen") {
      util::require(path.empty() && port < 0 && !follow,
                    "--path/--port/--follow apply to tail and socket sources");
      auto generator = std::make_unique<live::GeneratorSource>(
          options.scenario.traffic, options.seed, /*days=*/1);
      if (rate > 0.0) {
        util::require(options.pace == live::PaceMode::kWall,
                      "--rate paces the wall clock; use --pace wall");
        const double natural = generator->mean_records_per_virtual_sec();
        util::require(natural > 0, "the generator produced an empty day");
        options.speedup = rate / natural;
      }
      source = std::move(generator);
    } else if (source_kind == "tail") {
      util::require(!path.empty(), "--source tail needs --path FILE");
      util::require(rate <= 0, "--rate applies to the gen source only");
      source = std::make_unique<live::TailSource>(live::TailSource::Options{path, follow});
      // Echo the replayed file like engine01_run --trace-file does, so a
      // virtual-pace tail replay byte-matches the offline report.
      options.trace_file = path;
    } else {
      util::require(!path.empty() || port >= 0,
                    "--source socket needs --path SOCK or --port N");
      util::require(rate <= 0, "--rate applies to the gen source only");
      source = std::make_unique<live::SocketSource>(
          live::SocketSource::Options{path, port});
    }

    bench::banner("livectl", "online fleet controller — streaming ingest over "
                             "the paired-day engine");
    std::cout << "source : " << source->describe() << "\n"
              << "pace   : "
              << (options.pace == live::PaceMode::kVirtual
                      ? std::string("virtual (gated replay)")
                      : "wall (speedup " + bench::num(options.speedup, 1) + "x, tick " +
                            bench::num(options.tick_wall_sec * 1e3, 0) + " ms)")
              << "\n"
              << "scheme : " << options.scheme << ", preset " << options.preset_name
              << ", seed " << options.seed << "\n\n";

    LiveController controller(std::move(options), std::move(source));
    const live::LiveResult result = controller.run(&g_stop);
    const core::RunReport& report = result.report;
    const live::LiveStats& stats = result.stats;

    util::require(!report.days.empty(), "live run produced no day");
    const core::EngineDay& day = report.days.front();
    std::cout << "day report: " << bench::pct(day.savings) << " savings, "
              << bench::pct(day.isp_share) << " ISP share, "
              << bench::num(day.peak_online_gateways, 1) << " peak online gateways, "
              << day.wake_events << " wakes, " << day.flows << " flows\n"
              << "live stats:\n"
              << "  ingested " << stats.ingested << " records in "
              << bench::num(stats.wall_seconds, 2) << " s ("
              << bench::num(stats.ingest_events_per_sec, 0) << " ev/s), dropped "
              << stats.dropped << ", peak queue " << stats.peak_queue_depth << "\n"
              << "  decided " << stats.decided << "; ingest->decision p50/p95/p99/max = "
              << bench::num(stats.latency_p50_ns / 1e3, 1) << "/"
              << bench::num(stats.latency_p95_ns / 1e3, 1) << "/"
              << bench::num(stats.latency_p99_ns / 1e3, 1) << "/"
              << bench::num(stats.latency_max_ns / 1e3, 1) << " us ("
              << stats.latency_samples << " samples)\n"
              << "  " << stats.ticks << " ticks (" << stats.tick_overruns
              << " overruns), virtual span " << bench::num(stats.virtual_seconds, 0)
              << " s" << (stats.interrupted ? ", interrupted — drained cleanly" : "")
              << "\n";

    if (!bench::json_path().empty()) {
      std::ofstream out(bench::json_path());
      util::require(static_cast<bool>(out), "cannot write " + bench::json_path());
      out << report.to_json(/*include_telemetry=*/obs::enabled()) << "\n";
      std::cout << "\nwrote " << bench::json_path() << "\n";
    }
    if (!bench::trace_path().empty()) {
      obs::write_chrome_trace(bench::trace_path());
      std::cout << "wrote " << bench::trace_path()
                << " (chrome://tracing / ui.perfetto.dev)\n";
    }
  } catch (const util::InvalidArgument& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
  return 0;
}
