// Regenerates Fig. 9a: CDF of the per-flow completion-time increase vs the
// no-sleep baseline, for SoI and BH2 with/without backup. QoS claim under
// test: few flows are affected at all, BH2 far fewer than SoI.
#include <iostream>

#include "bench_common.h"
#include "core/experiments.h"
#include "stats/cdf.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;
  bench::banner("Fig. 9a", "CDF of flow completion-time increase vs no-sleep");

  MainExperimentConfig config;
  config.scenario = bench::scenario_from_args(argc, argv);
  config.runs = bench::runs_from_env(3);
  config.schemes = {"soi", "bh2-kswitch", "bh2-nobackup-kswitch"};
  const core::SchemeSpec* extra = bench::add_scheme_override(config.schemes);
  std::cout << "(" << config.runs << " paired runs)\n\n";
  const MainExperimentResult result = run_main_experiment(config);

  std::vector<std::pair<std::string, std::string>> rows{
      {"SoI", "soi"},
      {"BH2", "bh2-kswitch"},
      {"BH2 w/o backup", "bh2-nobackup-kswitch"}};
  // no-sleep is the FCT baseline itself — it has no increase samples.
  if (extra != nullptr && extra->name != "no-sleep" && extra->name != "soi" &&
      extra->name != "bh2-kswitch" && extra->name != "bh2-nobackup-kswitch") {
    rows.push_back({extra->display, extra->name});
  }

  util::TextTable table;
  table.set_header({"scheme", "flows affected (> +1%)", "flows slowed > 2x", "p99 increase",
                    "p99.9 increase", "max increase"});
  for (const auto& [label, name] : rows) {
    const auto& fct = result.outcome(name).fct_increase;
    const stats::EmpiricalCdf cdf(fct);
    const double affected = 1.0 - cdf.fraction_at_or_below(0.01);
    const double doubled = 1.0 - cdf.fraction_at_or_below(1.0);
    table.add_row({label, bench::pct(affected, 2), bench::pct(doubled, 2),
                   bench::pct(cdf.value_at(0.99)), bench::pct(cdf.value_at(0.999)),
                   bench::pct(cdf.sorted_sample().empty() ? 0.0 : cdf.sorted_sample().back())});
  }
  table.print(std::cout);
  std::cout << "\nNote: BH2's >1% slowdowns are mild hub-sharing effects; SoI's are\n"
               "60 s wake-up stalls. The stall-scale comparison is in the CDF tail.\n";

  std::cout << "\nCDF points (fraction of flows with increase <= x):\n";
  util::TextTable cdf_table;
  std::vector<std::string> cdf_header{"increase x"};
  for (const auto& [label, name] : rows) cdf_header.push_back(label);
  cdf_table.set_header(std::move(cdf_header));
  for (double x : {0.0, 0.01, 0.1, 0.5, 1.0, 2.0, 4.0, 6.0}) {
    std::vector<std::string> row{bench::pct(x, 0)};
    for (const auto& [label, name] : rows) {
      const stats::EmpiricalCdf cdf(result.outcome(name).fct_increase);
      row.push_back(bench::num(cdf.fraction_at_or_below(x), 4));
    }
    cdf_table.add_row(std::move(row));
  }
  cdf_table.print(std::cout);

  std::cout << "\n";
  bench::compare("SoI affected flows", "~8%, up to 7x stretch", "see table");
  bench::compare("BH2 affected flows", "~2%, less heavily", "see table");
  bench::compare("backup helps slightly", "yes", "compare BH2 rows");
  bench::report_scheme_override(result);
  return bench::finish();
}
