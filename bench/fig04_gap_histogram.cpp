// Regenerates Fig. 4: the share of a gateway's idle time contributed by
// inter-packet gaps of each size during the peak hour (16-17 h). This is
// the measurement that condemns plain Sleep-on-Idle: >80 % of idle time
// sits in gaps shorter than the 60 s wake-up cost.
#include <iostream>

#include "bench_common.h"
#include "sim/random.h"
#include "topology/access_topology.h"
#include "trace/analysis.h"
#include "trace/synthetic_crawdad.h"
#include "util/units.h"

int main(int argc, char** argv) {
  insomnia::bench::parse_common_args_or_exit(argc, argv);
  using namespace insomnia;
  bench::banner("Fig. 4", "share of idle time by inter-packet gap size, peak hour");

  trace::SyntheticTraceConfig config;
  const trace::SyntheticCrawdadGenerator generator(config);
  sim::Random rng(42);
  const trace::FlowTrace flows = generator.generate(rng);
  const auto homes = topo::assign_homes_balanced(config.client_count, 40, rng);
  const trace::PacketTrace packets =
      trace::SyntheticCrawdadGenerator::expand_to_packets(flows, util::mbps(6.0));
  const stats::Histogram hist = trace::inter_packet_gap_idle_histogram(
      packets, homes, 40, util::hours(16.0), util::hours(17.0));

  util::TextTable table;
  table.set_header({"gap bin [s]", "% of idle time"});
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    table.add_row({hist.bin_label(b), bench::num(hist.bin_fraction(b) * 100, 2)});
  }
  table.add_row({">60", bench::num(hist.overflow_fraction() * 100, 2)});
  table.print(std::cout);

  std::cout << "\n";
  bench::compare("idle time in gaps < 60 s", ">80% (~82%)",
                 bench::pct(trace::idle_fraction_below(hist, 60.0)));
  // §2.4: "this continuous light traffic effectively condemns the SoI
  // technique to a maximum saving of only 20%".
  bench::compare(
      "ideal SoI sleep bound at peak hour", "~20%",
      bench::pct(trace::soi_sleep_bound(packets, homes, 40, util::hours(16.0),
                                        util::hours(17.0), 60.0)));
  insomnia::bench::note_scheme_not_applicable();
  return insomnia::bench::finish();
}
