// Regenerates the paper's headline summary (§1, §5.4): the 80 % savings
// margin, BH2+k-switch's 66 % average savings split 2/3 user : 1/3 ISP, and
// the world-wide extrapolation of ~33 TWh/year (~3 nuclear plants).
#include <iostream>

#include "bench_common.h"
#include "core/experiments.h"
#include "core/extrapolation.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;
  bench::banner("Summary (§5.4)", "headline savings and world-wide extrapolation");

  MainExperimentConfig config;
  config.scenario = bench::scenario_from_args(argc, argv);
  config.runs = bench::runs_from_env(3);
  config.schemes = {"bh2-kswitch", "optimal"};
  bench::add_scheme_override(config.schemes);
  std::cout << "(" << config.runs << " paired runs)\n\n";
  const MainExperimentResult result = run_main_experiment(config);

  const auto& bh2 = result.outcome("bh2-kswitch");
  const auto& optimal = result.outcome("optimal");

  bench::compare("savings margin (Optimal, day avg)", "~80%", bench::pct(optimal.day_savings));
  bench::compare("BH2 + k-switch (day avg)", "66%", bench::pct(bh2.day_savings));
  bench::compare("share of savings at the user side", "~2/3",
                 bench::pct(1.0 - bh2.day_isp_share));
  bench::compare("share of savings at the ISP side", "~1/3", bench::pct(bh2.day_isp_share));
  bench::compare("gap to optimal", "within 7-35%",
                 bench::pct(1.0 - bh2.day_savings / optimal.day_savings));

  WorldExtrapolationConfig world;
  world.savings_fraction = bh2.day_savings;
  std::cout << "\nWorld-wide extrapolation (" << bench::num(world.dsl_subscribers / 1e6, 0)
            << "M DSL subscribers):\n";
  bench::compare("annual savings", "~33 TWh", bench::num(annual_savings_twh(world), 1) + " TWh");
  bench::compare("equivalent nuclear plants", "~3",
                 bench::num(equivalent_nuclear_plants(world), 1));
  bench::report_scheme_override(result);
  return bench::finish();
}
