// Regenerates Fig. 12: the live-testbed experiment — 9 gateways on 3 Mbps
// ADSL lines, one BH2 terminal per gateway each replaying the traffic of
// one traced AP, clients limited to 3 gateways in range, 15:00-15:30.
// Compares the number of online APs under BH2 (no backup, as deployed)
// against SoI.
#include <iostream>

#include "bench_common.h"
#include "core/experiments.h"
#include "core/testbed.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;
  // The testbed replays a fixed physical deployment (9 APs, 3 Mbps lines)
  // — there is no neighbourhood scenario to swap via --preset; --scheme
  // swaps the policy under test (deployed: BH2 without backup).
  bench::parse_common_args_or_exit(argc, argv);
  bench::banner("Fig. 12", "testbed replay: online APs, 15:00-15:30");
  if (std::getenv("INSOMNIA_PRESET") != nullptr) {
    // Visible, not fatal: batch loops over all drivers with a preset
    // exported should still include the testbed, but never misattribute
    // its output to that preset.
    std::cout << "note: INSOMNIA_PRESET ignored — the §5.3 testbed is a fixed deployment\n";
  }

  TestbedConfig config;
  config.runs = bench::runs_from_env(10);
  const SchemeSpec& scheme = bench::scheme_or(config.scheme);
  config.scheme = scheme.name;
  std::cout << "(" << config.runs << " randomised replays, " << scheme.display
            << " vs SoI)\n\n";
  const TestbedResult result = run_testbed_emulation(config);

  util::TextTable table;
  table.set_header({"minute", "SoI online APs", scheme.display + " online APs"});
  for (std::size_t minute = 0; minute < result.soi_online.size(); ++minute) {
    table.add_row({std::to_string(minute + 1), bench::num(result.soi_online[minute], 2),
                   bench::num(result.bh2_online[minute], 2)});
  }
  table.print(std::cout);

  std::cout << "\n";
  bench::compare("BH2 average sleeping APs (of 9)", "5.46 (60%)",
                 bench::num(result.bh2_mean_sleeping, 2));
  bench::compare("SoI average sleeping APs (of 9)", "3.72 (41%)",
                 bench::num(result.soi_mean_sleeping, 2));
  bench::compare("BH2 consistently below SoI", "yes",
                 bench::num(result.bh2_mean_online, 2) + " vs " +
                     bench::num(result.soi_mean_online, 2) + " online");
  bench::report().add_series("soi_online", result.soi_online);
  bench::report().add_series("scheme_online", result.bh2_online);
  return bench::finish();
}
