// Ablation: wake-up time. The paper measured ~60 s average (ADSL resync can
// reach 3 minutes). Sweeps the wake-up penalty and reports savings plus the
// number of flows stalled by more than half the wake time — quantifying how
// BH2's backup associations insulate users from slow resynchronisation.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/experiments.h"
#include "core/metrics.h"
#include "exec/sweep_runner.h"
#include "topology/access_topology.h"
#include "trace/synthetic_crawdad.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;
  bench::banner("Ablation 3", "wake-up time: savings and stalls, SoI vs BH2");

  const ScenarioConfig base_scenario = bench::scenario_from_args(argc, argv);
  const int runs = bench::runs_from_env(2);
  const SchemeSpec& scheme = bench::scheme_or("bh2-kswitch");
  exec::SweepRunner runner;
  std::cout << "(" << runs << " paired runs per point, vs " << scheme.display << ")\n\n";
  sim::Random topo_rng(7);
  const auto topology = topo::make_overlap_topology(base_scenario.client_count,
                                                    base_scenario.degrees, topo_rng);

  util::TextTable table;
  table.set_header({"wake time", "SoI savings %", "BH2 savings %", "SoI stalls", "BH2 stalls"});
  for (double wake : {10.0, 30.0, 60.0, 120.0, 180.0}) {
    ScenarioConfig scenario = base_scenario;
    scenario.wake_time = wake;

    struct RunRow {
      double soi_savings;
      double bh2_savings;
      double soi_stalls;
      double bh2_stalls;
    };
    const auto rows = runner.run(static_cast<std::size_t>(runs), [&](std::size_t run) {
      sim::Random trace_rng(100 + run);
      const auto flows =
          trace::SyntheticCrawdadGenerator(scenario.traffic).generate(trace_rng);
      const RunMetrics nosleep =
          run_scheme(scenario, topology, flows, SchemeKind::kNoSleep, 1);
      const RunMetrics soi = run_scheme(scenario, topology, flows, SchemeKind::kSoi,
                                        70 + run);
      const RunMetrics bh2 = run_scheme(scenario, topology, flows, scheme, 80 + run);
      auto stalled = [&](const RunMetrics& m) {
        long count = 0;
        for (std::size_t i = 0; i < m.completion_time.size(); ++i) {
          const double delta = m.completion_time[i] - nosleep.completion_time[i];
          if (!std::isnan(delta) && delta > wake / 2.0) ++count;
        }
        return static_cast<double>(count);
      };
      return RunRow{savings_fraction(soi, nosleep, 0.0, soi.duration),
                    savings_fraction(bh2, nosleep, 0.0, bh2.duration), stalled(soi),
                    stalled(bh2)};
    });
    const double soi_savings =
        bench::mean_over_runs(rows, [](const RunRow& r) { return r.soi_savings; });
    const double bh2_savings =
        bench::mean_over_runs(rows, [](const RunRow& r) { return r.bh2_savings; });
    const double soi_stalls =
        bench::mean_over_runs(rows, [](const RunRow& r) { return r.soi_stalls; });
    const double bh2_stalls =
        bench::mean_over_runs(rows, [](const RunRow& r) { return r.bh2_stalls; });
    table.add_row({bench::num(wake, 0) + " s" + (wake == 60.0 ? " (paper)" : ""),
                   bench::num(soi_savings * 100, 1), bench::num(bh2_savings * 100, 1),
                   bench::num(soi_stalls, 0), bench::num(bh2_stalls, 0)});
  }
  table.print(std::cout);

  std::cout << "\n";
  bench::compare("expectation", "SoI degrades with slower resync; BH2 largely insulated",
                 "see stall columns");
  return bench::finish();
}
