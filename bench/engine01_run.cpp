// The unified Engine CLI (not a paper artefact): one declarative RunSpec —
// scenario preset or recorded trace, registered scheme, seed, repeats,
// threads — run end to end, summarised on stdout, and dumped as the
// structured RunReport JSON with --json. This is the one-stop entry point
// for studying any registered scheme (paper or beyond) without touching a
// figure driver.
//
// Usage: engine01_run [--preset NAME] [--scheme NAME] [--runs N] [--seed S]
//                     [--bins N] [--trace-file PATH] [--threads N] [--json PATH]
//                     [--trace PATH] [--list-presets] [--list-schemes]
//
// --trace-file replays a recorded flow trace (trace/trace_io.h) instead of
// generating synthetic days; --trace (shared flag) exports a Chrome
// profiling trace — two different things.
#include <iostream>
#include <fstream>
#include <string>

#include "bench_common.h"
#include "core/engine.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;

  RunSpec spec;
  spec.runs = 3;
  try {
    for (int i = 1; i < argc; ++i) {
      if (bench::handle_common_flag(argc, argv, i)) continue;
      const std::string arg = argv[i];
      const auto value = [&](const char* flag) -> std::string {
        if (i + 1 >= argc) throw util::InvalidArgument(std::string(flag) + " needs a value");
        return argv[++i];
      };
      if (arg == "--preset") {
        spec.preset = value("--preset");
      } else if (arg == "--runs") {
        const auto parsed = util::parse_positive_int(value("--runs"));
        util::require(parsed.has_value(), "--runs must be a positive integer");
        spec.runs = *parsed;
      } else if (arg == "--seed") {
        const auto parsed = util::parse_uint64(value("--seed"));
        util::require(parsed.has_value(), "--seed must be an unsigned 64-bit integer");
        spec.seed = *parsed;
      } else if (arg == "--bins") {
        const auto parsed = util::parse_positive_int(value("--bins"));
        util::require(parsed.has_value(), "--bins must be a positive integer");
        spec.bins = static_cast<std::size_t>(*parsed);
      } else if (arg == "--trace-file") {
        spec.trace_file = value("--trace-file");
      } else {
        throw util::InvalidArgument(
            "unknown argument \"" + arg + "\"; usage: " + argv[0] +
            " [--preset NAME] [--scheme NAME] [--runs N] [--seed S] [--bins N]"
            " [--trace-file PATH] [--threads N] [--json PATH] [--trace PATH]"
            " [--list-presets] [--list-schemes]");
      }
    }
    if (bench::scheme_override() != nullptr) spec.scheme = bench::scheme_override()->name;
    spec.threads = bench::threads_from_env_or_exit();

    bench::banner("Engine run", "declarative RunSpec -> structured RunReport");
    const RunReport report = Engine().run(spec);

    std::cout << "scheme  : " << report.scheme << " (" << report.scheme_display << ")\n"
              << "scenario: " << report.preset << " — " << report.clients << " clients, "
              << report.gateways << " gateways\n"
              << "trace   : "
              << (report.trace_file.empty() ? std::string("synthetic (per-run substreams)")
                                            : report.trace_file)
              << "\n"
              << "seed " << report.seed << ", " << report.runs << " paired day(s), "
              << report.bins << " bins\n\n";

    util::TextTable table;
    table.set_header({"day", "savings", "ISP share", "peak online gw", "wakes", "flows"});
    for (std::size_t d = 0; d < report.days.size(); ++d) {
      const EngineDay& day = report.days[d];
      table.add_row({std::to_string(d), bench::pct(day.savings), bench::pct(day.isp_share),
                     bench::num(day.peak_online_gateways, 1),
                     std::to_string(day.wake_events), std::to_string(day.flows)});
    }
    table.print(std::cout);

    std::cout << "\naggregate: " << bench::pct(report.day_savings) << " savings, "
              << bench::pct(report.day_isp_share) << " ISP share, "
              << bench::num(report.peak_online_gateways, 1) << " peak online gateways, "
              << bench::num(report.mean_wake_events, 0) << " wakes/day\n";

    if (!bench::json_path().empty()) {
      std::ofstream out(bench::json_path());
      util::require(static_cast<bool>(out), "cannot write " + bench::json_path());
      out << report.to_json(/*include_telemetry=*/obs::enabled()) << "\n";
      std::cout << "wrote " << bench::json_path() << "\n";
    }
    if (!bench::trace_path().empty()) {
      obs::write_chrome_trace(bench::trace_path());
      std::cout << "wrote " << bench::trace_path()
                << " (chrome://tracing / ui.perfetto.dev)\n";
    }
  } catch (const util::InvalidArgument& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
  return 0;
}
