// Regenerates Fig. 6: energy savings vs the no-sleep baseline over the day
// for Optimal, SoI, SoI + k-switch, and BH2 + k-switch.
//
// Runs INSOMNIA_RUNS paired simulation days (default 3; the paper uses 10).
#include <iostream>

#include "bench_common.h"
#include "core/experiments.h"

int main(int argc, char** argv) {
  using namespace insomnia;
  using namespace insomnia::core;
  bench::banner("Fig. 6", "energy savings vs no-sleep over the day");

  MainExperimentConfig config;
  config.scenario = bench::scenario_from_args(argc, argv);
  config.runs = bench::runs_from_env(3);
  config.bins = 24;  // hourly resolution
  config.schemes = {"soi", "soi-kswitch", "bh2-kswitch", "optimal"};
  bench::add_scheme_override(config.schemes);
  std::cout << "(" << config.runs << " paired runs; set INSOMNIA_RUNS to change)\n\n";
  const MainExperimentResult result = run_main_experiment(config);

  util::TextTable table;
  table.set_header({"hour", "Optimal %", "SoI %", "SoI+k-switch %", "BH2+k-switch %"});
  const auto& optimal = result.outcome("optimal");
  const auto& soi = result.outcome("soi");
  const auto& soik = result.outcome("soi-kswitch");
  const auto& bh2k = result.outcome("bh2-kswitch");
  for (const SchemeOutcome& outcome : result.schemes) {
    bench::report().add_series(outcome.scheme + "_savings", outcome.savings);
  }
  for (std::size_t bin = 0; bin < config.bins; ++bin) {
    table.add_row({std::to_string(bin), bench::num(optimal.savings[bin] * 100, 1),
                   bench::num(soi.savings[bin] * 100, 1),
                   bench::num(soik.savings[bin] * 100, 1),
                   bench::num(bh2k.savings[bin] * 100, 1)});
  }
  table.print(std::cout);

  // Peak-window (11-19 h) savings for the paper's headline observations.
  auto window_mean = [&](const SchemeOutcome& o, std::size_t lo, std::size_t hi) {
    double total = 0.0;
    for (std::size_t b = lo; b < hi; ++b) total += o.savings[b];
    return total / static_cast<double>(hi - lo);
  };
  std::cout << "\n";
  bench::compare("Optimal, all day", "consistently ~80%",
                 bench::pct(optimal.day_savings));
  bench::compare("SoI during peak hours", "drops below 20%",
                 bench::pct(window_mean(soi, 11, 19)));
  bench::compare("SoI+k-switch during peak", "also below 20%",
                 bench::pct(window_mean(soik, 11, 19)));
  bench::compare("BH2+k-switch during peak", "at least 50%",
                 bench::pct(window_mean(bh2k, 11, 19)));
  bench::compare("BH2+k-switch day average", "66%", bench::pct(bh2k.day_savings));
  bench::compare("off-peak (2-6 h) schemes", ">60%",
                 bench::pct(window_mean(soik, 2, 6)) + " (SoI+k), " +
                     bench::pct(window_mean(bh2k, 2, 6)) + " (BH2+k)");
  bench::report_scheme_override(result);
  return bench::finish();
}
