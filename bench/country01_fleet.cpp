// Country-scale federated fleet (§5.4 fully simulated): a weighted portfolio
// of heterogeneous cities — dense metro cores, suburban carpets, sparse
// rural stretches, developing-world deployments — simulated city by city and
// rolled up into a world TWh/yr figure with a 95 % confidence interval. At
// full scale (--scale 1 --nbhd-scale 1) the portfolio holds ≥1M gateways;
// that is a multi-hour run, so it checkpoints (--checkpoint DIR) and resumes
// bit-identically, and can fan out over processes (--procs N) sharing the
// checkpoint directory.
//
// Knobs: --scale F (cities per region ×F), --nbhd-scale F (neighbourhood
// ranges ×F), --seed S, --scheme NAME, --threads N, --procs N,
// --checkpoint DIR, --flush-every N, --max-shards N (stop after N new city
// shards — the resume test hook), --fault-spec SPEC (deterministic chaos,
// see docs/RESILIENCE.md; INSOMNIA_FAULTS is the env form), --max-attempts N
// (per-shard retry budget), --fail-fast (abort on first failure instead of
// quarantining), --json PATH, --list-schemes.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/extrapolation.h"
#include "country/country_config.h"
#include "country/country_runner.h"
#include "country/world_extrapolation.h"
#include "obs/heartbeat.h"
#include "obs/rss.h"
#include "resilience/fault_plan.h"
#include "util/json_writer.h"
#include "util/table.h"

namespace {

using namespace insomnia;

struct Args {
  country::CountryConfig config;
  country::CountryRunOptions options;
};

Args parse_args(int argc, char** argv) {
  Args args;
  double scale = 1.0;
  double nbhd_scale = 1.0;
  std::uint64_t seed = 42;
  // Chaos plan from the environment unless --fault-spec overrides below;
  // retries back off 20..250 ms (full jitter) so transient faults don't
  // retry-storm, while clean runs never sleep at all.
  args.options.faults = resilience::global_fault_plan();
  args.options.backoff_base_ms = 20.0;
  args.options.backoff_cap_ms = 250.0;
  for (int i = 1; i < argc; ++i) {
    if (bench::handle_common_flag(argc, argv, i)) continue;
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) throw util::InvalidArgument(std::string(flag) + " needs a value");
      return argv[++i];
    };
    const auto positive_double = [&](const char* flag) -> double {
      const auto parsed = util::parse_double(value(flag));
      util::require(parsed.has_value() && *parsed > 0.0,
                    std::string(flag) + " must be a positive number");
      return *parsed;
    };
    const auto positive_int = [&](const char* flag) -> int {
      const auto parsed = util::parse_positive_int(value(flag));
      util::require(parsed.has_value(), std::string(flag) + " must be a positive integer");
      return *parsed;
    };
    if (arg == "--scale") {
      scale = positive_double("--scale");
    } else if (arg == "--nbhd-scale") {
      nbhd_scale = positive_double("--nbhd-scale");
    } else if (arg == "--seed") {
      const auto parsed = util::parse_uint64(value("--seed"));
      util::require(parsed.has_value(), "--seed must be an unsigned 64-bit integer");
      seed = *parsed;
    } else if (arg == "--procs") {
      args.options.procs = positive_int("--procs");
    } else if (arg == "--checkpoint") {
      args.options.checkpoint_dir = value("--checkpoint");
    } else if (arg == "--flush-every") {
      args.options.flush_every = positive_int("--flush-every");
    } else if (arg == "--max-shards") {
      args.options.max_city_shards = static_cast<std::size_t>(positive_int("--max-shards"));
    } else if (arg == "--fault-spec") {
      args.options.faults = resilience::parse_fault_plan(value("--fault-spec"));
      // Forked workers and the trace layer read the global plan.
      resilience::set_global_fault_plan(args.options.faults);
    } else if (arg == "--list-faults") {
      std::cout << resilience::fault_spec_help();
      std::exit(0);
    } else if (arg == "--max-attempts") {
      args.options.max_attempts = positive_int("--max-attempts");
    } else if (arg == "--fail-fast") {
      args.options.fail_fast = true;
    } else {
      throw util::InvalidArgument(
          "unknown argument \"" + arg + "\"; usage: " + argv[0] +
          " [--scale F] [--nbhd-scale F] [--seed S] [--scheme NAME] [--threads N]"
          " [--procs N] [--checkpoint DIR] [--flush-every N] [--max-shards N]"
          " [--fault-spec SPEC] [--list-faults] [--max-attempts N] [--fail-fast]"
          " [--json PATH] [--list-schemes]");
    }
  }
  args.config = country::default_country(scale, nbhd_scale);
  args.config.seed = seed;
  args.config.scheme = bench::scheme_or(args.config.scheme).name;
  country::validate(args.config);
  // Progress heartbeat every 2 s by default; INSOMNIA_HEARTBEAT=SECONDS
  // retunes it, "off" silences it.
  args.options.heartbeat_sec = obs::Heartbeat::interval_from_env(2.0);
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace insomnia;
  bench::banner("Country fleet (§5.4)",
                "country-scale federated fleet with checkpoint/resume");

  Args args;
  try {
    args = parse_args(argc, argv);
  } catch (const util::InvalidArgument& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
  args.config.threads = bench::threads_from_env_or_exit();

  const std::size_t shards = country::total_city_shards(args.config);
  std::cout << shards << " city shards over " << args.config.regions.size()
            << " regions, seed " << args.config.seed << ", scheme "
            << core::find_scheme(args.config.scheme).display;
  if (!args.options.checkpoint_dir.empty()) {
    std::cout << ", checkpoint " << args.options.checkpoint_dir;
  }
  if (args.options.procs > 1) std::cout << ", " << args.options.procs << " procs";
  std::cout << "\n";
  if (args.options.faults.any()) {
    std::cout << "fault plan: " << args.options.faults.summary() << " (max "
              << args.options.max_attempts << " attempts/shard, "
              << (args.options.fail_fast ? "fail-fast" : "degrade") << ")\n";
  }
  std::cout << "\n";

  country::CountryResult result;
  try {
    result = country::run_country(args.config, args.options);
  } catch (const std::exception& error) {
    // Fail-fast aborts, zero-coverage refusals, corrupt committed
    // checkpoints: loud, single-line, non-zero — not an uncaught abort.
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }

  const std::uint64_t rss = obs::rss_peak_bytes();
  if (rss > 0) {
    std::cout << "peak RSS: " << bench::num(static_cast<double>(rss) / (1024.0 * 1024.0), 1)
              << " MiB\n";
  }

  // Self-healing and degradation report. Only stdout for self-healed runs:
  // a fault-free and a fully-recovered chaos run must emit byte-identical
  // --json, so the report gains keys only when cities were actually lost.
  if (!result.child_failures.empty()) {
    std::cout << "self-healed " << result.child_failures.size()
              << " worker failure(s):\n";
    for (const country::ChildFailure& failure : result.child_failures) {
      std::cout << "  " << failure.describe() << "\n";
    }
  }
  if (result.degraded()) {
    std::cout << "DEGRADED: " << result.quarantined.size() << " of "
              << result.total_shards << " cities quarantined (coverage "
              << bench::pct(result.coverage()) << "); CIs below widen from the "
              << "smaller surviving sample\n";
    for (const country::QuarantinedCity& q : result.quarantined) {
      std::cout << "  region " << q.region << " city " << q.city << " after "
                << q.attempts << " attempts: " << q.reason << "\n";
    }
    std::cout << "\n";

    util::JsonWriter degraded;
    degraded.begin_object();
    degraded.field("coverage", result.coverage());
    degraded.key("quarantined").begin_array();
    for (const country::QuarantinedCity& q : result.quarantined) {
      degraded.begin_object();
      degraded.field("region", args.config.regions[q.region].name);
      degraded.field("city", static_cast<std::int64_t>(q.city));
      degraded.field("attempts", static_cast<std::int64_t>(q.attempts));
      degraded.field("reason", q.reason);
      degraded.end_object();
    }
    degraded.end_array();
    degraded.end_object();
    bench::report().set_raw_field("degraded", degraded.str());
  }

  bench::report().set_field("seed", static_cast<unsigned long long>(args.config.seed));
  bench::report().set_field("city_shards", static_cast<long long>(shards));
  bench::report().set_field("completed_shards",
                            static_cast<long long>(result.completed_shards));
  bench::report().set_field("complete", result.complete ? 1.0 : 0.0);

  if (!result.complete) {
    std::cout << "stopped after " << result.completed_shards << " of " << shards
              << " city shards (max-shards hook); rerun with the same checkpoint "
                 "directory to resume\n";
    return bench::finish();
  }

  const country::CountryMetrics& metrics = result.metrics;
  util::TextTable table;
  table.set_header({"region", "cities", "nbhds", "gateways", "clients", "baseline W",
                    "scheme W", "savings", "ci95"});
  for (const country::RegionMetrics& region : metrics.per_region()) {
    table.add_row({region.name, std::to_string(region.cities),
                   std::to_string(region.neighbourhoods),
                   std::to_string(region.gateways), std::to_string(region.clients),
                   bench::num(region.baseline_watts, 0),
                   bench::num(region.scheme_watts, 0),
                   bench::pct(region.savings_fraction()),
                   bench::pct(region.savings_ci95_halfwidth())});
  }
  table.add_row({"country", std::to_string(metrics.cities()),
                 std::to_string(metrics.neighbourhoods()),
                 std::to_string(metrics.total_gateways()),
                 std::to_string(metrics.total_clients()),
                 bench::num(metrics.baseline_watts(), 0),
                 bench::num(metrics.scheme_watts(), 0),
                 bench::pct(metrics.savings_fraction()),
                 bench::pct(metrics.savings_ci95_halfwidth())});
  table.print(std::cout);

  std::cout << "\n";
  bench::compare("country savings (energy-weighted)", "66% (one fixed neighbourhood)",
                 bench::pct(metrics.savings_fraction()) + " ± " +
                     bench::pct(metrics.savings_ci95_halfwidth()) +
                     " (95% CI across neighbourhoods)");
  bench::compare("share of savings at the ISP side", "~1/3",
                 bench::pct(metrics.isp_share_of_savings()));
  std::cout << "  peak-window online gateways (country): "
            << bench::num(metrics.peak_online_gateways(), 1) << " of "
            << metrics.total_gateways() << "\n"
            << "  gateway wake events (country day): " << metrics.wake_events() << "\n";

  // §5.4, twice: the fully simulated portfolio roll-up, then the paper's
  // four constants — same subscriber base, so the rows are comparable.
  const country::CountryWorldEstimate world = country::annual_savings_from_country(metrics);
  const core::WorldExtrapolationConfig paper{};
  std::cout << "\nWorld extrapolation ("
            << bench::num(paper.dsl_subscribers / 1e6, 0) << "M DSL subscribers):\n";
  bench::compare("annual savings",
                 bench::num(core::annual_savings_twh(paper), 1) + " TWh (paper constants)",
                 bench::num(world.split.total_twh(), 1) + " ± " +
                     bench::num(world.total_twh_ci95, 1) +
                     " TWh (simulated country, 95% CI)");
  bench::compare("user / ISP split", "~2/3 / ~1/3",
                 bench::num(world.split.user_twh, 1) + " / " +
                     bench::num(world.split.isp_twh, 1) + " TWh");
  bench::compare("equivalent nuclear plants",
                 bench::num(core::equivalent_nuclear_plants(paper), 1) +
                     " (paper constants)",
                 bench::num(core::equivalent_nuclear_plants(world.config), 1) +
                     " (simulated country)");
  std::cout << "  simulated per-subscriber draw: household "
            << bench::num(world.config.household_watts) << " W, ISP "
            << bench::num(world.config.isp_watts_per_subscriber) << " W\n";

  bench::report().set_field("total_gateways",
                            static_cast<long long>(metrics.total_gateways()));
  bench::report().set_field("country_savings", metrics.savings_fraction());
  bench::report().set_field("country_savings_ci95", metrics.savings_ci95_halfwidth());
  bench::report().set_field("isp_share", metrics.isp_share_of_savings());
  bench::report().set_field("annual_savings_twh_simulated", world.split.total_twh());
  bench::report().set_field("annual_savings_twh_ci95", world.total_twh_ci95);
  bench::report().set_field("annual_savings_twh_user", world.split.user_twh);
  bench::report().set_field("annual_savings_twh_isp", world.split.isp_twh);
  return bench::finish();
}
