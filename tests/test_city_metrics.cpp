#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "city/city_metrics.h"
#include "util/error.h"

namespace insomnia::city {
namespace {

/// A day where the baseline draws (user_w + isp_w) watts flat and the scheme
/// keeps `keep` of each side — savings fraction is exactly 1 - keep.
NeighbourhoodOutcome outcome(std::size_t mix_index, double user_w, double isp_w,
                             double keep, int gateways = 10, int clients = 60) {
  const double day = 86400.0;
  NeighbourhoodOutcome o;
  o.mix_index = mix_index;
  o.gateways = gateways;
  o.clients = clients;
  o.duration = day;
  o.baseline_user_energy = user_w * day;
  o.baseline_isp_energy = isp_w * day;
  o.scheme_user_energy = keep * user_w * day;
  o.scheme_isp_energy = keep * isp_w * day;
  o.peak_online_gateways = 3.0;
  o.wake_events = 40;
  return o;
}

TEST(CityMetrics, OutcomeSavingsFraction) {
  EXPECT_DOUBLE_EQ(outcome(0, 300.0, 100.0, 0.25).savings_fraction(), 0.75);
  NeighbourhoodOutcome empty;
  EXPECT_DOUBLE_EQ(empty.savings_fraction(), 0.0);
}

TEST(CityMetrics, StreamsTotalsAndSplits) {
  CityMetrics metrics({"a", "b"});
  metrics.add(outcome(0, 300.0, 100.0, 0.25));  // 400 W -> 100 W, saves 75 %
  metrics.add(outcome(1, 100.0, 100.0, 0.75));  // 200 W -> 150 W, saves 25 %

  EXPECT_EQ(metrics.neighbourhoods(), 2u);
  EXPECT_EQ(metrics.total_gateways(), 20);
  EXPECT_EQ(metrics.total_clients(), 120);
  EXPECT_DOUBLE_EQ(metrics.baseline_watts(), 600.0);
  EXPECT_DOUBLE_EQ(metrics.scheme_watts(), 250.0);
  // Energy-weighted: 1 - 250/600.
  EXPECT_DOUBLE_EQ(metrics.savings_fraction(), 1.0 - 250.0 / 600.0);
  // Saved: user 225 + 25 = 250, ISP 75 + 25 = 100 -> share 100/350.
  EXPECT_DOUBLE_EQ(metrics.isp_share_of_savings(), 100.0 / 350.0);
  // Baseline per-gateway draws: user 400/20, ISP 200/20.
  EXPECT_DOUBLE_EQ(metrics.baseline_household_watts_per_gateway(), 20.0);
  EXPECT_DOUBLE_EQ(metrics.baseline_isp_watts_per_gateway(), 10.0);
  EXPECT_DOUBLE_EQ(metrics.peak_online_gateways(), 6.0);
  EXPECT_EQ(metrics.wake_events(), 80);
}

TEST(CityMetrics, AcrossNeighbourhoodConfidenceInterval) {
  CityMetrics metrics({"a"});
  metrics.add(outcome(0, 100.0, 100.0, 0.25));  // saves 0.75
  EXPECT_DOUBLE_EQ(metrics.savings_ci95_halfwidth(), 0.0);  // undefined with n=1
  metrics.add(outcome(0, 100.0, 100.0, 0.75));  // saves 0.25
  const stats::RunningStats& savings = metrics.neighbourhood_savings();
  EXPECT_EQ(savings.count(), 2u);
  EXPECT_DOUBLE_EQ(savings.mean(), 0.5);
  // n = 2 means one degree of freedom: the Student-t critical value, not the
  // normal 1.96 (which would understate the interval ~6.5x at this n).
  EXPECT_DOUBLE_EQ(metrics.savings_ci95_halfwidth(),
                   12.706 * savings.stddev() / std::sqrt(2.0));
}

TEST(CityMetrics, ComponentWattAccessorsMatchTheSplits) {
  CityMetrics metrics({"a"});
  metrics.add(outcome(0, 300.0, 100.0, 0.25));
  metrics.add(outcome(0, 100.0, 100.0, 0.75));
  EXPECT_DOUBLE_EQ(metrics.baseline_user_watts(), 400.0);
  EXPECT_DOUBLE_EQ(metrics.baseline_isp_watts(), 200.0);
  EXPECT_DOUBLE_EQ(metrics.saved_user_watts(), 225.0 + 25.0);
  EXPECT_DOUBLE_EQ(metrics.saved_isp_watts(), 75.0 + 25.0);
  EXPECT_DOUBLE_EQ(metrics.baseline_user_watts() + metrics.baseline_isp_watts(),
                   metrics.baseline_watts());
}

TEST(CityMetrics, PerPresetBreakdown) {
  CityMetrics metrics({"a", "b"});
  metrics.add(outcome(0, 300.0, 100.0, 0.25, 8, 50));
  metrics.add(outcome(0, 100.0, 100.0, 0.50, 12, 70));
  metrics.add(outcome(1, 50.0, 50.0, 1.0, 5, 30));  // saves nothing

  const std::vector<PresetAggregate>& slices = metrics.per_preset();
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].preset, "a");
  EXPECT_EQ(slices[0].neighbourhoods, 2u);
  EXPECT_EQ(slices[0].gateways, 20);
  EXPECT_EQ(slices[0].clients, 120);
  EXPECT_DOUBLE_EQ(slices[0].baseline_watts, 600.0);
  EXPECT_DOUBLE_EQ(slices[0].scheme_watts, 200.0);
  EXPECT_DOUBLE_EQ(slices[0].savings_fraction(), 1.0 - 200.0 / 600.0);
  EXPECT_EQ(slices[0].savings.count(), 2u);

  EXPECT_EQ(slices[1].preset, "b");
  EXPECT_EQ(slices[1].neighbourhoods, 1u);
  EXPECT_DOUBLE_EQ(slices[1].savings_fraction(), 0.0);
}

TEST(CityMetrics, EmptyFleetIsAllZeros) {
  const CityMetrics metrics({"a"});
  EXPECT_EQ(metrics.neighbourhoods(), 0u);
  EXPECT_DOUBLE_EQ(metrics.savings_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.isp_share_of_savings(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.baseline_household_watts_per_gateway(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.savings_ci95_halfwidth(), 0.0);
}

TEST(CityMetrics, NoSavingsMeansZeroShareNotNoise) {
  CityMetrics metrics({"a"});
  metrics.add(outcome(0, 100.0, 100.0, 1.0));  // scheme == baseline
  EXPECT_DOUBLE_EQ(metrics.savings_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.isp_share_of_savings(), 0.0);
}

TEST(CityMetrics, RejectsBadOutcomes) {
  CityMetrics metrics({"a"});
  NeighbourhoodOutcome bad = outcome(1, 100.0, 100.0, 0.5);  // index out of range
  EXPECT_THROW(metrics.add(bad), util::InvalidArgument);
  bad = outcome(0, 100.0, 100.0, 0.5);
  bad.duration = 0.0;
  EXPECT_THROW(metrics.add(bad), util::InvalidArgument);
}

}  // namespace
}  // namespace insomnia::city
