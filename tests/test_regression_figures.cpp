// Golden regression layer: pinned-seed, low-run-count versions of the
// paper's figure experiments asserted against committed expected values.
// run_main_experiment and run_density_sweep feed Figs. 6-10 and Tabs. 1-2;
// any change to seed derivation, scheme wiring, accumulation order, or the
// simulators themselves shifts these numbers — this suite turns such a shift
// from a silently different curve into a red test.
//
// The goldens were produced by this tree's serial path (threads = 1) and are
// asserted to 4-ULP precision (EXPECT_DOUBLE_EQ): the parallel engine
// guarantees bit-identical aggregation, so nothing looser is needed. The
// numeric stream of std::mt19937_64 is standard-mandated, but the
// distribution algorithms are not, so the values only hold on libstdc++;
// other standard libraries skip the value assertions.
//
// Deliberately one test case per experiment: ctest runs every gtest case in
// its own process, so splitting the assertions across cases would re-run the
// pinned experiment once per case.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiments.h"

namespace insomnia::core {
namespace {

#if !defined(__GLIBCXX__)
#define INSOMNIA_SKIP_GOLDENS() \
  GTEST_SKIP() << "golden values assume libstdc++ distribution algorithms"
#else
#define INSOMNIA_SKIP_GOLDENS() (void)0
#endif

MainExperimentConfig pinned_config() {
  MainExperimentConfig config;
  config.scenario.client_count = 48;
  config.scenario.gateway_count = 8;
  config.scenario.degrees.node_count = 8;
  config.scenario.degrees.mean_degree = 4.0;
  config.scenario.traffic.client_count = 48;
  config.scenario.dslam.line_cards = 4;
  config.scenario.dslam.ports_per_card = 2;
  config.runs = 2;
  config.bins = 12;
  config.seed = 2025;
  config.schemes = {"soi", "bh2-kswitch", "optimal"};
  config.threads = 1;
  return config;
}

void expect_series(const std::vector<double>& actual, const std::vector<double>& golden,
                   const char* what) {
  ASSERT_EQ(actual.size(), golden.size()) << what;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_DOUBLE_EQ(actual[i], golden[i]) << what << " bin " << i;
  }
}

TEST(RegressionMainExperiment, PinnedSeedRunMatchesGoldens) {
  const MainExperimentResult result = run_main_experiment(pinned_config());
  const SchemeOutcome& soi = result.outcome("soi");
  const SchemeOutcome& bh2 = result.outcome("bh2-kswitch");
  const SchemeOutcome& optimal = result.outcome("optimal");

  // Structural fairness-sample counts (runs x gateways for BH2, none for
  // the SoI reference) hold on any conforming standard library.
  EXPECT_EQ(bh2.online_time_variation.size(), 16u);
  EXPECT_EQ(soi.online_time_variation.size(), 0u);

  // Everything below depends on implementation-defined distribution
  // algorithms (including the generated flow count) — golden values.
  INSOMNIA_SKIP_GOLDENS();

  EXPECT_EQ(soi.fct_increase.size(), 94424u);
  EXPECT_EQ(bh2.fct_increase.size(), 94424u);

  // Whole-day and peak-window summaries.
  EXPECT_DOUBLE_EQ(soi.day_savings, 0.45212488776368165);
  EXPECT_DOUBLE_EQ(soi.day_isp_share, 0.73141175372253331);
  EXPECT_DOUBLE_EQ(soi.peak_online_gateways, 6.2585129986842167);
  EXPECT_DOUBLE_EQ(soi.peak_online_cards, 3.7817465225220936);

  EXPECT_DOUBLE_EQ(bh2.day_savings, 0.7098740173060949);
  EXPECT_DOUBLE_EQ(bh2.day_isp_share, 0.75545712552485178);
  EXPECT_DOUBLE_EQ(bh2.peak_online_gateways, 2.2350111165774411);
  EXPECT_DOUBLE_EQ(bh2.peak_online_cards, 1.7161178940079376);

  EXPECT_DOUBLE_EQ(optimal.day_savings, 0.79923568715141191);
  EXPECT_DOUBLE_EQ(optimal.day_isp_share, 0.76288805302275997);
  EXPECT_DOUBLE_EQ(optimal.peak_online_gateways, 1.0567970400686089);
  EXPECT_DOUBLE_EQ(optimal.peak_online_cards, 1.0020225833410283);

  // Behaviour counters.
  EXPECT_DOUBLE_EQ(soi.wake_events, 111.5);
  EXPECT_DOUBLE_EQ(soi.bh2_moves, 0.0);
  EXPECT_DOUBLE_EQ(bh2.wake_events, 106.5);
  EXPECT_DOUBLE_EQ(bh2.bh2_moves, 3752.5);
  EXPECT_DOUBLE_EQ(bh2.bh2_home_returns, 1056.5);

  // Day series (Figs. 6-8).
  expect_series(soi.savings,
                {0.86602088548036926, 0.89598068798216501, 0.89284938293116456,
                 0.8063239215821566, 0.42971473987263253, 0.14240802764320681,
                 0.098518335822596503, 0.071336782461625892, 0.059915901013525064,
                 0.081835445735161771, 0.30542373855370963, 0.77517080408586514},
                "SoI savings");
  expect_series(bh2.savings,
                {0.86602088548036926, 0.89598068798216501, 0.89317226322378862,
                 0.83718852196516302, 0.68711882052079032, 0.62469132443501274,
                 0.57767548276115366, 0.5488762722259497, 0.60957560958049051,
                 0.55520042270570946, 0.59883595632296016, 0.82415196046958605},
                "BH2 savings");
  expect_series(optimal.savings,
                {0.86374423463991057, 0.89612158033530087, 0.89342743271732528,
                 0.85260652844797225, 0.76251204195462807, 0.747519716748555,
                 0.74581117279441678, 0.74695121951219512, 0.74611973710818646,
                 0.7470238630693754, 0.74791637509071318, 0.84107434339836451},
                "Optimal savings");
  expect_series(bh2.online_gateways,
                {0.44611387645100142, 0.30479905580093858, 0.31804587346655444,
                 0.5821107769253816, 1.3103475048147462, 1.7813694903989017,
                 2.103385568881416, 2.5740169633412688, 2.1366031246969586,
                 2.6239240853207306, 1.8348899808870698, 0.67644578504405417},
                "BH2 online gateways");
  expect_series(optimal.isp_share,
                {0.77061328074824109, 0.77452323695967207, 0.77411817319460441,
                 0.76936836688516541, 0.75710277984083207, 0.75537326806782168,
                 0.75599226559643751, 0.75589743589743585, 0.75576307889311989,
                 0.75583041236944659, 0.75500801169980591, 0.76790271290550072},
                "Optimal ISP share");
}

TEST(RegressionDensitySweep, PointsMatchGoldens) {
  INSOMNIA_SKIP_GOLDENS();
  ScenarioConfig scenario = pinned_config().scenario;
  const auto points = run_density_sweep(scenario, {1.0, 3.0, 6.0}, 2, 424242, 1);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].mean_online_gateways, 6.4842992511470134);
  EXPECT_DOUBLE_EQ(points[1].mean_online_gateways, 4.0914766207051692);
  EXPECT_DOUBLE_EQ(points[2].mean_online_gateways, 2.3783960542963571);
}

}  // namespace
}  // namespace insomnia::core
