// Checkpoint format guarantees: bit-exact digest round-trips, atomic-write
// hygiene, and loud refusal of anything that is not a healthy checkpoint of
// THIS configuration — corrupt or truncated files, other format versions,
// other config fingerprints.
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "country/checkpoint.h"
#include "country/country_config.h"
#include "util/error.h"

namespace insomnia::country {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "insomnia_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Digests with awkward doubles: negatives, denormal-ish magnitudes, values
// that do not survive a short decimal round-trip.
std::vector<CityDigest> sample_digests() {
  std::vector<CityDigest> digests;
  for (int i = 0; i < 3; ++i) {
    CityDigest d;
    d.region = static_cast<std::uint32_t>(i / 2);
    d.city = static_cast<std::uint32_t>(i % 2);
    d.template_index = static_cast<std::size_t>(i);
    d.neighbourhoods = 4;
    d.gateways = 100 + i;
    d.clients = 900 + i;
    d.baseline_watts = 0.1 + i;  // 0.1 is not exactly representable
    d.scheme_watts = 1.0 / 3.0 + i;
    d.baseline_user_watts = 1e-300;
    d.baseline_isp_watts = 12345.6789;
    d.saved_user_watts = -1.0 / 7.0;
    d.saved_isp_watts = 2.0 / 7.0;
    d.peak_online_gateways = 33.125 + i;
    d.wake_events = 42 * (i + 1);
    stats::RunningStats savings;
    savings.add(0.6 + 0.01 * i);
    savings.add(0.7);
    savings.add(0.55);
    savings.add(0.661);
    d.savings = savings;
    digests.push_back(d);
  }
  return digests;
}

void expect_same(const CityDigest& a, const CityDigest& b) {
  EXPECT_EQ(a.region, b.region);
  EXPECT_EQ(a.city, b.city);
  EXPECT_EQ(a.template_index, b.template_index);
  EXPECT_EQ(a.neighbourhoods, b.neighbourhoods);
  EXPECT_EQ(a.gateways, b.gateways);
  EXPECT_EQ(a.clients, b.clients);
  EXPECT_EQ(a.wake_events, b.wake_events);
  // Bit identity, not closeness: EXPECT_EQ on doubles is exact.
  EXPECT_EQ(a.baseline_watts, b.baseline_watts);
  EXPECT_EQ(a.scheme_watts, b.scheme_watts);
  EXPECT_EQ(a.baseline_user_watts, b.baseline_user_watts);
  EXPECT_EQ(a.baseline_isp_watts, b.baseline_isp_watts);
  EXPECT_EQ(a.saved_user_watts, b.saved_user_watts);
  EXPECT_EQ(a.saved_isp_watts, b.saved_isp_watts);
  EXPECT_EQ(a.peak_online_gateways, b.peak_online_gateways);
  EXPECT_EQ(a.savings.count(), b.savings.count());
  EXPECT_EQ(a.savings.mean(), b.savings.mean());
  EXPECT_EQ(a.savings.m2(), b.savings.m2());
  EXPECT_EQ(a.savings.min(), b.savings.min());
  EXPECT_EQ(a.savings.max(), b.savings.max());
}

std::string error_of(const std::function<void()>& action) {
  try {
    action();
  } catch (const std::exception& error) {
    return error.what();
  }
  return "";
}

TEST(CountryCheckpoint, RoundTripIsBitExact) {
  const std::string dir = fresh_dir("roundtrip");
  const std::string path = dir + "/worker-1.ckpt";
  const std::vector<CityDigest> digests = sample_digests();

  write_checkpoint_file(path, 0xfeedbeef, digests);
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // atomic rename cleaned up

  const std::vector<CityDigest> loaded = read_checkpoint_file(path, 0xfeedbeef);
  ASSERT_EQ(loaded.size(), digests.size());
  for (std::size_t i = 0; i < digests.size(); ++i) expect_same(digests[i], loaded[i]);
}

TEST(CountryCheckpoint, DirectoryLoadUnionsFilesKeepingTheFirstOccurrence) {
  const std::string dir = fresh_dir("union");
  std::vector<CityDigest> digests = sample_digests();
  write_checkpoint_file(dir + "/worker-a.ckpt", 1, {digests[0], digests[1]});
  // worker-b repeats shard (0,1) — across resume attempts duplicates are
  // bit-identical, so first-wins is indistinguishable from dedup.
  write_checkpoint_file(dir + "/worker-b.ckpt", 1, {digests[1], digests[2]});

  const std::vector<CityDigest> loaded = load_checkpoint_dir(dir, 1);
  ASSERT_EQ(loaded.size(), 3u);

  EXPECT_TRUE(load_checkpoint_dir(dir + "-missing", 1).empty());
}

TEST(CountryCheckpoint, TruncatedCheckpointIsRejected) {
  const std::string dir = fresh_dir("truncated");
  const std::string path = dir + "/worker-1.ckpt";
  write_checkpoint_file(path, 5, sample_digests());

  // Chop the trailer off, as a kill mid-write (without the atomic rename)
  // would have.
  std::string contents;
  {
    std::ifstream in(path);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line)) lines.push_back(line);
    for (std::size_t i = 0; i + 1 < lines.size(); ++i) contents += lines[i] + "\n";
  }
  std::ofstream(path, std::ios::trunc) << contents;

  const std::string message =
      error_of([&] { read_checkpoint_file(path, 5); });
  EXPECT_NE(message.find("truncated"), std::string::npos) << message;
  // And a mangled shard line is corrupt, not silently skipped.
  std::ofstream(path, std::ios::trunc)
      << "insomnia-country-checkpoint v1\nfingerprint 0000000000000005\n"
      << "shard 0 0 nonsense\nend 1\n";
  EXPECT_THROW(read_checkpoint_file(path, 5), util::InvalidArgument);
}

TEST(CountryCheckpoint, VersionMismatchIsRefusedExplicitly) {
  const std::string dir = fresh_dir("version");
  const std::string path = dir + "/worker-1.ckpt";
  std::ofstream(path) << "insomnia-country-checkpoint v999\n"
                      << "fingerprint 0000000000000001\nend 0\n";
  const std::string message = error_of([&] { read_checkpoint_file(path, 1); });
  EXPECT_NE(message.find("version mismatch"), std::string::npos) << message;
}

TEST(CountryCheckpoint, FingerprintMismatchIsRefusedExplicitly) {
  const std::string dir = fresh_dir("fingerprint");
  const std::string path = dir + "/worker-1.ckpt";
  write_checkpoint_file(path, 10, sample_digests());
  const std::string message = error_of([&] { read_checkpoint_file(path, 11); });
  EXPECT_NE(message.find("different country configuration"), std::string::npos)
      << message;
}

TEST(CountryCheckpoint, DirectoryLoadSalvagesTornTmpDebris) {
  const std::string dir = fresh_dir("salvage");
  const std::vector<CityDigest> digests = sample_digests();
  write_checkpoint_file(dir + "/worker-1.ckpt", 9, digests);
  // A worker killed mid-write leaves a .tmp behind (the rename never ran).
  // Its contents are arbitrary garbage — salvage must discard, not parse.
  std::ofstream(dir + "/worker-2.ckpt.tmp")
      << "insomnia-country-checkpoint v1\nshard 0 0";

  const std::vector<CityDigest> loaded = load_checkpoint_dir(dir, 9);
  ASSERT_EQ(loaded.size(), digests.size());
  for (std::size_t i = 0; i < digests.size(); ++i) expect_same(digests[i], loaded[i]);
  // The debris is gone: the next resume sees a clean directory.
  EXPECT_FALSE(fs::exists(dir + "/worker-2.ckpt.tmp"));
  EXPECT_TRUE(fs::exists(dir + "/worker-1.ckpt"));
}

TEST(CountryCheckpoint, SalvageNeverTouchesCommittedCorruption) {
  // Corruption PAST the atomic rename is a real integrity violation —
  // salvage applies only to .tmp debris; a bad committed file still refuses.
  const std::string dir = fresh_dir("committed_corruption");
  const std::string path = dir + "/worker-1.ckpt";
  write_checkpoint_file(path, 3, sample_digests());

  // Flip one bit in the middle of the committed file.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  bytes[bytes.size() / 2] ^= 0x10;
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;

  EXPECT_THROW(load_checkpoint_dir(dir, 3), util::InvalidArgument);
  EXPECT_TRUE(fs::exists(path));  // refused, never deleted
}

TEST(CountryCheckpoint, FingerprintTracksEverythingThatShapesResults) {
  const CountryConfig base = default_country(0.01, 0.1);
  const std::uint64_t fp = config_fingerprint(base);
  EXPECT_EQ(fp, config_fingerprint(default_country(0.01, 0.1)));  // stable

  CountryConfig changed = base;
  changed.seed += 1;
  EXPECT_NE(config_fingerprint(changed), fp);
  changed = base;
  changed.scheme = "soi";
  EXPECT_NE(config_fingerprint(changed), fp);
  changed = base;
  changed.regions[2].cities += 1;
  EXPECT_NE(config_fingerprint(changed), fp);
  changed = base;
  changed.regions[0].portfolio[0].mix[0].weight += 0.125;
  EXPECT_NE(config_fingerprint(changed), fp);
  // Execution knobs do NOT shape results and must not invalidate resumes.
  changed = base;
  changed.threads = 7;
  EXPECT_EQ(config_fingerprint(changed), fp);
}

}  // namespace
}  // namespace insomnia::country
