// The streaming country fold: digests carry the city layer's exact
// accumulators, fold in canonical order (and only in canonical order), and
// the region slices partition the country totals exactly.
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "city/city_runner.h"
#include "country/country_metrics.h"
#include "util/error.h"

namespace insomnia::country {
namespace {

core::ScenarioPreset tiny_preset(const std::string& name, int clients, int gateways) {
  core::ScenarioPreset preset;
  preset.name = name;
  preset.summary = name;
  core::ScenarioConfig& s = preset.scenario;
  s.client_count = clients;
  s.gateway_count = gateways;
  s.degrees.node_count = gateways;
  s.degrees.mean_degree = 3.0;
  s.traffic.client_count = clients;
  s.dslam.line_cards = 4;
  s.dslam.ports_per_card = 2;
  return preset;
}

city::CityResult tiny_city_result(std::uint64_t seed, int neighbourhoods = 2) {
  city::NeighbourhoodJitter jitter;
  jitter.gateway_count_spread = 0.2;
  jitter.client_density_spread = 0.2;
  city::CityConfig config;
  config.neighbourhoods = neighbourhoods;
  config.seed = seed;
  config.threads = 1;
  config.mix = {{"tiny-a", 1.0, jitter}};
  return city::run_city(config, {tiny_preset("tiny-a", 24, 6)});
}

TEST(CountryMetrics, DigestCarriesTheCityAccumulatorsExactly) {
  const city::CityResult result = tiny_city_result(11, 3);
  const city::CityMetrics& metrics = result.metrics;
  const CityDigest digest = digest_from_city(metrics, 1, 4, 0);

  EXPECT_EQ(digest.region, 1u);
  EXPECT_EQ(digest.city, 4u);
  EXPECT_EQ(digest.neighbourhoods, metrics.neighbourhoods());
  EXPECT_EQ(digest.gateways, metrics.total_gateways());
  EXPECT_EQ(digest.clients, metrics.total_clients());
  EXPECT_EQ(digest.baseline_watts, metrics.baseline_watts());
  EXPECT_EQ(digest.scheme_watts, metrics.scheme_watts());
  EXPECT_EQ(digest.baseline_user_watts, metrics.baseline_user_watts());
  EXPECT_EQ(digest.baseline_isp_watts, metrics.baseline_isp_watts());
  EXPECT_EQ(digest.saved_user_watts, metrics.saved_user_watts());
  EXPECT_EQ(digest.saved_isp_watts, metrics.saved_isp_watts());
  EXPECT_EQ(digest.peak_online_gateways, metrics.peak_online_gateways());
  EXPECT_EQ(digest.wake_events, metrics.wake_events());
  EXPECT_EQ(digest.savings.count(), metrics.neighbourhood_savings().count());
  EXPECT_EQ(digest.savings.mean(), metrics.neighbourhood_savings().mean());
  EXPECT_EQ(digest.savings_fraction(), metrics.savings_fraction());
}

TEST(CountryMetrics, FoldSumsDigestsAndRegionSlicesPartitionIt) {
  const CityDigest a = digest_from_city(tiny_city_result(1).metrics, 0, 0, 0);
  const CityDigest b = digest_from_city(tiny_city_result(2).metrics, 0, 1, 0);
  const CityDigest c = digest_from_city(tiny_city_result(3).metrics, 1, 0, 0);

  CountryMetrics metrics({"alpha", "beta"});
  metrics.add(a);
  metrics.add(b);
  metrics.add(c);

  EXPECT_EQ(metrics.cities(), 3u);
  EXPECT_EQ(metrics.neighbourhoods(),
            a.neighbourhoods + b.neighbourhoods + c.neighbourhoods);
  EXPECT_EQ(metrics.total_gateways(), a.gateways + b.gateways + c.gateways);
  EXPECT_EQ(metrics.total_clients(), a.clients + b.clients + c.clients);
  EXPECT_EQ(metrics.wake_events(), a.wake_events + b.wake_events + c.wake_events);
  // Serial fold in one fixed order: plain left-to-right sums, exactly.
  EXPECT_EQ(metrics.baseline_watts(),
            a.baseline_watts + b.baseline_watts + c.baseline_watts);
  EXPECT_EQ(metrics.scheme_watts(), a.scheme_watts + b.scheme_watts + c.scheme_watts);
  EXPECT_EQ(metrics.neighbourhood_savings().count(),
            a.savings.count() + b.savings.count() + c.savings.count());
  EXPECT_GT(metrics.savings_fraction(), 0.0);
  EXPECT_LT(metrics.savings_fraction(), 1.0);
  EXPECT_GE(metrics.isp_share_of_savings(), 0.0);
  EXPECT_LE(metrics.isp_share_of_savings(), 1.0);
  EXPECT_GT(metrics.savings_ci95_halfwidth(), 0.0);
  EXPECT_GT(metrics.baseline_household_watts_per_gateway(), 0.0);
  EXPECT_GT(metrics.baseline_isp_watts_per_gateway(), 0.0);

  ASSERT_EQ(metrics.per_region().size(), 2u);
  const RegionMetrics& alpha = metrics.per_region()[0];
  const RegionMetrics& beta = metrics.per_region()[1];
  EXPECT_EQ(alpha.name, "alpha");
  EXPECT_EQ(alpha.cities, 2u);
  EXPECT_EQ(beta.cities, 1u);
  EXPECT_EQ(alpha.gateways + beta.gateways, metrics.total_gateways());
  EXPECT_EQ(alpha.baseline_watts + beta.baseline_watts, metrics.baseline_watts());
  EXPECT_EQ(beta.baseline_watts, c.baseline_watts);
  EXPECT_EQ(beta.savings_fraction(), c.savings_fraction());
}

TEST(CountryMetrics, FoldRejectsNonCanonicalOrderAndBadDigests) {
  const CityDigest first = digest_from_city(tiny_city_result(1).metrics, 0, 1, 0);
  const CityDigest earlier = digest_from_city(tiny_city_result(2).metrics, 0, 0, 0);
  const CityDigest next_region = digest_from_city(tiny_city_result(3).metrics, 1, 0, 0);

  EXPECT_TRUE(digest_order(earlier, first));
  EXPECT_TRUE(digest_order(first, next_region));
  EXPECT_FALSE(digest_order(next_region, first));

  CountryMetrics metrics({"alpha", "beta"});
  metrics.add(first);
  EXPECT_THROW(metrics.add(earlier), util::InvalidArgument);  // out of order
  EXPECT_THROW(metrics.add(first), util::InvalidArgument);    // duplicate
  metrics.add(next_region);                                   // forward is fine

  CityDigest out_of_range = first;
  out_of_range.region = 7;
  CountryMetrics fresh({"alpha", "beta"});
  EXPECT_THROW(fresh.add(out_of_range), util::InvalidArgument);

  CityDigest empty = first;
  empty.neighbourhoods = 0;
  EXPECT_THROW(fresh.add(empty), util::InvalidArgument);
}

}  // namespace
}  // namespace insomnia::country
