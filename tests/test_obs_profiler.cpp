// Phase profiler contracts: scopes fold into name-sorted per-phase totals,
// stop() is idempotent, nothing records while disabled, force-mode keeps
// measuring for the perf harness, and trace events appear only when tracing
// is armed.
#include <cstddef>
#include <string>

#include <gtest/gtest.h>

#include "exec/thread_pool.h"
#include "exec/sweep_runner.h"
#include "obs/obs.h"
#include "obs/profiler.h"

namespace insomnia::obs {
namespace {

const PhaseTotal* find_phase(const std::vector<PhaseTotal>& phases,
                             const std::string& name) {
  for (const PhaseTotal& phase : phases) {
    if (phase.name == name) return &phase;
  }
  return nullptr;
}

class ObsProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef INSOMNIA_OBS_DISABLED
    GTEST_SKIP() << "observability compiled out (-DINSOMNIA_OBS=OFF)";
#endif
    set_enabled(true);
    disable_tracing();
    reset_profiler();
  }
};

TEST_F(ObsProfilerTest, ScopeRecordsPhaseTotal) {
  {
    OBS_SCOPE("test.phase.a");
  }
  {
    OBS_SCOPE("test.phase.a");
  }
  const auto phases = phase_totals();
  const PhaseTotal* a = find_phase(phases, "test.phase.a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->count, 2u);
}

TEST_F(ObsProfilerTest, PhaseTotalsAreNameSorted) {
  {
    OBS_SCOPE("test.z");
  }
  {
    OBS_SCOPE("test.a");
  }
  const auto phases = phase_totals();
  for (std::size_t i = 1; i < phases.size(); ++i) {
    EXPECT_LT(phases[i - 1].name, phases[i].name);
  }
}

TEST_F(ObsProfilerTest, StopIsIdempotent) {
  ScopeTimer timer("test.stop");
  const std::uint64_t first = timer.stop();
  const std::uint64_t second = timer.stop();
  EXPECT_EQ(first, second);
  const PhaseTotal* phase = find_phase(phase_totals(), "test.stop");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->count, 1u);  // recorded once, not per stop() call
}

TEST_F(ObsProfilerTest, DisabledScopeRecordsNothing) {
  set_enabled(false);
  {
    OBS_SCOPE("test.disabled");
  }
  ScopeTimer timer("test.disabled.timer");
  EXPECT_EQ(timer.stop(), 0u);
  set_enabled(true);
  EXPECT_EQ(find_phase(phase_totals(), "test.disabled"), nullptr);
  EXPECT_EQ(find_phase(phase_totals(), "test.disabled.timer"), nullptr);
}

TEST_F(ObsProfilerTest, ForcedTimerMeasuresWhileDisabled) {
  set_enabled(false);
  ScopeTimer timer("test.forced", /*force=*/true);
  // Burn a little time so the measured duration cannot round to zero.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const std::uint64_t ns = timer.stop();
  set_enabled(true);
  EXPECT_GT(ns, 0u);
  // Measured but not recorded: the phase table must stay clean.
  EXPECT_EQ(find_phase(phase_totals(), "test.forced"), nullptr);
}

TEST_F(ObsProfilerTest, WorkerThreadsRegisterNamedTracks) {
  exec::SweepRunner runner(3);
  runner.run(8, [](std::size_t i) {
    OBS_SCOPE("test.worker.shard");
    return i;
  });
  const TraceSnapshot snap = trace_snapshot();
  bool found_worker = false;
  for (const TraceSnapshot::Thread& thread : snap.threads) {
    if (thread.name.rfind("worker-", 0) == 0) found_worker = true;
  }
  EXPECT_TRUE(found_worker);
}

TEST_F(ObsProfilerTest, TraceEventsOnlyWhenTracingArmed) {
  {
    OBS_SCOPE("test.untraced");
  }
  EXPECT_TRUE(trace_snapshot().events.empty());

  enable_tracing();
  {
    OBS_SCOPE("test.traced");
  }
  const TraceSnapshot snap = trace_snapshot();
  ASSERT_EQ(snap.events.size(), 1u);
  EXPECT_STREQ(snap.events[0].name, "test.traced");
  // reset_profiler clears the buffers (it does not disarm tracing; the
  // fixture's reset keeps later tests independent anyway).
  reset_profiler();
  EXPECT_TRUE(trace_snapshot().events.empty());
}

TEST_F(ObsProfilerTest, CounterEventsAreCaptured) {
  enable_tracing();
  emit_counter_event("test.progress", 3.0);
  emit_counter_event("test.progress", 7.0);
  const TraceSnapshot snap = trace_snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].value, 3.0);
  EXPECT_EQ(snap.counters[1].value, 7.0);
  EXPECT_LE(snap.counters[0].ts_ns, snap.counters[1].ts_ns);
}

TEST_F(ObsProfilerTest, PhaseTotalsFoldAcrossThreads) {
  exec::SweepRunner runner(4);
  runner.run(16, [](std::size_t i) {
    OBS_SCOPE("test.fold.shard");
    return i;
  });
  const PhaseTotal* phase = find_phase(phase_totals(), "test.fold.shard");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->count, 16u);
}

}  // namespace
}  // namespace insomnia::obs
