#include <gtest/gtest.h>

#include "core/extrapolation.h"
#include "util/error.h"

namespace insomnia::core {
namespace {

TEST(Extrapolation, DefaultsReproduceThePapersNumber) {
  // §5.4: "the savings collectively amount to about 33 TWh per year".
  const WorldExtrapolationConfig config;
  EXPECT_NEAR(annual_savings_twh(config), 33.0, 4.0);
}

TEST(Extrapolation, ThreeNuclearPlants) {
  const WorldExtrapolationConfig config;
  EXPECT_NEAR(equivalent_nuclear_plants(config), 3.0, 0.6);
}

TEST(Extrapolation, WorldAccessWatts) {
  WorldExtrapolationConfig config;
  config.dsl_subscribers = 1.0;
  config.household_watts = 9.0;
  config.isp_watts_per_subscriber = 9.6;
  EXPECT_NEAR(world_access_watts(config), 18.6, 1e-9);
}

TEST(Extrapolation, ScalesLinearlyInSubscribers) {
  WorldExtrapolationConfig config;
  const double base = annual_savings_twh(config);
  config.dsl_subscribers *= 2.0;
  EXPECT_NEAR(annual_savings_twh(config), 2.0 * base, 1e-9);
}

TEST(Extrapolation, ZeroSavingsZeroTwh) {
  WorldExtrapolationConfig config;
  config.savings_fraction = 0.0;
  EXPECT_DOUBLE_EQ(annual_savings_twh(config), 0.0);
}

TEST(Extrapolation, Validation) {
  WorldExtrapolationConfig config;
  config.savings_fraction = 1.5;
  EXPECT_THROW(annual_savings_twh(config), util::InvalidArgument);
  config = {};
  config.savings_fraction = -0.1;
  EXPECT_THROW(annual_savings_twh(config), util::InvalidArgument);
  config = {};
  config.dsl_subscribers = -1.0;
  EXPECT_THROW(world_access_watts(config), util::InvalidArgument);
  config = {};
  config.dsl_subscribers = 0.0;  // non-positive, not just negative
  EXPECT_THROW(world_access_watts(config), util::InvalidArgument);
  config = {};
  config.household_watts = 0.0;
  EXPECT_THROW(annual_savings_twh(config), util::InvalidArgument);
  config = {};
  config.isp_watts_per_subscriber = -3.0;
  EXPECT_THROW(annual_savings_twh(config), util::InvalidArgument);
  config = {};
  EXPECT_THROW(equivalent_nuclear_plants(config, 0.0), util::InvalidArgument);
  EXPECT_NO_THROW(validate(config));
}

TEST(Extrapolation, SavingsSplitSumsToTotalAndScalesWithShare) {
  const WorldExtrapolationConfig config;
  const double total = annual_savings_twh(config);
  const SavingsSplitTwh split = annual_savings_split_twh(config, 1.0 / 3.0);
  EXPECT_NEAR(split.total_twh(), total, 1e-12);
  EXPECT_NEAR(split.isp_twh, total / 3.0, 1e-12);
  EXPECT_NEAR(split.user_twh, 2.0 * total / 3.0, 1e-12);

  const SavingsSplitTwh all_user = annual_savings_split_twh(config, 0.0);
  EXPECT_DOUBLE_EQ(all_user.isp_twh, 0.0);
  EXPECT_DOUBLE_EQ(all_user.user_twh, total);

  EXPECT_THROW(annual_savings_split_twh(config, -0.1), util::InvalidArgument);
  EXPECT_THROW(annual_savings_split_twh(config, 1.1), util::InvalidArgument);
}

}  // namespace
}  // namespace insomnia::core
