// Integration tests of the runtime's gateway state machine, energy
// accounting and wake-up penalty on small hand-built scenarios where every
// number can be computed by hand.
#include <cmath>

#include <gtest/gtest.h>

#include "core/home_policy.h"
#include "util/error.h"
#include "core/runtime.h"
#include "core/schemes.h"
#include "topology/access_topology.h"

namespace insomnia::core {
namespace {

/// A 2-gateway, 2-client scenario with fast wake for exact arithmetic.
ScenarioConfig tiny_scenario() {
  ScenarioConfig scenario;
  scenario.client_count = 2;
  scenario.gateway_count = 2;
  scenario.duration = 2000.0;
  scenario.drain_time = 500.0;
  scenario.wake_time = 60.0;
  scenario.idle_timeout = 60.0;
  scenario.dslam.line_cards = 2;
  scenario.dslam.ports_per_card = 1;
  scenario.dslam.switch_size = 2;
  scenario.degrees.node_count = 2;
  scenario.traffic.client_count = 2;
  return scenario;
}

topo::AccessTopology tiny_topology() {
  topo::AccessTopology topology;
  topology.gateway_count = 2;
  topology.home_gateway = {0, 1};
  topology.client_gateways = {{0, 1}, {1, 0}};
  return topology;
}

TEST(Runtime, NoSleepBaselinePowerIsConstant) {
  const ScenarioConfig scenario = tiny_scenario();
  const trace::FlowTrace flows{};
  const RunMetrics m =
      run_scheme(scenario, tiny_topology(), flows, SchemeKind::kNoSleep, 1);
  // 2 households at 14 W each + shelf 21 + 2 cards * 98 + 2 modems * 1.
  const double watts = 2 * 14.0 + 21.0 + 2 * 98.0 + 2 * 1.0;
  EXPECT_NEAR(m.total_energy(), watts * scenario.duration, 1e-6);
  EXPECT_DOUBLE_EQ(m.online_gateways.value_at(1000.0), 2.0);
}

TEST(Runtime, SoiWithNoTrafficSleepsEverything) {
  const ScenarioConfig scenario = tiny_scenario();
  const trace::FlowTrace flows{};
  const RunMetrics m = run_scheme(scenario, tiny_topology(), flows, SchemeKind::kSoi, 1);
  // Gateways start asleep and never wake: only the shelf burns energy.
  EXPECT_NEAR(m.total_energy(), 21.0 * scenario.duration, 1e-6);
  EXPECT_EQ(m.gateway_wake_events, 0);
}

TEST(Runtime, SoiWakePenaltyStallsTheFirstFlow) {
  const ScenarioConfig scenario = tiny_scenario();
  // 750 kB at 6 Mbps = 1 s of service, arriving at t=100 on a sleeping
  // gateway: FCT = 60 s wake + 1 s service.
  const trace::FlowTrace flows{{100.0, 0, 750000.0}};
  const RunMetrics m = run_scheme(scenario, tiny_topology(), flows, SchemeKind::kSoi, 1);
  ASSERT_EQ(m.completion_time.size(), 1u);
  EXPECT_NEAR(m.completion_time[0], 61.0, 1e-6);
  EXPECT_EQ(m.gateway_wake_events, 1);
}

TEST(Runtime, SoiGatewaySleepsAfterIdleTimeout) {
  const ScenarioConfig scenario = tiny_scenario();
  const trace::FlowTrace flows{{100.0, 0, 750000.0}};
  const RunMetrics m = run_scheme(scenario, tiny_topology(), flows, SchemeKind::kSoi, 1);
  // Wake at 100, active at 160, flow done at 161, idle timeout at ~221.
  EXPECT_DOUBLE_EQ(m.online_gateways.value_at(200.0), 1.0);
  EXPECT_DOUBLE_EQ(m.online_gateways.value_at(222.0), 0.0);
  // Online time: from wake (100) to sleep (~221) once, gateway 0 only.
  EXPECT_NEAR(m.gateway_online_time[0], 121.0, 1.0);
  EXPECT_DOUBLE_EQ(m.gateway_online_time[1], 0.0);
}

TEST(Runtime, BackToBackFlowsKeepGatewayUp) {
  const ScenarioConfig scenario = tiny_scenario();
  // Keep-alives every 30 s < 60 s timeout: the gateway must stay up from
  // first wake to the last flow + timeout.
  trace::FlowTrace flows;
  for (int i = 0; i < 20; ++i) flows.push_back({100.0 + 30.0 * i, 0, 300.0});
  const RunMetrics m = run_scheme(scenario, tiny_topology(), flows, SchemeKind::kSoi, 1);
  EXPECT_EQ(m.gateway_wake_events, 1);  // exactly one wake despite 20 flows
  for (const double fct : m.completion_time) EXPECT_FALSE(std::isnan(fct));
}

TEST(Runtime, NoSleepFlowUnaffected) {
  const ScenarioConfig scenario = tiny_scenario();
  const trace::FlowTrace flows{{100.0, 0, 750000.0}};
  const RunMetrics m =
      run_scheme(scenario, tiny_topology(), flows, SchemeKind::kNoSleep, 1);
  EXPECT_NEAR(m.completion_time[0], 1.0, 1e-6);
}

TEST(Runtime, WakingGatewayDrawsPower) {
  const ScenarioConfig scenario = tiny_scenario();
  const trace::FlowTrace flows{{100.0, 0, 750000.0}};
  const RunMetrics m = run_scheme(scenario, tiny_topology(), flows, SchemeKind::kSoi, 1);
  // During [100, 160) the household draws full power while serving nothing.
  EXPECT_NEAR(m.user_power.value_at(130.0), 14.0, 1e-9);
  // Its DSLAM modem and card wake with it.
  EXPECT_GT(m.isp_power.value_at(130.0), 21.0 + 98.0 - 1e-9);
}

TEST(Runtime, OptimalServesWithInstantTransitions) {
  const ScenarioConfig scenario = tiny_scenario();
  const trace::FlowTrace flows{{100.0, 0, 750000.0}, {500.0, 1, 750000.0}};
  const RunMetrics m =
      run_scheme(scenario, tiny_topology(), flows, SchemeKind::kOptimal, 1);
  // No wake penalty: the fallback powers a gateway instantly.
  EXPECT_NEAR(m.completion_time[0], 1.0, 1e-6);
  EXPECT_NEAR(m.completion_time[1], 1.0, 1e-6);
  EXPECT_EQ(m.gateway_wake_events, 0);
  // Optimal must save energy vs no-sleep here (long idle day).
  const RunMetrics baseline =
      run_scheme(scenario, tiny_topology(), flows, SchemeKind::kNoSleep, 1);
  EXPECT_GT(savings_fraction(m, baseline, 0.0, scenario.duration), 0.5);
}

TEST(Runtime, FlowArrivingDuringWakeWaitsOnlyTheRemainder) {
  const ScenarioConfig scenario = tiny_scenario();
  // First flow wakes the gateway at t=100 (active at 160); second arrives
  // at t=130 and waits 30 s, then both are served at 3 Mbps each.
  const trace::FlowTrace flows{{100.0, 0, 750000.0}, {130.0, 0, 750000.0}};
  const RunMetrics m = run_scheme(scenario, tiny_topology(), flows, SchemeKind::kSoi, 1);
  EXPECT_EQ(m.gateway_wake_events, 1);
  // Both share 6 Mbps from 160: each needs 2 s at half rate.
  EXPECT_NEAR(m.completion_time[0], 62.0, 1e-6);
  EXPECT_NEAR(m.completion_time[1], 32.0, 1e-6);
}

TEST(Runtime, RejectsMismatchedTopology) {
  const ScenarioConfig scenario = tiny_scenario();
  topo::AccessTopology wrong = tiny_topology();
  wrong.gateway_count = 3;
  NoSleepPolicy policy;
  sim::Random rng(1);
  EXPECT_THROW(AccessRuntime(scenario, wrong, {}, policy, rng), util::InvalidArgument);
}

TEST(Runtime, RunIsSingleShot) {
  const ScenarioConfig scenario = tiny_scenario();
  const topo::AccessTopology topology = tiny_topology();
  NoSleepPolicy policy;
  sim::Random rng(1);
  trace::FlowTrace flows;
  AccessRuntime runtime(scenario, topology, flows, policy, rng);
  runtime.run();
  EXPECT_THROW(runtime.run(), util::InvalidState);
}

}  // namespace
}  // namespace insomnia::core
