// Validates the §4.2 analytic sleep model, including the paper's Eq. (2)
// erratum: the published expression omits binomial coefficients, so Monte
// Carlo agrees with the corrected binomial tail — not with the published
// formula — except where they coincide (l=1, or k small).
#include <cmath>

#include <gtest/gtest.h>

#include "dslam/sleep_model.h"
#include "util/error.h"

namespace insomnia::dslam {
namespace {

TEST(SleepModel, AtLeastInactiveDegenerateCases) {
  EXPECT_DOUBLE_EQ(prob_at_least_inactive(0, 4, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(prob_at_least_inactive(4, 4, 0.0), 1.0);  // all inactive
  EXPECT_DOUBLE_EQ(prob_at_least_inactive(1, 4, 1.0), 0.0);  // all active
}

TEST(SleepModel, AtLeastInactiveKnownValues) {
  // k=2, p=0.5: P{>=1 inactive} = 1 - 0.25 = 0.75; P{2 inactive} = 0.25.
  EXPECT_NEAR(prob_at_least_inactive(1, 2, 0.5), 0.75, 1e-12);
  EXPECT_NEAR(prob_at_least_inactive(2, 2, 0.5), 0.25, 1e-12);
}

TEST(SleepModel, ExactFormulaMatchesHandComputation) {
  // l=1: (1 - p^k)^m.
  const double direct = std::pow(1.0 - std::pow(0.5, 4), 24);
  EXPECT_NEAR(sleep_probability_exact(1, 4, 24, 0.5), direct, 1e-12);
}

TEST(SleepModel, PaperFormulaEqualsExactOnlyForFirstCard) {
  // For l=1 the omitted binomial coefficient is C(k,0)=1: no difference.
  EXPECT_NEAR(sleep_probability_paper(1, 8, 24, 0.5),
              sleep_probability_exact(1, 8, 24, 0.5), 1e-12);
  // For l>=2 the published formula overestimates (it drops C(k,i) >= k).
  EXPECT_GT(sleep_probability_paper(2, 8, 24, 0.5),
            sleep_probability_exact(2, 8, 24, 0.5));
}

TEST(SleepModel, MonotoneInCardIndex) {
  for (int l = 1; l < 8; ++l) {
    EXPECT_GE(sleep_probability_exact(l, 8, 24, 0.35),
              sleep_probability_exact(l + 1, 8, 24, 0.35));
  }
}

TEST(SleepModel, MonotoneInActivityProbability) {
  for (double p = 0.1; p < 0.9; p += 0.1) {
    EXPECT_GE(sleep_probability_exact(2, 8, 24, p),
              sleep_probability_exact(2, 8, 24, p + 0.1));
  }
}

TEST(SleepModel, MoreModemsMakeSleepHarder) {
  EXPECT_GT(sleep_probability_exact(2, 8, 12, 0.5),
            sleep_probability_exact(2, 8, 24, 0.5));
}

TEST(SleepModel, NoSwitchingCollapse) {
  // k=1 (no switching): card sleeps iff all m lines idle = (1-p)^m.
  EXPECT_NEAR(sleep_probability_exact(1, 1, 48, 0.05),
              std::pow(0.95, 48), 1e-12);
  // The paper's §4.1 example: 48 ports at 5 % utilization -> ~8 %.
  EXPECT_NEAR(sleep_probability_exact(1, 1, 48, 0.05), 0.085, 0.005);
}

/// Monte-Carlo agreement with the *corrected* formula across (l, k, p).
struct McCase {
  int l;
  int k;
  double p;
};

class SleepModelMc : public ::testing::TestWithParam<McCase> {};

TEST_P(SleepModelMc, MonteCarloMatchesExactBinomialTail) {
  const auto [l, k, p] = GetParam();
  const int m = 6;  // small m keeps MC variance workable
  sim::Random rng(1000 + static_cast<std::uint64_t>(l * 100 + k * 10));
  const double mc = sleep_probability_monte_carlo(l, k, m, p, 60000, rng);
  const double exact = sleep_probability_exact(l, k, m, p);
  EXPECT_NEAR(mc, exact, 0.01) << "l=" << l << " k=" << k << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SleepModelMc,
    ::testing::Values(McCase{1, 2, 0.5}, McCase{2, 2, 0.5}, McCase{1, 4, 0.25},
                      McCase{2, 4, 0.25}, McCase{3, 4, 0.5}, McCase{1, 8, 0.5},
                      McCase{2, 8, 0.25}, McCase{4, 8, 0.25}, McCase{2, 8, 0.75}));

TEST(SleepModel, PaperFormulaDisagreesWithMonteCarloForDeepCards) {
  // Quantifies the erratum: at l=3, k=8, p=0.5 the published formula is far
  // from what simulation yields.
  sim::Random rng(77);
  const double mc = sleep_probability_monte_carlo(3, 8, 6, 0.5, 60000, rng);
  const double paper = sleep_probability_paper(3, 8, 6, 0.5);
  const double exact = sleep_probability_exact(3, 8, 6, 0.5);
  EXPECT_NEAR(mc, exact, 0.01);
  EXPECT_GT(paper - mc, 0.2);
}

TEST(SleepModel, ExpectedSleepingCardsBounds) {
  const double expected = expected_sleeping_cards(4, 12, 0.25);
  EXPECT_GT(expected, 0.0);
  EXPECT_LT(expected, 4.0);
  // With p=0 all cards sleep; with p=1 none do.
  EXPECT_NEAR(expected_sleeping_cards(4, 12, 0.0), 4.0, 1e-12);
  EXPECT_NEAR(expected_sleeping_cards(4, 12, 1.0), 0.0, 1e-12);
}

TEST(SleepModel, FullSwitchApproximationAndExactExpectation) {
  // Paper: full switching powers off floor(n(1-p)/m) cards.
  EXPECT_EQ(full_switch_sleeping_cards_approx(4, 12, 0.5), 2);
  EXPECT_EQ(full_switch_sleeping_cards_approx(4, 12, 0.25), 3);
  const double exact = full_switch_expected_sleeping_cards(4, 12, 0.5);
  EXPECT_NEAR(exact, 1.7, 0.4);  // jensen gap below the deterministic floor
  EXPECT_NEAR(full_switch_expected_sleeping_cards(4, 12, 0.0), 4.0, 1e-9);
  // One awake line pins one card: 3 cards sleep in expectation minus tail.
  EXPECT_LE(full_switch_expected_sleeping_cards(4, 12, 1.0), 1e-12);
}

TEST(SleepModel, FullSwitchBeatsKSwitch) {
  // A full switch can never do worse than k-switches in expectation.
  for (double p : {0.25, 0.5, 0.75}) {
    EXPECT_GE(full_switch_expected_sleeping_cards(8, 24, p) + 1e-9,
              expected_sleeping_cards(8, 24, p));
  }
}

TEST(SleepModel, ArgumentValidation) {
  EXPECT_THROW(sleep_probability_exact(0, 4, 24, 0.5), util::InvalidArgument);
  EXPECT_THROW(sleep_probability_exact(5, 4, 24, 0.5), util::InvalidArgument);
  EXPECT_THROW(sleep_probability_exact(1, 4, 0, 0.5), util::InvalidArgument);
  EXPECT_THROW(sleep_probability_exact(1, 4, 24, 1.5), util::InvalidArgument);
  sim::Random rng(1);
  EXPECT_THROW(sleep_probability_monte_carlo(1, 4, 24, 0.5, 0, rng),
               util::InvalidArgument);
}

}  // namespace
}  // namespace insomnia::dslam
