#include <gtest/gtest.h>

#include "sim/random.h"
#include "trace/flow_ops.h"
#include "trace/synthetic_crawdad.h"
#include "util/error.h"

namespace insomnia::trace {
namespace {

FlowTrace sample_trace() {
  return {{0.0, 0, 100.0}, {10.0, 1, 200.0}, {20.0, 2, 300.0}, {30.0, 0, 400.0}};
}

TEST(WindowTrace, CutsAndRebases) {
  const FlowTrace window = window_trace(sample_trace(), 10.0, 30.0);
  ASSERT_EQ(window.size(), 2u);
  EXPECT_DOUBLE_EQ(window[0].start_time, 0.0);
  EXPECT_EQ(window[0].client, 1);
  EXPECT_DOUBLE_EQ(window[1].start_time, 10.0);
  EXPECT_EQ(window[1].client, 2);
}

TEST(WindowTrace, HalfOpenBoundaries) {
  // start inclusive, end exclusive.
  const FlowTrace window = window_trace(sample_trace(), 10.0, 20.0);
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window[0].client, 1);
}

TEST(WindowTrace, Validation) {
  EXPECT_THROW(window_trace(sample_trace(), 5.0, 5.0), util::InvalidArgument);
}

TEST(FoldClients, MapsAndDrops) {
  // Clients 0 and 2 fold onto terminal 0; client 1 is dropped.
  const FlowTrace folded = fold_clients(sample_trace(), {0, -1, 0});
  ASSERT_EQ(folded.size(), 3u);
  for (const FlowRecord& f : folded) EXPECT_EQ(f.client, 0);
  EXPECT_DOUBLE_EQ(total_bytes(folded), 100.0 + 300.0 + 400.0);
}

TEST(FoldClients, RejectsUnmappedClient) {
  EXPECT_THROW(fold_clients(sample_trace(), {0, 1}), util::InvalidArgument);
}

TEST(ScaleVolume, MultipliesBytesOnly) {
  const FlowTrace scaled = scale_volume(sample_trace(), 3.0);
  ASSERT_EQ(scaled.size(), 4u);
  EXPECT_DOUBLE_EQ(scaled[0].bytes, 300.0);
  EXPECT_DOUBLE_EQ(scaled[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(total_bytes(scaled), 3.0 * total_bytes(sample_trace()));
  EXPECT_THROW(scale_volume(sample_trace(), 0.0), util::InvalidArgument);
}

TEST(TraceStats, TotalsAndDistinctClients) {
  EXPECT_DOUBLE_EQ(total_bytes(sample_trace()), 1000.0);
  EXPECT_EQ(distinct_clients(sample_trace()), 3);
  EXPECT_EQ(distinct_clients({}), 0);
  EXPECT_DOUBLE_EQ(total_bytes({}), 0.0);
}

TEST(TraceOps, ComposeOnGeneratedTrace) {
  SyntheticTraceConfig config;
  config.client_count = 20;
  sim::Random rng(3);
  const FlowTrace day = SyntheticCrawdadGenerator(config).generate(rng);
  // Fold everyone onto 4 terminals, cut the afternoon, scale up by 2.
  std::vector<int> map(20);
  for (int c = 0; c < 20; ++c) map[static_cast<std::size_t>(c)] = c % 4;
  const FlowTrace shaped =
      scale_volume(window_trace(fold_clients(day, map), 12 * 3600.0, 18 * 3600.0), 2.0);
  EXPECT_LE(distinct_clients(shaped), 4);
  for (const FlowRecord& f : shaped) {
    EXPECT_GE(f.start_time, 0.0);
    EXPECT_LT(f.start_time, 6 * 3600.0);
  }
}

}  // namespace
}  // namespace insomnia::trace
