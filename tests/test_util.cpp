#include <cstdint>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/units.h"

namespace insomnia::util {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto fields = split("hello", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "hello");
}

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
}

TEST(Strings, FormatPercent) { EXPECT_EQ(format_percent(0.661, 1), "66.1%"); }

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("gateway", "gate"));
  EXPECT_FALSE(starts_with("gate", "gateway"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, ParsePositiveInt) {
  EXPECT_EQ(parse_positive_int(" 42 "), 42);
  EXPECT_FALSE(parse_positive_int("0").has_value());
  EXPECT_FALSE(parse_positive_int("-3").has_value());
  EXPECT_FALSE(parse_positive_int("7x").has_value());
  EXPECT_FALSE(parse_positive_int("").has_value());
  EXPECT_FALSE(parse_positive_int("99999999999999999999").has_value());
}

TEST(Strings, ParseUint64) {
  EXPECT_EQ(parse_uint64("0"), std::uint64_t{0});  // a valid RNG seed
  EXPECT_EQ(parse_uint64(" 18446744073709551615 "),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(parse_uint64("18446744073709551616").has_value());  // 2^64
  EXPECT_FALSE(parse_uint64("-1").has_value());  // strtoull would wrap this
  EXPECT_FALSE(parse_uint64("+1").has_value());
  EXPECT_FALSE(parse_uint64("12junk").has_value());
  EXPECT_FALSE(parse_uint64("").has_value());
}

TEST(Strings, ParseDouble) {
  EXPECT_EQ(parse_double(" 1.5 "), 1.5);
  EXPECT_EQ(parse_double("-2e3"), -2000.0);
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("1e999").has_value());  // out of range
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(hours(1.5), 5400.0);
  EXPECT_DOUBLE_EQ(minutes(2.0), 120.0);
  EXPECT_DOUBLE_EQ(kSecondsPerDay, 86400.0);
}

TEST(Units, DataConversions) {
  EXPECT_DOUBLE_EQ(mbps(6.0), 6e6);
  EXPECT_DOUBLE_EQ(kbps(256.0), 256e3);
  EXPECT_DOUBLE_EQ(bytes_to_bits(100.0), 800.0);
}

TEST(Units, DbRoundTrip) {
  for (double db : {-50.0, -3.0, 0.0, 10.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-12);
  }
}

TEST(Units, WattYearsToTwh) {
  // 1 GW sustained for a year = 8.76 TWh.
  EXPECT_NEAR(watt_years_to_twh(1e9), 8.76, 1e-9);
}

TEST(Error, RequireThrowsOnFailure) {
  EXPECT_THROW(require(false, "boom"), InvalidArgument);
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require_state(false, "bad state"), InvalidState);
}

TEST(Csv, WriteProducesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.comment("test");
  writer.header({"a", "b"});
  const std::vector<double> values{1.5, 2.25};
  writer.row(values, 2);
  EXPECT_EQ(out.str(), "# test\na,b\n1.50,2.25\n");
}

TEST(Csv, ParseSkipsCommentsAndBlanks) {
  std::istringstream in("# comment\n\na,b\n1,2\n 3 , 4 \n");
  const CsvDocument doc = parse_csv(in, /*has_header=*/true);
  ASSERT_EQ(doc.header.size(), 2u);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][0], "3");
  EXPECT_EQ(doc.rows[1][1], "4");
}

TEST(Csv, ParseWithoutHeader) {
  std::istringstream in("1,2\n3,4\n");
  const CsvDocument doc = parse_csv(in, /*has_header=*/false);
  EXPECT_TRUE(doc.header.empty());
  EXPECT_EQ(doc.rows.size(), 2u);
}

TEST(Table, AlignsColumns) {
  TextTable table;
  table.set_header({"name", "v"});
  table.add_row(std::vector<std::string>{"x", "1"});
  table.add_row(std::vector<std::string>{"longer", "22"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, RejectsMismatchedWidth) {
  TextTable table;
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), InvalidArgument);
}

TEST(Table, NumericRows) {
  TextTable table;
  table.add_row(std::vector<double>{1.234, 5.678}, 1);
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("1.2"), std::string::npos);
}

}  // namespace
}  // namespace insomnia::util
