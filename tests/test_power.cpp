#include <gtest/gtest.h>

#include "power/device_power.h"
#include "power/energy_meter.h"
#include "util/error.h"

namespace insomnia::power {
namespace {

TEST(DevicePower, StateTable) {
  const DevicePowerModel m{.active_watts = 10.0, .waking_watts = 8.0, .asleep_watts = 0.5};
  EXPECT_DOUBLE_EQ(m.watts(PowerState::kActive), 10.0);
  EXPECT_DOUBLE_EQ(m.watts(PowerState::kWaking), 8.0);
  EXPECT_DOUBLE_EQ(m.watts(PowerState::kAsleep), 0.5);
}

TEST(DevicePower, PaperDefaults) {
  EXPECT_DOUBLE_EQ(defaults::gateway().active_watts, 9.0);
  EXPECT_DOUBLE_EQ(defaults::wireless_router().active_watts, 5.0);
  EXPECT_DOUBLE_EQ(defaults::isp_modem().active_watts, 1.0);
  EXPECT_DOUBLE_EQ(defaults::line_card().active_watts, 98.0);
  EXPECT_DOUBLE_EQ(defaults::shelf().active_watts, 21.0);
  // The shelf never sleeps.
  EXPECT_DOUBLE_EQ(defaults::shelf().asleep_watts, 21.0);
}

TEST(DevicePower, NoSleepBaselineOfTheScenario) {
  // §5.1 scenario: 40 gateways (9 W modem-router), shelf, 4 cards, 48 ports.
  const AccessPowerParams params;
  EXPECT_DOUBLE_EQ(no_sleep_watts(params, 40, 4, 48), 40 * 9.0 + 21.0 + 4 * 98.0 + 48.0);
  EXPECT_THROW(no_sleep_watts(params, -1, 0, 0), util::InvalidArgument);
}

TEST(GroupMeter, InitialPower) {
  DeviceGroupMeter meter("test", defaults::gateway(), 3, 0.0, PowerState::kActive);
  EXPECT_DOUBLE_EQ(meter.power_series().value_at(0.0), 27.0);
  EXPECT_EQ(meter.count_in(PowerState::kActive), 3);
}

TEST(GroupMeter, TransitionsChangeAggregatePower) {
  DeviceGroupMeter meter("test", defaults::gateway(), 2, 0.0, PowerState::kAsleep);
  meter.set_state(0, PowerState::kActive, 10.0);
  meter.set_state(1, PowerState::kActive, 20.0);
  meter.set_state(0, PowerState::kAsleep, 30.0);
  EXPECT_DOUBLE_EQ(meter.power_series().value_at(5.0), 0.0);
  EXPECT_DOUBLE_EQ(meter.power_series().value_at(15.0), 9.0);
  EXPECT_DOUBLE_EQ(meter.power_series().value_at(25.0), 18.0);
  EXPECT_DOUBLE_EQ(meter.power_series().value_at(35.0), 9.0);
  // Energy: 0*10 + 9*10 + 18*10 + 9*10 = 360 J over [0, 40].
  EXPECT_DOUBLE_EQ(meter.energy(0.0, 40.0), 360.0);
}

TEST(GroupMeter, RedundantTransitionIsNoOp) {
  DeviceGroupMeter meter("test", defaults::gateway(), 1, 0.0, PowerState::kAsleep);
  meter.set_state(0, PowerState::kAsleep, 10.0);
  EXPECT_EQ(meter.power_series().change_count(), 1u);
}

TEST(GroupMeter, OnlineTimeCountsActiveAndWaking) {
  DeviceGroupMeter meter("test", defaults::gateway(), 1, 0.0, PowerState::kAsleep);
  meter.set_state(0, PowerState::kWaking, 10.0);
  meter.set_state(0, PowerState::kActive, 20.0);
  meter.set_state(0, PowerState::kAsleep, 50.0);
  EXPECT_DOUBLE_EQ(meter.online_time(0, 0.0, 100.0), 40.0);
}

TEST(GroupMeter, PerDeviceStatesIndependent) {
  DeviceGroupMeter meter("test", defaults::isp_modem(), 4, 0.0, PowerState::kAsleep);
  meter.set_state(2, PowerState::kActive, 5.0);
  EXPECT_EQ(meter.state(2), PowerState::kActive);
  EXPECT_EQ(meter.state(0), PowerState::kAsleep);
  EXPECT_EQ(meter.count_in(PowerState::kAsleep), 3);
  EXPECT_EQ(meter.device_count(), 4);
}

TEST(GroupMeter, WakingDrawsPowerButBeforeServing) {
  // Wake-up draw is the mechanism that makes spurious wake-ups costly.
  DeviceGroupMeter meter("test", defaults::gateway(), 1, 0.0, PowerState::kAsleep);
  meter.set_state(0, PowerState::kWaking, 0.0);
  meter.set_state(0, PowerState::kActive, 60.0);
  EXPECT_DOUBLE_EQ(meter.energy(0.0, 60.0), 9.0 * 60.0);
}

}  // namespace
}  // namespace insomnia::power
