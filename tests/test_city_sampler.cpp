#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "city/city_config.h"
#include "city/neighbourhood_sampler.h"
#include "util/error.h"

namespace insomnia::city {
namespace {

core::ScenarioPreset tiny_preset(const std::string& name, int clients, int gateways) {
  core::ScenarioPreset preset;
  preset.name = name;
  preset.summary = name;
  core::ScenarioConfig& s = preset.scenario;
  s.client_count = clients;
  s.gateway_count = gateways;
  s.degrees.node_count = gateways;
  s.degrees.mean_degree = 3.0;
  s.traffic.client_count = clients;
  s.dslam.line_cards = 4;
  s.dslam.ports_per_card = 2;
  return preset;
}

CityConfig two_component_city(double spread = 0.25) {
  NeighbourhoodJitter jitter;
  jitter.gateway_count_spread = spread;
  jitter.client_density_spread = spread;
  jitter.backhaul_sigma = 0.2;
  jitter.diurnal_phase_spread = 3600.0;
  CityConfig config;
  config.neighbourhoods = 50;
  config.seed = 99;
  config.mix = {{"tiny-a", 3.0, jitter}, {"tiny-b", 1.0, jitter}};
  return config;
}

std::vector<core::ScenarioPreset> two_presets() {
  return {tiny_preset("tiny-a", 48, 8), tiny_preset("tiny-b", 24, 6)};
}

TEST(CitySampler, IsAPureFunctionOfSeedAndIndex) {
  const CityConfig config = two_component_city();
  const auto presets = two_presets();
  for (std::size_t i : {std::size_t{0}, std::size_t{7}, std::size_t{31}}) {
    const NeighbourhoodSample a = sample_neighbourhood(config, presets, i);
    const NeighbourhoodSample b = sample_neighbourhood(config, presets, i);
    EXPECT_EQ(a.mix_index, b.mix_index);
    EXPECT_EQ(a.diurnal_phase, b.diurnal_phase);
    EXPECT_EQ(a.scenario.gateway_count, b.scenario.gateway_count);
    EXPECT_EQ(a.scenario.client_count, b.scenario.client_count);
    EXPECT_EQ(a.scenario.backhaul_bps, b.scenario.backhaul_bps);
  }
}

TEST(CitySampler, JitterStaysWithinItsBounds) {
  const CityConfig config = two_component_city(0.25);
  const auto presets = two_presets();
  bool saw_varied_gateways = false;
  for (std::size_t i = 0; i < 200; ++i) {
    const NeighbourhoodSample sample = sample_neighbourhood(config, presets, i);
    const core::ScenarioConfig& preset = presets[sample.mix_index].scenario;
    const core::ScenarioConfig& s = sample.scenario;

    // Gateways within the uniform spread (±1 for rounding), never below 2.
    EXPECT_GE(s.gateway_count, std::max(2.0, preset.gateway_count * 0.75 - 1.0));
    EXPECT_LE(s.gateway_count, preset.gateway_count * 1.25 + 1.0);
    if (s.gateway_count != preset.gateway_count) saw_varied_gateways = true;

    // Clients track the jittered plant: density within its own spread.
    const double density = static_cast<double>(s.client_count) / s.gateway_count;
    const double preset_density =
        static_cast<double>(preset.client_count) / preset.gateway_count;
    EXPECT_GE(density, preset_density * 0.75 - 1.0);
    EXPECT_LE(density, preset_density * 1.25 + 1.0);

    // Phase within ±1 h; the profile actually carries it.
    EXPECT_LE(std::abs(sample.diurnal_phase), 3600.0);
    EXPECT_DOUBLE_EQ(s.traffic.profile.phase(), sample.diurnal_phase);

    // The jittered scenario stays internally consistent and runnable.
    EXPECT_EQ(s.degrees.node_count, s.gateway_count);
    EXPECT_LE(s.degrees.mean_degree, static_cast<double>(s.gateway_count - 1));
    EXPECT_EQ(s.traffic.client_count, s.client_count);
    EXPECT_LE(s.gateway_count, s.dslam_ports());
    EXPECT_EQ(s.dslam.line_cards % s.dslam.switch_size, 0);
    EXPECT_GT(s.backhaul_bps, 0.0);
  }
  EXPECT_TRUE(saw_varied_gateways);
}

TEST(CitySampler, ZeroJitterReproducesThePreset) {
  CityConfig config = two_component_city();
  config.mix = {{"tiny-a", 1.0, NeighbourhoodJitter{}}};
  const std::vector<core::ScenarioPreset> presets{tiny_preset("tiny-a", 48, 8)};
  for (std::size_t i = 0; i < 20; ++i) {
    const NeighbourhoodSample sample = sample_neighbourhood(config, presets, i);
    EXPECT_EQ(sample.mix_index, 0u);
    EXPECT_EQ(sample.scenario.gateway_count, 8);
    EXPECT_EQ(sample.scenario.client_count, 48);
    EXPECT_DOUBLE_EQ(sample.scenario.backhaul_bps, presets[0].scenario.backhaul_bps);
    EXPECT_DOUBLE_EQ(sample.diurnal_phase, 0.0);
  }
}

TEST(CitySampler, MixWeightsSteerThePopulation) {
  const CityConfig config = two_component_city();  // weights 3 : 1
  const auto presets = two_presets();
  int first = 0;
  const int n = 400;
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
    if (sample_neighbourhood(config, presets, i).mix_index == 0) ++first;
  }
  // Expected 300 of 400; allow a wide deterministic margin.
  EXPECT_GT(first, n / 2);
  EXPECT_LT(first, n);
}

TEST(CitySampler, GrowsTheDslamInWholeSwitchGroups) {
  CityConfig config = two_component_city();
  NeighbourhoodJitter big;
  big.gateway_count_spread = 0.5;
  config.mix = {{"tiny-a", 1.0, big}};
  // 8 gateways on a 4x2 DSLAM: +50 % jitter can exceed the 8 ports, forcing
  // card growth in multiples of switch_size (4).
  const std::vector<core::ScenarioPreset> presets{tiny_preset("tiny-a", 48, 8)};
  bool grew = false;
  for (std::size_t i = 0; i < 100; ++i) {
    const NeighbourhoodSample sample = sample_neighbourhood(config, presets, i);
    EXPECT_LE(sample.scenario.gateway_count, sample.scenario.dslam_ports());
    EXPECT_EQ(sample.scenario.dslam.line_cards % 4, 0);
    if (sample.scenario.dslam.line_cards > 4) grew = true;
  }
  EXPECT_TRUE(grew);
}

TEST(CitySampler, ValidationRejectsBrokenConfigs) {
  const auto presets = two_presets();
  CityConfig config = two_component_city();
  config.mix.clear();
  EXPECT_THROW(validate(config), util::InvalidArgument);

  config = two_component_city();
  config.neighbourhoods = 0;
  EXPECT_THROW(validate(config), util::InvalidArgument);

  config = two_component_city();
  config.mix[0].weight = 0.0;
  EXPECT_THROW(validate(config), util::InvalidArgument);

  config = two_component_city();
  config.mix[0].jitter.gateway_count_spread = 1.0;
  EXPECT_THROW(validate(config), util::InvalidArgument);

  config = two_component_city();
  config.mix[1].jitter.backhaul_sigma = -0.1;
  EXPECT_THROW(validate(config), util::InvalidArgument);

  config = two_component_city();
  config.peak_start = config.peak_end;
  EXPECT_THROW(validate(config), util::InvalidArgument);

  // Registry resolution rejects unknown names (structural validate does not).
  config = two_component_city();
  EXPECT_THROW(resolve_mix(config), util::InvalidArgument);

  // A presets vector that does not match the mix is rejected by the sampler.
  config = two_component_city();
  EXPECT_THROW(sample_neighbourhood(config, {presets[0]}, 0), util::InvalidArgument);
}

TEST(CitySampler, ResolveMixUsesTheRegistry) {
  CityConfig config = default_city(4);
  const std::vector<core::ScenarioPreset> presets = resolve_mix(config);
  ASSERT_EQ(presets.size(), config.mix.size());
  for (std::size_t k = 0; k < presets.size(); ++k) {
    EXPECT_EQ(presets[k].name, config.mix[k].preset);
  }
}

}  // namespace
}  // namespace insomnia::city
