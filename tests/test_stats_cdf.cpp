#include <gtest/gtest.h>

#include "sim/random.h"
#include "stats/cdf.h"
#include "util/error.h"

namespace insomnia::stats {
namespace {

TEST(EmpiricalCdf, EmptySample) {
  EmpiricalCdf cdf({});
  EXPECT_EQ(cdf.size(), 0u);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(3.0), 0.0);
  EXPECT_THROW(cdf.value_at(0.5), util::InvalidArgument);
}

TEST(EmpiricalCdf, FractionAtOrBelow) {
  EmpiricalCdf cdf({1.0, 2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(100.0), 1.0);
}

TEST(EmpiricalCdf, FractionStrictlyBelow) {
  EmpiricalCdf cdf({1.0, 2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_below(2.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(4.0), 0.75);
}

TEST(EmpiricalCdf, InverseCdf) {
  EmpiricalCdf cdf({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(cdf.value_at(0.25), 10.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(1.0), 40.0);
  EXPECT_THROW(cdf.value_at(0.0), util::InvalidArgument);
}

TEST(EmpiricalCdf, StaircaseCollapsesDuplicates) {
  EmpiricalCdf cdf({1.0, 1.0, 2.0});
  const auto steps = cdf.staircase();
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_DOUBLE_EQ(steps[0].first, 1.0);
  EXPECT_NEAR(steps[0].second, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(steps[1].second, 1.0);
}

TEST(EmpiricalCdf, RoundTripWithQuantiles) {
  sim::Random rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 400; ++i) sample.push_back(rng.exponential(2.0));
  EmpiricalCdf cdf(sample);
  for (double q : {0.1, 0.5, 0.9}) {
    const double v = cdf.value_at(q);
    EXPECT_GE(cdf.fraction_at_or_below(v), q - 1e-12);
    EXPECT_LT(cdf.fraction_below(v), q + 1e-12);
  }
}

}  // namespace
}  // namespace insomnia::stats
