// Chrome trace-event exporter goldens: the document layout is pinned byte
// for byte against a hand-built snapshot so chrome://tracing / Perfetto
// compatibility cannot drift silently, plus a live round-trip through the
// armed profiler and write_chrome_trace.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/obs.h"
#include "obs/profiler.h"
#include "obs/trace_export.h"

namespace insomnia::obs {
namespace {

TEST(ObsTrace, EmptySnapshotGolden) {
  // Even an empty run gets the process metadata track.
  const TraceSnapshot snap;
  EXPECT_EQ(chrome_trace_json(snap),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
            "\"args\":{\"name\":\"insomnia\"}}"
            "]}");
}

TEST(ObsTrace, HandBuiltSnapshotGolden) {
  // Thread metadata first (registration order), then complete ("X") phase
  // events with microsecond ts/dur, then counter ("C") samples.
  TraceSnapshot snap;
  snap.threads = {{0, "main"}, {1, "worker-0"}};
  snap.events = {{"engine.day", 1, /*start_ns=*/1000, /*dur_ns=*/500},
                 {"city.fold", 0, /*start_ns=*/2000, /*dur_ns=*/250}};
  snap.counters = {{"fleet.shards_done", /*ts_ns=*/3000, /*value=*/2.0}};
  EXPECT_EQ(chrome_trace_json(snap),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
            "\"args\":{\"name\":\"insomnia\"}},"
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
            "\"args\":{\"name\":\"main\"}},"
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,"
            "\"args\":{\"name\":\"worker-0\"}},"
            "{\"name\":\"engine.day\",\"ph\":\"X\",\"pid\":0,\"tid\":1,"
            "\"cat\":\"phase\",\"ts\":1,\"dur\":0.5},"
            "{\"name\":\"city.fold\",\"ph\":\"X\",\"pid\":0,\"tid\":0,"
            "\"cat\":\"phase\",\"ts\":2,\"dur\":0.25},"
            "{\"name\":\"fleet.shards_done\",\"ph\":\"C\",\"pid\":0,\"tid\":0,"
            "\"ts\":3,\"args\":{\"value\":2}}"
            "]}");
}

#ifndef INSOMNIA_OBS_DISABLED

TEST(ObsTrace, ArmedScopesExportAsCompleteEvents) {
  set_enabled(true);
  disable_tracing();
  reset_profiler();
  enable_tracing();
  {
    OBS_SCOPE("trace.test.phase");
  }
  emit_counter_event("trace.test.counter", 5.0);
  const std::string json = chrome_trace_json(trace_snapshot());
  EXPECT_NE(json.find("{\"name\":\"trace.test.phase\",\"ph\":\"X\",\"pid\":0,"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"name\":\"trace.test.counter\",\"ph\":\"C\",\"pid\":0,"),
            std::string::npos)
      << json;
  disable_tracing();
}

TEST(ObsTrace, WriteChromeTraceMatchesSnapshotPlusNewline) {
  set_enabled(true);
  disable_tracing();
  reset_profiler();
  const std::string path = ::testing::TempDir() + "obs_trace_roundtrip.json";
  write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), chrome_trace_json(trace_snapshot()) + "\n");
  std::remove(path.c_str());
}

#endif  // INSOMNIA_OBS_DISABLED

}  // namespace
}  // namespace insomnia::obs
