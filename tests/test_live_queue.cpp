// The bounded ingest buffer (live/ingest_queue.h): FIFO order, the two
// overflow policies, and the run-length stamp bookkeeping the controller's
// latency accounting depends on (a lost or reordered stamp would corrupt
// the ingest→decision histogram silently).
#include <deque>

#include <gtest/gtest.h>

#include "live/ingest_queue.h"
#include "trace/records.h"
#include "util/error.h"

namespace insomnia::live {
namespace {

trace::FlowTrace make_records(int n, double t0 = 0.0) {
  trace::FlowTrace records;
  for (int i = 0; i < n; ++i) {
    records.push_back({t0 + static_cast<double>(i), i % 7, 1000.0 + i});
  }
  return records;
}

TEST(IngestQueue, FifoAcrossBatches) {
  IngestQueue queue(16, OverflowPolicy::kBackpressure);
  const trace::FlowTrace a = make_records(3, 0.0);
  const trace::FlowTrace b = make_records(2, 10.0);
  EXPECT_EQ(queue.push_batch(a.data(), a.size(), 100), 3u);
  EXPECT_EQ(queue.push_batch(b.data(), b.size(), 200), 2u);
  EXPECT_EQ(queue.size(), 5u);

  trace::FlowTrace out;
  std::deque<StampRun> stamps;
  EXPECT_EQ(queue.pop(100, out, stamps), 5u);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(out[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(out[2].start_time, 2.0);
  EXPECT_DOUBLE_EQ(out[3].start_time, 10.0);
  EXPECT_DOUBLE_EQ(out[4].start_time, 11.0);
  EXPECT_TRUE(queue.empty());
}

TEST(IngestQueue, StampRunsFollowTheirRecords) {
  IngestQueue queue(16, OverflowPolicy::kBackpressure);
  const trace::FlowTrace batch = make_records(4);
  queue.push_batch(batch.data(), 3, 111);
  queue.push_batch(batch.data() + 3, 1, 222);

  trace::FlowTrace out;
  std::deque<StampRun> stamps;
  // Pop straddling the run boundary: 2 of the first run...
  EXPECT_EQ(queue.pop(2, out, stamps), 2u);
  ASSERT_EQ(stamps.size(), 1u);
  EXPECT_EQ(stamps[0].stamp_ns, 111u);
  EXPECT_EQ(stamps[0].count, 2u);
  // ...then the rest: the leftover of run 1 merges into the caller's tail
  // run (same stamp), run 2 starts fresh.
  EXPECT_EQ(queue.pop(2, out, stamps), 2u);
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_EQ(stamps[0].stamp_ns, 111u);
  EXPECT_EQ(stamps[0].count, 3u);
  EXPECT_EQ(stamps[1].stamp_ns, 222u);
  EXPECT_EQ(stamps[1].count, 1u);
}

TEST(IngestQueue, SameStampBatchesMergeIntoOneRun) {
  IngestQueue queue(16, OverflowPolicy::kBackpressure);
  const trace::FlowTrace batch = make_records(4);
  queue.push_batch(batch.data(), 2, 999);
  queue.push_batch(batch.data() + 2, 2, 999);

  trace::FlowTrace out;
  std::deque<StampRun> stamps;
  EXPECT_EQ(queue.pop(4, out, stamps), 4u);
  ASSERT_EQ(stamps.size(), 1u);
  EXPECT_EQ(stamps[0].count, 4u);
}

TEST(IngestQueue, DropNewestShedsTheTailAndCounts) {
  IngestQueue queue(3, OverflowPolicy::kDropNewest);
  const trace::FlowTrace batch = make_records(5);
  EXPECT_EQ(queue.push_batch(batch.data(), batch.size(), 42), 3u);
  EXPECT_EQ(queue.accepted(), 3u);
  EXPECT_EQ(queue.dropped(), 2u);
  EXPECT_EQ(queue.free_slots(), 0u);

  trace::FlowTrace out;
  std::deque<StampRun> stamps;
  EXPECT_EQ(queue.pop(10, out, stamps), 3u);
  // The accepted records are exactly the batch HEAD, in order.
  EXPECT_DOUBLE_EQ(out[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(out[2].start_time, 2.0);
  EXPECT_EQ(queue.dropped(), 2u);
}

TEST(IngestQueue, BackpressureOverfillIsACallerBug) {
  IngestQueue queue(2, OverflowPolicy::kBackpressure);
  const trace::FlowTrace batch = make_records(3);
  EXPECT_THROW(queue.push_batch(batch.data(), batch.size(), 42), util::InvalidState);
}

TEST(IngestQueue, TracksPeakDepthAcrossPopCycles) {
  IngestQueue queue(8, OverflowPolicy::kBackpressure);
  const trace::FlowTrace batch = make_records(8);
  queue.push_batch(batch.data(), 5, 1);
  trace::FlowTrace out;
  std::deque<StampRun> stamps;
  queue.pop(5, out, stamps);
  queue.push_batch(batch.data(), 2, 2);
  EXPECT_EQ(queue.peak_depth(), 5u);
  EXPECT_EQ(queue.accepted(), 7u);
}

TEST(IngestQueue, RejectsZeroCapacity) {
  EXPECT_THROW(IngestQueue(0, OverflowPolicy::kBackpressure), util::InvalidArgument);
}

}  // namespace
}  // namespace insomnia::live
