#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/sweep_runner.h"
#include "sim/random.h"

namespace insomnia::exec {
namespace {

TEST(SweepRunner, ResultsAreOrderedByIndexNotCompletionOrder) {
  SweepRunner runner(4);
  // Make low indices slow so completion order inverts submission order.
  const auto results = runner.run(32, [](std::size_t i) {
    volatile double sink = 0.0;
    const int spin = static_cast<int>((32 - i) * 10000);
    for (int k = 0; k < spin; ++k) sink = sink + 1.0;
    return i * i;
  });
  ASSERT_EQ(results.size(), 32u);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i * i);
}

TEST(SweepRunner, SerialAndParallelAgree) {
  auto shard = [](std::size_t i) {
    sim::Random rng(sim::Random::substream_seed(99, i));
    double total = 0.0;
    for (int k = 0; k < 50; ++k) total += rng.uniform(0.0, 1.0);
    return total;
  };
  SweepRunner serial(1);
  SweepRunner parallel(8);
  const auto a = serial.run(40, shard);
  const auto b = parallel.run(40, shard);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "shard " << i;  // bit-identical, not just close
  }
}

TEST(SweepRunner, OneThreadRunsInline) {
  SweepRunner runner(1);
  EXPECT_EQ(runner.threads(), 1);
  const std::thread::id main_id = std::this_thread::get_id();
  const auto ids = runner.run(4, [&](std::size_t) { return std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, main_id);
}

TEST(SweepRunner, SingleShardRunsInlineEvenWithManyThreads) {
  SweepRunner runner(8);
  const auto ids = runner.run(1, [](std::size_t) { return std::this_thread::get_id(); });
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], std::this_thread::get_id());
}

TEST(SweepRunner, EmptySweepReturnsEmpty) {
  SweepRunner runner(4);
  EXPECT_TRUE(runner.run(0, [](std::size_t i) { return i; }).empty());
}

TEST(SweepRunner, MoreThreadsThanShardsIsFine) {
  SweepRunner runner(16);
  const auto results = runner.run(3, [](std::size_t i) { return i + 1; });
  EXPECT_EQ(results, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(SweepRunner, RethrowsLowestIndexedFailure) {
  SweepRunner runner(4);
  try {
    runner.run(16, [](std::size_t i) -> int {
      if (i == 11) throw std::runtime_error("shard 11");
      if (i == 3) throw std::runtime_error("shard 3");
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    // The serial path would have hit shard 3 first; parallel must match.
    EXPECT_STREQ(error.what(), "shard 3");
  }
}

TEST(SweepRunner, AllShardsStillRunWhenOneThrows) {
  SweepRunner runner(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(runner.run(20,
                          [&](std::size_t i) -> int {
                            ran.fetch_add(1);
                            if (i == 0) throw std::runtime_error("boom");
                            return 0;
                          }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 20);
}

TEST(SweepRunner, ReusableAcrossRuns) {
  SweepRunner runner(4);
  for (int round = 0; round < 5; ++round) {
    const auto results = runner.run(10, [&](std::size_t i) {
      return static_cast<int>(i) + round;
    });
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], static_cast<int>(i) + round);
    }
  }
}

TEST(SweepRunner, AutoThreadsResolvesToAtLeastOne) {
  SweepRunner runner(0);
  EXPECT_GE(runner.threads(), 1);
  const auto results = runner.run(8, [](std::size_t i) { return i; });
  const std::size_t sum = std::accumulate(results.begin(), results.end(), std::size_t{0});
  EXPECT_EQ(sum, 28u);
}

}  // namespace
}  // namespace insomnia::exec
