#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/sweep_runner.h"
#include "sim/random.h"
#include "util/error.h"

namespace insomnia::exec {
namespace {

TEST(SweepRunner, ResultsAreOrderedByIndexNotCompletionOrder) {
  SweepRunner runner(4);
  // Make low indices slow so completion order inverts submission order.
  const auto results = runner.run(32, [](std::size_t i) {
    volatile double sink = 0.0;
    const int spin = static_cast<int>((32 - i) * 10000);
    for (int k = 0; k < spin; ++k) sink = sink + 1.0;
    return i * i;
  });
  ASSERT_EQ(results.size(), 32u);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i * i);
}

TEST(SweepRunner, SerialAndParallelAgree) {
  auto shard = [](std::size_t i) {
    sim::Random rng(sim::Random::substream_seed(99, i));
    double total = 0.0;
    for (int k = 0; k < 50; ++k) total += rng.uniform(0.0, 1.0);
    return total;
  };
  SweepRunner serial(1);
  SweepRunner parallel(8);
  const auto a = serial.run(40, shard);
  const auto b = parallel.run(40, shard);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "shard " << i;  // bit-identical, not just close
  }
}

TEST(SweepRunner, OneThreadRunsInline) {
  SweepRunner runner(1);
  EXPECT_EQ(runner.threads(), 1);
  const std::thread::id main_id = std::this_thread::get_id();
  const auto ids = runner.run(4, [&](std::size_t) { return std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, main_id);
}

TEST(SweepRunner, SingleShardRunsInlineEvenWithManyThreads) {
  SweepRunner runner(8);
  const auto ids = runner.run(1, [](std::size_t) { return std::this_thread::get_id(); });
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], std::this_thread::get_id());
}

TEST(SweepRunner, EmptySweepReturnsEmpty) {
  SweepRunner runner(4);
  EXPECT_TRUE(runner.run(0, [](std::size_t i) { return i; }).empty());
}

TEST(SweepRunner, MoreThreadsThanShardsIsFine) {
  SweepRunner runner(16);
  const auto results = runner.run(3, [](std::size_t i) { return i + 1; });
  EXPECT_EQ(results, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(SweepRunner, MultipleFailuresAggregateEveryIndex) {
  SweepRunner runner(4);
  try {
    runner.run(16, [](std::size_t i) -> int {
      if (i == 11) throw std::runtime_error("shard 11");
      if (i == 3) throw std::runtime_error("shard 3");
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const AggregateError& error) {
    // The old contract rethrew only the lowest index and silently dropped
    // the rest; now every failing shard survives into one error.
    ASSERT_EQ(error.failures().size(), 2u);
    EXPECT_EQ(error.failures()[0].index, 3u);
    EXPECT_EQ(error.failures()[0].message, "shard 3");
    EXPECT_EQ(error.failures()[1].index, 11u);
    EXPECT_EQ(error.failures()[1].message, "shard 11");
    EXPECT_NE(std::string(error.what()).find("indices 3 11"), std::string::npos);
  }
}

TEST(SweepRunner, SingleFailureRethrowsTheOriginalException) {
  // One failing shard must keep the historical contract exactly: the
  // ORIGINAL exception object type, not an AggregateError wrapper.
  SweepRunner runner(4);
  try {
    runner.run(16, [](std::size_t i) -> int {
      if (i == 5) throw std::invalid_argument("original type");
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(error.what(), "original type");
  }
}

TEST(SweepRunner, PreconditionViolationOutranksOtherFailures) {
  // util::InvalidArgument is systemic (a config bug), so the lowest-indexed
  // one is rethrown alone even when other shards failed too — callers'
  // EXPECT_THROW(..., InvalidArgument) contracts survive aggregation.
  SweepRunner runner(4);
  EXPECT_THROW(runner.run(16,
                          [](std::size_t i) -> int {
                            if (i == 2) throw std::runtime_error("transient");
                            if (i == 9) throw util::InvalidArgument("bad config");
                            return 0;
                          }),
               util::InvalidArgument);
}

TEST(SweepRunner, RetriesRecoverTransientFailures) {
  SweepRunner runner(4);
  RetryPolicy policy;
  policy.max_attempts = 3;
  std::atomic<int> attempts{0};
  const auto results = runner.run(
      8,
      [&](std::size_t i, int attempt) -> std::size_t {
        attempts.fetch_add(1);
        if (attempt < 2 && i % 3 == 0) throw std::runtime_error("transient");
        return i;
      },
      policy);
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i);
  // Shards 0, 3, 6 each burn two failed attempts before succeeding.
  EXPECT_EQ(attempts.load(), 8 + 2 * 3);
}

TEST(SweepRunner, RetriesNeverApplyToPreconditionViolations) {
  SweepRunner runner(1);
  RetryPolicy policy;
  policy.max_attempts = 5;
  std::atomic<int> attempts{0};
  const auto outcomes = runner.run_settled(
      1,
      [&](std::size_t) -> int {
        attempts.fetch_add(1);
        throw util::InvalidArgument("config bug");
      },
      policy);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].ok());
  EXPECT_TRUE(outcomes[0].fatal);
  EXPECT_EQ(outcomes[0].attempts, 1);  // not retried
  EXPECT_EQ(attempts.load(), 1);
}

TEST(SweepRunner, RunSettledNeverThrowsAndKeepsFirstMessage) {
  SweepRunner runner(4);
  RetryPolicy policy;
  policy.max_attempts = 2;
  const auto outcomes = runner.run_settled(
      6,
      [](std::size_t i, int attempt) -> std::size_t {
        if (i == 4) throw std::runtime_error("always fails, attempt " +
                                             std::to_string(attempt));
        return i * 10;
      },
      policy);
  ASSERT_EQ(outcomes.size(), 6u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (i == 4) {
      EXPECT_FALSE(outcomes[i].ok());
      EXPECT_FALSE(outcomes[i].fatal);
      EXPECT_EQ(outcomes[i].attempts, 2);
      // The FIRST failing attempt's message names the original cause.
      EXPECT_EQ(outcomes[i].message, "always fails, attempt 0");
    } else {
      ASSERT_TRUE(outcomes[i].ok());
      EXPECT_EQ(*outcomes[i].value, i * 10);
      EXPECT_EQ(outcomes[i].attempts, 1);
    }
  }
}

TEST(SweepRunner, SettledOutcomesAreThreadCountInvariant) {
  const auto shard = [](std::size_t i, int attempt) -> double {
    // Deterministic failure pattern: shard i fails its first (i % 3)
    // attempts, so outcomes depend only on (i, attempt) — never on timing.
    if (attempt < static_cast<int>(i % 3)) throw std::runtime_error("later");
    sim::Random rng(sim::Random::substream_seed(7, i));
    return rng.uniform(0.0, 1.0);
  };
  RetryPolicy policy;
  policy.max_attempts = 2;
  SweepRunner serial(1);
  SweepRunner parallel(8);
  const auto a = serial.run_settled(24, shard, policy);
  const auto b = parallel.run_settled(24, shard, policy);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ok(), b[i].ok()) << "shard " << i;
    EXPECT_EQ(a[i].attempts, b[i].attempts) << "shard " << i;
    if (a[i].ok()) {
      EXPECT_EQ(*a[i].value, *b[i].value) << "shard " << i;
    }
  }
}

TEST(SweepRunner, AllShardsStillRunWhenOneThrows) {
  SweepRunner runner(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(runner.run(20,
                          [&](std::size_t i) -> int {
                            ran.fetch_add(1);
                            if (i == 0) throw std::runtime_error("boom");
                            return 0;
                          }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 20);
}

TEST(SweepRunner, ReusableAcrossRuns) {
  SweepRunner runner(4);
  for (int round = 0; round < 5; ++round) {
    const auto results = runner.run(10, [&](std::size_t i) {
      return static_cast<int>(i) + round;
    });
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], static_cast<int>(i) + round);
    }
  }
}

TEST(SweepRunner, AutoThreadsResolvesToAtLeastOne) {
  SweepRunner runner(0);
  EXPECT_GE(runner.threads(), 1);
  const auto results = runner.run(8, [](std::size_t i) { return i; });
  const std::size_t sum = std::accumulate(results.begin(), results.end(), std::size_t{0});
  EXPECT_EQ(sum, 28u);
}

}  // namespace
}  // namespace insomnia::exec
