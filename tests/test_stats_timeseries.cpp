#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/random.h"
#include "stats/timeseries.h"
#include "util/error.h"

namespace insomnia::stats {
namespace {

TEST(StepSeries, ConstantSeries) {
  StepSeries s(0.0, 5.0);
  EXPECT_DOUBLE_EQ(s.value_at(0.0), 5.0);
  EXPECT_DOUBLE_EQ(s.value_at(100.0), 5.0);
  EXPECT_DOUBLE_EQ(s.integral(0.0, 10.0), 50.0);
  EXPECT_DOUBLE_EQ(s.mean(2.0, 4.0), 5.0);
}

TEST(StepSeries, StepChanges) {
  StepSeries s(0.0, 1.0);
  s.set(10.0, 3.0);
  EXPECT_DOUBLE_EQ(s.value_at(9.999), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(10.0), 3.0);
  EXPECT_DOUBLE_EQ(s.integral(0.0, 20.0), 10.0 + 30.0);
  EXPECT_DOUBLE_EQ(s.integral(5.0, 15.0), 5.0 + 15.0);
}

TEST(StepSeries, SameValueMergesRuns) {
  StepSeries s(0.0, 1.0);
  s.set(5.0, 1.0);
  EXPECT_EQ(s.change_count(), 1u);
}

TEST(StepSeries, ZeroWidthOverwrite) {
  StepSeries s(0.0, 1.0);
  s.set(5.0, 2.0);
  s.set(5.0, 7.0);  // overwrite the instant
  EXPECT_DOUBLE_EQ(s.value_at(5.0), 7.0);
  EXPECT_DOUBLE_EQ(s.value_at(4.999), 1.0);
}

TEST(StepSeries, OverwriteBackToPreviousValueCollapses) {
  StepSeries s(0.0, 1.0);
  s.set(5.0, 2.0);
  s.set(5.0, 1.0);  // revert: no change remains
  EXPECT_EQ(s.change_count(), 1u);
  EXPECT_DOUBLE_EQ(s.value_at(10.0), 1.0);
}

TEST(StepSeries, RejectsTimeTravel) {
  StepSeries s(0.0, 1.0);
  s.set(5.0, 2.0);
  EXPECT_THROW(s.set(4.0, 3.0), util::InvalidArgument);
  EXPECT_THROW(s.value_at(-1.0), util::InvalidArgument);
  EXPECT_THROW(s.integral(3.0, 2.0), util::InvalidArgument);
}

TEST(StepSeries, IntegralAdditivity) {
  sim::Random rng(17);
  StepSeries s(0.0, rng.uniform(0.0, 10.0));
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    t += rng.exponential(1.0);
    s.set(t, rng.uniform(0.0, 10.0));
  }
  const double whole = s.integral(0.0, t + 10.0);
  double parts = 0.0;
  const double step = (t + 10.0) / 7.0;
  for (int i = 0; i < 7; ++i) {
    parts += s.integral(step * i, (i + 1 == 7) ? t + 10.0 : step * (i + 1));
  }
  EXPECT_NEAR(whole, parts, 1e-7);
}

TEST(StepSeries, BinnedMeansMatchIntegrals) {
  StepSeries s(0.0, 2.0);
  s.set(50.0, 4.0);
  const auto bins = s.binned_means(0.0, 100.0, 4);
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_DOUBLE_EQ(bins[0], 2.0);
  EXPECT_DOUBLE_EQ(bins[1], 2.0);
  EXPECT_DOUBLE_EQ(bins[2], 4.0);
  EXPECT_DOUBLE_EQ(bins[3], 4.0);
}

/// Reference implementation: the plain left-to-right segment scan the
/// prefix-sum path must reproduce bit for bit.
double naive_value_at(const std::vector<std::pair<double, double>>& points, double t) {
  double value = points.front().second;
  for (const auto& [when, v] : points) {
    if (when <= t) value = v;
  }
  return value;
}

double naive_integral(const std::vector<std::pair<double, double>>& points, double t0,
                      double t1) {
  if (t0 == t1) return 0.0;
  std::size_t index = 0;
  while (index + 1 < points.size() && points[index + 1].first <= t0) ++index;
  double total = 0.0;
  double cursor = t0;
  while (cursor < t1) {
    const double segment_end =
        (index + 1 < points.size()) ? std::min(points[index + 1].first, t1) : t1;
    total += points[index].second * (segment_end - cursor);
    cursor = segment_end;
    ++index;
  }
  return total;
}

TEST(StepSeries, PrefixIntegralMatchesNaiveScanOnRandomSeries) {
  sim::Random rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    StepSeries s(0.0, rng.uniform(0.0, 10.0));
    std::vector<std::pair<double, double>> points{{0.0, s.value_at(0.0)}};
    double t = 0.0;
    for (int i = 0; i < 300; ++i) {
      t += rng.exponential(0.5);
      const double v = static_cast<double>(rng.uniform_int(0, 6));
      s.set(t, v);
      // Mirror the series' same-value merge: a skipped duplicate would
      // otherwise split one segment into two in the reference, changing the
      // floating-point summation order the comparison pins down.
      if (v != points.back().second) points.emplace_back(t, v);
    }
    // Interleave start-anchored (prefix path), mid-range (sequential path)
    // and forward-moving window queries (cursor path); every answer must be
    // bit-identical to the naive scan.
    double window_start = 0.0;
    for (int q = 0; q < 120; ++q) {
      const double hi = rng.uniform(0.0, t + 5.0);
      ASSERT_EQ(s.integral(0.0, hi), naive_integral(points, 0.0, hi)) << "start-anchored";
      const double lo = rng.uniform(0.0, hi);
      ASSERT_EQ(s.integral(lo, hi), naive_integral(points, lo, hi)) << "mid-range";
      window_start = std::min(window_start + rng.uniform(0.0, 1.0), t);
      ASSERT_EQ(s.integral(window_start, t), naive_integral(points, window_start, t))
          << "forward window";
      ASSERT_EQ(s.value_at(hi), naive_value_at(points, hi)) << "value_at";
    }
  }
}

TEST(StepSeries, PrefixCacheSurvivesZeroWidthOverwriteAndCollapse) {
  StepSeries s(0.0, 1.0);
  s.set(10.0, 3.0);
  // Query first so the prefix cache covers the existing segments.
  EXPECT_DOUBLE_EQ(s.integral(0.0, 10.0), 10.0);
  // Zero-width overwrite at the tail, then collapse back to the previous
  // value: the change point disappears and cached state must follow.
  s.set(10.0, 1.0);
  EXPECT_EQ(s.change_count(), 1u);
  EXPECT_DOUBLE_EQ(s.integral(0.0, 20.0), 20.0);
  EXPECT_DOUBLE_EQ(s.value_at(15.0), 1.0);
  // Re-grow past the collapsed instant.
  s.set(30.0, 5.0);
  EXPECT_DOUBLE_EQ(s.integral(0.0, 40.0), 30.0 + 50.0);
  // Backward query after forward ones: the cursor is only a hint.
  EXPECT_DOUBLE_EQ(s.integral(0.0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(s.value_at(0.0), 1.0);
}

TEST(ElementwiseMean, Averages) {
  const auto mean = elementwise_mean({{1.0, 2.0}, {3.0, 6.0}});
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 4.0);
  EXPECT_THROW(elementwise_mean({}), util::InvalidArgument);
  EXPECT_THROW(elementwise_mean({{1.0}, {1.0, 2.0}}), util::InvalidArgument);
}

TEST(SumSeries, SumsWithConstant) {
  StepSeries a(0.0, 1.0);
  a.set(10.0, 2.0);
  StepSeries b(0.0, 5.0);
  b.set(20.0, 0.0);
  const StepSeries total = sum_series({&a, &b}, 3.0);
  EXPECT_DOUBLE_EQ(total.value_at(0.0), 9.0);
  EXPECT_DOUBLE_EQ(total.value_at(15.0), 10.0);
  EXPECT_DOUBLE_EQ(total.value_at(25.0), 5.0);
  EXPECT_DOUBLE_EQ(total.integral(0.0, 30.0),
                   a.integral(0.0, 30.0) + b.integral(0.0, 30.0) + 90.0);
}

TEST(SumSeries, RandomisedEquivalence) {
  sim::Random rng(23);
  StepSeries a(0.0, 0.0);
  StepSeries b(0.0, 0.0);
  double ta = 0.0;
  double tb = 0.0;
  for (int i = 0; i < 100; ++i) {
    ta += rng.exponential(2.0);
    a.set(ta, rng.uniform(0.0, 5.0));
    tb += rng.exponential(3.0);
    b.set(tb, rng.uniform(0.0, 5.0));
  }
  const StepSeries total = sum_series({&a, &b});
  for (double t : {1.0, 10.0, 55.5, 200.0, 400.0}) {
    EXPECT_NEAR(total.value_at(t), a.value_at(t) + b.value_at(t), 1e-12);
  }
  EXPECT_NEAR(total.integral(0.0, 500.0),
              a.integral(0.0, 500.0) + b.integral(0.0, 500.0), 1e-6);
}

TEST(SumSeries, RequiresSharedStart) {
  StepSeries a(0.0, 1.0);
  StepSeries b(1.0, 1.0);
  EXPECT_THROW(sum_series({&a, &b}), util::InvalidArgument);
  EXPECT_THROW(sum_series({}), util::InvalidArgument);
}

}  // namespace
}  // namespace insomnia::stats
