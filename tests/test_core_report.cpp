#include <sstream>

#include <gtest/gtest.h>

#include "core/report.h"
#include "util/csv.h"
#include "util/error.h"

namespace insomnia::core {
namespace {

RunMetrics synthetic_metrics() {
  RunMetrics m;
  m.duration = 7200.0;
  m.user_power = stats::StepSeries(0.0, 100.0);
  m.user_power.set(3600.0, 50.0);
  m.isp_power = stats::StepSeries(0.0, 200.0);
  m.online_gateways = stats::StepSeries(0.0, 10.0);
  m.online_cards = stats::StepSeries(0.0, 4.0);
  return m;
}

TEST(Report, RunCsvShape) {
  const RunMetrics m = synthetic_metrics();
  std::stringstream out;
  write_run_csv(out, m, 4, "test run");
  const util::CsvDocument doc = util::parse_csv(out, /*has_header=*/true);
  ASSERT_EQ(doc.header.size(), 5u);
  EXPECT_EQ(doc.header[0], "hour");
  ASSERT_EQ(doc.rows.size(), 4u);
  // First bin fully at 100 W user power; third bin at 50 W.
  EXPECT_NEAR(std::stod(doc.rows[0][1]), 100.0, 1e-6);
  EXPECT_NEAR(std::stod(doc.rows[2][1]), 50.0, 1e-6);
  EXPECT_NEAR(std::stod(doc.rows[0][2]), 200.0, 1e-6);
}

TEST(Report, SavingsCsvValues) {
  const RunMetrics baseline = synthetic_metrics();
  RunMetrics run = synthetic_metrics();
  run.user_power = stats::StepSeries(0.0, 40.0);  // 300 W baseline -> 240 W
  run.isp_power = stats::StepSeries(0.0, 200.0);
  std::stringstream out;
  write_savings_csv(out, run, baseline, 2);
  const util::CsvDocument doc = util::parse_csv(out, /*has_header=*/true);
  ASSERT_EQ(doc.rows.size(), 2u);
  // First half: baseline 300 W, run 240 W -> 20 % savings.
  EXPECT_NEAR(std::stod(doc.rows[0][1]), 0.2, 1e-6);
  // Second half: baseline 250 W, run 240 W -> 4 % savings.
  EXPECT_NEAR(std::stod(doc.rows[1][1]), 0.04, 1e-6);
}

TEST(Report, Validation) {
  const RunMetrics m = synthetic_metrics();
  std::stringstream out;
  EXPECT_THROW(write_run_csv(out, m, 0), util::InvalidArgument);
  RunMetrics other = synthetic_metrics();
  other.duration = 100.0;
  EXPECT_THROW(write_savings_csv(out, other, m, 4), util::InvalidArgument);
}

}  // namespace
}  // namespace insomnia::core
