// The country engine's determinism contract, end to end: every (seed,
// region, city) shard is a pure function of the config, so the folded
// CountryMetrics is bit-identical at any thread count, across process
// fan-out, and across a kill-and-resume split — and a checkpoint written
// under one config refuses to resume under another.
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "country/checkpoint.h"
#include "country/country_runner.h"
#include "util/error.h"

namespace insomnia::country {
namespace {

namespace fs = std::filesystem;

core::ScenarioPreset tiny_preset(const std::string& name, int clients, int gateways) {
  core::ScenarioPreset preset;
  preset.name = name;
  preset.summary = name;
  core::ScenarioConfig& s = preset.scenario;
  s.client_count = clients;
  s.gateway_count = gateways;
  s.degrees.node_count = gateways;
  s.degrees.mean_degree = 3.0;
  s.traffic.client_count = clients;
  s.dslam.line_cards = 4;
  s.dslam.ports_per_card = 2;
  return preset;
}

std::vector<core::ScenarioPreset> tiny_population() {
  return {tiny_preset("tiny-a", 48, 8), tiny_preset("tiny-b", 24, 6)};
}

/// Two regions x two/three cities of one-or-two-neighbourhood tiny cities:
/// five shards, seconds of work, same code paths as the 620-shard portfolio.
CountryConfig tiny_country(int threads = 1) {
  city::NeighbourhoodJitter jitter;
  jitter.gateway_count_spread = 0.2;
  jitter.client_density_spread = 0.2;
  jitter.backhaul_sigma = 0.15;
  jitter.diurnal_phase_spread = 3600.0;

  CityTemplate mostly_a;
  mostly_a.name = "mostly-a";
  mostly_a.weight = 2.0;
  mostly_a.mix = {{"tiny-a", 3.0, jitter}, {"tiny-b", 1.0, jitter}};
  mostly_a.neighbourhoods_min = 1;
  mostly_a.neighbourhoods_max = 2;

  CityTemplate mostly_b = mostly_a;
  mostly_b.name = "mostly-b";
  mostly_b.weight = 1.0;
  mostly_b.mix = {{"tiny-a", 1.0, jitter}, {"tiny-b", 3.0, jitter}};

  RegionConfig north;
  north.name = "north";
  north.cities = 3;
  north.portfolio = {mostly_a, mostly_b};

  RegionConfig south;
  south.name = "south";
  south.cities = 2;
  south.portfolio = {mostly_b};

  CountryConfig config;
  config.name = "tiny-country";
  config.regions = {north, south};
  config.seed = 2026;
  config.threads = threads;
  return config;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "insomnia_runner_" + name;
  fs::remove_all(dir);
  return dir;
}

void expect_bit_identical(const CountryMetrics& a, const CountryMetrics& b) {
  EXPECT_EQ(a.cities(), b.cities());
  EXPECT_EQ(a.neighbourhoods(), b.neighbourhoods());
  EXPECT_EQ(a.total_gateways(), b.total_gateways());
  EXPECT_EQ(a.total_clients(), b.total_clients());
  EXPECT_EQ(a.wake_events(), b.wake_events());
  // EXPECT_EQ on doubles is exact: this is the bit-identity contract.
  EXPECT_EQ(a.baseline_watts(), b.baseline_watts());
  EXPECT_EQ(a.scheme_watts(), b.scheme_watts());
  EXPECT_EQ(a.savings_fraction(), b.savings_fraction());
  EXPECT_EQ(a.isp_share_of_savings(), b.isp_share_of_savings());
  EXPECT_EQ(a.peak_online_gateways(), b.peak_online_gateways());
  EXPECT_EQ(a.neighbourhood_savings().count(), b.neighbourhood_savings().count());
  EXPECT_EQ(a.neighbourhood_savings().mean(), b.neighbourhood_savings().mean());
  EXPECT_EQ(a.neighbourhood_savings().m2(), b.neighbourhood_savings().m2());
  EXPECT_EQ(a.savings_ci95_halfwidth(), b.savings_ci95_halfwidth());
  ASSERT_EQ(a.per_region().size(), b.per_region().size());
  for (std::size_t r = 0; r < a.per_region().size(); ++r) {
    EXPECT_EQ(a.per_region()[r].cities, b.per_region()[r].cities);
    EXPECT_EQ(a.per_region()[r].baseline_watts, b.per_region()[r].baseline_watts);
    EXPECT_EQ(a.per_region()[r].scheme_watts, b.per_region()[r].scheme_watts);
    EXPECT_EQ(a.per_region()[r].savings.mean(), b.per_region()[r].savings.mean());
  }
}

TEST(CountryRunner, SampleCityIsAPureKeyedFunction) {
  const CountryConfig config = tiny_country();
  const CitySample once = sample_city(config, 0, 1);
  const CitySample again = sample_city(config, 0, 1);
  EXPECT_EQ(once.template_index, again.template_index);
  EXPECT_EQ(once.city.seed, again.city.seed);
  EXPECT_EQ(once.city.neighbourhoods, again.city.neighbourhoods);
  EXPECT_EQ(once.city.scheme, config.scheme);
  EXPECT_EQ(once.city.threads, 1);  // cities are the parallel unit

  // Distinct shards get distinct substreams.
  EXPECT_NE(sample_city(config, 0, 0).city.seed, once.city.seed);
  EXPECT_NE(sample_city(config, 1, 1).city.seed, once.city.seed);

  EXPECT_THROW(sample_city(config, 5, 0), util::InvalidArgument);
  EXPECT_THROW(sample_city(config, 0, 99), util::InvalidArgument);
}

TEST(CountryRunner, RunIsCompleteAndStructurallySane) {
  const CountryResult result = run_country(tiny_country(), {}, tiny_population());
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.completed_shards, 5u);
  const CountryMetrics& metrics = result.metrics;
  EXPECT_EQ(metrics.cities(), 5u);
  EXPECT_GE(metrics.neighbourhoods(), 5u);
  EXPECT_GT(metrics.total_gateways(), 0);
  EXPECT_GT(metrics.scheme_watts(), 0.0);
  EXPECT_LT(metrics.scheme_watts(), metrics.baseline_watts());
  ASSERT_EQ(metrics.per_region().size(), 2u);
  EXPECT_EQ(metrics.per_region()[0].cities, 3u);
  EXPECT_EQ(metrics.per_region()[1].cities, 2u);
}

TEST(CountryRunner, ThreadCountDoesNotChangeASingleBit) {
  const CountryResult serial = run_country(tiny_country(1), {}, tiny_population());
  const CountryResult threaded = run_country(tiny_country(3), {}, tiny_population());
  ASSERT_TRUE(serial.complete);
  ASSERT_TRUE(threaded.complete);
  expect_bit_identical(serial.metrics, threaded.metrics);
}

TEST(CountryRunner, KillAndResumeMatchesUninterruptedBitForBit) {
  const CountryResult uninterrupted = run_country(tiny_country(), {}, tiny_population());
  ASSERT_TRUE(uninterrupted.complete);

  const std::string dir = fresh_dir("resume");
  CountryRunOptions options;
  options.checkpoint_dir = dir;
  options.flush_every = 1;  // checkpoint after every shard
  options.max_city_shards = 2;

  // "Killed" after two shards...
  const CountryResult first = run_country(tiny_country(), options, tiny_population());
  EXPECT_FALSE(first.complete);
  EXPECT_EQ(first.completed_shards, 2u);

  // ...killed again after two more...
  const CountryResult second = run_country(tiny_country(), options, tiny_population());
  EXPECT_FALSE(second.complete);
  EXPECT_EQ(second.completed_shards, 4u);

  // ...then allowed to finish. Three processes' files union to the full set.
  options.max_city_shards = 0;
  const CountryResult resumed = run_country(tiny_country(), options, tiny_population());
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.completed_shards, 5u);
  expect_bit_identical(uninterrupted.metrics, resumed.metrics);

  // Resuming a COMPLETE checkpoint simulates nothing and still folds the
  // same numbers.
  const CountryResult reloaded = run_country(tiny_country(), options, tiny_population());
  ASSERT_TRUE(reloaded.complete);
  expect_bit_identical(uninterrupted.metrics, reloaded.metrics);
}

TEST(CountryRunner, ProcessFanOutMatchesInProcessBitForBit) {
  const CountryResult in_process = run_country(tiny_country(), {}, tiny_population());
  ASSERT_TRUE(in_process.complete);

  const std::string dir = fresh_dir("procs");
  CountryRunOptions options;
  options.checkpoint_dir = dir;
  options.procs = 3;
  const CountryResult fanned = run_country(tiny_country(), options, tiny_population());
  ASSERT_TRUE(fanned.complete);
  EXPECT_EQ(fanned.completed_shards, 5u);
  expect_bit_identical(in_process.metrics, fanned.metrics);

  // Three workers -> three checkpoint files in the shared directory.
  std::size_t files = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    files += entry.path().extension() == ".ckpt" ? 1 : 0;
  }
  EXPECT_EQ(files, 3u);
}

TEST(CountryRunner, ResumeUnderADifferentConfigIsRefused) {
  const std::string dir = fresh_dir("refuse");
  CountryRunOptions options;
  options.checkpoint_dir = dir;
  options.max_city_shards = 1;
  ASSERT_FALSE(run_country(tiny_country(), options, tiny_population()).complete);

  CountryConfig changed = tiny_country();
  changed.seed += 1;
  EXPECT_THROW(run_country(changed, options, tiny_population()), util::InvalidArgument);
}

TEST(CountryRunner, ExecutionKnobsAreValidated) {
  CountryRunOptions options;
  options.procs = 0;
  EXPECT_THROW(run_country(tiny_country(), options, tiny_population()),
               util::InvalidArgument);
  options.procs = 2;  // fan-out without a shared checkpoint directory
  EXPECT_THROW(run_country(tiny_country(), options, tiny_population()),
               util::InvalidArgument);
  CountryConfig config = tiny_country();
  config.scheme = "no-such-scheme";
  EXPECT_THROW(run_country(config, {}, tiny_population()), util::InvalidArgument);
}

}  // namespace
}  // namespace insomnia::country
