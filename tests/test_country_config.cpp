// Structural rules of the country portfolio description and the shape of
// the default country (the ≥1M-gateway §5.4 world run at full scale).
#include <gtest/gtest.h>

#include "country/country_config.h"
#include "util/error.h"

namespace insomnia::country {
namespace {

CountryConfig minimal_country() {
  city::CityMixComponent component;
  component.preset = "paper-default";
  CityTemplate tmpl;
  tmpl.name = "only";
  tmpl.mix = {component};
  tmpl.neighbourhoods_min = 2;
  tmpl.neighbourhoods_max = 4;
  RegionConfig region;
  region.name = "r0";
  region.cities = 3;
  region.portfolio = {tmpl};
  CountryConfig config;
  config.regions = {region};
  return config;
}

TEST(CountryConfig, MinimalCountryValidates) {
  EXPECT_NO_THROW(validate(minimal_country()));
  EXPECT_EQ(total_city_shards(minimal_country()), 3u);
}

TEST(CountryConfig, StructuralRulesAreEnforced) {
  {
    CountryConfig config = minimal_country();
    config.regions.clear();
    EXPECT_THROW(validate(config), util::InvalidArgument);
  }
  {
    CountryConfig config = minimal_country();
    config.regions[0].cities = 0;
    EXPECT_THROW(validate(config), util::InvalidArgument);
  }
  {
    CountryConfig config = minimal_country();
    config.regions[0].portfolio.clear();
    EXPECT_THROW(validate(config), util::InvalidArgument);
  }
  {
    CountryConfig config = minimal_country();
    config.regions[0].portfolio[0].weight = 0.0;
    EXPECT_THROW(validate(config), util::InvalidArgument);
  }
  {
    CountryConfig config = minimal_country();
    config.regions[0].portfolio[0].neighbourhoods_min = 0;
    EXPECT_THROW(validate(config), util::InvalidArgument);
  }
  {
    CountryConfig config = minimal_country();
    config.regions[0].portfolio[0].neighbourhoods_min = 8;  // > max of 4
    EXPECT_THROW(validate(config), util::InvalidArgument);
  }
  {
    CountryConfig config = minimal_country();
    config.regions[0].portfolio[0].mix.clear();  // city::validate rules apply
    EXPECT_THROW(validate(config), util::InvalidArgument);
  }
  {
    CountryConfig config = minimal_country();
    config.peak_start = config.peak_end;
    EXPECT_THROW(validate(config), util::InvalidArgument);
  }
}

TEST(CountryConfig, DefaultCountryIsTheFullScalePortfolio) {
  const CountryConfig config = default_country();
  EXPECT_NO_THROW(validate(config));
  ASSERT_EQ(config.regions.size(), 4u);
  EXPECT_EQ(config.regions[0].name, "metro");
  EXPECT_EQ(config.regions[1].name, "suburban");
  EXPECT_EQ(config.regions[2].name, "rural");
  EXPECT_EQ(config.regions[3].name, "developing");
  EXPECT_EQ(total_city_shards(config), 620u);
  for (const RegionConfig& region : config.regions) {
    EXPECT_EQ(region.portfolio.size(), 2u) << region.name;
  }
}

TEST(CountryConfig, ScalingShrinksSizeButKeepsShape) {
  const CountryConfig full = default_country();
  const CountryConfig small = default_country(0.01, 0.1);
  EXPECT_NO_THROW(validate(small));
  ASSERT_EQ(small.regions.size(), full.regions.size());
  for (std::size_t r = 0; r < full.regions.size(); ++r) {
    EXPECT_EQ(small.regions[r].name, full.regions[r].name);
    EXPECT_GE(small.regions[r].cities, 1);
    EXPECT_LT(small.regions[r].cities, full.regions[r].cities);
    ASSERT_EQ(small.regions[r].portfolio.size(), full.regions[r].portfolio.size());
    for (std::size_t t = 0; t < full.regions[r].portfolio.size(); ++t) {
      const CityTemplate& big = full.regions[r].portfolio[t];
      const CityTemplate& tiny = small.regions[r].portfolio[t];
      EXPECT_EQ(tiny.name, big.name);
      EXPECT_EQ(tiny.mix.size(), big.mix.size());
      EXPECT_GE(tiny.neighbourhoods_min, 1);
      EXPECT_LE(tiny.neighbourhoods_min, tiny.neighbourhoods_max);
      EXPECT_LT(tiny.neighbourhoods_max, big.neighbourhoods_max);
    }
  }
  EXPECT_THROW(default_country(0.0), util::InvalidArgument);
  EXPECT_THROW(default_country(1.0, -1.0), util::InvalidArgument);
}

}  // namespace
}  // namespace insomnia::country
