// Regressions for the shared driver-flag layer (bench/bench_common.h):
//   * the --scheme override must survive schemes being registered AFTER flag
//     parsing (it used to store a SchemeSpec* into the registry's backing
//     vector, which dangles on reallocation),
//   * mean_over_runs must reject an empty sweep instead of silently dividing
//     by zero and spreading NaN through tables and --json reports.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_common.h"
#include "core/scheme_registry.h"
#include "util/error.h"

namespace insomnia {
namespace {

core::SchemeSpec filler_scheme(const std::string& name) {
  core::SchemeSpec spec;
  spec.name = name;
  spec.display = name;
  spec.summary = "test filler scheme";
  spec.make_policy = [](const core::ScenarioConfig&) {
    return std::unique_ptr<core::Policy>();  // never run by this test
  };
  return spec;
}

TEST(BenchCommon, SchemeOverrideSurvivesRegistrationAfterParsing) {
  char prog[] = "driver";
  char flag[] = "--scheme";
  char name[] = "bh2-kswitch";
  char* argv[] = {prog, flag, name};
  int i = 1;
  ASSERT_TRUE(bench::handle_common_flag(3, argv, i));

  // Grow the registry far past any plausible small-vector capacity so the
  // backing storage reallocates; a stored SchemeSpec* would now dangle.
  core::SchemeRegistry& registry = core::scheme_registry();
  for (int k = 0; k < 64; ++k) {
    const std::string filler = "bench-common-filler-" + std::to_string(k);
    if (!registry.contains(filler)) registry.add(filler_scheme(filler));
  }

  const core::SchemeSpec* spec = bench::scheme_override();
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->name, "bh2-kswitch");
  // The override must be the registry's current spec, not a stale address.
  EXPECT_EQ(spec, &core::find_scheme("bh2-kswitch"));
}

TEST(BenchCommon, SchemeFlagRejectsUnknownNamesAtParseTime) {
  char prog[] = "driver";
  char flag[] = "--scheme";
  char name[] = "no-such-scheme";
  char* argv[] = {prog, flag, name};
  int i = 1;
  EXPECT_THROW(bench::handle_common_flag(3, argv, i), util::InvalidArgument);
}

TEST(BenchCommon, MeanOverRunsRejectsEmptySweeps) {
  const std::vector<double> empty;
  EXPECT_THROW(bench::mean_over_runs(empty, [](double v) { return v; }),
               util::InvalidArgument);
  const std::vector<double> rows{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(bench::mean_over_runs(rows, [](double v) { return v; }), 2.0);
}

}  // namespace
}  // namespace insomnia
